"""Fused autograd kernels vs their composed-graph forms — the PR 8 hot paths.

Three chains were collapsed into single graph nodes with analytic adjoints:
BCE-with-logits (7 op nodes → 1), the fair-loss pair-disparity kernel
(13 nodes + a gather/scatter round-trip → 1, with a cached selection CSR),
and the Adam update (a chain of full-size temporaries → one in-place
kernel).  All three are bit-identical to the composed forms (pinned by
``tests/test_fused_ops.py``); this bench pins the *speed* side: the fused
BCE forward+backward must be **at least 1.5x faster** than the composed
graph at quick scale, and the other two kernels' timings are recorded into
``BENCH_fused_ops.json`` for the CI regression gate.
"""

from __future__ import annotations

import time

import numpy as np
from conftest import record_json, record_output

from repro.core.fairloss import (
    _composed_pair_disparities,
    _fused_pair_disparities,
)
from repro.nn.losses import (
    binary_cross_entropy_with_logits,
    binary_cross_entropy_with_logits_reference,
)
from repro.nn.module import Parameter
from repro.optim import Adam
from repro.tensor import Tensor

NUM_ELEMENTS = 200_000  # BCE operating point: logits over a large batch
ROUNDS = 20


def _time(fn, rounds=ROUNDS) -> float:
    fn()  # warm-up
    start = time.perf_counter()
    for _ in range(rounds):
        fn()
    return (time.perf_counter() - start) / rounds


def _bce_step(loss_fn, logits, targets, weights):
    tensor = Tensor(logits, requires_grad=True)
    loss_fn(tensor, targets, weights).backward()
    return tensor.grad


def _fair_step(disparity_fn, representations, indices, anchors, scale):
    tensor = Tensor(representations, requires_grad=True)
    disparity_fn(tensor, indices, anchors, scale).backward(
        np.ones(indices.shape[0])
    )
    return tensor.grad


def test_fused_kernel_speedups(benchmark):
    rng = np.random.default_rng(0)

    # --- BCE: the acceptance kernel -------------------------------------- #
    logits = rng.standard_normal(NUM_ELEMENTS) * 3.0
    targets = (rng.random(NUM_ELEMENTS) > 0.4).astype(float)
    weights = rng.random(NUM_ELEMENTS)
    composed_bce = _time(
        lambda: _bce_step(
            binary_cross_entropy_with_logits_reference, logits, targets, weights
        )
    )
    fused_bce = _time(
        lambda: _bce_step(
            binary_cross_entropy_with_logits, logits, targets, weights
        )
    )
    benchmark.pedantic(
        lambda: _bce_step(
            binary_cross_entropy_with_logits, logits, targets, weights
        ),
        rounds=ROUNDS,
        iterations=1,
    )
    bce_speedup = composed_bce / fused_bce

    # --- fair-loss pair disparities -------------------------------------- #
    num_pairs, num_nodes, top_k, dim = 8, 5000, 10, 16
    representations = rng.standard_normal((num_nodes, dim))
    indices = rng.integers(0, num_nodes, size=(num_pairs, num_nodes, top_k))
    anchors = np.arange(num_nodes, dtype=np.int64)
    scale = rng.random((num_pairs, num_nodes))
    composed_fair = _time(
        lambda: _fair_step(
            _composed_pair_disparities, representations, indices, anchors, scale
        ),
        rounds=5,
    )
    fused_fair = _time(
        lambda: _fair_step(
            _fused_pair_disparities, representations, indices, anchors, scale
        ),
        rounds=5,
    )

    # --- Adam ------------------------------------------------------------- #
    param = Parameter(rng.standard_normal((512, 256)))
    optimizer = Adam([param], lr=1e-3, weight_decay=1e-4)
    param.grad = rng.standard_normal((512, 256))
    adam_step = _time(optimizer.step)

    lines = [
        f"fused kernels, forward+backward per call (quick operating points)",
        "",
        f"{'kernel':<16}{'composed ms':>12}{'fused ms':>10}{'speedup':>9}",
        f"{'bce_logits':<16}{composed_bce * 1e3:>12.2f}{fused_bce * 1e3:>10.2f}"
        f"{bce_speedup:>8.1f}x",
        f"{'fair_pairs':<16}{composed_fair * 1e3:>12.2f}{fused_fair * 1e3:>10.2f}"
        f"{composed_fair / fused_fair:>8.1f}x",
        f"{'adam_step':<16}{'—':>12}{adam_step * 1e3:>10.2f}{'':>9}",
    ]
    record_output("fused_ops", "\n".join(lines))
    record_json(
        "fused_ops",
        {
            "bce": {
                "composed_ms": composed_bce * 1e3,
                "fused_ms": fused_bce * 1e3,
                "speedup": bce_speedup,
            },
            "fair": {
                "composed_ms": composed_fair * 1e3,
                "fused_ms": fused_fair * 1e3,
                "speedup": composed_fair / fused_fair,
            },
            "adam": {"step_ms": adam_step * 1e3},
        },
    )

    # Parity first (a fast wrong answer is no optimisation) ...
    g_fused = _bce_step(binary_cross_entropy_with_logits, logits, targets, weights)
    g_composed = _bce_step(
        binary_cross_entropy_with_logits_reference, logits, targets, weights
    )
    np.testing.assert_array_equal(g_fused, g_composed)
    # ... then the acceptance bar.
    assert bce_speedup >= 1.5, f"fused BCE only {bce_speedup:.2f}x faster"
    assert fused_fair <= composed_fair, "fused fair kernel slower than composed"
