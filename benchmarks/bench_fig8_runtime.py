"""Fig. 8 — runtime comparison of all methods and Fairwos variants (NBA)."""

from __future__ import annotations

from conftest import bench_scale, record_output

from repro.experiments import format_fig8, run_fig8

SCALE = bench_scale()


def test_fig8_runtime(benchmark):
    results = benchmark.pedantic(
        lambda: [
            run_fig8(dataset="nba", backbone=backbone, scale=SCALE)
            for backbone in ("gcn", "gin")
        ],
        rounds=1,
        iterations=1,
    )
    record_output("fig8_runtime", "\n\n".join(format_fig8(r) for r in results))

    gcn = results[0]
    # Paper shapes that must hold at any scale:
    # RemoveR trains on fewer features than vanilla — cheapest or close to it.
    assert gcn.seconds_mean["remover"] <= gcn.seconds_mean["fairwos"]
    # FairGKD trains two extra teachers — slower than vanilla.
    assert gcn.seconds_mean["fairgkd"] > gcn.seconds_mean["vanilla"]
    # Fairness fine-tuning costs time on top of w/o F.
    assert gcn.seconds_mean["fairwos"] > gcn.seconds_mean["fwos_wo_f"]
    # Promoting fairness on every raw attribute (w/o E) is slower than on
    # the encoder's compact attributes.
    assert gcn.seconds_mean["fwos_wo_e"] > gcn.seconds_mean["fwos_wo_f"]
