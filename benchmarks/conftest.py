"""Shared helpers for the benchmark suite.

Each benchmark regenerates one table/figure of the paper: it trains the
involved models (timed by pytest-benchmark), prints the paper-style rows,
and writes them to ``benchmarks/output/<name>.txt`` for inspection.

Scale is controlled by the ``REPRO_BENCH_SCALE`` environment variable:
``smoke`` (seconds, structural check only), ``quick`` (default — minutes,
faithful shapes), ``paper`` (the full 10-seed protocol; hours on CPU), and
``full`` (the 1M-node scale tier: smoke-sized epoch budgets — at 1M nodes
one epoch is already ~1000 optimizer steps — with node counts keyed off
the scale *name* in the scale benches).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.experiments import Scale

OUTPUT_DIR = Path(__file__).parent / "output"


# "full" shares smoke's epoch/seed budgets: at 1M nodes a single sampled
# epoch is ~1000 optimizer steps, so the knob that matters is the node
# count, which the scale benches key off bench_scale_name() instead.
_PRESETS = {
    "smoke": Scale.smoke,
    "quick": Scale.quick,
    "paper": Scale.paper,
    "full": Scale.smoke,
}


def bench_scale_name() -> str:
    """Validated REPRO_BENCH_SCALE name (default: quick)."""
    name = os.environ.get("REPRO_BENCH_SCALE", "quick").lower()
    if name not in _PRESETS:
        raise ValueError(
            f"REPRO_BENCH_SCALE must be one of {sorted(_PRESETS)}, got {name!r}"
        )
    return name


def bench_scale() -> Scale:
    """Scale selected by REPRO_BENCH_SCALE (default: quick)."""
    return _PRESETS[bench_scale_name()]()


def record_output(name: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/output/."""
    print(f"\n{text}\n")
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")


def record_json(name: str, payload: dict) -> None:
    """Persist machine-readable bench results as ``BENCH_<name>.json``.

    CI uploads these as workflow artifacts (so the bench trajectory is
    inspectable per run) and ``check_bench_regression.py`` gates the slow
    job on them against the checked-in ``bench_baseline.json``.  The active
    ``scale`` is stamped into the payload so the regression check only
    compares like with like.
    """
    payload = {
        "bench": name,
        "scale": os.environ.get("REPRO_BENCH_SCALE", "quick").lower(),
        **payload,
    }
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / f"BENCH_{name}.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )


@pytest.fixture
def scale() -> Scale:
    return bench_scale()
