"""Table I — dataset statistics (generation benchmark + statistics table)."""

from __future__ import annotations

from conftest import record_output

from repro.experiments import format_table1, run_table1


def test_table1_dataset_statistics(benchmark):
    rows = benchmark.pedantic(run_table1, kwargs={"seed": 0}, rounds=1, iterations=1)
    record_output("table1_datasets", format_table1(rows))
    assert len(rows) == 6
    for row in rows:
        # Generated degree must track the paper's statistic (calibration).
        assert abs(row["avg_degree"] - row["paper_avg_degree"]) / row[
            "paper_avg_degree"
        ] < 0.2
