"""Table II — the paper's main comparison.

Six methods × {GCN, GIN} × six datasets, aggregated over seeds.  The
benchmark times the full grid; the printed table mirrors the paper's rows.
Shape assertions check the headline: on the strong-bias datasets Fairwos
must beat the vanilla backbone on ΔSP without losing accuracy.
"""

from __future__ import annotations

from conftest import bench_scale, record_output

from repro.experiments import format_table2, run_table2
from repro.experiments.table2 import PAPER_TABLE2_GCN

SCALE = bench_scale()


def test_table2_main_comparison(benchmark):
    result = benchmark.pedantic(
        run_table2, kwargs={"scale": SCALE}, rounds=1, iterations=1
    )
    text = format_table2(result)
    lines = [text, "", "Paper reference (GCN): vanilla → Fairwos (ACC / ΔSP / ΔEO)"]
    for dataset, rows in PAPER_TABLE2_GCN.items():
        van, fwo = rows["vanilla"], rows["fairwos"]
        ours_v = result.get(dataset, "gcn", "vanilla")
        ours_f = result.get(dataset, "gcn", "fairwos")
        lines.append(
            f"  {dataset:12s} paper {van[0]:5.1f}/{van[1]:5.1f}/{van[2]:5.1f} → "
            f"{fwo[0]:5.1f}/{fwo[1]:5.1f}/{fwo[2]:5.1f} | "
            f"ours {ours_v.acc_mean:5.1f}/{ours_v.dsp_mean:5.1f}/{ours_v.deo_mean:5.1f} → "
            f"{ours_f.acc_mean:5.1f}/{ours_f.dsp_mean:5.1f}/{ours_f.deo_mean:5.1f}"
        )
    record_output("table2_main", "\n".join(lines))

    if SCALE.epochs >= 100:
        # Shape assertions on the strong-bias datasets (paper's headline).
        for dataset in ("nba", "occupation"):
            vanilla = result.get(dataset, "gcn", "vanilla")
            fairwos = result.get(dataset, "gcn", "fairwos")
            assert fairwos.dsp_mean < vanilla.dsp_mean, dataset
            assert fairwos.acc_mean > vanilla.acc_mean - 3.0, dataset
