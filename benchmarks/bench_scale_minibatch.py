"""Scale benchmark: full-batch vs minibatch training on a scale-free graph.

``test_scale_minibatch`` trains the same SAGE backbone twice on a generated
scale-free graph — once full-batch (``fit_binary_classifier``) and once with
neighbour-sampled minibatches (``fit_minibatch``) — and reports wall-time,
peak traced allocation (tracemalloc, which numpy reports into), and test
accuracy.

``test_scale_fairwos_end_to_end`` runs the *whole* Fairwos pipeline
(encoder pre-train → classifier pre-train → counterfactual fine-tune) with
every phase sampled and the ANN counterfactual backend — the configuration
that takes Fairwos past the ~10k-node ceiling of the exact O(N²) search —
and reports per-phase wall-time plus peak memory.

``test_scale_fairwos_fullstack`` is the 1M-node acceptance run: the same
pipeline with ``dtype="float32"``, the graph saved via ``save_graph_mmap``
and memory-mapped back, and incremental ANN index maintenance — trained in
a child process whose peak RSS (the OS-level number, which tracemalloc
cannot see mmap paging in) is recorded into the bench JSON.

Graph size follows REPRO_BENCH_SCALE: smoke ≈ 2k nodes, quick ≈ 20k
(Fairwos: 50k), paper ≈ 200k (Fairwos: 100k), full = 1M for the
full-stack run.  The minibatch engine's peak memory is bounded by the
batch receptive field rather than N, so its advantage grows with scale;
the ordering is only asserted at paper scale where the gap is structural.
"""

from __future__ import annotations

import json
import subprocess
import sys
import time
import tracemalloc

import numpy as np
import pytest
from conftest import bench_scale, bench_scale_name, record_json, record_output

from repro.core import ExecutionConfig, FairwosConfig, FairwosTrainer
from repro.datasets import generate_scale_free_graph
from repro.experiments import run_method
from repro.fairness.metrics import accuracy
from repro.gnnzoo import make_backbone
from repro.io import save_graph_mmap
from repro.tensor import Tensor
from repro.training import (
    fit_binary_classifier,
    fit_minibatch,
    predict_logits,
    predict_logits_batched,
)

SCALE = bench_scale()
SCALE_NAME = bench_scale_name()
# Node counts key off the scale *name*: "full" reuses smoke's epoch/seed
# budgets (one sampled epoch at 1M is already ~1000 optimizer steps), so
# keying off SCALE.seeds would collide it with smoke.
NODES = {"smoke": 2_000, "quick": 20_000, "paper": 200_000, "full": 200_000}[
    SCALE_NAME
]
FAIRWOS_NODES = {
    "smoke": 2_000,
    "quick": 50_000,
    "paper": 100_000,
    "full": 100_000,
}[SCALE_NAME]
FULLSTACK_NODES = {
    "smoke": 2_000,
    "quick": 50_000,
    "paper": 200_000,
    "full": 1_000_000,
}[SCALE_NAME]
EPOCHS = max(3, min(SCALE.epochs // 15, 10))
FANOUTS = (10, 5)
BATCH_SIZE = 512


def _traced(fn):
    """Run ``fn`` and return (result, seconds, peak_traced_bytes)."""
    tracemalloc.start()
    start = time.perf_counter()
    result = fn()
    seconds = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return result, seconds, peak


def test_scale_minibatch(benchmark):
    graph = generate_scale_free_graph(
        NODES, num_features=12, average_degree=8, seed=0
    ).standardized()
    test_labels = graph.labels[graph.test_mask]

    def train_full():
        model = make_backbone(
            "sage", graph.num_features, 16, np.random.default_rng(0), num_layers=2
        )
        fit_binary_classifier(
            model,
            Tensor(graph.features),
            graph.adjacency,
            graph.labels,
            graph.train_mask,
            graph.val_mask,
            epochs=EPOCHS,
        )
        logits = predict_logits(model, Tensor(graph.features), graph.adjacency)
        return accuracy((logits[graph.test_mask] > 0).astype(np.int64), test_labels)

    def train_minibatch():
        model = make_backbone(
            "sage", graph.num_features, 16, np.random.default_rng(0), num_layers=2
        )
        fit_minibatch(
            model,
            graph.features,
            graph.adjacency,
            graph.labels,
            graph.train_mask,
            graph.val_mask,
            epochs=EPOCHS,
            fanouts=FANOUTS,
            batch_size=BATCH_SIZE,
            rng=0,
        )
        logits = predict_logits_batched(
            model, graph.features, graph.adjacency, batch_size=1024
        )
        return accuracy((logits[graph.test_mask] > 0).astype(np.int64), test_labels)

    full_acc, full_s, full_peak = _traced(train_full)
    mini_acc, mini_s, mini_peak = benchmark.pedantic(
        lambda: _traced(train_minibatch), rounds=1, iterations=1
    )

    lines = [
        f"scale-free graph: {graph.summary()}",
        f"epochs={EPOCHS} fanouts={FANOUTS} batch_size={BATCH_SIZE}",
        "",
        f"{'mode':<12}{'seconds':>10}{'peak MiB':>12}{'test acc':>10}",
        f"{'full-batch':<12}{full_s:>10.2f}{full_peak / 2**20:>12.1f}{full_acc:>10.3f}",
        f"{'minibatch':<12}{mini_s:>10.2f}{mini_peak / 2**20:>12.1f}{mini_acc:>10.3f}",
    ]
    record_output("scale_minibatch", "\n".join(lines))
    record_json(
        "scale_minibatch",
        {
            "nodes": NODES,
            "epochs": EPOCHS,
            "full_batch": {
                "wall_seconds": full_s,
                "peak_mib": full_peak / 2**20,
                "test_accuracy": full_acc,
            },
            "minibatch": {
                "wall_seconds": mini_s,
                "peak_mib": mini_peak / 2**20,
                "test_accuracy": mini_acc,
            },
        },
    )

    # Utility parity: the sampled estimator must stay competitive.
    assert mini_acc >= full_acc - 0.05
    # The memory bound is structural (independent of N) only once the graph
    # dwarfs the batch receptive field; assert it at paper scale.
    if NODES >= 100_000:
        assert mini_peak < full_peak


@pytest.mark.slow
def test_scale_all_baselines_minibatch(benchmark):
    """Every Table II method end-to-end on the large scale-free graph.

    The acceptance run for the baseline-minibatch wiring:
    ``repro --method ksmote|fairrf|fairgkd --minibatch --dataset scalefree
    --nodes 50000`` must complete for all three (plus vanilla/remover, wired
    in PR 1/2) — this bench runs exactly that through ``run_method`` with
    bench-sized epoch budgets and reports per-method wall-time and metrics.
    """
    graph = generate_scale_free_graph(
        FAIRWOS_NODES, num_features=12, average_degree=8, seed=0
    ).standardized()
    methods = ["vanilla", "remover", "ksmote", "fairrf", "fairgkd"]
    # Optimizer steps per epoch shrink with the graph (ceil(N / batch)), so
    # small smoke graphs need more epochs for a comparable budget.
    epochs = max(EPOCHS, 60_000 // FAIRWOS_NODES)

    def run_all():
        results = {}
        for method in methods:
            results[method] = run_method(
                method,
                graph,
                seed=0,
                epochs=epochs,
                patience=None,
                execution=ExecutionConfig(
                    minibatch=True,
                    fanouts=FANOUTS,
                    batch_size=BATCH_SIZE,
                ),
            )
        return results

    results, seconds, peak = benchmark.pedantic(
        lambda: _traced(run_all), rounds=1, iterations=1
    )

    lines = [
        f"scale-free graph: {graph.summary()}",
        f"epochs={epochs} fanouts={FANOUTS} batch_size={BATCH_SIZE}",
        "",
        f"{'method':<12}{'seconds':>10}{'test acc':>10}{'ΔSP':>8}",
        *(
            f"{name:<12}{r.seconds:>10.2f}{r.test.accuracy:>10.3f}"
            f"{r.test.delta_sp:>8.3f}"
            for name, r in results.items()
        ),
        f"total {seconds:.1f}s  peak {peak / 2**20:.1f} MiB",
    ]
    record_output("scale_all_baselines", "\n".join(lines))
    record_json(
        "scale_all_baselines",
        {
            "nodes": FAIRWOS_NODES,
            "epochs": epochs,
            "wall_seconds": seconds,
            "peak_mib": peak / 2**20,
            "methods": {
                name: {
                    "wall_seconds": r.seconds,
                    "test_accuracy": r.test.accuracy,
                    "delta_sp": r.test.delta_sp,
                }
                for name, r in results.items()
            },
        },
    )

    assert set(results) == set(methods)
    # At quick/paper scale every method must learn something real — the
    # wiring contract is not "completes" but "completes and trains".  The
    # smoke graph's budget is too small for FairGKD's three models, so the
    # smoke run only checks structure (matching the other scale benches).
    if FAIRWOS_NODES >= 20_000:
        for name, result in results.items():
            assert result.test.accuracy > 0.55, f"{name} failed to train"


def test_scale_sampler_cache(benchmark):
    """Epoch-cached sampling vs fresh sampling on the 50k-node graph.

    The acceptance bench for the ``cache_epochs`` knob: at quick scale and
    above, reusing sampled block structure for 8-epoch windows must cut
    *sampled-epoch wall-time* (``FitHistory.epoch_train_seconds`` — the
    batch loops only, validation excluded, which is what per-batch numpy
    sampling overhead actually dominates) by at least 1.5x, with the exact
    batched evaluation unchanged, so test accuracy moves at most noise.
    Measured ~2x at 50k nodes, SAGE (10, 5), batch 512 — it was ~4.5x
    before the counting-sort fresh-sample path cut the uncached epoch cost
    itself by ~2x; both absolute times are gated in bench_baseline.json.
    """
    graph = generate_scale_free_graph(
        FAIRWOS_NODES, num_features=12, average_degree=8, seed=0
    ).standardized()
    epochs = max(8, min(SCALE.epochs // 15, 16))
    test_labels = graph.labels[graph.test_mask]

    def train(cache_epochs):
        model = make_backbone(
            "sage", graph.num_features, 16, np.random.default_rng(0), num_layers=2
        )
        history = fit_minibatch(
            model,
            graph.features,
            graph.adjacency,
            graph.labels,
            graph.train_mask,
            graph.val_mask,
            epochs=epochs,
            fanouts=FANOUTS,
            batch_size=BATCH_SIZE,
            patience=None,
            rng=0,
            cache_epochs=cache_epochs,
        )
        logits = predict_logits_batched(
            model, graph.features, graph.adjacency, batch_size=1024
        )
        acc = accuracy(
            (logits[graph.test_mask] > 0).astype(np.int64), test_labels
        )
        return sum(history.epoch_train_seconds), acc

    fresh_s, fresh_acc = train(1)
    (cached_s, cached_acc), total_s, peak = benchmark.pedantic(
        lambda: _traced(lambda: train(8)), rounds=1, iterations=1
    )
    speedup = fresh_s / max(cached_s, 1e-9)

    lines = [
        f"scale-free graph: {graph.summary()}",
        f"epochs={epochs} fanouts={FANOUTS} batch_size={BATCH_SIZE}",
        "",
        f"{'sampling':<16}{'epoch s':>10}{'test acc':>10}",
        f"{'fresh (R=1)':<16}{fresh_s:>10.2f}{fresh_acc:>10.3f}",
        f"{'cached (R=8)':<16}{cached_s:>10.2f}{cached_acc:>10.3f}",
        f"sampled-epoch speedup {speedup:.2f}x  peak {peak / 2**20:.1f} MiB",
    ]
    record_output("scale_sampler_cache", "\n".join(lines))
    record_json(
        "scale_sampler_cache",
        {
            "nodes": FAIRWOS_NODES,
            "epochs": epochs,
            "cache_epochs": 8,
            "fresh_epoch_seconds": fresh_s,
            "cached_epoch_seconds": cached_s,
            "speedup": speedup,
            "fresh_accuracy": fresh_acc,
            "cached_accuracy": cached_acc,
        },
    )

    # Cached sampling changes only how often structure is drawn, never the
    # exact evaluation — accuracy must stay competitive.
    assert cached_acc >= fresh_acc - 0.05
    # The headline contract: >= 1.5x sampled-epoch wall-time at real scale
    # (the counting-sort fresh path compressed the ratio from ~4.5x to ~2x
    # by speeding up the *uncached* denominator; absolute regressions in
    # either path are caught by the bench_baseline.json gate instead).
    # The smoke graph's epochs are a handful of near-instant batches where
    # fixed overheads dominate, so the ratio is only asserted from quick up.
    if FAIRWOS_NODES >= 20_000:
        assert speedup >= 1.5, f"sampler cache speedup {speedup:.2f}x < 1.5x"


def test_scale_fairwos_end_to_end(benchmark):
    """End-to-end Fairwos (all three phases sampled, ANN counterfactuals).

    This is the acceptance run for the large-graph fine-tune path:
    ``repro --method fairwos --dataset scalefree --nodes 50000 --minibatch
    --cf-backend ann`` with bench-sized epoch budgets.  The exact backend's
    O(N²) distance matrix alone would need ~20 GiB at 50k nodes; the ANN
    run must finish with peak traced memory bounded by the batch receptive
    field and the O(N·d) index, far below that.
    """
    graph = generate_scale_free_graph(
        FAIRWOS_NODES, num_features=12, average_degree=8, seed=0
    ).standardized()
    config = FairwosConfig(
        minibatch=True,
        cf_backend="ann",
        batch_size=1024,
        # Optimizer steps per epoch shrink with the graph (ceil(N / batch)),
        # so small smoke graphs need more epochs for a comparable budget.
        encoder_epochs=max(EPOCHS, 60_000 // FAIRWOS_NODES),
        classifier_epochs=max(EPOCHS, 60_000 // FAIRWOS_NODES),
        finetune_epochs=3,
        cf_refresh_epochs=3,
        cf_attrs_per_step=4,
        max_pseudo_attributes=8,
        patience=None,
    )

    def run():
        trainer = FairwosTrainer(config)
        return trainer.fit(graph, seed=0)

    result, seconds, peak = benchmark.pedantic(
        lambda: _traced(run), rounds=1, iterations=1
    )

    phases = "  ".join(
        f"{name}={sec:.1f}s" for name, sec in result.timings.items()
    )
    lines = [
        f"scale-free graph: {graph.summary()}",
        "fairwos minibatch+ann: batch=1024 fanout=10 cf_refresh=3 "
        "cf_attrs_per_step=4 I=8 K=5",
        "",
        f"phases: {phases}",
        f"total {seconds:.1f}s  peak {peak / 2**20:.1f} MiB",
        f"test: {result.test}",
        f"counterfactual coverage: {result.counterfactual_coverage:.3f}",
    ]
    record_output("scale_fairwos_end_to_end", "\n".join(lines))
    record_json(
        "scale_fairwos_end_to_end",
        {
            "nodes": FAIRWOS_NODES,
            "wall_seconds": seconds,
            "peak_mib": peak / 2**20,
            "phase_seconds": dict(result.timings),
            "test_accuracy": result.test.accuracy,
            "delta_sp": result.test.delta_sp,
            "counterfactual_coverage": result.counterfactual_coverage,
        },
    )

    # All three phases actually ran.
    assert set(result.timings) == {"encoder", "classifier_pretrain", "finetune"}
    assert all(sec > 0 for sec in result.timings.values())
    # The ANN search found counterfactuals for essentially every node.
    assert result.counterfactual_coverage > 0.9
    # The classifier learned something (scale-free labels are learnable well
    # above chance; vanilla lands ~0.65+ at these budgets).
    assert result.test.accuracy > 0.55
    # Peak memory must be nowhere near the exact backend's O(N²) distance
    # matrix (~8·N²/4 bytes for the largest label/side bucket).
    if FAIRWOS_NODES >= 50_000:
        exact_bucket_bytes = 8 * (FAIRWOS_NODES / 2) ** 2
        assert peak < exact_bucket_bytes / 10


# The whole Fairwos fit runs in a child process so the parent's graph
# generation (which materialises the full float64 dataset) cannot inflate
# the measured high-water mark: ru_maxrss is per-process and monotone.
_FULLSTACK_CHILD = """
import json, resource, sys, time

from repro.core import FairwosConfig, FairwosTrainer
from repro.io import load_graph

graph = load_graph(sys.argv[1], mmap=True)
config = FairwosConfig(
    minibatch=True,
    cf_backend="ann",
    cf_update="incremental",
    dtype="float32",
    batch_size=1024,
    encoder_epochs=int(sys.argv[2]),
    classifier_epochs=int(sys.argv[2]),
    finetune_epochs=3,
    cf_refresh_epochs=3,
    cf_attrs_per_step=4,
    max_pseudo_attributes=8,
    patience=None,
)
start = time.perf_counter()
result = FairwosTrainer(config).fit(graph, seed=0)
wall = time.perf_counter() - start
# Linux reports ru_maxrss in KiB; resident mmap pages are included, which
# is the point — tracemalloc never sees them.
peak_kib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
print(json.dumps({
    "wall_seconds": wall,
    "peak_rss_mib": peak_kib / 1024,
    "phase_seconds": dict(result.timings),
    "test_accuracy": result.test.accuracy,
    "delta_sp": result.test.delta_sp,
    "counterfactual_coverage": result.counterfactual_coverage,
    "pseudo_dtype": str(result.pseudo_attributes.dtype),
}))
"""


def test_scale_fairwos_fullstack(benchmark, tmp_path):
    """The 1M-node tier, end to end: float32 + mmap + ANN + incremental.

    The acceptance run this bench file exists for: a scale-free graph at
    FULLSTACK_NODES is standardised, downcast to float32, written with
    ``save_graph_mmap`` and trained *from the memory-mapped copy* in a
    fresh process — sampled minibatches everywhere, the ANN counterfactual
    backend, and incremental index maintenance across refreshes.  The
    child's peak RSS is the honest memory number for the run (mmap paging
    is invisible to tracemalloc) and is gated both structurally (far below
    the exact backend's O(N²) bucket) and linearly (a per-node budget that
    a revert to float64 or eager feature loading blows through).
    """
    nodes = FULLSTACK_NODES
    graph = generate_scale_free_graph(
        nodes, num_features=12, average_degree=8, seed=0
    ).standardized()
    graph = graph.with_features(
        graph.features.astype(np.float32),
        related=graph.related_feature_indices,
    )
    summary = graph.summary()
    graph_dir = save_graph_mmap(graph, tmp_path / "graph")
    del graph
    # Optimizer steps per epoch scale with ceil(N / batch); small smoke
    # graphs need more epochs for a comparable budget (same rule as above).
    epochs = max(EPOCHS, 60_000 // nodes)

    def run():
        proc = subprocess.run(
            [sys.executable, "-c", _FULLSTACK_CHILD, str(graph_dir), str(epochs)],
            capture_output=True,
            text=True,
            check=True,
        )
        return json.loads(proc.stdout.strip().splitlines()[-1])

    stats = benchmark.pedantic(run, rounds=1, iterations=1)

    phases = "  ".join(
        f"{name}={sec:.1f}s" for name, sec in stats["phase_seconds"].items()
    )
    lines = [
        f"scale-free graph: {summary}",
        "fairwos fullstack: float32 + mmap + ann + incremental "
        "batch=1024 cf_refresh=3 cf_attrs_per_step=4 I=8 K=5",
        "",
        f"phases: {phases}",
        f"total {stats['wall_seconds']:.1f}s  "
        f"peak RSS {stats['peak_rss_mib']:.0f} MiB",
        f"test acc {stats['test_accuracy']:.3f}  ΔSP {stats['delta_sp']:.3f}",
        f"counterfactual coverage: {stats['counterfactual_coverage']:.3f}",
    ]
    record_output("scale_fairwos_fullstack", "\n".join(lines))
    record_json(
        "scale_fairwos_fullstack",
        {
            "nodes": nodes,
            "dtype": "float32",
            "mmap": True,
            "cf_update": "incremental",
            "epochs": epochs,
            **stats,
        },
    )

    # All three phases ran, in float32, with near-total CF coverage.
    assert set(stats["phase_seconds"]) == {
        "encoder",
        "classifier_pretrain",
        "finetune",
    }
    assert stats["pseudo_dtype"] == "float32"
    assert stats["counterfactual_coverage"] > 0.9
    # The smoke graph's budget is too small to assert learning (matching
    # the other scale benches).
    if nodes >= 20_000:
        assert stats["test_accuracy"] > 0.55
    peak_rss_bytes = stats["peak_rss_mib"] * 2**20
    if nodes >= 50_000:
        # Structural: nowhere near the exact backend's O(N²) bucket.
        exact_bucket_bytes = 8 * (nodes / 2) ** 2
        assert peak_rss_bytes < exact_bucket_bytes / 10
        # Linear: RSS is O(N) state — the I·K CF pair index and its fused
        # loss CSR, the ANN forest, resident adjacency pages — measured
        # ~3.7 KB/node at 1M; budget 4.5 KB/node so a float64 revert or an
        # eagerly materialised feature matrix trips, runner variance not.
        assert peak_rss_bytes < 4_500 * nodes + 600 * 2**20
