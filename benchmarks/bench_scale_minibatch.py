"""Scale benchmark: full-batch vs minibatch training on a scale-free graph.

Trains the same SAGE backbone twice on a generated scale-free graph — once
full-batch (``fit_binary_classifier``) and once with neighbour-sampled
minibatches (``fit_minibatch``) — and reports wall-time, peak traced
allocation (tracemalloc, which numpy reports into), and test accuracy.

Graph size follows REPRO_BENCH_SCALE: smoke ≈ 2k nodes, quick ≈ 20k,
paper ≈ 200k.  The minibatch engine's peak memory is bounded by the batch
receptive field rather than N, so its advantage grows with scale; the
ordering is only asserted at paper scale where the gap is structural.
"""

from __future__ import annotations

import time
import tracemalloc

import numpy as np
from conftest import bench_scale, record_output

from repro.datasets import generate_scale_free_graph
from repro.fairness.metrics import accuracy
from repro.gnnzoo import make_backbone
from repro.tensor import Tensor
from repro.training import (
    fit_binary_classifier,
    fit_minibatch,
    predict_logits,
    predict_logits_batched,
)

SCALE = bench_scale()
NODES = {1: 2_000, 2: 20_000, 10: 200_000}.get(SCALE.seeds, 20_000)
EPOCHS = max(3, min(SCALE.epochs // 15, 10))
FANOUTS = (10, 5)
BATCH_SIZE = 512


def _traced(fn):
    """Run ``fn`` and return (result, seconds, peak_traced_bytes)."""
    tracemalloc.start()
    start = time.perf_counter()
    result = fn()
    seconds = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return result, seconds, peak


def test_scale_minibatch(benchmark):
    graph = generate_scale_free_graph(
        NODES, num_features=12, average_degree=8, seed=0
    ).standardized()
    test_labels = graph.labels[graph.test_mask]

    def train_full():
        model = make_backbone(
            "sage", graph.num_features, 16, np.random.default_rng(0), num_layers=2
        )
        fit_binary_classifier(
            model,
            Tensor(graph.features),
            graph.adjacency,
            graph.labels,
            graph.train_mask,
            graph.val_mask,
            epochs=EPOCHS,
        )
        logits = predict_logits(model, Tensor(graph.features), graph.adjacency)
        return accuracy((logits[graph.test_mask] > 0).astype(np.int64), test_labels)

    def train_minibatch():
        model = make_backbone(
            "sage", graph.num_features, 16, np.random.default_rng(0), num_layers=2
        )
        fit_minibatch(
            model,
            graph.features,
            graph.adjacency,
            graph.labels,
            graph.train_mask,
            graph.val_mask,
            epochs=EPOCHS,
            fanouts=FANOUTS,
            batch_size=BATCH_SIZE,
            rng=0,
        )
        logits = predict_logits_batched(
            model, graph.features, graph.adjacency, batch_size=1024
        )
        return accuracy((logits[graph.test_mask] > 0).astype(np.int64), test_labels)

    full_acc, full_s, full_peak = _traced(train_full)
    mini_acc, mini_s, mini_peak = benchmark.pedantic(
        lambda: _traced(train_minibatch), rounds=1, iterations=1
    )

    lines = [
        f"scale-free graph: {graph.summary()}",
        f"epochs={EPOCHS} fanouts={FANOUTS} batch_size={BATCH_SIZE}",
        "",
        f"{'mode':<12}{'seconds':>10}{'peak MiB':>12}{'test acc':>10}",
        f"{'full-batch':<12}{full_s:>10.2f}{full_peak / 2**20:>12.1f}{full_acc:>10.3f}",
        f"{'minibatch':<12}{mini_s:>10.2f}{mini_peak / 2**20:>12.1f}{mini_acc:>10.3f}",
    ]
    record_output("scale_minibatch", "\n".join(lines))

    # Utility parity: the sampled estimator must stay competitive.
    assert mini_acc >= full_acc - 0.05
    # The memory bound is structural (independent of N) only once the graph
    # dwarfs the batch receptive field; assert it at paper scale.
    if NODES >= 100_000:
        assert mini_peak < full_peak
