"""Extra ablation: the λ-update direction (DESIGN.md's documented paper
inconsistency).

Eq. (24)'s math puts *small* weight on high-disparity attributes; the
surrounding text argues for *large* weight.  This bench runs Fairwos both
ways on the two strong-bias datasets so the repository documents, with
numbers, which reading actually promotes fairness on this substrate.
"""

from __future__ import annotations

import numpy as np
from conftest import bench_scale, record_output

from repro.core import FairwosConfig, FairwosTrainer
from repro.datasets import load_dataset
from repro.experiments.methods import FAIRWOS_OVERRIDES

SCALE = bench_scale()


def _run(dataset: str, prefer_high: bool) -> tuple[float, float]:
    accs, dsps = [], []
    overrides = FAIRWOS_OVERRIDES.get(dataset, FAIRWOS_OVERRIDES["default"])
    for seed in range(SCALE.seeds):
        graph = load_dataset(dataset, seed=seed)
        config = FairwosConfig(
            encoder_epochs=SCALE.epochs,
            classifier_epochs=SCALE.epochs,
            finetune_epochs=SCALE.finetune_epochs,
            patience=SCALE.patience,
            prefer_high_disparity=prefer_high,
            **overrides,
        )
        result = FairwosTrainer(config).fit(graph, seed=seed)
        accs.append(100 * result.test.accuracy)
        dsps.append(100 * result.test.delta_sp)
    return float(np.mean(accs)), float(np.mean(dsps))


def test_lambda_direction_ablation(benchmark):
    datasets = ["nba", "occupation"] if SCALE.epochs >= 100 else ["nba"]

    def run_all():
        rows = {}
        for dataset in datasets:
            for prefer in (True, False):
                rows[(dataset, prefer)] = _run(dataset, prefer)
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    lines = [
        "λ-direction ablation (paper text vs Eq. 24 math) — ACC / ΔSP (%)",
        "  prefer_high_disparity=True  : text's intent (large D → large λ)",
        "  prefer_high_disparity=False : Eq. 24 as derived (large D → small λ)",
    ]
    for (dataset, prefer), (acc, dsp) in rows.items():
        label = "text (True) " if prefer else "math (False)"
        lines.append(f"  {dataset:12s} {label}: ACC {acc:5.1f}  ΔSP {dsp:5.1f}")
    record_output("ablation_lambda_direction", "\n".join(lines))
