"""Parallel sampler benchmark: epoch block production, serial vs pooled.

Measures the part the worker pool actually parallelises — assembling
neighbour-sampled blocks for every batch of an epoch — on a scale-free
graph.  The serial side calls ``NeighborSampler.sample_blocks``; the
parallel side replays the exact same generator through the draw/select
split (``draw_edge_keys`` on the trainer side, ``sample_blocks_with_keys``
in the workers), so both sides do identical sampling work and the blocks
are bit-identical.  What changes is only *where* the block assembly runs.

At quick scale (50k nodes, 4 workers) the pooled epoch is asserted to be
at least 1.5x faster than the serial one — but only when the machine
actually has ``NUM_WORKERS`` cores to run them on (``sched_getaffinity``);
on smaller runners the processes time-slice one another and the bench
records the numbers without asserting.  Smoke scale only checks structure
(tiny graphs are dominated by pool round-trips).  Wall-times go to
``BENCH_parallel_sampler.json`` for the CI regression gate.
"""

from __future__ import annotations

import os
import time

import numpy as np
from conftest import bench_scale_name, record_json, record_output

from repro.datasets import generate_scale_free_graph
from repro.graph.sampling import NeighborSampler
from repro.training import WorkerPool

SCALE_NAME = bench_scale_name()
NODES = {"smoke": 5_000, "quick": 50_000, "paper": 200_000, "full": 200_000}[
    SCALE_NAME
]
NUM_WORKERS = 4
# Degree >> fanout so the workers' share (per-row selection over all
# candidate edges, O(degree) per row) dominates the fixed cost of shipping
# the selected block (O(fanout) per row) back through the result queue.
AVERAGE_DEGREE = 30
FANOUTS = (10,)
BATCH_SIZE = 2048
EPOCHS = 3


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _epoch_batches(num_nodes: int, rng: np.random.Generator) -> list:
    order = rng.permutation(num_nodes)
    return [
        order[start : start + BATCH_SIZE]
        for start in range(0, num_nodes, BATCH_SIZE)
    ]


def _serial_epoch(sampler, batches, rng) -> list:
    return [sampler.sample_blocks(seeds, rng) for seeds in batches]


def _pooled_epoch(sampler, pool, batches, rng) -> list:
    # Trainer side: consume the generator exactly as sample_blocks would
    # (cheap — O(edges) random keys).  Pool side: the expensive block
    # assembly, fanned across workers in one load-balanced run_jobs call.
    tasks = []
    for seeds in batches:
        dst = np.asarray(seeds, dtype=np.int64)
        keys = sampler.draw_edge_keys(dst, sampler.fanouts[0], rng)
        tasks.append(
            ("blocks", dst, sampler.fanouts, sampler.replace, [keys])
        )
    return pool.run_jobs(tasks)


def test_parallel_sampler_speedup(benchmark):
    graph = generate_scale_free_graph(
        NODES, num_features=8, average_degree=AVERAGE_DEGREE, seed=0
    )
    sampler = NeighborSampler(graph.adjacency, FANOUTS)
    batches = _epoch_batches(graph.num_nodes, np.random.default_rng(7))

    def run_both():
        serial_rng = np.random.default_rng(3)
        start = time.perf_counter()
        for _ in range(EPOCHS):
            serial_blocks = _serial_epoch(sampler, batches, serial_rng)
        serial_seconds = (time.perf_counter() - start) / EPOCHS

        pooled_rng = np.random.default_rng(3)
        with WorkerPool(NUM_WORKERS, adjacency=graph.adjacency) as pool:
            # Warm the pool (fork + shared-memory attach) off the clock.
            _pooled_epoch(
                sampler, pool, batches[:2], np.random.default_rng(0)
            )
            start = time.perf_counter()
            for _ in range(EPOCHS):
                pooled_blocks = _pooled_epoch(
                    sampler, pool, batches, pooled_rng
                )
            pooled_seconds = (time.perf_counter() - start) / EPOCHS

        # Same generator, same draws: last epochs must agree bit-for-bit.
        assert (
            serial_rng.bit_generator.state == pooled_rng.bit_generator.state
        )
        for serial_chain, pooled_chain in zip(serial_blocks, pooled_blocks):
            for a, b in zip(serial_chain, pooled_chain):
                assert np.array_equal(a.src_nodes, b.src_nodes)
                assert np.array_equal(
                    a.adjacency.indices, b.adjacency.indices
                )
        return serial_seconds, pooled_seconds

    serial_seconds, pooled_seconds = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )

    speedup = serial_seconds / pooled_seconds
    cores = _available_cores()
    assert_speedup = SCALE_NAME != "smoke" and cores >= NUM_WORKERS
    record_output(
        "parallel_sampler",
        "\n".join(
            [
                f"parallel sampler ({NODES:,} nodes, fanout {FANOUTS[0]}, "
                f"{len(batches)} batches/epoch, {NUM_WORKERS} workers, "
                f"{cores} cores)",
                f"  serial epoch  {serial_seconds:8.3f} s",
                f"  pooled epoch  {pooled_seconds:8.3f} s",
                f"  speedup       {speedup:8.2f}x"
                + ("" if assert_speedup else "  (not asserted)"),
            ]
        ),
    )
    record_json(
        "parallel_sampler",
        {
            "nodes": NODES,
            "num_workers": NUM_WORKERS,
            "cores": cores,
            "serial_epoch_seconds": round(serial_seconds, 4),
            "pooled_epoch_seconds": round(pooled_seconds, 4),
            "speedup": round(speedup, 3),
        },
    )
    if assert_speedup:
        assert speedup >= 1.5, (
            f"pooled epoch only {speedup:.2f}x faster than serial "
            f"(serial {serial_seconds:.3f}s, pooled {pooled_seconds:.3f}s)"
        )
