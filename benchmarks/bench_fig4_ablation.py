"""Fig. 4 — ablation study (encoder / fairness / weight-update modules)."""

from __future__ import annotations

from conftest import bench_scale, record_output

from repro.experiments import format_fig4, run_fig4

SCALE = bench_scale()


def test_fig4_ablation(benchmark):
    result = benchmark.pedantic(
        run_fig4,
        kwargs={"datasets": ["nba", "bail"], "backbones": ["gcn", "gin"], "scale": SCALE},
        rounds=1,
        iterations=1,
    )
    record_output("fig4_ablation", format_fig4(result))

    if SCALE.epochs >= 100:
        # Expected shapes on NBA/GCN (the paper's clearest panel):
        full = result.cells[("nba", "gcn", "fairwos")]
        wo_f = result.cells[("nba", "gcn", "fwos_wo_f")]
        gnn = result.cells[("nba", "gcn", "gnn")]
        # Removing fairness promotion hurts ΔSP.
        assert full.dsp_mean < wo_f.dsp_mean
        # The encoder lifts utility above the plain backbone.
        assert wo_f.acc_mean > gnn.acc_mean - 1.0
