"""Fig. 5 — encoder-dimension sensitivity sweep {2, 8, 16, 32}."""

from __future__ import annotations

from conftest import bench_scale, record_output

from repro.experiments import format_fig5, run_fig5

SCALE = bench_scale()


def test_fig5_encoder_dimension(benchmark):
    dims = [2, 8, 16, 32] if SCALE.epochs >= 100 else [2, 8]
    result = benchmark.pedantic(
        run_fig5,
        kwargs={"dataset": "nba", "dims": dims, "backbones": ["gcn", "gin"], "scale": SCALE},
        rounds=1,
        iterations=1,
    )
    record_output("fig5_encoder_dim", format_fig5(result))

    if SCALE.epochs >= 100:
        # Shape: a too-small encoder (d=2) must not beat d=16 on accuracy —
        # "too much information is compressed".
        small = result.cells[("gcn", "fairwos", 2)]
        medium = result.cells[("gcn", "fairwos", 16)]
        assert small.acc_mean <= medium.acc_mean + 2.0
