"""Extension bench: Fairwos flexibility across GCN / GIN / GAT / GraphSAGE."""

from __future__ import annotations

from conftest import bench_scale, record_output

from repro.experiments import format_ext_backbones, run_ext_backbones

SCALE = bench_scale()


def test_ext_backbone_flexibility(benchmark):
    backbones = ["gcn", "gin", "gat", "sage"] if SCALE.epochs >= 100 else ["gcn", "sage"]
    result = benchmark.pedantic(
        run_ext_backbones,
        kwargs={"dataset": "nba", "backbones": backbones, "scale": SCALE},
        rounds=1,
        iterations=1,
    )
    record_output("ext_backbones", format_ext_backbones(result))

    if SCALE.epochs >= 100:
        # Assert the paper's claim on the paper's backbones (GCN, GIN): the
        # per-dataset α was selected there.  GAT/SAGE rows are exploratory —
        # on this substrate the untuned α does not transfer to them (their
        # attention/mean aggregation amplifies bias differently), which the
        # printed table documents.
        for backbone in set(backbones) & {"gcn", "gin"}:
            assert (
                result.cells[(backbone, "fairwos")].dsp_mean
                < result.cells[(backbone, "gnn")].dsp_mean
            ), backbone
        # Every backbone still trains and keeps competitive accuracy.
        for backbone in backbones:
            assert result.cells[(backbone, "fairwos")].acc_mean > 50.0
