"""Incremental vs full-rebuild ANN index refresh at fine-tune scale.

The Fairwos fine-tune refreshes its counterfactual index every
``cf_refresh_epochs``; with ``cf_update="rebuild"`` each refresh
reconstructs the whole random-projection forest even though the embeddings
drifted only slightly since the previous refresh.  This bench replays that
access pattern in isolation — repeated refreshes over a clustered point set
where a small fraction drifts per cycle (the regime
:meth:`~repro.core.ann.RPForestIndex.update` is built for) — and asserts
the acceptance contract:

* incremental maintenance is **>= 3x faster per refresh** than a full
  rebuild at the 50k-node quick scale;
* recall@K against the exact oracle stays **>= 0.9** after every update
  (the re-routed forest must not silently rot);
* exhaustive probing over the updated index stays **bit-identical** to the
  oracle over the drifted matrix.

Point count follows REPRO_BENCH_SCALE: smoke ≈ 2k, quick ≈ 50k,
paper ≈ 100k.  The speedup is only asserted from quick up — at smoke sizes
fixed per-call overheads dominate both paths.
"""

from __future__ import annotations

import time

import numpy as np
from conftest import bench_scale, record_json, record_output

from repro.core.ann import EXHAUSTIVE, RPForestIndex, exact_topk

SCALE = bench_scale()
NODES = {1: 2_000, 2: 50_000, 10: 100_000}.get(SCALE.seeds, 50_000)
DIM = 16
TOP_K = 5
REFRESHES = 5
DRIFT_FRACTION = 0.10  # points moving per refresh cycle
DRIFT_SCALE = 0.05  # per-coordinate drift step
NUM_QUERIES = 256
FOREST = dict(num_trees=8, leaf_size=32, probes=3)


def _clustered_points(rng: np.random.Generator) -> np.ndarray:
    """Mixture-of-gaussians point set (the shape trained embeddings take)."""
    centers = rng.normal(scale=6.0, size=(32, DIM))
    assignment = rng.integers(0, centers.shape[0], size=NODES)
    return centers[assignment] + rng.normal(size=(NODES, DIM))


def _recall(index: RPForestIndex, X: np.ndarray, query_ids: np.ndarray) -> float:
    approx = index.query(X[query_ids], TOP_K)
    exact = exact_topk(X, X[query_ids], np.arange(X.shape[0]), TOP_K)
    hits = sum(len(set(a[a >= 0]) & set(e)) for a, e in zip(approx, exact))
    return hits / (query_ids.size * exact.shape[1])


def test_scale_incremental_refresh(benchmark):
    rng = np.random.default_rng(0)
    X = _clustered_points(rng)
    query_ids = rng.choice(NODES, size=min(NUM_QUERIES, NODES), replace=False)

    rebuild_index = RPForestIndex(**FOREST, seed=0).build(X)
    incremental_index = RPForestIndex(
        **FOREST, seed=0, drift_threshold=0.0, rebuild_frac=0.9
    ).build(X)

    def run_refresh_cycles():
        nonlocal X
        rebuild_seconds = update_seconds = 0.0
        recalls = []
        for _ in range(REFRESHES):
            moved = rng.choice(
                NODES, size=int(DRIFT_FRACTION * NODES), replace=False
            )
            X = X.copy()
            X[moved] += DRIFT_SCALE * rng.normal(size=(moved.size, DIM))

            start = time.perf_counter()
            rebuild_index.build(X)
            rebuild_seconds += time.perf_counter() - start

            start = time.perf_counter()
            report = incremental_index.update(X)
            update_seconds += time.perf_counter() - start
            assert not report.rebuilt, (
                "the drift regime must exercise the incremental path, not "
                "the rebuild escape hatch"
            )
            recalls.append(_recall(incremental_index, X, query_ids))
        return rebuild_seconds, update_seconds, recalls

    (rebuild_s, update_s, recalls) = benchmark.pedantic(
        run_refresh_cycles, rounds=1, iterations=1
    )
    speedup = rebuild_s / max(update_s, 1e-9)

    # The maintained forest's exhaustive probes must still be the oracle —
    # updates refresh every coordinate, never just the drifted ones.
    probe_ids = query_ids[:64]
    exhaustive = incremental_index.query(
        X[probe_ids], TOP_K, probes=EXHAUSTIVE
    )
    oracle = exact_topk(X, X[probe_ids], np.arange(NODES), TOP_K)
    np.testing.assert_array_equal(exhaustive[:, : oracle.shape[1]], oracle)

    lines = [
        f"points={NODES} dim={DIM} refreshes={REFRESHES} "
        f"drift={DRIFT_FRACTION:.0%} of points x {DRIFT_SCALE}/coord",
        f"forest: {FOREST}",
        "",
        f"{'refresh policy':<16}{'total s':>10}{'per refresh':>14}",
        f"{'rebuild':<16}{rebuild_s:>10.2f}{rebuild_s / REFRESHES:>14.3f}",
        f"{'incremental':<16}{update_s:>10.2f}{update_s / REFRESHES:>14.3f}",
        f"speedup {speedup:.2f}x  recall@{TOP_K} min {min(recalls):.3f} "
        f"mean {np.mean(recalls):.3f}",
    ]
    record_output("incremental_refresh", "\n".join(lines))
    record_json(
        "incremental_refresh",
        {
            "nodes": NODES,
            "refreshes": REFRESHES,
            "drift_fraction": DRIFT_FRACTION,
            "rebuild_seconds": rebuild_s,
            "update_seconds": update_s,
            "speedup": speedup,
            "recall_min": min(recalls),
            "recall_mean": float(np.mean(recalls)),
        },
    )

    assert min(recalls) >= 0.9, f"recall@{TOP_K} fell to {min(recalls):.3f}"
    # The headline contract: >= 3x per-refresh amortisation at real scale.
    if NODES >= 20_000:
        assert speedup >= 3.0, f"incremental refresh {speedup:.2f}x < 3x"
