"""Artifact save / load / score timings and on-disk footprint.

The train-once / serve-millions pitch only holds if reloading an artifact
and scoring through it is cheap next to training.  This bench times the
full serving loop on a generated scale-free graph:

* ``save_artifact``  — training-time cost, paid once;
* ``load_artifact``  — serving-process start-up cost;
* ``score``          — batched inference over every node;
* ``counterfactuals`` — one retrieval pass from the persisted index.

It also records the byte size of every bundle member — the artifact-size
note for capacity planning (the index and the optional bundled graph
dominate; weights are tiny).  Scoring through the reloaded artifact must
stay bit-identical to the live trainer, and a load + full score must be
at least 5x faster than the training run it replaces.

Node count follows REPRO_BENCH_SCALE: smoke ≈ 1k, quick ≈ 20k,
paper ≈ 50k.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import numpy as np
from conftest import bench_scale, record_json, record_output

from repro.core import ExecutionConfig
from repro.datasets import generate_scale_free_graph
from repro.experiments.methods import run_method
from repro.io import load_artifact, save_artifact

SCALE = bench_scale()
NODES = {1: 1_000, 2: 20_000, 10: 50_000}.get(SCALE.seeds, 20_000)


def test_artifact_roundtrip(benchmark):
    graph = generate_scale_free_graph(num_nodes=NODES, seed=0).standardized()

    train_start = time.perf_counter()
    result = run_method(
        "fairwos",
        graph,
        epochs=SCALE.epochs,
        finetune_epochs=max(2, SCALE.epochs // 10),
        execution=ExecutionConfig(
            minibatch=True,
            fanouts=(10, 5),
            batch_size=1024,
            cf_backend="ann",
        ),
        keep_model=True,
    )
    train_seconds = time.perf_counter() - train_start
    trainer = result.extra["model"]
    live_logits = trainer.predict(graph)

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "artifact"

        save_start = time.perf_counter()
        save_artifact(trainer, graph, path)
        save_seconds = time.perf_counter() - save_start
        sizes = {
            member.name: member.stat().st_size for member in path.iterdir()
        }

        load_start = time.perf_counter()
        artifact = load_artifact(path)
        load_seconds = time.perf_counter() - load_start

        score_start = time.perf_counter()
        logits = artifact.score()
        score_seconds = time.perf_counter() - score_start
        benchmark.pedantic(artifact.score, rounds=1, iterations=1)

        cf_start = time.perf_counter()
        artifact.counterfactuals(nodes=np.arange(min(256, NODES)))
        cf_seconds = time.perf_counter() - cf_start

    np.testing.assert_array_equal(logits, live_logits)
    serve_seconds = load_seconds + score_seconds
    speedup = train_seconds / serve_seconds

    lines = [f"Artifact round-trip bench ({NODES:,} nodes)"]
    lines.append(f"  train                : {train_seconds:8.2f}s")
    lines.append(f"  save_artifact        : {save_seconds:8.2f}s")
    lines.append(f"  load_artifact        : {load_seconds:8.2f}s")
    lines.append(f"  score (all nodes)    : {score_seconds:8.2f}s")
    lines.append(f"  counterfactuals(256) : {cf_seconds:8.2f}s")
    lines.append(f"  load+score vs train  : {speedup:8.1f}x")
    lines.append("  artifact size:")
    for name in sorted(sizes):
        lines.append(f"    {name:<14} {sizes[name]:>12,} bytes")
    lines.append(f"    {'total':<14} {sum(sizes.values()):>12,} bytes")
    record_output("bench_artifact", "\n".join(lines))
    record_json(
        "artifact_score",
        {
            "nodes": NODES,
            "train_seconds": train_seconds,
            "save_seconds": save_seconds,
            "load_seconds": load_seconds,
            "score_seconds": score_seconds,
            "counterfactual_seconds": cf_seconds,
            "artifact_bytes": {k: int(v) for k, v in sizes.items()},
            "artifact_total_bytes": int(sum(sizes.values())),
            "serve_speedup_vs_train": speedup,
        },
    )

    if SCALE.seeds >= 2:  # fixed overheads dominate at smoke sizes
        assert speedup >= 5.0, (
            f"load+score took {serve_seconds:.2f}s vs {train_seconds:.2f}s "
            f"training — only {speedup:.1f}x"
        )
