"""Extension bench: Fairwos vs sensitive-attribute oracles (NIFTY, FairGNN)."""

from __future__ import annotations

from conftest import bench_scale, record_output

from repro.experiments import format_ext_oracle, run_ext_oracle

SCALE = bench_scale()


def test_ext_oracle_comparison(benchmark):
    result = benchmark.pedantic(
        run_ext_oracle,
        kwargs={"dataset": "nba", "scale": SCALE},
        rounds=1,
        iterations=1,
    )
    record_output("ext_oracle", format_ext_oracle(result))

    if SCALE.epochs >= 100:
        vanilla = result.cells["vanilla"]
        fairgnn = result.cells["fairgnn"]
        fairwos = result.cells["fairwos"]
        # The adversarial oracle reduces bias over vanilla...
        assert fairgnn.dsp_mean < vanilla.dsp_mean
        # ...and Fairwos stays competitive with it despite never seeing s.
        assert fairwos.dsp_mean < vanilla.dsp_mean
