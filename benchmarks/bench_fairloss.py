"""Fused fair loss vs the loop oracle — the Eq. 12 hot-path benchmark.

The sampled fine-tune's wall-time was dominated by the ``I × K`` python loop
of gather/sub/power chains in the fair loss.  The fused implementation
(one CSR gather-sum over all counterfactual pairs + the
``n_v + n_cf − 2 h_v·h_cf`` expansion) must be **at least 5x faster** at the
acceptance operating point I=8, K=10, N=5000 — forward *and* backward, since
both run every optimizer step.
"""

from __future__ import annotations

import time

import numpy as np
from conftest import record_output

from repro.core.counterfactual import CounterfactualIndex
from repro.core.fairloss import (
    fair_representation_loss,
    fair_representation_loss_reference,
)
from repro.tensor import Tensor

NUM_ATTRS, TOP_K, NUM_NODES, DIM = 8, 10, 5000, 16
ROUNDS = 5


def _problem():
    rng = np.random.default_rng(0)
    representations = rng.normal(size=(NUM_NODES, DIM))
    index = CounterfactualIndex(
        indices=rng.integers(0, NUM_NODES, size=(NUM_ATTRS, NUM_NODES, TOP_K)),
        valid=rng.random((NUM_ATTRS, NUM_NODES)) < 0.9,
    )
    weights = np.full(NUM_ATTRS, 1.0 / NUM_ATTRS)
    return representations, index, weights


def _run(fn, representations, index, weights):
    tensor = Tensor(representations, requires_grad=True)
    loss, disparities = fn(tensor, index, weights)
    loss.backward()
    return float(loss.data), disparities, tensor.grad


def _time(fn, *args) -> float:
    _run(fn, *args)  # warm-up
    start = time.perf_counter()
    for _ in range(ROUNDS):
        _run(fn, *args)
    return (time.perf_counter() - start) / ROUNDS


def test_fused_fairloss_speedup(benchmark):
    representations, index, weights = _problem()

    loop_seconds = _time(fair_representation_loss_reference, representations, index, weights)
    fused_seconds = _time(fair_representation_loss, representations, index, weights)
    benchmark.pedantic(
        lambda: _run(fair_representation_loss, representations, index, weights),
        rounds=ROUNDS,
        iterations=1,
    )
    speedup = loop_seconds / fused_seconds

    fused = _run(fair_representation_loss, representations, index, weights)
    loop = _run(fair_representation_loss_reference, representations, index, weights)

    lines = [
        f"fair loss forward+backward, I={NUM_ATTRS} K={TOP_K} N={NUM_NODES} d={DIM}",
        "",
        f"{'impl':<12}{'ms/step':>10}",
        f"{'loop':<12}{loop_seconds * 1e3:>10.1f}",
        f"{'fused':<12}{fused_seconds * 1e3:>10.1f}",
        f"speedup: {speedup:.1f}x",
    ]
    record_output("fairloss_fused", "\n".join(lines))

    # Parity first (a fast wrong answer is no optimisation) ...
    np.testing.assert_allclose(fused[0], loop[0], rtol=1e-9)
    np.testing.assert_allclose(fused[1], loop[1], rtol=1e-9, atol=1e-9)
    np.testing.assert_allclose(fused[2], loop[2], rtol=1e-9, atol=1e-9)
    # ... then the acceptance bar.
    assert speedup >= 5.0, f"fused fair loss only {speedup:.1f}x faster"
