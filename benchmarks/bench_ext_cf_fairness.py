"""Extension bench: counterfactual flip rate + individual consistency."""

from __future__ import annotations

from conftest import bench_scale, record_output

from repro.experiments import format_ext_cf_fairness, run_ext_cf_fairness

SCALE = bench_scale()


def test_ext_counterfactual_fairness(benchmark):
    result = benchmark.pedantic(
        run_ext_cf_fairness,
        kwargs={"dataset": "nba", "scale": SCALE},
        rounds=1,
        iterations=1,
    )
    record_output("ext_cf_fairness", format_ext_cf_fairness(result))

    if SCALE.epochs >= 100:
        # The fairness loss must reduce the counterfactual flip rate — it is
        # (a Monte-Carlo proxy of) the very quantity being minimised.
        assert result.flip_rate_fairwos <= result.flip_rate_no_fairness + 0.02
