"""Fig. 7 — t-SNE of pseudo-sensitive attributes on NBA and Occupation."""

from __future__ import annotations

from conftest import bench_scale, record_output

from repro.experiments import format_fig7, run_fig7

SCALE = bench_scale()


def test_fig7_tsne_visualisation(benchmark):
    iterations = 300 if SCALE.epochs >= 100 else 60

    def run_both():
        return [
            run_fig7(dataset=name, scale=SCALE, tsne_iterations=iterations)
            for name in ("nba", "occupation")
        ]

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    record_output(
        "fig7_tsne", "\n\n".join(format_fig7(result) for result in results)
    )

    if SCALE.epochs >= 100:
        # RQ5 shape: the embedding leaks group membership above base rate —
        # "the pseudo-sensitive attributes capture certain aspects of the
        # sensitive attributes".
        for result in results:
            assert result.leakage > result.base_rate - 0.05, result.dataset
