#!/usr/bin/env python
"""Gate the CI bench step on the checked-in wall-time baseline.

Reads every ``benchmarks/output/BENCH_<name>.json`` produced by the bench
run, looks each one up in ``benchmarks/bench_baseline.json``, and exits
non-zero when any gated wall-time exceeds its reference by more than the
baseline's ``max_regression`` factor (1.5x) — so the sampled-epoch wins the
benches assert relatively (8x fused fair loss, >=2x sampler cache) are also
guarded absolutely between runs.

Reference values are dotted paths into the bench payload
(``"minibatch.wall_seconds"``).  Benches that did not run, metrics missing
from the baseline, and runs at a different ``REPRO_BENCH_SCALE`` than the
baseline was recorded at are skipped with a note, never failed — the gate
must not turn a partial bench invocation into a false alarm.

Usage::

    python benchmarks/check_bench_regression.py \
        [--output-dir benchmarks/output] [--baseline benchmarks/bench_baseline.json]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _lookup(payload: dict, dotted: str):
    value = payload
    for part in dotted.split("."):
        if not isinstance(value, dict) or part not in value:
            return None
        value = value[part]
    return value


def check(output_dir: Path, baseline_path: Path) -> int:
    baseline = json.loads(baseline_path.read_text())
    max_regression = float(baseline["max_regression"])
    failures: list[str] = []
    compared = 0

    for name, reference in baseline["reference"].items():
        bench_path = output_dir / f"BENCH_{name}.json"
        if not bench_path.exists():
            print(f"skip {name}: {bench_path} not produced by this run")
            continue
        payload = json.loads(bench_path.read_text())
        if payload.get("scale") != baseline["scale"]:
            print(
                f"skip {name}: ran at scale {payload.get('scale')!r}, baseline "
                f"recorded at {baseline['scale']!r}"
            )
            continue
        for metric, allowed in reference.items():
            actual = _lookup(payload, metric)
            if actual is None:
                print(f"skip {name}.{metric}: not present in bench payload")
                continue
            compared += 1
            limit = allowed * max_regression
            verdict = "ok" if actual <= limit else "REGRESSION"
            print(
                f"{verdict:>10}  {name}.{metric}: {actual:.2f}s "
                f"(baseline {allowed:.2f}s, limit {limit:.2f}s)"
            )
            if actual > limit:
                failures.append(
                    f"{name}.{metric} regressed: {actual:.2f}s > "
                    f"{max_regression}x baseline {allowed:.2f}s"
                )

    if failures:
        print("\nbench regression gate FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    if compared == 0:
        # Every reference skipped (benches not run, scale mismatch, or a
        # rename desynchronising record_json names from the baseline) means
        # the gate guarded nothing — that must not read as a pass, or a
        # later refactor could silently disarm it while the step stays
        # green.
        print(
            "\nbench regression gate FAILED: zero metrics compared — "
            "benches missing, scale mismatch, or baseline out of sync"
        )
        return 1
    print(f"\nbench regression gate passed ({compared} metrics compared)")
    return 0


def main(argv: list[str] | None = None) -> int:
    here = Path(__file__).parent
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output-dir", type=Path, default=here / "output")
    parser.add_argument(
        "--baseline", type=Path, default=here / "bench_baseline.json"
    )
    args = parser.parse_args(argv)
    return check(args.output_dir, args.baseline)


if __name__ == "__main__":
    sys.exit(main())
