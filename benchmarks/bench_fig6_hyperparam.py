"""Fig. 6 — α × K hyper-parameter sensitivity on Bail."""

from __future__ import annotations

from conftest import bench_scale, record_output

from repro.experiments import format_fig6, run_fig6

SCALE = bench_scale()


def test_fig6_alpha_k_grid(benchmark):
    if SCALE.epochs >= 100:
        kwargs = {"dataset": "bail", "scale": SCALE}
    else:
        kwargs = {"dataset": "bail", "alphas": [0.0, 2.0], "ks": [1, 2], "scale": SCALE}
    result = benchmark.pedantic(run_fig6, kwargs=kwargs, rounds=1, iterations=1)
    record_output("fig6_hyperparam", format_fig6(result))

    # α = 0 disables the regulariser: every K column must agree there.
    zero_rows = [result.cells[(0.0, k)] for k in result.ks if (0.0, k) in result.cells]
    if len(zero_rows) > 1:
        assert max(r.acc_mean for r in zero_rows) - min(
            r.acc_mean for r in zero_rows
        ) < 1e-9
