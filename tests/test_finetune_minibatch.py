"""Tests for the neighbour-sampled fairness fine-tune phase.

Three layers of evidence that the sampled path computes the same thing as
the paper's full-batch Algorithm 1:

* loss level — :func:`fair_representation_loss_minibatch` over a covering
  batch equals :func:`fair_representation_loss` in value and gradient, and
  invalid (self-pointing) pairs contribute exactly zero to both;
* phase level — a covering batch with exhaustive fanout reproduces the
  full-batch fine-tune's metrics through the whole trainer;
* distribution level — genuinely sampled fine-tuning (fanout 10, batches of
  256) stays within 2 points of full-batch accuracy and ΔSP on a ~500-node
  biased causal graph (seed-averaged).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    CounterfactualIndex,
    CounterfactualSearch,
    FairwosConfig,
    FairwosTrainer,
    fair_representation_loss,
    fair_representation_loss_minibatch,
)
from repro.datasets import BiasSpec, generate_biased_graph
from repro.fairness import evaluate_predictions
from repro.tensor import Tensor


@pytest.fixture(scope="module")
def causal_graph():
    """A ~500-node generated causal graph with planted bias."""
    return generate_biased_graph(
        num_nodes=500,
        num_features=12,
        average_degree=10,
        spec=BiasSpec(
            label_bias=0.2,
            proxy_strength=1.0,
            group_homophily=2.0,
            label_signal_strength=0.5,
        ),
        seed=7,
        name="agreement",
    ).standardized()


def _base_config(**extra) -> FairwosConfig:
    params = dict(
        encoder_epochs=80,
        classifier_epochs=80,
        finetune_epochs=8,
        patience=20,
        alpha=1.0,
        finetune_learning_rate=0.005,
    )
    params.update(extra)
    return FairwosConfig(**params)


def _random_index(rng, num_attrs, n, k):
    reps = rng.normal(size=(n, 6))
    labels = rng.integers(0, 2, size=n)
    attrs = rng.integers(0, 2, size=(n, num_attrs))
    return reps, CounterfactualSearch(k).search(reps, labels, attrs)


class TestMinibatchFairLoss:
    def test_covering_batch_matches_fullbatch_value_and_gradient(self, rng):
        reps_np, index = _random_index(rng, num_attrs=3, n=40, k=2)
        weights = np.array([0.5, 0.3, 0.2])
        full_t = Tensor(reps_np, requires_grad=True)
        full_loss, full_disp = fair_representation_loss(full_t, index, weights)
        full_loss.backward()

        mini_t = Tensor(reps_np, requires_grad=True)
        all_nodes = np.arange(40)
        mini_loss, mini_disp, counts = fair_representation_loss_minibatch(
            mini_t, index, weights, all_nodes, all_nodes
        )
        mini_loss.backward()

        np.testing.assert_allclose(float(mini_loss.data), float(full_loss.data))
        np.testing.assert_allclose(mini_disp, full_disp)
        np.testing.assert_allclose(mini_t.grad, full_t.grad)
        np.testing.assert_array_equal(counts, index.valid.sum(axis=1))

    def test_batch_subset_only_touches_batch_pairs(self, rng):
        reps_np, index = _random_index(rng, num_attrs=2, n=30, k=2)
        weights = np.array([0.6, 0.4])
        batch = np.array([1, 4, 9, 16])
        targets = index.indices[:, batch, :][index.valid[:, batch]]
        seeds = np.unique(np.concatenate([batch, targets.reshape(-1)]))
        t = Tensor(reps_np[seeds], requires_grad=True)
        loss, disp, counts = fair_representation_loss_minibatch(
            t, index, weights, batch, seeds
        )
        assert float(loss.data) >= 0
        assert (counts <= batch.size).all()
        # a manual check of one attribute's disparity
        attr = 0
        valid = index.valid[attr, batch]
        if valid.any():
            local = np.searchsorted(seeds, batch)
            expected = 0.0
            for k in range(index.top_k):
                cf = np.searchsorted(seeds, index.indices[attr, batch, k])
                sq = ((reps_np[seeds][local] - reps_np[seeds][cf]) ** 2).sum(axis=1)
                expected += (sq * valid).sum() / valid.sum()
            np.testing.assert_allclose(disp[attr], expected)

    def test_attrs_subset_reports_zero_for_unevaluated(self, rng):
        reps_np, index = _random_index(rng, num_attrs=4, n=30, k=2)
        weights = np.full(4, 0.25)
        all_nodes = np.arange(30)
        t = Tensor(reps_np, requires_grad=True)
        loss, disp, counts = fair_representation_loss_minibatch(
            t, index, weights, all_nodes, all_nodes, attrs=np.array([1, 3])
        )
        assert disp[0] == 0 and disp[2] == 0
        assert counts[0] == 0 and counts[2] == 0
        assert counts[1] == index.valid[1].sum()

    def test_snapshot_disparities_match_autograd_loss(self, rng):
        """The λ-update baseline for subsampled epochs must equal the D_i
        the full fair loss reports."""
        from repro.core.trainer import _snapshot_disparities

        reps_np, index = _random_index(rng, num_attrs=4, n=35, k=3)
        _, disp = fair_representation_loss(
            Tensor(reps_np), index, np.ones(4) / 4.0
        )
        np.testing.assert_allclose(_snapshot_disparities(reps_np, index), disp)

    def test_missing_seed_raises(self, rng):
        reps_np, index = _random_index(rng, num_attrs=1, n=20, k=1)
        batch = np.arange(20)
        seeds = np.arange(10)  # deliberately too small
        with pytest.raises(ValueError, match="missing from seed_nodes"):
            fair_representation_loss_minibatch(
                Tensor(reps_np[seeds]), index, np.ones(1), batch, seeds
            )


class TestInvalidPairsContributeNothing:
    """Regression: self-pointing (invalid) entries must be inert.

    ``CounterfactualIndex.valid`` nodes without a real counterfactual point
    at themselves; the fair loss must neither count them in the disparity
    nor leak gradient through them.
    """

    def _index_with_invalid_node(self):
        # Nodes 0-2 form a valid bucket; node 3 has no counterfactual and
        # self-points (and is nobody else's counterfactual).
        indices = np.array([[[1], [0], [0], [3]]])  # (I=1, N=4, K=1)
        valid = np.array([[True, True, True, False]])
        return CounterfactualIndex(indices=indices, valid=valid)

    def test_fullbatch_value_excludes_invalid(self):
        index = self._index_with_invalid_node()
        reps = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 2.0], [100.0, 100.0]])
        loss, disp = fair_representation_loss(
            Tensor(reps, requires_grad=True), index, np.ones(1)
        )
        # mean over the 3 valid nodes only; the huge node-3 row is ignored.
        expected = (1.0 + 1.0 + 4.0) / 3.0
        np.testing.assert_allclose(float(loss.data), expected)
        np.testing.assert_allclose(disp, [expected])

    def test_fullbatch_invalid_pair_has_zero_gradient(self):
        index = self._index_with_invalid_node()
        rng = np.random.default_rng(0)
        reps = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        loss, _ = fair_representation_loss(reps, index, np.ones(1))
        loss.backward()
        np.testing.assert_array_equal(reps.grad[3], np.zeros(3))
        assert np.abs(reps.grad[:3]).sum() > 0

    def test_minibatch_invalid_pair_has_zero_gradient(self):
        index = self._index_with_invalid_node()
        rng = np.random.default_rng(1)
        all_nodes = np.arange(4)
        reps = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        loss, disp, counts = fair_representation_loss_minibatch(
            reps, index, np.ones(1), all_nodes, all_nodes
        )
        loss.backward()
        np.testing.assert_array_equal(reps.grad[3], np.zeros(3))
        assert counts[0] == 3

    def test_searched_index_invalid_node_inert(self):
        # A node whose label class has no opposite-attribute peer comes out
        # of the search invalid and must stay gradient-free.
        reps_np = np.array([[0.0], [1.0], [2.0], [50.0]])
        labels = np.array([0, 0, 0, 1])  # node 3 is alone in its class
        attrs = np.array([[0], [1], [1], [0]])
        index = CounterfactualSearch(top_k=2).search(reps_np, labels, attrs)
        assert not index.valid[0, 3]
        t = Tensor(reps_np, requires_grad=True)
        loss, _ = fair_representation_loss(t, index, np.ones(1))
        loss.backward()
        assert t.grad[3] == 0


class TestTrainerAgreement:
    def test_covering_batch_reproduces_fullbatch_finetune(self, causal_graph):
        """batch ≥ N + exhaustive fanout: the sampled machinery must equal
        the full-batch phase to float precision."""
        full = FairwosTrainer(_base_config())
        rf = full.fit(causal_graph, seed=0)
        mini = FairwosTrainer(
            _base_config(
                finetune_minibatch=True, batch_size=512, fanouts=(None,)
            )
        )
        rm = mini.fit(causal_graph, seed=0)
        assert abs(rf.test.accuracy - rm.test.accuracy) < 1e-9
        assert abs(rf.test.delta_sp - rm.test.delta_sp) < 1e-9
        np.testing.assert_allclose(rf.lambda_weights, rm.lambda_weights, atol=1e-8)
        assert rf.counterfactual_coverage == rm.counterfactual_coverage

    def test_sampled_finetune_within_two_points(self, causal_graph):
        """True neighbour sampling (fanout 10, batches of 256): seed-averaged
        accuracy and ΔSP stay within 2 points of full-batch."""
        all_nodes = np.ones(causal_graph.num_nodes, dtype=bool)

        def run(config, seed):
            trainer = FairwosTrainer(config)
            trainer.fit(causal_graph, seed=seed)
            return evaluate_predictions(
                trainer.predict(causal_graph),
                causal_graph.labels,
                causal_graph.sensitive,
                all_nodes,
            )

        seeds = (0, 1, 2)
        full = [run(_base_config(), s) for s in seeds]
        mini = [
            run(
                _base_config(
                    finetune_minibatch=True, batch_size=256, fanouts=(10,)
                ),
                s,
            )
            for s in seeds
        ]
        acc_gap = abs(
            np.mean([e.accuracy for e in full]) - np.mean([e.accuracy for e in mini])
        )
        sp_gap = abs(
            np.mean([e.delta_sp for e in full]) - np.mean([e.delta_sp for e in mini])
        )
        assert acc_gap <= 0.02, f"accuracy gap {acc_gap:.4f} > 2 points"
        assert sp_gap <= 0.02, f"ΔSP gap {sp_gap:.4f} > 2 points"

    def test_ann_backend_through_trainer(self, causal_graph):
        """The whole pipeline runs with cf_backend='ann' and finds
        counterfactuals for essentially all nodes."""
        config = _base_config(
            finetune_minibatch=True,
            batch_size=256,
            fanouts=(10,),
            cf_backend="ann",
            cf_refresh_epochs=2,
            cf_attrs_per_step=4,
        )
        result = FairwosTrainer(config).fit(causal_graph, seed=0)
        assert result.counterfactual_coverage > 0.9
        assert result.test.accuracy > 0.5
        assert len(result.history["finetune_loss"]) >= 1

    def test_incremental_update_covering_matches_rebuild(self, causal_graph):
        """cf_update='incremental' vs 'rebuild' through the whole trainer.

        With exhaustive probing the index's *answers* depend only on the
        point matrix — which incremental maintenance refreshes in full —
        so the two policies must produce identical runs to float precision
        (the covering batch removes sampling noise).  This pins the
        in-place update path as a pure amortisation, never a semantic
        change."""

        def run(cf_update):
            config = _base_config(
                finetune_minibatch=True,
                batch_size=512,
                fanouts=(None,),
                cf_backend="ann",
                cf_backend_options={"exhaustive": True},
                cf_refresh_epochs=2,  # several refreshes → update() exercised
                cf_update=cf_update,
                cf_drift_threshold=0.0,
                cf_rebuild_frac=1.0,  # never escape: pure incremental path
            )
            return FairwosTrainer(config).fit(causal_graph, seed=0)

        rebuild = run("rebuild")
        incremental = run("incremental")
        assert abs(rebuild.test.accuracy - incremental.test.accuracy) < 1e-9
        assert abs(rebuild.test.delta_sp - incremental.test.delta_sp) < 1e-9
        np.testing.assert_allclose(
            rebuild.lambda_weights, incremental.lambda_weights, atol=1e-9
        )
        assert (
            rebuild.counterfactual_coverage
            == incremental.counterfactual_coverage
        )
        np.testing.assert_allclose(
            rebuild.history["finetune_loss"],
            incremental.history["finetune_loss"],
            atol=1e-9,
        )

    def test_incremental_update_through_trainer_sampled(self, causal_graph):
        """The genuinely approximate incremental path (real trees, real
        sampling) still trains and keeps counterfactual coverage high."""
        config = _base_config(
            finetune_minibatch=True,
            batch_size=256,
            fanouts=(10,),
            cf_backend="ann",
            cf_refresh_epochs=2,
            cf_update="incremental",
            cf_drift_threshold=1e-3,
            cf_rebuild_frac=0.9,
        )
        result = FairwosTrainer(config).fit(causal_graph, seed=0)
        assert result.counterfactual_coverage > 0.9
        assert result.test.accuracy > 0.5

    def test_finetune_minibatch_follows_minibatch_default(self):
        assert FairwosConfig(minibatch=True).resolved_finetune_minibatch()
        assert not FairwosConfig(minibatch=False).resolved_finetune_minibatch()
        assert FairwosConfig(
            minibatch=True, finetune_minibatch=False
        ).resolved_finetune_minibatch() is False
        assert FairwosConfig(
            minibatch=False, finetune_minibatch=True
        ).resolved_finetune_minibatch() is True

    @pytest.mark.parametrize(
        "extra", [{}, {"finetune_minibatch": True, "batch_size": 256}],
        ids=["fullbatch", "minibatch"],
    )
    def test_zero_val_tolerance_enforces_floor(self, causal_graph, extra):
        """finetune_val_tolerance=0.0 means 'no accuracy drop allowed' —
        it must not be collapsed into 'no floor at all' by falsy-zero
        handling (regression).  A deliberately destructive fine-tune
        (huge α) must abort early under the zero floor but run every epoch
        when the tolerance is None (floor disabled)."""
        destructive = dict(alpha=1e6, finetune_learning_rate=0.05, **extra)
        unfloored = FairwosTrainer(
            _base_config(finetune_val_tolerance=None, **destructive)
        ).fit(causal_graph, seed=0)
        floored = FairwosTrainer(
            _base_config(finetune_val_tolerance=0.0, **destructive)
        ).fit(causal_graph, seed=0)
        epochs = _base_config().finetune_epochs
        assert len(unfloored.history["finetune_val_accuracy"]) == epochs
        assert len(floored.history["finetune_val_accuracy"]) < epochs

    def test_cf_config_validation(self):
        with pytest.raises(ValueError):
            FairwosConfig(cf_backend="bogus").validate()
        with pytest.raises(ValueError):
            FairwosConfig(cf_refresh_epochs=0).validate()
        with pytest.raises(ValueError):
            FairwosConfig(cf_attrs_per_step=0).validate()
        assert FairwosConfig(cf_refresh_epochs=3).resolved_cf_refresh() == 3
        assert (
            FairwosConfig(refresh_counterfactuals_every=2).resolved_cf_refresh() == 2
        )
        with pytest.raises(ValueError, match="cf_update"):
            FairwosConfig(cf_update="sometimes").validate()
        with pytest.raises(ValueError, match="cf_drift_threshold"):
            FairwosConfig(
                cf_backend="ann", cf_update="incremental",
                cf_drift_threshold=-1.0,
            ).validate()
        with pytest.raises(ValueError, match="cf_rebuild_frac"):
            FairwosConfig(
                cf_backend="ann", cf_update="incremental", cf_rebuild_frac=0.0
            ).validate()
        # Incremental maintenance needs an index to maintain — and a custom
        # backend instance must carry its own update policy, so pairing one
        # with cf_update='incremental' is rejected rather than silently
        # rebuilding every refresh.
        with pytest.raises(ValueError, match="requires cf_backend='ann'"):
            FairwosConfig(cf_update="incremental").validate()
        from repro.core.ann import AnnBackend

        with pytest.raises(ValueError, match="update policy"):
            FairwosConfig(
                cf_backend=AnnBackend(), cf_update="incremental"
            ).validate()
        FairwosConfig(cf_backend="ann", cf_update="incremental").validate()

    def test_finetune_lr_zero_rejected_not_collapsed(self):
        """finetune_learning_rate=0.0 must be rejected, not silently fall
        back to learning_rate (the `or`-fallback falsy-zero bug class)."""
        with pytest.raises(ValueError, match="finetune_learning_rate"):
            FairwosConfig(finetune_learning_rate=0.0).validate()
        with pytest.raises(ValueError, match="learning_rate"):
            FairwosConfig(finetune_learning_rate=None, learning_rate=0.0).validate()
        assert FairwosConfig(
            finetune_learning_rate=None, learning_rate=0.002
        ).resolved_finetune_lr() == 0.002
        assert FairwosConfig(
            finetune_learning_rate=0.05, learning_rate=0.002
        ).resolved_finetune_lr() == 0.05
