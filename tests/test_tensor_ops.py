"""Gradient checks and behaviour tests for every op in repro.tensor.ops."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.tensor import Tensor, gradcheck
from repro.tensor import ops


def _t(rng, *shape, shift=0.0):
    """Random tensor bounded away from kinks (|x| in ~[0.3, 2.3])."""
    data = rng.uniform(0.3, 2.3, size=shape) * rng.choice([-1.0, 1.0], size=shape)
    return Tensor(data + shift, requires_grad=True)


@pytest.fixture
def rng():
    return np.random.default_rng(42)


# --------------------------------------------------------------------- #
# arithmetic gradchecks
# --------------------------------------------------------------------- #
class TestArithmeticGradients:
    def test_add(self, rng):
        a, b = _t(rng, 3, 4), _t(rng, 3, 4)
        assert gradcheck(lambda a, b: ops.sum(ops.add(a, b)), [a, b])

    def test_add_broadcast_row(self, rng):
        a, b = _t(rng, 3, 4), _t(rng, 4)
        assert gradcheck(lambda a, b: ops.sum(ops.mul(ops.add(a, b), a)), [a, b])

    def test_add_broadcast_scalar(self, rng):
        a, b = _t(rng, 3, 4), _t(rng)
        assert gradcheck(lambda a, b: ops.sum(ops.mul(ops.add(a, b), a)), [a, b])

    def test_sub(self, rng):
        a, b = _t(rng, 2, 5), _t(rng, 2, 5)
        assert gradcheck(lambda a, b: ops.sum(ops.mul(ops.sub(a, b), b)), [a, b])

    def test_neg(self, rng):
        a = _t(rng, 4)
        assert gradcheck(lambda a: ops.sum(ops.mul(ops.neg(a), a)), [a])

    def test_mul(self, rng):
        a, b = _t(rng, 3, 3), _t(rng, 3, 3)
        assert gradcheck(lambda a, b: ops.sum(ops.mul(a, b)), [a, b])

    def test_mul_broadcast_column(self, rng):
        a, b = _t(rng, 3, 4), _t(rng, 3, 1)
        assert gradcheck(lambda a, b: ops.sum(ops.mul(a, b)), [a, b])

    def test_div(self, rng):
        a = _t(rng, 3, 2)
        b = Tensor(rng.uniform(0.5, 2.0, size=(3, 2)), requires_grad=True)
        assert gradcheck(lambda a, b: ops.sum(ops.div(a, b)), [a, b])

    def test_power(self, rng):
        a = Tensor(rng.uniform(0.5, 2.0, size=(4,)), requires_grad=True)
        assert gradcheck(lambda a: ops.sum(ops.power(a, 3.0)), [a])

    def test_power_fractional(self, rng):
        a = Tensor(rng.uniform(0.5, 2.0, size=(4,)), requires_grad=True)
        assert gradcheck(lambda a: ops.sum(ops.power(a, 0.5)), [a])

    def test_matmul(self, rng):
        a, b = _t(rng, 3, 4), _t(rng, 4, 2)
        assert gradcheck(lambda a, b: ops.sum(ops.matmul(a, b)), [a, b])

    def test_matmul_vector(self, rng):
        a, b = _t(rng, 3, 4), _t(rng, 4)
        assert gradcheck(lambda a, b: ops.sum(ops.matmul(a, b)), [a, b])

    def test_spmm(self, rng):
        matrix = sp.random(5, 5, density=0.5, random_state=1, format="csr")
        h = _t(rng, 5, 3)
        assert gradcheck(lambda h: ops.sum(ops.spmm(matrix, h)), [h])

    def test_spmm_asymmetric_adjoint(self, rng):
        # Non-symmetric matrix: adjoint must be A.T @ grad, not A @ grad.
        matrix = sp.csr_matrix(np.array([[0.0, 2.0], [0.0, 0.0]]))
        h = Tensor(np.ones((2, 1)), requires_grad=True)
        out = ops.sum(ops.spmm(matrix, h))
        out.backward()
        np.testing.assert_allclose(h.grad, np.array([[0.0], [2.0]]))


# --------------------------------------------------------------------- #
# nonlinearity gradchecks
# --------------------------------------------------------------------- #
class TestNonlinearityGradients:
    @pytest.mark.parametrize(
        "op",
        [ops.relu, ops.sigmoid, ops.tanh, ops.exp, ops.absolute],
        ids=["relu", "sigmoid", "tanh", "exp", "abs"],
    )
    def test_unary(self, rng, op):
        a = _t(rng, 3, 4)
        assert gradcheck(lambda a: ops.sum(op(a)), [a])

    def test_leaky_relu(self, rng):
        a = _t(rng, 3, 4)
        assert gradcheck(lambda a: ops.sum(ops.leaky_relu(a, 0.1)), [a])

    def test_log(self, rng):
        a = Tensor(rng.uniform(0.5, 3.0, size=(4,)), requires_grad=True)
        assert gradcheck(lambda a: ops.sum(ops.log(a)), [a])

    def test_sqrt(self, rng):
        a = Tensor(rng.uniform(0.5, 3.0, size=(4,)), requires_grad=True)
        assert gradcheck(lambda a: ops.sum(ops.sqrt(a)), [a])

    def test_maximum(self, rng):
        a = Tensor(rng.uniform(1.0, 2.0, size=(5,)), requires_grad=True)
        b = Tensor(rng.uniform(2.5, 3.5, size=(5,)), requires_grad=True)
        assert gradcheck(lambda a, b: ops.sum(ops.maximum(a, b)), [a, b])

    def test_where(self, rng):
        condition = np.array([True, False, True, False])
        a, b = _t(rng, 4), _t(rng, 4)
        assert gradcheck(lambda a, b: ops.sum(ops.where(condition, a, b)), [a, b])

    def test_sigmoid_extreme_values_stable(self):
        out = ops.sigmoid(Tensor(np.array([-1000.0, 0.0, 1000.0])))
        np.testing.assert_allclose(out.data, [0.0, 0.5, 1.0], atol=1e-12)
        assert np.isfinite(out.data).all()


# --------------------------------------------------------------------- #
# reductions / shape ops
# --------------------------------------------------------------------- #
class TestReductionsAndShapes:
    def test_sum_all(self, rng):
        a = _t(rng, 3, 4)
        assert gradcheck(lambda a: ops.sum(a), [a])

    def test_sum_axis(self, rng):
        a = _t(rng, 3, 4)
        assert gradcheck(lambda a: ops.sum(ops.mul(ops.sum(a, axis=0), ops.sum(a, axis=0))), [a])

    def test_sum_keepdims(self, rng):
        a = _t(rng, 3, 4)
        out = ops.sum(a, axis=1, keepdims=True)
        assert out.shape == (3, 1)

    def test_mean_all(self, rng):
        a = _t(rng, 6)
        assert gradcheck(lambda a: ops.mean(a), [a])

    def test_mean_axis_value(self, rng):
        a = _t(rng, 3, 4)
        np.testing.assert_allclose(ops.mean(a, axis=1).data, a.data.mean(axis=1))

    def test_mean_axis_gradient(self, rng):
        a = _t(rng, 3, 4)
        assert gradcheck(
            lambda a: ops.sum(ops.power(ops.mean(a, axis=0), 2.0)), [a]
        )

    def test_reshape(self, rng):
        a = _t(rng, 3, 4)
        assert gradcheck(lambda a: ops.sum(ops.mul(ops.reshape(a, (12,)), ops.reshape(a, (12,)))), [a])

    def test_transpose(self, rng):
        a = _t(rng, 3, 4)
        out = ops.transpose(a)
        assert out.shape == (4, 3)
        assert gradcheck(lambda a: ops.sum(ops.matmul(a, ops.transpose(a))), [a])

    def test_transpose_axes(self, rng):
        a = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        out = ops.transpose(a, (2, 0, 1))
        assert out.shape == (4, 2, 3)

    def test_concat(self, rng):
        a, b = _t(rng, 2, 3), _t(rng, 4, 3)
        out = ops.concat([a, b], axis=0)
        assert out.shape == (6, 3)
        assert gradcheck(lambda a, b: ops.sum(ops.power(ops.concat([a, b], axis=0), 2.0)), [a, b])

    def test_index_rows(self, rng):
        a = _t(rng, 5, 3)
        idx = np.array([0, 2, 2, 4])
        assert gradcheck(lambda a: ops.sum(ops.power(ops.index(a, idx), 2.0)), [a])

    def test_gather_duplicates_accumulate(self, rng):
        a = Tensor(np.ones((3, 2)), requires_grad=True)
        out = ops.sum(ops.gather(a, np.array([1, 1, 1])))
        out.backward()
        np.testing.assert_allclose(a.grad, [[0, 0], [3, 3], [0, 0]])

    def test_gather_gradcheck(self, rng):
        a = _t(rng, 5, 2)
        idx = np.array([4, 0, 0, 3, 1])
        assert gradcheck(lambda a: ops.sum(ops.power(ops.gather(a, idx), 2.0)), [a])

    def test_scatter_add_forward(self):
        a = Tensor(np.array([[1.0], [2.0], [3.0]]))
        out = ops.scatter_add(a, np.array([0, 0, 1]), 2)
        np.testing.assert_allclose(out.data, [[3.0], [3.0]])

    def test_scatter_add_gradcheck(self, rng):
        a = _t(rng, 4, 2)
        idx = np.array([0, 1, 1, 2])
        assert gradcheck(
            lambda a: ops.sum(ops.power(ops.scatter_add(a, idx, 3), 2.0)), [a]
        )

    def test_scatter_gather_adjoint_pair(self, rng):
        # <gather(a, idx), b> == <a, scatter_add(b, idx, n)>
        a = Tensor(rng.normal(size=(5, 3)))
        b = Tensor(rng.normal(size=(7, 3)))
        idx = rng.integers(0, 5, size=7)
        lhs = float(np.sum(ops.gather(a, idx).data * b.data))
        rhs = float(np.sum(a.data * ops.scatter_add(b, idx, 5).data))
        assert lhs == pytest.approx(rhs)

    def test_gather_multidim_indices(self, rng):
        # A batched (I, N, K) index pulls (I, N, K, d) rows.
        a = _t(rng, 6, 3)
        idx = rng.integers(0, 6, size=(2, 4, 5))
        out = ops.gather(a, idx)
        assert out.shape == (2, 4, 5, 3)
        np.testing.assert_allclose(out.data, a.data[idx])
        assert gradcheck(
            lambda a: ops.sum(ops.power(ops.gather(a, idx), 2.0)), [a]
        )

    def test_gather_large_scatter_path_matches_add_at(self, rng):
        # Above the threshold the adjoint routes through a sparse matmul;
        # it must equal the np.add.at scatter exactly.
        from repro.tensor.ops import _SCATTER_SPMM_THRESHOLD, _scatter_rows

        rows = _SCATTER_SPMM_THRESHOLD + 17
        idx = rng.integers(0, 50, size=rows)
        grad = rng.normal(size=(rows, 4))
        expected = np.zeros((50, 4))
        np.add.at(expected, idx, grad)
        np.testing.assert_allclose(_scatter_rows(idx, grad, (50, 4)), expected)

    def test_gather_large_scatter_path_1d(self, rng):
        from repro.tensor.ops import _SCATTER_SPMM_THRESHOLD, _scatter_rows

        rows = _SCATTER_SPMM_THRESHOLD + 5
        idx = rng.integers(0, 30, size=(rows // 5, 5))
        grad = rng.normal(size=idx.shape)
        expected = np.zeros(30)
        np.add.at(expected, idx, grad)
        np.testing.assert_allclose(_scatter_rows(idx, grad, (30,)), expected)

    def test_expand_dims(self, rng):
        a = _t(rng, 3, 4)
        out = ops.expand_dims(a, (0, 2))
        assert out.shape == (1, 3, 1, 4)
        assert gradcheck(
            lambda a: ops.sum(ops.power(ops.expand_dims(a, 1), 2.0)), [a]
        )

    def test_squared_distance_value(self, rng):
        a, b = _t(rng, 4, 3), _t(rng, 4, 3)
        np.testing.assert_allclose(
            ops.squared_distance(a, b).data, ((a.data - b.data) ** 2).sum(axis=-1)
        )

    def test_squared_distance_gradcheck(self, rng):
        a, b = _t(rng, 4, 3), _t(rng, 4, 3)
        assert gradcheck(lambda a, b: ops.sum(ops.squared_distance(a, b)), [a, b])

    def test_squared_distance_broadcast_gradcheck(self, rng):
        # The fair-loss shape: (1, N, 1, d) anchors vs (I, N, K, d) targets.
        a = Tensor(rng.normal(size=(1, 3, 1, 2)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 3, 4, 2)), requires_grad=True)
        out = ops.squared_distance(a, b)
        assert out.shape == (2, 3, 4)
        assert gradcheck(lambda a, b: ops.sum(ops.squared_distance(a, b)), [a, b])


# --------------------------------------------------------------------- #
# softmax family
# --------------------------------------------------------------------- #
class TestSoftmaxFamily:
    def test_softmax_rows_sum_to_one(self, rng):
        a = _t(rng, 4, 6)
        np.testing.assert_allclose(ops.softmax(a, axis=1).data.sum(axis=1), 1.0)

    def test_softmax_gradcheck(self, rng):
        a = _t(rng, 3, 4)
        w = Tensor(rng.normal(size=(3, 4)))
        assert gradcheck(lambda a: ops.sum(ops.mul(ops.softmax(a, axis=1), w)), [a])

    def test_log_softmax_matches_log_of_softmax(self, rng):
        a = _t(rng, 3, 5)
        np.testing.assert_allclose(
            ops.log_softmax(a, axis=1).data,
            np.log(ops.softmax(a, axis=1).data),
            atol=1e-12,
        )

    def test_log_softmax_gradcheck(self, rng):
        a = _t(rng, 3, 4)
        w = Tensor(rng.normal(size=(3, 4)))
        assert gradcheck(lambda a: ops.sum(ops.mul(ops.log_softmax(a, axis=1), w)), [a])

    def test_log_softmax_large_logits_stable(self):
        out = ops.log_softmax(Tensor(np.array([[1000.0, 0.0]])), axis=1)
        assert np.isfinite(out.data).all()

    def test_logsumexp_value(self, rng):
        a = _t(rng, 3, 4)
        expected = np.log(np.exp(a.data).sum(axis=1))
        np.testing.assert_allclose(ops.logsumexp(a, axis=1).data, expected)

    def test_logsumexp_gradcheck(self, rng):
        a = _t(rng, 2, 5)
        assert gradcheck(lambda a: ops.sum(ops.logsumexp(a, axis=1)), [a])

    def test_logsumexp_keepdims(self, rng):
        a = _t(rng, 3, 4)
        assert ops.logsumexp(a, axis=1, keepdims=True).shape == (3, 1)


# --------------------------------------------------------------------- #
# dropout mask
# --------------------------------------------------------------------- #
class TestDropoutMask:
    def test_mask_scaling(self):
        rng = np.random.default_rng(0)
        mask = ops.dropout_mask((10_000,), 0.4, rng)
        kept = mask > 0
        assert kept.mean() == pytest.approx(0.6, abs=0.03)
        np.testing.assert_allclose(mask[kept], 1.0 / 0.6)

    def test_rate_zero_keeps_everything(self):
        mask = ops.dropout_mask((100,), 0.0, np.random.default_rng(0))
        np.testing.assert_allclose(mask, 1.0)

    def test_invalid_rate_raises(self):
        with pytest.raises(ValueError):
            ops.dropout_mask((3,), 1.0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            ops.dropout_mask((3,), -0.1, np.random.default_rng(0))
