"""Property tests for the ANN subsystem (repro.core.ann).

The contract under test: "approximate" must never silently mean "wrong".

* recall@K of the random-projection forest stays ≥ 0.9 against the exact
  oracle on both clustered and uniform point sets;
* masked queries never return a candidate the mask forbids (this is the
  invariant the counterfactual search's label/attribute constraints ride
  on);
* building twice with the same seed gives identical indexes (determinism);
* exhaustive probing reproduces the exact oracle bit-for-bit;
* incremental maintenance (``update``) preserves all of the above: updates
  are deterministic, exhaustive probing stays bit-identical to the oracle
  over the *new* matrix, recall survives repeated small drifts, and the
  rebuild escape hatch produces exactly a fresh build.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ann import (
    EXHAUSTIVE,
    AnnBackend,
    ExactBackend,
    RPForestIndex,
    exact_topk,
    make_backend,
)

# Forest sized for high recall on the small point sets hypothesis explores;
# the recall property is asserted against these settings.
FOREST = dict(num_trees=10, leaf_size=24, probes=3)


def _recall(index: RPForestIndex, X: np.ndarray, queries: np.ndarray, k: int) -> float:
    approx = index.query(queries, k)
    exact = exact_topk(X, queries, np.arange(X.shape[0]), k)
    hits = sum(
        len(set(a[a >= 0]) & set(e)) for a, e in zip(approx, exact)
    )
    return hits / (queries.shape[0] * exact.shape[1])


class TestRecall:
    @settings(deadline=None)
    @given(seed=st.integers(0, 10_000), dim=st.integers(2, 8), k=st.integers(1, 10))
    def test_recall_uniform(self, seed, dim, k):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(40, 400))
        X = rng.normal(size=(n, dim))
        index = RPForestIndex(**FOREST, seed=seed).build(X)
        assert _recall(index, X, X[: min(n, 64)], k) >= 0.9

    @settings(deadline=None)
    @given(seed=st.integers(0, 10_000), dim=st.integers(2, 8), k=st.integers(1, 10))
    def test_recall_clustered(self, seed, dim, k):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(60, 400))
        centers = rng.normal(scale=8.0, size=(5, dim))
        X = centers[rng.integers(0, 5, size=n)] + rng.normal(size=(n, dim))
        index = RPForestIndex(**FOREST, seed=seed).build(X)
        assert _recall(index, X, X[: min(n, 64)], k) >= 0.9


class TestMasking:
    @settings(deadline=None)
    @given(seed=st.integers(0, 10_000), k=st.integers(1, 8))
    def test_masked_queries_never_violate_mask(self, seed, k):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(20, 300))
        X = rng.normal(size=(n, 4))
        mask = rng.random(n) < rng.uniform(0.05, 0.9)
        index = RPForestIndex(**FOREST, seed=seed).build(X)
        for probes in (1, FOREST["probes"], EXHAUSTIVE):
            out = index.query(X[:32], k, mask=mask, probes=probes)
            returned = out[out >= 0]
            assert mask[returned].all()

    @settings(deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_counterfactual_constraint_masks(self, seed):
        """Through the backend: hits share the label and flip the attribute."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(30, 200))
        X = rng.normal(size=(n, 4))
        labels = rng.integers(0, 2, size=n)
        attrs = rng.integers(0, 2, size=n)
        backend = AnnBackend(**FOREST, seed=seed)
        backend.prepare(X)
        queries = np.flatnonzero((labels == 1) & (attrs == 0))
        candidates = np.flatnonzero((labels == 1) & (attrs == 1))
        if queries.size == 0 or candidates.size == 0:
            return
        found = backend.topk(queries, candidates, 3)
        hits = found[found >= 0]
        assert np.isin(hits, candidates).all()

    def test_empty_mask_returns_all_padding(self):
        X = np.random.default_rng(0).normal(size=(50, 3))
        index = RPForestIndex(**FOREST, seed=0).build(X)
        out = index.query(X[:5], 4, mask=np.zeros(50, dtype=bool))
        assert (out == -1).all()

    def test_fewer_candidates_than_k_pads_right(self):
        X = np.random.default_rng(1).normal(size=(40, 3))
        mask = np.zeros(40, dtype=bool)
        mask[[3, 17]] = True
        index = RPForestIndex(**FOREST, seed=0).build(X)
        out = index.query(X[:6], 5, mask=mask)
        for row in out:
            found = row[row >= 0]
            assert set(found) <= {3, 17}
            # padding is trailing, never interleaved
            assert (row[len(found):] == -1).all()


class TestDuplicateDistanceTies:
    def test_full_sort_branch_breaks_ties_by_candidate_position(self):
        """k >= num candidates takes the full-sort branch; duplicate
        distances must resolve by candidate order, like every other path."""
        X = np.array([[0.0], [1.0], [-1.0], [2.0], [-2.0]])
        query = np.zeros((1, 1))
        out = exact_topk(X, query, np.arange(5), k=5)
        np.testing.assert_array_equal(out[0], [0, 1, 2, 3, 4])
        # A custom candidate order is the tie-break, not ascending id.
        out = exact_topk(X, query, np.array([2, 1, 4, 3]), k=4)
        np.testing.assert_array_equal(out[0], [2, 1, 4, 3])

    def test_many_duplicate_distances_stay_deterministic(self):
        rng = np.random.default_rng(0)
        base = rng.normal(size=(8, 3))
        X = np.repeat(base, 16, axis=0)  # 16 exact copies of each point
        queries = X[:10]
        first = exact_topk(X, queries, np.arange(X.shape[0]), k=X.shape[0])
        for _ in range(3):
            np.testing.assert_array_equal(
                first, exact_topk(X, queries, np.arange(X.shape[0]), k=X.shape[0])
            )
        # Equal-distance blocks list candidates in ascending id order.
        assert (np.diff(first[:, :16].astype(np.int64)) > 0).all()


class TestDeterminism:
    @settings(deadline=None)
    @given(seed=st.integers(0, 10_000), build_seed=st.integers(0, 100))
    def test_same_seed_same_index(self, seed, build_seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(int(rng.integers(30, 250)), 5))
        a = RPForestIndex(**FOREST, seed=build_seed).build(X)
        b = RPForestIndex(**FOREST, seed=build_seed).build(X)
        queries = X[:32]
        np.testing.assert_array_equal(a.query(queries, 5), b.query(queries, 5))

    def test_different_seed_may_differ_but_stays_valid(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(200, 5))
        a = RPForestIndex(**FOREST, seed=0).build(X)
        out = a.query(X[:16], 5)
        assert out.shape == (16, 5)
        assert (out < 200).all()

    def test_rebuild_resets_state(self):
        rng = np.random.default_rng(4)
        X1 = rng.normal(size=(100, 4))
        X2 = rng.normal(size=(120, 4))
        index = RPForestIndex(**FOREST, seed=7)
        index.build(X1)
        first = index.query(X1[:8], 3)
        index.build(X2)
        assert index.num_points == 120
        index.build(X1)
        np.testing.assert_array_equal(index.query(X1[:8], 3), first)


class TestExhaustiveOracle:
    @settings(deadline=None)
    @given(seed=st.integers(0, 10_000), k=st.integers(1, 8))
    def test_exhaustive_probing_equals_exact(self, seed, k):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(20, 250))
        X = rng.normal(size=(n, 4))
        index = RPForestIndex(**FOREST, seed=seed).build(X)
        out = index.query(X[:32], k, probes=EXHAUSTIVE)
        expected = exact_topk(X, X[:32], np.arange(n), k)
        np.testing.assert_array_equal(out[:, : expected.shape[1]], expected)
        assert (out[:, expected.shape[1]:] == -1).all()

    def test_exhaustive_backend_matches_exact_backend(self):
        rng = np.random.default_rng(5)
        X = rng.normal(size=(150, 6))
        queries = np.arange(0, 150, 3)
        candidates = np.arange(1, 150, 2)
        exact = ExactBackend()
        exact.prepare(X)
        ann = AnnBackend(**FOREST, seed=0, exhaustive=True)
        ann.prepare(X)
        np.testing.assert_array_equal(
            exact.topk(queries, candidates, 4), ann.topk(queries, candidates, 4)
        )


def _drift(X, rng, fraction=0.2, scale=0.1):
    """Move a random ``fraction`` of points by a small gaussian step."""
    moved = rng.choice(
        X.shape[0], size=max(1, int(fraction * X.shape[0])), replace=False
    )
    X = X.copy()
    X[moved] += scale * rng.normal(size=(moved.size, X.shape[1]))
    return X


class TestIncrementalUpdate:
    @settings(deadline=None)
    @given(seed=st.integers(0, 10_000), rounds=st.integers(1, 4))
    def test_update_is_deterministic(self, seed, rounds):
        """Twin indexes fed the same drift sequence stay identical."""
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(int(rng.integers(40, 250)), 5))
        make = lambda: RPForestIndex(  # noqa: E731
            num_trees=4, leaf_size=8, probes=2, seed=7, overflow_factor=2.0
        ).build(X)
        a, b = make(), make()
        current = X
        for _ in range(rounds):
            current = _drift(current, rng, fraction=0.3, scale=0.5)
            ra = a.update(current, rebuild_frac=1.0)
            rb = b.update(current, rebuild_frac=1.0)
            assert (ra.num_moved, ra.splits) == (rb.num_moved, rb.splits)
        np.testing.assert_array_equal(
            a.query(current[:32], 5), b.query(current[:32], 5)
        )

    @settings(deadline=None)
    @given(seed=st.integers(0, 10_000), k=st.integers(1, 8))
    def test_exhaustive_stays_exact_after_updates(self, seed, k):
        """Exhaustive probing over an updated index equals the oracle over
        the *new* matrix bit-for-bit (points/norms refresh plumbing)."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(30, 200))
        X = rng.normal(size=(n, 4))
        index = RPForestIndex(**FOREST, seed=seed).build(X)
        for _ in range(3):
            X = _drift(X, rng, fraction=0.25, scale=0.3)
            index.update(X, rebuild_frac=1.0)
        out = index.query(X[:32], k, probes=EXHAUSTIVE)
        expected = exact_topk(X, X[:32], np.arange(n), k)
        np.testing.assert_array_equal(out[:, : expected.shape[1]], expected)
        assert (out[:, expected.shape[1]:] == -1).all()

    @settings(deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_masked_queries_stay_sound_after_updates(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(30, 200))
        X = rng.normal(size=(n, 4))
        mask = rng.random(n) < rng.uniform(0.1, 0.9)
        index = RPForestIndex(**FOREST, seed=seed).build(X)
        X = _drift(X, rng, fraction=0.4, scale=0.5)
        index.update(X, rebuild_frac=1.0)
        for probes in (1, FOREST["probes"], EXHAUSTIVE):
            out = index.query(X[:24], 4, mask=mask, probes=probes)
            returned = out[out >= 0]
            assert mask[returned].all()

    @settings(deadline=None)
    @given(seed=st.integers(0, 2_000))
    def test_recall_survives_repeated_small_drifts(self, seed):
        """Re-routing through stale split planes must keep recall@K >= 0.9
        over several refresh cycles of realistic (small) embedding drift."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(100, 400))
        centers = rng.normal(scale=8.0, size=(5, 4))
        X = centers[rng.integers(0, 5, size=n)] + rng.normal(size=(n, 4))
        index = RPForestIndex(**FOREST, seed=seed).build(X)
        for _ in range(4):
            X = _drift(X, rng, fraction=0.2, scale=0.1)
            report = index.update(X, rebuild_frac=1.0)
            assert not report.rebuilt
        assert _recall(index, X, X[: min(n, 64)], 5) >= 0.9

    def test_unmoved_points_are_not_rerouted_but_refreshed(self):
        """moved=[] skips all re-routing, yet the coordinates still refresh
        (exhaustive ranking sees the new matrix)."""
        rng = np.random.default_rng(0)
        X = rng.normal(size=(80, 4))
        index = RPForestIndex(**FOREST, seed=0).build(X)
        X2 = X + 0.5 * rng.normal(size=X.shape)
        report = index.update(X2, moved=np.array([], dtype=np.int64))
        assert report.num_moved == 0 and not report.rebuilt
        out = index.query(X2[:16], 3, probes=EXHAUSTIVE)
        np.testing.assert_array_equal(
            out, exact_topk(X2, X2[:16], np.arange(80), 3)
        )

    def test_boolean_moved_mask_equals_id_list(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(120, 4))
        X2 = _drift(X, rng, fraction=0.3, scale=0.5)
        ids = rng.choice(120, size=30, replace=False)
        mask = np.zeros(120, dtype=bool)
        mask[ids] = True
        a = RPForestIndex(**FOREST, seed=3).build(X)
        b = RPForestIndex(**FOREST, seed=3).build(X)
        a.update(X2, moved=ids, rebuild_frac=1.0)
        b.update(X2, moved=mask, rebuild_frac=1.0)
        np.testing.assert_array_equal(a.query(X2[:24], 5), b.query(X2[:24], 5))

    def test_drift_threshold_gates_rerouting(self):
        """Points moving under the threshold are not counted as drifted."""
        rng = np.random.default_rng(2)
        X = rng.normal(size=(100, 4))
        index = RPForestIndex(**FOREST, seed=0, drift_threshold=1.0).build(X)
        X2 = X + 0.01  # L2 delta 0.02 per point, far below the threshold
        report = index.update(X2)
        assert report.num_moved == 0
        report = index.update(X2, drift_threshold=0.0)
        assert report.num_moved == 0  # already the stored matrix

    def test_rebuild_escape_hatch_equals_fresh_build(self):
        """Past rebuild_frac, update() is exactly a fresh seeded build."""
        rng = np.random.default_rng(4)
        X = rng.normal(size=(150, 4))
        index = RPForestIndex(**FOREST, seed=9, rebuild_frac=0.1).build(X)
        X2 = X + 1.0  # everything drifts
        report = index.update(X2)
        assert report.rebuilt and report.moved_fraction == 1.0
        fresh = RPForestIndex(**FOREST, seed=9).build(X2)
        np.testing.assert_array_equal(
            index.query(X2[:32], 5), fresh.query(X2[:32], 5)
        )

    def test_overflow_triggers_lazy_subtree_split(self):
        """Cramming many points into one region must split the receiving
        leaf (bounding per-query candidate work) and keep queries sound."""
        rng = np.random.default_rng(5)
        X = rng.normal(size=(400, 4))
        index = RPForestIndex(
            num_trees=3, leaf_size=8, probes=2, seed=0, overflow_factor=2.0
        ).build(X)
        X2 = X.copy()
        X2[100:250] = X[0] + 0.01 * rng.normal(size=(150, 4))
        report = index.update(X2, rebuild_frac=1.0)
        assert report.splits > 0 and not report.rebuilt
        for tree in index._trees:
            sizes = np.diff(tree.leaf_indptr)
            assert sizes.sum() == 400  # every point still in exactly one leaf
            assert tree.max_leaf == sizes.max()
        out = index.query(X2[:32], 5)
        assert out.shape == (32, 5) and out.max() < 400
        # The crowded region is its own nearest-neighbour cluster.
        hits = index.query(X2[150][None, :], 5)[0]
        assert ((hits >= 100) & (hits < 250)).sum() >= 4

    def test_depth_bound_stays_exact_across_splits(self):
        """Repeated overflow splits must not inflate the recorded depth
        bound (it sizes every multi-probe query's descent arrays)."""

        def reference_depth(tree):
            if tree.root < 0:
                return 0
            best, stack = 0, [(tree.root, 0)]
            while stack:
                node, level = stack.pop()
                if node < 0:
                    best = max(best, level)
                else:
                    stack += [(c, level + 1) for c in tree.children[node]]
            return best

        rng = np.random.default_rng(8)
        X = rng.normal(size=(400, 4))
        index = RPForestIndex(
            num_trees=3, leaf_size=8, probes=2, seed=0, overflow_factor=2.0
        ).build(X)
        total_splits = 0
        for round_id in range(3):  # collapse a different region each round
            X = X.copy()
            lo = 50 + 100 * round_id
            X[lo : lo + 80] = X[round_id] + 0.01 * rng.normal(size=(80, 4))
            total_splits += index.update(X, rebuild_frac=1.0).splits
        assert total_splits > 0
        for tree in index._trees:
            assert tree.depth == reference_depth(tree)

    def test_orphan_slots_are_reported_and_compaction_is_invisible(self):
        """Every subtree split orphans one leaf slot; the report must expose
        the standing count, and compacting the slots away must not change a
        single query."""
        rng = np.random.default_rng(5)
        X = rng.normal(size=(400, 4))
        index = RPForestIndex(
            num_trees=3, leaf_size=8, probes=2, seed=0,
            overflow_factor=2.0, compact_frac=1.0,  # compaction disabled
        ).build(X)
        total_splits = 0
        report = None
        for round_id in range(3):
            X = X.copy()
            lo = 50 + 100 * round_id
            X[lo : lo + 80] = X[round_id] + 0.01 * rng.normal(size=(80, 4))
            report = index.update(X, rebuild_frac=1.0)
            total_splits += report.splits
        assert total_splits > 0
        # One orphaned slot per split, none reclaimed (compaction disabled).
        assert report.orphaned == total_splits and report.compacted == 0
        before_multi = index.query(X[:64], 5)
        before_exh = index.query(X[:64], 5, probes=EXHAUSTIVE)
        reclaimed = sum(
            RPForestIndex._compact_leaves(tree) for tree in index._trees
        )
        assert reclaimed == total_splits
        for tree in index._trees:
            reachable = RPForestIndex._reachable_leaves(tree)
            assert reachable.all()  # no orphans left
            assert np.diff(tree.leaf_indptr).sum() == 400
        np.testing.assert_array_equal(index.query(X[:64], 5), before_multi)
        np.testing.assert_array_equal(
            index.query(X[:64], 5, probes=EXHAUSTIVE), before_exh
        )
        # Post-compaction, the oracle paths still match a fresh build().
        fresh = RPForestIndex(
            num_trees=3, leaf_size=8, probes=2, seed=0,
            overflow_factor=2.0,
        ).build(X)
        np.testing.assert_array_equal(
            index.query(X[:64], 5, probes=EXHAUSTIVE),
            fresh.query(X[:64], 5, probes=EXHAUSTIVE),
        )

    def test_compact_frac_triggers_compaction_in_update(self):
        rng = np.random.default_rng(5)
        X = rng.normal(size=(400, 4))
        make = lambda: RPForestIndex(  # noqa: E731
            num_trees=3, leaf_size=8, probes=2, seed=0,
            overflow_factor=2.0, compact_frac=0.01,
        ).build(X)
        a, b = make(), make()
        total_splits = 0
        total_compacted = 0
        ra = None
        for round_id in range(3):
            X = X.copy()
            lo = 50 + 100 * round_id
            X[lo : lo + 80] = X[round_id] + 0.01 * rng.normal(size=(80, 4))
            ra = a.update(X, rebuild_frac=1.0)
            rb = b.update(X, rebuild_frac=1.0)
            assert (ra.splits, ra.orphaned, ra.compacted) == (
                rb.splits, rb.orphaned, rb.compacted
            )
            total_splits += ra.splits
            total_compacted += ra.compacted
        assert total_splits > 0 and total_compacted > 0
        # Slot conservation: every split's orphan is either still standing
        # (reported) or was reclaimed by some round's compaction.
        assert ra.orphaned == total_splits - total_compacted
        # Compaction is part of the deterministic update contract.
        np.testing.assert_array_equal(a.query(X[:32], 5), b.query(X[:32], 5))
        np.testing.assert_array_equal(
            a.query(X[:32], 5, probes=EXHAUSTIVE),
            exact_topk(X, X[:32], np.arange(400), 5),
        )

    def test_rebuild_escape_hatch_reports_zero_orphans(self):
        rng = np.random.default_rng(4)
        X = rng.normal(size=(150, 4))
        index = RPForestIndex(**FOREST, seed=9, rebuild_frac=0.1).build(X)
        report = index.update(X + 1.0)
        assert report.rebuilt
        assert report.orphaned == 0 and report.compacted == 0

    def test_compact_frac_validation_and_round_trip(self):
        with pytest.raises(ValueError, match="compact_frac"):
            RPForestIndex(compact_frac=0.0)
        with pytest.raises(ValueError, match="compact_frac"):
            RPForestIndex(compact_frac=1.5)
        X = np.random.default_rng(0).normal(size=(60, 3))
        index = RPForestIndex(**FOREST, seed=0, compact_frac=0.5).build(X)
        restored = RPForestIndex.from_arrays(index.to_arrays())
        assert restored.compact_frac == 0.5
        # Pre-compaction serializations carried 3 floats: compaction off.
        arrays = index.to_arrays()
        arrays["float_params"] = arrays["float_params"][:3]
        legacy = RPForestIndex.from_arrays(arrays)
        assert legacy.compact_frac == 1.0

    def test_explicit_moved_conflicts_with_threshold(self):
        index = RPForestIndex(**FOREST, seed=0).build(
            np.random.default_rng(0).normal(size=(50, 3))
        )
        with pytest.raises(ValueError, match="not both"):
            index.update(
                np.zeros((50, 3)), moved=np.array([1]), drift_threshold=0.5
            )

    def test_update_validation(self):
        index = RPForestIndex(**FOREST, seed=0)
        with pytest.raises(RuntimeError):
            index.update(np.zeros((4, 2)))
        index.build(np.random.default_rng(0).normal(size=(50, 3)))
        with pytest.raises(ValueError, match="built shape"):
            index.update(np.zeros((60, 3)))
        with pytest.raises(ValueError, match="built shape"):
            index.update(np.zeros((50, 4)))
        with pytest.raises(ValueError, match="moved ids"):
            index.update(np.zeros((50, 3)), moved=np.array([60]))
        with pytest.raises(ValueError, match="drift_threshold"):
            index.update(np.zeros((50, 3)), drift_threshold=-1.0)
        with pytest.raises(ValueError, match="rebuild_frac"):
            index.update(np.zeros((50, 3)), rebuild_frac=0.0)
        with pytest.raises(ValueError, match="drift_threshold"):
            RPForestIndex(drift_threshold=-0.5)
        with pytest.raises(ValueError, match="rebuild_frac"):
            RPForestIndex(rebuild_frac=1.5)
        with pytest.raises(ValueError, match="overflow_factor"):
            RPForestIndex(overflow_factor=0.5)


class TestIncrementalBackend:
    def test_prepare_updates_in_place(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(100, 6))
        backend = AnnBackend(
            **FOREST, seed=0, update="incremental", rebuild_frac=1.0
        )
        backend.prepare(X)
        assert backend.last_report is None  # first prepare builds
        X2 = X + 0.05 * rng.normal(size=X.shape)
        backend.prepare(X2)
        assert backend.last_report is not None
        assert not backend.last_report.rebuilt
        # A changed point-set shape falls back to a build.
        backend.prepare(rng.normal(size=(40, 6)))
        assert backend.last_report is None

    def test_incremental_exhaustive_equals_exact_backend(self):
        """After an in-place refresh, exhaustive incremental == oracle."""
        rng = np.random.default_rng(1)
        X = rng.normal(size=(120, 5))
        exact = ExactBackend()
        ann = AnnBackend(
            **FOREST, seed=0, exhaustive=True, update="incremental",
            rebuild_frac=1.0,
        )
        queries = np.arange(0, 120, 3)
        candidates = np.arange(1, 120, 2)
        for _ in range(3):
            X = _drift(X, rng, fraction=0.3, scale=0.2)
            exact.prepare(X)
            ann.prepare(X)
            np.testing.assert_array_equal(
                exact.topk(queries, candidates, 4),
                ann.topk(queries, candidates, 4),
            )

    def test_bad_update_mode_rejected(self):
        with pytest.raises(ValueError, match="update"):
            AnnBackend(update="bogus")
        with pytest.raises(ValueError, match="update"):
            make_backend("ann", update="sometimes")


class TestValidationAndFactory:
    def test_query_before_build(self):
        with pytest.raises(RuntimeError):
            RPForestIndex().query(np.zeros((1, 3)), 1)

    def test_bad_params(self):
        with pytest.raises(ValueError):
            RPForestIndex(num_trees=0)
        with pytest.raises(ValueError):
            RPForestIndex(leaf_size=0)
        with pytest.raises(ValueError):
            RPForestIndex(probes=0)
        index = RPForestIndex().build(np.zeros((4, 2)))
        with pytest.raises(ValueError):
            index.query(np.zeros((1, 2)), 0)
        with pytest.raises(ValueError):
            index.query(np.zeros((1, 3)), 1)  # wrong dim
        with pytest.raises(ValueError):
            index.query(np.zeros((1, 2)), 1, mask=np.ones(5, dtype=bool))

    def test_make_backend(self):
        assert isinstance(make_backend("exact"), ExactBackend)
        assert isinstance(make_backend("ann", num_trees=3), AnnBackend)
        custom = ExactBackend()
        assert make_backend(custom) is custom
        with pytest.raises(ValueError):
            make_backend("exact", num_trees=3)
        with pytest.raises(ValueError):
            make_backend("bogus")
        with pytest.raises(TypeError):
            make_backend(42)

    def test_single_point_and_tiny_sets(self):
        X = np.array([[1.0, 2.0]])
        index = RPForestIndex(**FOREST, seed=0).build(X)
        out = index.query(X, 3)
        assert out[0, 0] == 0
        assert (out[0, 1:] == -1).all()


class TestSerialization:
    """to_arrays / from_arrays round-trip the forest bit-for-bit."""

    def _build(self, seed=3, n=120, d=8):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(n, d))
        return X, RPForestIndex(**FOREST, seed=seed).build(X)

    def test_round_trip_queries_identical(self):
        X, index = self._build()
        restored = RPForestIndex.from_arrays(index.to_arrays())
        queries = X[:20]
        np.testing.assert_array_equal(
            restored.query(queries, 4), index.query(queries, 4)
        )

    def test_round_trip_exhaustive_identical(self):
        X, index = self._build()
        restored = RPForestIndex.from_arrays(index.to_arrays())
        out = restored.query(X[:10], 3, probes=EXHAUSTIVE)
        np.testing.assert_array_equal(out, index.query(X[:10], 3, probes=EXHAUSTIVE))
        np.testing.assert_array_equal(
            out, exact_topk(X, X[:10], np.arange(X.shape[0]), 3)
        )

    def test_round_trip_masked_queries(self):
        X, index = self._build()
        restored = RPForestIndex.from_arrays(index.to_arrays())
        mask = np.zeros(X.shape[0], dtype=bool)
        mask[::3] = True
        np.testing.assert_array_equal(
            restored.query(X[:8], 2, mask=mask), index.query(X[:8], 2, mask=mask)
        )

    def test_update_count_survives(self):
        rng = np.random.default_rng(5)
        X, index = self._build(seed=5)
        moved = X.copy()
        moved[:10] += 0.5 * rng.normal(size=(10, X.shape[1]))
        index.update(moved)
        assert index.update_count == 1
        restored = RPForestIndex.from_arrays(index.to_arrays())
        assert restored.update_count == 1
        # determinism of *future* updates depends on the restored counter:
        moved2 = moved.copy()
        moved2[:5] += 0.5 * rng.normal(size=(5, X.shape[1]))
        index.update(moved2)
        restored.update(moved2)
        np.testing.assert_array_equal(
            restored.query(moved2[:12], 3), index.query(moved2[:12], 3)
        )

    def test_from_arrays_accepts_npz_handle(self, tmp_path):
        X, index = self._build()
        np.savez(tmp_path / "idx.npz", **index.to_arrays())
        with np.load(tmp_path / "idx.npz") as data:
            restored = RPForestIndex.from_arrays(data)
        np.testing.assert_array_equal(
            restored.query(X[:5], 2), index.query(X[:5], 2)
        )

    def test_from_arrays_validates(self):
        X, index = self._build()
        arrays = index.to_arrays()
        del arrays["tree0_directions"]
        with pytest.raises(ValueError):
            RPForestIndex.from_arrays(arrays)
        with pytest.raises(ValueError):
            RPForestIndex.from_arrays({"params": np.zeros(6, dtype=np.int64)})
