"""Property tests for the ANN subsystem (repro.core.ann).

The contract under test: "approximate" must never silently mean "wrong".

* recall@K of the random-projection forest stays ≥ 0.9 against the exact
  oracle on both clustered and uniform point sets;
* masked queries never return a candidate the mask forbids (this is the
  invariant the counterfactual search's label/attribute constraints ride
  on);
* building twice with the same seed gives identical indexes (determinism);
* exhaustive probing reproduces the exact oracle bit-for-bit.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ann import (
    EXHAUSTIVE,
    AnnBackend,
    ExactBackend,
    RPForestIndex,
    exact_topk,
    make_backend,
)

# Forest sized for high recall on the small point sets hypothesis explores;
# the recall property is asserted against these settings.
FOREST = dict(num_trees=10, leaf_size=24, probes=3)


def _recall(index: RPForestIndex, X: np.ndarray, queries: np.ndarray, k: int) -> float:
    approx = index.query(queries, k)
    exact = exact_topk(X, queries, np.arange(X.shape[0]), k)
    hits = sum(
        len(set(a[a >= 0]) & set(e)) for a, e in zip(approx, exact)
    )
    return hits / (queries.shape[0] * exact.shape[1])


class TestRecall:
    @settings(deadline=None)
    @given(seed=st.integers(0, 10_000), dim=st.integers(2, 8), k=st.integers(1, 10))
    def test_recall_uniform(self, seed, dim, k):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(40, 400))
        X = rng.normal(size=(n, dim))
        index = RPForestIndex(**FOREST, seed=seed).build(X)
        assert _recall(index, X, X[: min(n, 64)], k) >= 0.9

    @settings(deadline=None)
    @given(seed=st.integers(0, 10_000), dim=st.integers(2, 8), k=st.integers(1, 10))
    def test_recall_clustered(self, seed, dim, k):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(60, 400))
        centers = rng.normal(scale=8.0, size=(5, dim))
        X = centers[rng.integers(0, 5, size=n)] + rng.normal(size=(n, dim))
        index = RPForestIndex(**FOREST, seed=seed).build(X)
        assert _recall(index, X, X[: min(n, 64)], k) >= 0.9


class TestMasking:
    @settings(deadline=None)
    @given(seed=st.integers(0, 10_000), k=st.integers(1, 8))
    def test_masked_queries_never_violate_mask(self, seed, k):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(20, 300))
        X = rng.normal(size=(n, 4))
        mask = rng.random(n) < rng.uniform(0.05, 0.9)
        index = RPForestIndex(**FOREST, seed=seed).build(X)
        for probes in (1, FOREST["probes"], EXHAUSTIVE):
            out = index.query(X[:32], k, mask=mask, probes=probes)
            returned = out[out >= 0]
            assert mask[returned].all()

    @settings(deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_counterfactual_constraint_masks(self, seed):
        """Through the backend: hits share the label and flip the attribute."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(30, 200))
        X = rng.normal(size=(n, 4))
        labels = rng.integers(0, 2, size=n)
        attrs = rng.integers(0, 2, size=n)
        backend = AnnBackend(**FOREST, seed=seed)
        backend.prepare(X)
        queries = np.flatnonzero((labels == 1) & (attrs == 0))
        candidates = np.flatnonzero((labels == 1) & (attrs == 1))
        if queries.size == 0 or candidates.size == 0:
            return
        found = backend.topk(queries, candidates, 3)
        hits = found[found >= 0]
        assert np.isin(hits, candidates).all()

    def test_empty_mask_returns_all_padding(self):
        X = np.random.default_rng(0).normal(size=(50, 3))
        index = RPForestIndex(**FOREST, seed=0).build(X)
        out = index.query(X[:5], 4, mask=np.zeros(50, dtype=bool))
        assert (out == -1).all()

    def test_fewer_candidates_than_k_pads_right(self):
        X = np.random.default_rng(1).normal(size=(40, 3))
        mask = np.zeros(40, dtype=bool)
        mask[[3, 17]] = True
        index = RPForestIndex(**FOREST, seed=0).build(X)
        out = index.query(X[:6], 5, mask=mask)
        for row in out:
            found = row[row >= 0]
            assert set(found) <= {3, 17}
            # padding is trailing, never interleaved
            assert (row[len(found):] == -1).all()


class TestDeterminism:
    @settings(deadline=None)
    @given(seed=st.integers(0, 10_000), build_seed=st.integers(0, 100))
    def test_same_seed_same_index(self, seed, build_seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(int(rng.integers(30, 250)), 5))
        a = RPForestIndex(**FOREST, seed=build_seed).build(X)
        b = RPForestIndex(**FOREST, seed=build_seed).build(X)
        queries = X[:32]
        np.testing.assert_array_equal(a.query(queries, 5), b.query(queries, 5))

    def test_different_seed_may_differ_but_stays_valid(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(200, 5))
        a = RPForestIndex(**FOREST, seed=0).build(X)
        out = a.query(X[:16], 5)
        assert out.shape == (16, 5)
        assert (out < 200).all()

    def test_rebuild_resets_state(self):
        rng = np.random.default_rng(4)
        X1 = rng.normal(size=(100, 4))
        X2 = rng.normal(size=(120, 4))
        index = RPForestIndex(**FOREST, seed=7)
        index.build(X1)
        first = index.query(X1[:8], 3)
        index.build(X2)
        assert index.num_points == 120
        index.build(X1)
        np.testing.assert_array_equal(index.query(X1[:8], 3), first)


class TestExhaustiveOracle:
    @settings(deadline=None)
    @given(seed=st.integers(0, 10_000), k=st.integers(1, 8))
    def test_exhaustive_probing_equals_exact(self, seed, k):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(20, 250))
        X = rng.normal(size=(n, 4))
        index = RPForestIndex(**FOREST, seed=seed).build(X)
        out = index.query(X[:32], k, probes=EXHAUSTIVE)
        expected = exact_topk(X, X[:32], np.arange(n), k)
        np.testing.assert_array_equal(out[:, : expected.shape[1]], expected)
        assert (out[:, expected.shape[1]:] == -1).all()

    def test_exhaustive_backend_matches_exact_backend(self):
        rng = np.random.default_rng(5)
        X = rng.normal(size=(150, 6))
        queries = np.arange(0, 150, 3)
        candidates = np.arange(1, 150, 2)
        exact = ExactBackend()
        exact.prepare(X)
        ann = AnnBackend(**FOREST, seed=0, exhaustive=True)
        ann.prepare(X)
        np.testing.assert_array_equal(
            exact.topk(queries, candidates, 4), ann.topk(queries, candidates, 4)
        )


class TestValidationAndFactory:
    def test_query_before_build(self):
        with pytest.raises(RuntimeError):
            RPForestIndex().query(np.zeros((1, 3)), 1)

    def test_bad_params(self):
        with pytest.raises(ValueError):
            RPForestIndex(num_trees=0)
        with pytest.raises(ValueError):
            RPForestIndex(leaf_size=0)
        with pytest.raises(ValueError):
            RPForestIndex(probes=0)
        index = RPForestIndex().build(np.zeros((4, 2)))
        with pytest.raises(ValueError):
            index.query(np.zeros((1, 2)), 0)
        with pytest.raises(ValueError):
            index.query(np.zeros((1, 3)), 1)  # wrong dim
        with pytest.raises(ValueError):
            index.query(np.zeros((1, 2)), 1, mask=np.ones(5, dtype=bool))

    def test_make_backend(self):
        assert isinstance(make_backend("exact"), ExactBackend)
        assert isinstance(make_backend("ann", num_trees=3), AnnBackend)
        custom = ExactBackend()
        assert make_backend(custom) is custom
        with pytest.raises(ValueError):
            make_backend("exact", num_trees=3)
        with pytest.raises(ValueError):
            make_backend("bogus")
        with pytest.raises(TypeError):
            make_backend(42)

    def test_single_point_and_tiny_sets(self):
        X = np.array([[1.0, 2.0]])
        index = RPForestIndex(**FOREST, seed=0).build(X)
        out = index.query(X, 3)
        assert out[0, 0] == 0
        assert (out[0, 1:] == -1).all()
