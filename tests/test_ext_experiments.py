"""Tests for the extension experiments (backbone sweep, oracle comparison)."""

from __future__ import annotations

import pytest

from repro.experiments import (
    Scale,
    format_ext_backbones,
    format_ext_oracle,
    run_ext_backbones,
    run_ext_oracle,
)

SMOKE = Scale.smoke()


@pytest.mark.slow
class TestBackboneSweep:
    def test_two_backbones(self):
        result = run_ext_backbones(dataset="nba", backbones=["gcn", "sage"], scale=SMOKE)
        assert ("gcn", "fairwos") in result.cells
        assert ("sage", "gnn") in result.cells
        text = format_ext_backbones(result)
        assert "SAGE" in text and "Fairwos" in text

    def test_gat_backbone_runs(self):
        result = run_ext_backbones(dataset="nba", backbones=["gat"], scale=SMOKE)
        summary = result.cells[("gat", "fairwos")]
        assert 0.0 <= summary.acc_mean <= 100.0


class TestOracleComparison:
    def test_entries(self):
        result = run_ext_oracle(
            dataset="nba", scale=SMOKE, entries=["vanilla", "fairwos"]
        )
        assert set(result.cells) == {"vanilla", "fairwos"}
        text = format_ext_oracle(result)
        assert "oracle" in text

    def test_oracle_entries_run(self):
        result = run_ext_oracle(
            dataset="nba", scale=SMOKE, entries=["nifty", "fairgnn"]
        )
        for entry in ("nifty", "fairgnn"):
            assert 0.0 <= result.cells[entry].acc_mean <= 100.0

    def test_unknown_entry(self):
        with pytest.raises(ValueError):
            run_ext_oracle(dataset="nba", scale=SMOKE, entries=["bogus"])
