"""Tests for the unified minibatch engine and the epoch-level sampling cache.

Three layers of evidence that epoch-cached sampling never changes what a
model *can* compute, only how often the sampling bill is paid:

* **cache level** — a hypothesis harness pins replayed blocks equal to
  freshly sampled blocks under exhaustive fanout (where sampling is
  deterministic, replay must be a pure no-op), and checks the refresh
  cadence / invalidation bookkeeping of ``EpochBlockCache`` directly;
* **covering level** — covering batches (batch ≥ N, exhaustive fanout)
  must equal full-batch training to 1e-9 for *every* ``cache_epochs``
  setting, through both ``fit_minibatch`` and a baseline with an epoch
  callback (FairRF);
* **determinism** — a sampled run is a deterministic function of
  ``(seed, cache_epochs)``, and the default ``cache_epochs=1`` is
  bit-identical to pre-cache behaviour by construction (the cache never
  replays).

Plus contract tests for the engine itself: checkpoint policies, validation
of bad arguments, and the ``forward="embed"`` path.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import BiasSpec, generate_biased_graph
from repro.baselines import FairRF
from repro.fairness import evaluate_predictions
from repro.graph.sampling import EpochBlockCache, NeighborSampler
from repro.gnnzoo import make_backbone
from repro.nn import binary_cross_entropy_with_logits
from repro.tensor import Tensor
from repro.training import (
    MinibatchEngine,
    fit_binary_classifier,
    fit_minibatch,
    iter_minibatches,
    predict_logits,
    predict_logits_batched,
)


@pytest.fixture(scope="module")
def causal_graph():
    """A ~400-node generated causal graph with planted bias."""
    return generate_biased_graph(
        num_nodes=400,
        num_features=10,
        average_degree=8,
        spec=BiasSpec(
            label_bias=0.2,
            proxy_strength=1.0,
            group_homophily=2.0,
            label_signal_strength=0.5,
        ),
        seed=3,
        name="engine",
    ).standardized()


def _random_adjacency(seed: int, num_nodes: int) -> sp.csr_matrix:
    rng = np.random.default_rng(seed)
    dense = (rng.random((num_nodes, num_nodes)) < 0.25).astype(float)
    dense = np.triu(dense, 1)
    return sp.csr_matrix(dense + dense.T)


def _blocks_equal(left, right) -> bool:
    if len(left) != len(right):
        return False
    for a, b in zip(left, right):
        if not (
            np.array_equal(a.src_nodes, b.src_nodes)
            and np.array_equal(a.dst_nodes, b.dst_nodes)
            and (a.adjacency != b.adjacency).nnz == 0
        ):
            return False
    return True


class TestEpochBlockCacheUnit:
    def test_rejects_bad_window(self):
        with pytest.raises(ValueError, match="cache_epochs"):
            EpochBlockCache(cache_epochs=0)

    def test_default_never_replays(self):
        cache = EpochBlockCache(cache_epochs=1)
        for _ in range(5):
            assert cache.start_epoch() is False
            cache.record(np.arange(3), np.arange(3), None, [])
            assert cache.steps() == []  # disabled caches record nothing

    def test_refresh_cadence(self):
        cache = EpochBlockCache(cache_epochs=3)
        pattern = []
        for _ in range(7):
            replay = cache.start_epoch()
            pattern.append(replay)
            if not replay:
                cache.record(np.arange(3), np.arange(3), "payload", ["blocks"])
        # refresh, replay, replay, refresh, replay, replay, refresh
        assert pattern == [False, True, True, False, True, True, False]

    def test_replay_returns_recorded_steps(self):
        cache = EpochBlockCache(cache_epochs=2)
        assert cache.start_epoch() is False
        batch = np.array([1, 2])
        cache.record(batch, batch, ("attrs",), ["chain"])
        assert cache.start_epoch() is True
        [(replayed_batch, seeds, payload, blocks)] = cache.steps()
        assert replayed_batch is batch
        assert payload == ("attrs",)
        assert blocks == ["chain"]

    def test_invalidate_forces_refresh(self):
        cache = EpochBlockCache(cache_epochs=4)
        assert cache.start_epoch() is False
        cache.record(np.arange(2), np.arange(2), None, [])
        cache.invalidate()
        assert cache.steps() == []
        # The epoch right after an invalidation must refresh, and the
        # cadence restarts from it.
        assert cache.start_epoch() is False
        cache.record(np.arange(2), np.arange(2), None, [])
        assert cache.start_epoch() is True

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 200),
        num_nodes=st.integers(6, 24),
        batch_size=st.integers(2, 8),
        num_layers=st.integers(1, 3),
    )
    def test_property_replay_equals_fresh_under_exhaustive_fanout(
        self, seed, num_nodes, batch_size, num_layers
    ):
        """Exhaustive sampling is deterministic, so a replayed epoch must
        produce exactly the blocks a fresh epoch over the same batches
        would — the cache can only ever remove sampling *work*, never
        change sampling *results*."""
        adjacency = _random_adjacency(seed, num_nodes)
        sampler = NeighborSampler(adjacency, fanouts=(None,) * num_layers)
        cache = EpochBlockCache(cache_epochs=2)
        rng = np.random.default_rng(seed)
        assert cache.start_epoch() is False
        batches = list(iter_minibatches(np.arange(num_nodes), batch_size, rng))
        for batch in batches:
            cache.record(batch, batch, None, sampler.sample_blocks(batch, rng))
        assert cache.start_epoch() is True
        for (batch, _, _, blocks), original in zip(cache.steps(), batches):
            np.testing.assert_array_equal(batch, original)
            assert _blocks_equal(blocks, sampler.sample_blocks(original, rng))


class TestCoveringBatchParityAcrossCacheSettings:
    """Covering batches must equal full-batch training to 1e-9 for every
    cache window — the explicit RNG-stream contract of the cache."""

    @pytest.mark.parametrize("cache_epochs", [1, 3, 7])
    def test_fit_minibatch_covering_matches_fullbatch(
        self, causal_graph, cache_epochs
    ):
        graph = causal_graph

        def train(minibatch: bool):
            model = make_backbone(
                "gcn", graph.num_features, 16, np.random.default_rng(0)
            )
            if minibatch:
                fit_minibatch(
                    model,
                    graph.features,
                    graph.adjacency,
                    graph.labels,
                    graph.train_mask,
                    graph.val_mask,
                    epochs=40,
                    fanouts=(None,),
                    batch_size=graph.num_nodes,
                    rng=0,
                    cache_epochs=cache_epochs,
                )
                return predict_logits_batched(
                    model, graph.features, graph.adjacency
                )
            fit_binary_classifier(
                model,
                Tensor(graph.features),
                graph.adjacency,
                graph.labels,
                graph.train_mask,
                graph.val_mask,
                epochs=40,
            )
            return predict_logits(model, Tensor(graph.features), graph.adjacency)

        np.testing.assert_allclose(train(True), train(False), atol=1e-9)

    @pytest.mark.parametrize("cache_epochs", [1, 4])
    def test_fairrf_covering_matches_fullbatch(self, causal_graph, cache_epochs):
        graph = causal_graph

        def run(**extra):
            logits, _ = FairRF(epochs=60, patience=None, **extra)._train_logits(
                graph, np.random.default_rng(0)
            )
            return evaluate_predictions(
                logits,
                graph.labels,
                graph.sensitive,
                np.ones(graph.num_nodes, dtype=bool),
            )

        full = run()
        covering = run(
            minibatch=True,
            batch_size=2048,
            fanouts=(None,),
            cache_epochs=cache_epochs,
        )
        assert abs(full.accuracy - covering.accuracy) < 1e-9
        assert abs(full.delta_sp - covering.delta_sp) < 1e-9


class TestSampledCacheDeterminism:
    def _run(self, graph, cache_epochs, seed):
        model = make_backbone(
            "sage", graph.num_features, 16, np.random.default_rng(seed),
            num_layers=2,
        )
        history = fit_minibatch(
            model,
            graph.features,
            graph.adjacency,
            graph.labels,
            graph.train_mask,
            graph.val_mask,
            epochs=10,
            fanouts=(5, 5),
            batch_size=64,
            rng=seed,
            cache_epochs=cache_epochs,
        )
        return history, predict_logits_batched(
            model, graph.features, graph.adjacency
        )

    @pytest.mark.parametrize("cache_epochs", [1, 2, 5])
    def test_deterministic_given_seed_and_window(self, causal_graph, cache_epochs):
        _, first = self._run(causal_graph, cache_epochs, seed=1)
        _, second = self._run(causal_graph, cache_epochs, seed=1)
        np.testing.assert_array_equal(first, second)

    def test_cached_run_stays_competitive(self, causal_graph):
        graph = causal_graph
        test = graph.test_mask
        _, fresh = self._run(graph, cache_epochs=1, seed=0)
        _, cached = self._run(graph, cache_epochs=5, seed=0)
        fresh_acc = ((fresh[test] > 0).astype(int) == graph.labels[test]).mean()
        cached_acc = ((cached[test] > 0).astype(int) == graph.labels[test]).mean()
        assert cached_acc >= fresh_acc - 0.1

    def test_history_records_epoch_seconds(self, causal_graph):
        history, _ = self._run(causal_graph, cache_epochs=2, seed=0)
        assert len(history.epoch_train_seconds) == len(history.train_loss)
        assert all(seconds >= 0 for seconds in history.epoch_train_seconds)


class TestEvalBlockCache:
    """The exact validation blocks never change during a fit — the engine
    must build them once per ``run()``, not once per epoch, without moving
    a single validation metric."""

    def _engine(self, graph, **extra):
        model = make_backbone(
            "gcn", graph.num_features, 8, np.random.default_rng(0)
        )
        params = dict(fanouts=(5,), batch_size=64)
        params.update(extra)
        return model, MinibatchEngine(
            model, graph.features, graph.adjacency, **params
        )

    def test_eval_blocks_sampled_once_per_fit(self, causal_graph):
        graph = causal_graph
        model, engine = self._engine(graph, eval_batch_size=32)
        val = np.where(graph.val_mask)[0]
        calls = []
        original = engine.eval_sampler.sample_blocks

        def counting(seeds, rng=None):
            calls.append(seeds.size)
            return original(seeds, rng)

        engine.eval_sampler.sample_blocks = counting
        epochs = 4
        engine.run(
            np.where(graph.train_mask)[0],
            epochs,
            lambda step: binary_cross_entropy_with_logits(
                step.output, graph.labels[step.batch].astype(np.float64)
            ),
            0,
            val_nodes=val,
            val_labels=graph.labels[val],
        )
        expected_batches = -(-val.size // 32)  # ceil
        assert len(calls) == expected_batches, (
            f"eval blocks sampled {len(calls)} times; the per-fit cache "
            f"should sample exactly {expected_batches} (one per val batch), "
            f"not once per epoch"
        )

    def test_val_metrics_bit_identical_to_fresh_blocks(self, causal_graph):
        """Per-epoch validation accuracy through the cached blocks equals a
        from-scratch exact prediction at the same weights (on_epoch_end
        fires right before validation, so the weights agree)."""
        graph = causal_graph
        model, engine = self._engine(graph)
        val = np.where(graph.val_mask)[0]
        fresh = []

        def on_epoch_end(epoch):
            logits = engine.predict(val)  # samples fresh blocks every call
            fresh.append(
                ((logits > 0).astype(int) == graph.labels[val]).mean()
            )

        history = engine.run(
            np.where(graph.train_mask)[0],
            3,
            lambda step: binary_cross_entropy_with_logits(
                step.output, graph.labels[step.batch].astype(np.float64)
            ),
            0,
            val_nodes=val,
            val_labels=graph.labels[val],
            on_epoch_end=on_epoch_end,
        )
        assert fresh == history.val_accuracy  # exact equality, no tolerance


class TestFalsyFallbackRegressions:
    """`or`-style config fallbacks collapse explicit zeros into defaults;
    these pin the explicit is-None resolutions plus rejection of
    non-positive sizes (the bug class that bit finetune_val_tolerance)."""

    def _model(self, graph):
        return make_backbone(
            "gcn", graph.num_features, 8, np.random.default_rng(0)
        )

    def test_zero_eval_batch_size_rejected(self, causal_graph):
        graph = causal_graph
        with pytest.raises(ValueError, match="eval_batch_size"):
            MinibatchEngine(
                self._model(graph), graph.features, graph.adjacency,
                fanouts=(5,), batch_size=64, eval_batch_size=0,
            )
        with pytest.raises(ValueError, match="eval_batch_size"):
            fit_minibatch(
                self._model(graph), graph.features, graph.adjacency,
                graph.labels, graph.train_mask, graph.val_mask,
                epochs=1, fanouts=(5,), eval_batch_size=0,
            )

    def test_explicit_eval_batch_size_honoured(self, causal_graph):
        graph = causal_graph
        engine = MinibatchEngine(
            self._model(graph), graph.features, graph.adjacency,
            fanouts=(5,), batch_size=64, eval_batch_size=17,
        )
        assert engine.eval_batch_size == 17
        engine = MinibatchEngine(
            self._model(graph), graph.features, graph.adjacency,
            fanouts=(5,), batch_size=64,
        )
        assert engine.eval_batch_size == 64  # None follows batch_size

    def test_predict_zero_batch_size_rejected(self, causal_graph):
        graph = causal_graph
        engine = MinibatchEngine(
            self._model(graph), graph.features, graph.adjacency,
            fanouts=(5,), batch_size=64,
        )
        with pytest.raises(ValueError, match="batch_size"):
            engine.predict(np.arange(10), batch_size=0)


class TestEngineContracts:
    def _engine(self, graph, **extra):
        model = make_backbone(
            "gcn", graph.num_features, 8, np.random.default_rng(0)
        )
        params = dict(fanouts=(5,), batch_size=64)
        params.update(extra)
        return model, MinibatchEngine(
            model, graph.features, graph.adjacency, **params
        )

    def _bce_loss(self, graph):
        def loss_fn(step):
            return binary_cross_entropy_with_logits(
                step.output, graph.labels[step.batch].astype(np.float64)
            )

        return loss_fn

    def test_rejects_bad_arguments(self, causal_graph):
        graph = causal_graph
        model, engine = self._engine(graph)
        val = np.where(graph.val_mask)[0]
        run = dict(
            loss_fn=self._bce_loss(graph),
            rng=0,
            val_nodes=val,
            val_labels=graph.labels[val],
        )
        train = np.where(graph.train_mask)[0]
        with pytest.raises(ValueError, match="epochs"):
            engine.run(train, 0, **run)
        with pytest.raises(ValueError, match="checkpoint"):
            engine.run(train, 1, checkpoint="bogus", **run)
        with pytest.raises(ValueError, match="forward"):
            engine.run(train, 1, forward="bogus", **run)
        with pytest.raises(ValueError, match="nodes"):
            engine.run(np.array([], dtype=np.int64), 1, **run)
        with pytest.raises(ValueError, match="cache_epochs"):
            self._engine(graph, cache_epochs=0)
        with pytest.raises(ValueError, match="fanouts"):
            self._engine(graph, fanouts=(5, 5))  # 1-layer model

    def test_best_checkpoint_restores_best_state(self, causal_graph):
        graph = causal_graph
        model, engine = self._engine(graph)
        val = np.where(graph.val_mask)[0]
        history = engine.run(
            np.where(graph.train_mask)[0],
            15,
            self._bce_loss(graph),
            0,
            val_nodes=val,
            val_labels=graph.labels[val],
            patience=None,
        )
        final = engine.predict(val)
        final_acc = ((final > 0).astype(int) == graph.labels[val]).mean()
        assert final_acc == pytest.approx(history.best_val_accuracy)
        assert history.best_epoch >= 0

    def test_floor_checkpoint_stops_on_violation(self, causal_graph):
        """A destructive objective (maximise BCE) must trip the zero
        floor within a few epochs and restore the pre-violation state."""
        graph = causal_graph
        model, engine = self._engine(graph)
        val = np.where(graph.val_mask)[0]

        def destructive(step):
            return binary_cross_entropy_with_logits(
                step.output, graph.labels[step.batch].astype(np.float64)
            ) * -100.0

        # val_tolerance=0.0 makes the pre-training validation accuracy the
        # floor itself; measure it before the run so the restore assertion
        # below is exact regardless of how many epochs the violation takes.
        initial = engine.predict(val)
        floor = ((initial > 0).astype(int) == graph.labels[val]).mean()

        history = engine.run(
            np.where(graph.train_mask)[0],
            30,
            destructive,
            0,
            val_nodes=val,
            val_labels=graph.labels[val],
            checkpoint="floor",
            val_tolerance=0.0,
        )
        assert history.stopped_early
        assert len(history.val_accuracy) < 30
        # The violating epoch's accuracy is what tripped the stop...
        assert history.val_accuracy[-1] < floor
        # ...and the restored state respects the floor it was
        # checkpointed under (the initial state, or a later one at or
        # above the floor — never the post-violation weights).
        restored = engine.predict(val)
        restored_acc = ((restored > 0).astype(int) == graph.labels[val]).mean()
        assert restored_acc >= floor

    def test_embed_forward_feeds_representations(self, causal_graph):
        graph = causal_graph
        model, engine = self._engine(graph)
        seen_shapes = []

        def loss_fn(step):
            seen_shapes.append(step.output.shape)
            logits = model.head(step.output).reshape(-1)
            return binary_cross_entropy_with_logits(
                logits, graph.labels[step.batch].astype(np.float64)
            )

        val = np.where(graph.val_mask)[0]
        engine.run(
            np.where(graph.train_mask)[0],
            2,
            loss_fn,
            0,
            val_nodes=val,
            val_labels=graph.labels[val],
            forward="embed",
        )
        assert all(len(shape) == 2 and shape[1] == 8 for shape in seen_shapes)

    def test_seed_fn_extends_seeds_and_carries_payload(self, causal_graph):
        graph = causal_graph
        model, engine = self._engine(graph)
        extras = np.array([0, 1, 2])

        def seed_fn(batch, rng):
            return np.unique(np.concatenate([batch, extras])), "tag"

        payloads = []

        def loss_fn(step):
            payloads.append(step.payload)
            assert np.isin(extras, step.seeds).all()
            assert step.output.shape[0] == step.seeds.size
            local = step.local_index(step.batch)
            np.testing.assert_array_equal(step.seeds[local], step.batch)
            return binary_cross_entropy_with_logits(
                step.output[local], graph.labels[step.batch].astype(np.float64)
            )

        val = np.where(graph.val_mask)[0]
        engine.run(
            np.where(graph.train_mask)[0],
            2,
            loss_fn,
            0,
            val_nodes=val,
            val_labels=graph.labels[val],
            sort_batches=True,
            seed_fn=seed_fn,
        )
        assert payloads and all(payload == "tag" for payload in payloads)

    def test_epoch_callback_order(self, causal_graph):
        graph = causal_graph
        model, engine = self._engine(graph)
        events = []

        def loss_fn(step):
            if not events or events[-1] != ("step", step.epoch):
                events.append(("step", step.epoch))
            return binary_cross_entropy_with_logits(
                step.output, graph.labels[step.batch].astype(np.float64)
            )

        val = np.where(graph.val_mask)[0]
        engine.run(
            np.where(graph.train_mask)[0],
            2,
            loss_fn,
            0,
            val_nodes=val,
            val_labels=graph.labels[val],
            on_epoch_start=lambda epoch: events.append(("start", epoch)),
            on_epoch_end=lambda epoch: events.append(("end", epoch)),
        )
        assert events == [
            ("start", 0), ("step", 0), ("end", 0),
            ("start", 1), ("step", 1), ("end", 1),
        ]
