"""Tests for FairwosConfig and the end-to-end FairwosTrainer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FairwosConfig, FairwosTrainer


def _fast_config(**overrides) -> FairwosConfig:
    base = dict(
        encoder_epochs=25,
        classifier_epochs=25,
        finetune_epochs=3,
        patience=10,
        alpha=1.0,
        top_k=2,
        encoder_dim=8,
    )
    base.update(overrides)
    return FairwosConfig(**base)


class TestConfigValidation:
    def test_defaults_valid(self):
        FairwosConfig().validate()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"hidden_dim": 0},
            {"encoder_dim": 0},
            {"alpha": -1.0},
            {"top_k": 0},
            {"binarize_quantile": 0.0},
            {"encoder_epochs": 0},
            {"finetune_epochs": 0},
            {"refresh_counterfactuals_every": 0},
            {"max_pseudo_attributes": 0},
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            FairwosConfig(**kwargs).validate()

    def test_trainer_validates_at_construction(self):
        with pytest.raises(ValueError):
            FairwosTrainer(FairwosConfig(top_k=0))


class TestTrainerEndToEnd:
    def test_fit_produces_complete_result(self, small_graph):
        result = FairwosTrainer(_fast_config()).fit(small_graph, seed=0)
        assert 0.0 <= result.test.accuracy <= 1.0
        assert 0.0 <= result.test.delta_sp <= 1.0
        assert result.lambda_weights.sum() == pytest.approx(1.0)
        assert result.pseudo_attributes.shape == (small_graph.num_nodes, 8)
        assert set(result.timings) == {"encoder", "classifier_pretrain", "finetune"}
        assert result.total_seconds > 0
        assert 0.0 <= result.counterfactual_coverage <= 1.0
        assert len(result.history["finetune_loss"]) >= 1

    def test_learns_better_than_chance(self, small_graph):
        result = FairwosTrainer(
            _fast_config(encoder_epochs=60, classifier_epochs=60)
        ).fit(small_graph, seed=0)
        majority = max(small_graph.labels.mean(), 1 - small_graph.labels.mean())
        assert result.test.accuracy >= majority - 0.05

    def test_deterministic_given_seed(self, small_graph):
        r1 = FairwosTrainer(_fast_config()).fit(small_graph, seed=3)
        r2 = FairwosTrainer(_fast_config()).fit(small_graph, seed=3)
        assert r1.test.accuracy == r2.test.accuracy
        np.testing.assert_allclose(r1.lambda_weights, r2.lambda_weights)

    def test_predict_after_fit(self, small_graph):
        trainer = FairwosTrainer(_fast_config())
        trainer.fit(small_graph, seed=0)
        logits = trainer.predict(small_graph)
        assert logits.shape == (small_graph.num_nodes,)

    def test_predict_before_fit_raises(self, small_graph):
        with pytest.raises(RuntimeError):
            FairwosTrainer(_fast_config()).predict(small_graph)

    def test_gin_backbone(self, small_graph):
        result = FairwosTrainer(_fast_config(backbone="gin")).fit(small_graph, seed=0)
        assert result.test.accuracy > 0.0


class TestAblationFlags:
    def test_without_encoder_uses_raw_features(self, small_graph):
        result = FairwosTrainer(_fast_config(use_encoder=False)).fit(
            small_graph, seed=0
        )
        assert result.pseudo_attributes.shape[1] == small_graph.num_features

    def test_without_encoder_respects_attribute_cap(self, small_graph):
        result = FairwosTrainer(
            _fast_config(use_encoder=False, max_pseudo_attributes=5)
        ).fit(small_graph, seed=0)
        assert result.pseudo_attributes.shape[1] == 5
        assert result.lambda_weights.shape == (5,)

    def test_without_fairness_skips_finetune(self, small_graph):
        result = FairwosTrainer(_fast_config(use_fairness=False)).fit(
            small_graph, seed=0
        )
        assert result.history["finetune_loss"] == []
        assert result.counterfactual_coverage == 0.0
        # λ stays at its uniform initialisation.
        np.testing.assert_allclose(result.lambda_weights, 1.0 / 8)

    def test_without_weight_update_keeps_uniform_lambda(self, small_graph):
        result = FairwosTrainer(_fast_config(use_weight_update=False)).fit(
            small_graph, seed=0
        )
        np.testing.assert_allclose(result.lambda_weights, 1.0 / 8)

    def test_with_weight_update_moves_lambda(self, small_graph):
        result = FairwosTrainer(_fast_config()).fit(small_graph, seed=0)
        assert not np.allclose(result.lambda_weights, 1.0 / 8)

    def test_encoder_dim_controls_attribute_count(self, small_graph):
        result = FairwosTrainer(_fast_config(encoder_dim=4)).fit(small_graph, seed=0)
        assert result.pseudo_attributes.shape[1] == 4
        assert result.lambda_weights.shape == (4,)

    def test_val_tolerance_floor_can_stop_finetune(self, small_graph):
        # A zero tolerance + aggressive fairness lr makes early exit likely;
        # the contract is simply that training completes and respects bounds.
        result = FairwosTrainer(
            _fast_config(
                finetune_val_tolerance=0.0,
                finetune_learning_rate=0.05,
                finetune_epochs=10,
            )
        ).fit(small_graph, seed=0)
        assert len(result.history["finetune_loss"]) <= 10

    def test_mlp_encoder_backbone(self, small_graph):
        result = FairwosTrainer(_fast_config(encoder_backbone="mlp")).fit(
            small_graph, seed=0
        )
        assert result.test.accuracy > 0.0
