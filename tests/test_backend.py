"""Backend-seam tests: registry semantics, numpy-backend primitives, and the
optional torch parity subset (skipped when torch is not importable)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.config import FairwosConfig
from repro.tensor import Tensor, dtype_scope
from repro.tensor import backend as backend_mod
from repro.tensor.backend import (
    ArrayBackend,
    BackendUnavailableError,
    NumpyBackend,
    available_backends,
    backend_scope,
    get_backend,
    register_backend,
    resolve_backend,
    set_backend,
)


class TestRegistry:
    def test_numpy_is_the_default(self):
        assert get_backend().name == "numpy"
        assert get_backend().xp is np

    def test_available_backends_lists_registered_names(self):
        names = available_backends()
        assert "numpy" in names
        assert "torch" in names

    def test_resolve_backend_round_trip(self):
        assert resolve_backend("numpy") == "numpy"

    def test_resolve_backend_unknown_name(self):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("tensorflow")

    def test_resolve_backend_does_not_require_importability(self):
        # torch may or may not be installed; resolution must succeed either
        # way because configs naming it have to stay constructible.
        assert resolve_backend("torch") == "torch"

    def test_set_backend_unknown_name(self):
        with pytest.raises(ValueError, match="unknown backend"):
            set_backend("tensorflow")

    def test_register_backend_rejects_bad_names(self):
        with pytest.raises(ValueError):
            register_backend("", NumpyBackend)

    def test_unimportable_backend_raises_on_activation_only(self):
        class Broken(ArrayBackend):
            name = "broken"

            def __init__(self):
                raise BackendUnavailableError("no such library")

        register_backend("broken", Broken)
        try:
            assert resolve_backend("broken") == "broken"  # no import yet
            with pytest.raises(BackendUnavailableError):
                set_backend("broken")
            # A failed activation must not poison the active backend.
            assert get_backend().name == "numpy"
        finally:
            del backend_mod._REGISTRY["broken"]

    def test_backend_scope_restores_previous(self):
        before = get_backend()
        with backend_scope("numpy") as active:
            assert active.name == "numpy"
            assert get_backend() is active
        assert get_backend() is before

    def test_backend_scope_restores_on_exception(self):
        before = get_backend()
        with pytest.raises(RuntimeError):
            with backend_scope("numpy"):
                raise RuntimeError("boom")
        assert get_backend() is before

    def test_numpy_instance_is_cached(self):
        with backend_scope("numpy") as first:
            pass
        with backend_scope("numpy") as second:
            pass
        assert first is second

    def test_set_backend_accepts_instances(self):
        custom = NumpyBackend()
        previous = set_backend(custom)
        try:
            assert get_backend() is custom
        finally:
            set_backend(previous)
        assert get_backend() is previous


class TestConfigIntegration:
    def test_default_backend_validates(self):
        FairwosConfig().validate()

    def test_torch_backend_config_is_constructible(self):
        # Validation checks the name only; importability is checked at fit
        # time, so this must pass with or without torch installed.
        FairwosConfig(backend="torch").validate()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            FairwosConfig(backend="tensorflow").validate()


class TestNumpyPrimitives:
    def test_asarray_is_identity_for_matching_dtype(self):
        b = get_backend()
        x = np.ones(4)
        assert b.asarray(x) is x
        assert b.asarray(x, dtype=np.dtype("float64")) is x

    def test_asarray_casts_on_mismatch(self):
        b = get_backend()
        x = np.ones(4, dtype=np.float32)
        out = b.asarray(x, dtype=np.dtype("float64"))
        assert out.dtype == np.float64
        assert x.dtype == np.float32  # source untouched

    def test_copy_is_deep(self):
        b = get_backend()
        x = np.ones(3)
        y = b.copy(x)
        y[0] = 7.0
        assert x[0] == 1.0

    def test_index_add_accumulates_duplicates(self):
        b = get_backend()
        target = np.zeros(3)
        b.index_add(target, np.array([0, 0, 2]), np.array([1.0, 2.0, 5.0]))
        np.testing.assert_array_equal(target, [3.0, 0.0, 5.0])

    @pytest.mark.parametrize("rows", [16, 8192])  # add.at and CSR branches
    def test_scatter_rows_matches_add_at(self, rows):
        b = get_backend()
        rng = np.random.default_rng(0)
        idx = rng.integers(0, 10, size=rows)
        grad = rng.standard_normal((rows, 4))
        out = b.scatter_rows(idx, grad, (10, 4))
        expected = np.zeros((10, 4))
        np.add.at(expected, idx, grad)
        np.testing.assert_allclose(out, expected, atol=1e-12)

    def test_spmm_handle_round_trip(self):
        b = get_backend()
        rng = np.random.default_rng(1)
        matrix = sp.random(6, 5, density=0.5, random_state=2, format="coo")
        dense = rng.standard_normal((5, 3))
        handle = b.prepare_spmm(matrix, np.dtype("float64"))
        np.testing.assert_allclose(
            b.spmm_apply(handle, dense), matrix.toarray() @ dense
        )
        grad = rng.standard_normal((6, 3))
        np.testing.assert_allclose(
            b.spmm_adjoint(handle, grad), matrix.toarray().T @ grad
        )

    def test_prepare_spmm_casts_to_operand_dtype(self):
        b = get_backend()
        matrix = sp.eye(4, format="csr")  # float64 constant
        handle = b.prepare_spmm(matrix, np.dtype("float32"))
        assert handle.dtype == np.float32


TORCH_PARITY_TOL = dict(rtol=1e-10, atol=1e-10)


class TestTorchParity:
    """Numerical parity of the torch backend against numpy on the op surface
    the engine uses.  Requires torch; skips (never fails) without it."""

    @pytest.fixture(autouse=True)
    def _torch(self):
        pytest.importorskip("torch")

    def _grads(self, backend_name, fn, *arrays):
        with backend_scope(backend_name):
            tensors = [Tensor(a, requires_grad=True) for a in arrays]
            out = fn(*tensors)
            out.backward()
            value = get_backend().to_numpy(out.data)
            grads = [get_backend().to_numpy(t.grad) for t in tensors]
        return value, grads

    def _assert_parity(self, fn, *arrays):
        value_np, grads_np = self._grads("numpy", fn, *arrays)
        value_t, grads_t = self._grads("torch", fn, *arrays)
        np.testing.assert_allclose(value_t, value_np, **TORCH_PARITY_TOL)
        for gt, gn in zip(grads_t, grads_np):
            np.testing.assert_allclose(gt, gn, **TORCH_PARITY_TOL)

    def test_elementwise_chain(self):
        from repro.tensor import ops

        rng = np.random.default_rng(0)
        x = rng.standard_normal((4, 3))

        def fn(t):
            return ops.sum(ops.tanh(ops.mul(ops.sigmoid(t), ops.exp(t))))

        self._assert_parity(fn, x)

    def test_matmul_softmax_reduction(self):
        from repro.tensor import ops

        rng = np.random.default_rng(1)
        a = rng.standard_normal((5, 4))
        w = rng.standard_normal((4, 2))

        def fn(ta, tw):
            return ops.sum(ops.log_softmax(ops.matmul(ta, tw), axis=1))

        self._assert_parity(fn, a, w)

    def test_spmm_and_gather(self):
        from repro.tensor import ops

        rng = np.random.default_rng(2)
        adj = sp.random(6, 6, density=0.4, random_state=3, format="csr")
        x = rng.standard_normal((6, 3))
        idx = np.array([0, 2, 2, 5])

        def fn(t):
            return ops.sum(ops.gather(ops.spmm(adj, t), idx))

        self._assert_parity(fn, x)

    def test_fused_bce_parity(self):
        from repro.nn.losses import binary_cross_entropy_with_logits

        rng = np.random.default_rng(3)
        logits = rng.standard_normal(32)
        targets = (rng.random(32) > 0.5).astype(float)
        weights = rng.random(32)

        def fn(t):
            return binary_cross_entropy_with_logits(t, targets, weights)

        self._assert_parity(fn, logits)

    def test_fused_fair_loss_parity(self):
        from repro.core.fairloss import _fused_pair_disparities
        from repro.tensor import ops

        rng = np.random.default_rng(4)
        N, d, M, K = 40, 6, 2, 3
        h = rng.standard_normal((N, d))
        idx = rng.integers(0, N, size=(M, N, K))
        anchors = np.arange(N, dtype=np.int64)
        scale = rng.random((M, N))

        def fn(t):
            return ops.sum(_fused_pair_disparities(t, idx, anchors, scale))

        self._assert_parity(fn, h)

    def test_fused_adam_parity(self):
        from repro.nn.module import Parameter
        from repro.optim import Adam

        rng = np.random.default_rng(5)
        w0 = rng.standard_normal((4, 3))
        grads = [rng.standard_normal((4, 3)) for _ in range(3)]
        results = {}
        for name in ("numpy", "torch"):
            with backend_scope(name):
                p = Parameter(w0.copy())
                opt = Adam([p], lr=0.05, weight_decay=0.01)
                for g in grads:
                    p.grad = get_backend().asarray(g)
                    opt.step()
                results[name] = get_backend().to_numpy(p.data)
        np.testing.assert_allclose(
            results["torch"], results["numpy"], **TORCH_PARITY_TOL
        )

    def test_dtype_scope_composes_with_torch(self):
        with backend_scope("torch"), dtype_scope("float32"):
            t = Tensor(np.ones(3))
            assert get_backend().np_dtype(t.data) == np.float32
