"""Tests for the five comparison baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import FairGKD, FairRF, KSMOTE, RemoveR, Vanilla
from repro.baselines.base import MethodResult
from repro.graph import Graph

FAST = dict(epochs=30, patience=10)


@pytest.mark.parametrize(
    "cls", [Vanilla, RemoveR, KSMOTE, FairRF, FairGKD],
    ids=["vanilla", "remover", "ksmote", "fairrf", "fairgkd"],
)
class TestBaselineContract:
    def test_fit_returns_method_result(self, cls, small_graph):
        result = cls(**FAST).fit(small_graph, seed=0)
        assert isinstance(result, MethodResult)
        assert result.method == cls.name
        assert 0.0 <= result.test.accuracy <= 1.0
        assert 0.0 <= result.test.delta_sp <= 1.0
        assert result.seconds > 0.0

    def test_deterministic_given_seed(self, cls, small_graph):
        r1 = cls(**FAST).fit(small_graph, seed=1)
        r2 = cls(**FAST).fit(small_graph, seed=1)
        assert r1.test.accuracy == r2.test.accuracy
        assert r1.test.delta_sp == r2.test.delta_sp

    def test_gin_backbone(self, cls, small_graph):
        result = cls(backbone="gin", **FAST).fit(small_graph, seed=0)
        assert 0.0 <= result.test.accuracy <= 1.0


class TestVanilla:
    def test_learns_the_task(self, small_graph):
        result = Vanilla(epochs=80, patience=30).fit(small_graph, seed=0)
        majority = max(small_graph.labels.mean(), 1 - small_graph.labels.mean())
        assert result.test.accuracy >= majority - 0.05


class TestRemoveR:
    def test_requires_related_indices(self, small_graph):
        stripped = Graph(
            adjacency=small_graph.adjacency,
            features=small_graph.features,
            labels=small_graph.labels,
            sensitive=small_graph.sensitive,
            train_mask=small_graph.train_mask,
            val_mask=small_graph.val_mask,
            test_mask=small_graph.test_mask,
        )
        with pytest.raises(ValueError, match="related"):
            RemoveR(**FAST).fit(stripped, seed=0)

    def test_rejects_removing_everything(self, small_graph):
        all_related = Graph(
            adjacency=small_graph.adjacency,
            features=small_graph.features,
            labels=small_graph.labels,
            sensitive=small_graph.sensitive,
            train_mask=small_graph.train_mask,
            val_mask=small_graph.val_mask,
            test_mask=small_graph.test_mask,
            related_feature_indices=np.arange(small_graph.num_features),
        )
        with pytest.raises(ValueError, match="every feature"):
            RemoveR(**FAST).fit(all_related, seed=0)

    def test_reports_removed_count(self, small_graph):
        result = RemoveR(**FAST).fit(small_graph, seed=0)
        assert result.extra["removed_columns"] == small_graph.related_feature_indices.size

    def test_minibatch_mode_close_to_fullbatch(self, small_graph):
        full = RemoveR(epochs=60, patience=20).fit(small_graph, seed=0)
        mini = RemoveR(
            epochs=60, patience=20, minibatch=True, fanouts=(10,), batch_size=64
        ).fit(small_graph, seed=0)
        assert mini.extra["removed_columns"] == full.extra["removed_columns"]
        # Same contract as Vanilla's minibatch mode: competitive utility.
        assert mini.test.accuracy >= full.test.accuracy - 0.05

    def test_minibatch_deterministic_given_seed(self, small_graph):
        kwargs = dict(epochs=30, patience=10, minibatch=True, batch_size=64)
        r1 = RemoveR(**kwargs).fit(small_graph, seed=3)
        r2 = RemoveR(**kwargs).fit(small_graph, seed=3)
        assert r1.test.accuracy == r2.test.accuracy
        assert r1.test.delta_sp == r2.test.delta_sp


class TestKSMOTE:
    def test_reports_synthetic_nodes(self, small_graph):
        result = KSMOTE(**FAST).fit(small_graph, seed=0)
        assert result.extra["synthetic_nodes"] >= 0
        assert result.extra["num_clusters"] == 4

    def test_no_oversample_option(self, small_graph):
        result = KSMOTE(oversample=False, **FAST).fit(small_graph, seed=0)
        assert result.extra["synthetic_nodes"] == 0

    def test_synthetic_budget_respected(self, small_graph):
        result = KSMOTE(max_synthetic_fraction=0.05, **FAST).fit(small_graph, seed=0)
        assert result.extra["synthetic_nodes"] <= int(0.05 * small_graph.num_nodes)

    def test_parity_weight_zero_disables_regulariser(self, small_graph):
        result = KSMOTE(parity_weight=0.0, **FAST).fit(small_graph, seed=0)
        assert 0.0 <= result.test.accuracy <= 1.0

    def test_rejects_one_cluster(self):
        with pytest.raises(ValueError):
            KSMOTE(num_clusters=1)

    def test_rejects_zero_kmeans_batch_size(self):
        """An explicit 0 must be rejected, not silently collapsed into
        "follow batch_size" by an `or` fallback (falsy-zero regression)."""
        with pytest.raises(ValueError, match="kmeans_batch_size"):
            KSMOTE(kmeans_batch_size=0)
        KSMOTE(kmeans_batch_size=None)  # the documented follow-default

    def test_extend_adjacency_wires_parent_neighbourhood(self, tiny_graph):
        extended = KSMOTE._extend_adjacency(tiny_graph.adjacency, [0])
        assert extended.shape == (7, 7)
        # Synthetic node 6 connects to node 0 and node 0's neighbours {1, 2}.
        neighbors = set(extended[6].indices)
        assert neighbors == {0, 1, 2}
        # Symmetry preserved.
        assert (extended != extended.T).nnz == 0

    @staticmethod
    def _extend_adjacency_reference(adjacency, parents):
        """The pre-append-only implementation: full (N+S)² COO round-trip.

        Kept verbatim as the parity oracle for the block-stacked rewrite."""
        import scipy.sparse as sp

        parents = np.asarray(parents, dtype=np.int64)
        num_real = adjacency.shape[0]
        num_total = num_real + parents.size
        new_ids = num_real + np.arange(parents.size, dtype=np.int64)
        degrees = np.diff(adjacency.indptr)[parents]
        total = int(degrees.sum())
        row_starts = np.concatenate(([0], np.cumsum(degrees)))[:-1]
        within = np.arange(total) - np.repeat(row_starts, degrees)
        neighbors = adjacency.indices[
            np.repeat(adjacency.indptr[parents], degrees) + within
        ]
        synth_of_edge = np.repeat(new_ids, degrees)
        rows = np.concatenate([synth_of_edge, neighbors, new_ids, parents])
        cols = np.concatenate([neighbors, synth_of_edge, parents, new_ids])
        coo = sp.coo_matrix(adjacency)
        all_rows = np.concatenate([coo.row, rows])
        all_cols = np.concatenate([coo.col, cols])
        data = np.ones(all_rows.size)
        out = sp.csr_matrix(
            (data, (all_rows, all_cols)), shape=(num_total, num_total)
        )
        out.sum_duplicates()
        out.data = np.ones_like(out.data)
        return out

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_extend_adjacency_bit_identical_to_coo_round_trip(self, seed):
        """The append-only block stacking must reproduce the old full COO
        reconstruction exactly: same indptr, same indices, same data."""
        import scipy.sparse as sp

        rng = np.random.default_rng(seed)
        n = int(rng.integers(20, 80))
        density = rng.uniform(0.02, 0.15)
        upper = sp.random(n, n, density=density, random_state=int(seed), format="coo")
        sym = upper + upper.T  # symmetric, arbitrary float data
        adjacency = sp.csr_matrix(sym)
        if seed % 2:  # self-loops exercise the duplicate (parent, synth) edge
            adjacency = sp.csr_matrix(adjacency + sp.eye(n, format="csr"))
        parents = rng.integers(0, n, size=int(rng.integers(1, 30)))
        fast = KSMOTE._extend_adjacency(adjacency, parents)
        slow = self._extend_adjacency_reference(adjacency, parents)
        assert fast.shape == slow.shape
        np.testing.assert_array_equal(fast.indptr, slow.indptr)
        np.testing.assert_array_equal(fast.indices, slow.indices)
        np.testing.assert_array_equal(fast.data, slow.data)
        assert fast.data.dtype == slow.data.dtype

    def test_extend_adjacency_duplicate_parents(self):
        """Two synthetic nodes sharing one parent stay distinct rows."""
        import scipy.sparse as sp

        adjacency = sp.csr_matrix(
            np.array(
                [[0, 1, 1, 0], [1, 0, 0, 1], [1, 0, 0, 0], [0, 1, 0, 0]],
                dtype=np.float64,
            )
        )
        fast = KSMOTE._extend_adjacency(adjacency, [2, 2])
        slow = self._extend_adjacency_reference(adjacency, [2, 2])
        np.testing.assert_array_equal(fast.indptr, slow.indptr)
        np.testing.assert_array_equal(fast.indices, slow.indices)
        np.testing.assert_array_equal(fast.data, slow.data)


class TestFairRF:
    def test_requires_related_indices(self, small_graph):
        stripped = Graph(
            adjacency=small_graph.adjacency,
            features=small_graph.features,
            labels=small_graph.labels,
            sensitive=small_graph.sensitive,
            train_mask=small_graph.train_mask,
            val_mask=small_graph.val_mask,
            test_mask=small_graph.test_mask,
        )
        with pytest.raises(ValueError, match="related"):
            FairRF(**FAST).fit(stripped, seed=0)

    def test_weights_live_on_simplex(self, small_graph):
        result = FairRF(**FAST).fit(small_graph, seed=0)
        weights = result.extra["final_weights"]
        assert weights.sum() == pytest.approx(1.0)
        assert (weights >= 0).all()

    def test_rejects_negative_beta(self):
        with pytest.raises(ValueError):
            FairRF(beta=-1.0)

    def test_beta_zero_close_to_vanilla_utility(self, small_graph):
        fair = FairRF(beta=0.0, **FAST).fit(small_graph, seed=0)
        assert fair.test.accuracy > 0.4


class TestFairGKD:
    def test_teacher_epochs_default_and_override(self, small_graph):
        result = FairGKD(teacher_epochs=10, **FAST).fit(small_graph, seed=0)
        assert result.extra["teacher_epochs"] == 10
        result = FairGKD(**FAST).fit(small_graph, seed=0)
        assert result.extra["teacher_epochs"] == FAST["epochs"]

    def test_rejects_negative_distill_weight(self):
        with pytest.raises(ValueError):
            FairGKD(distill_weight=-0.1)

    def test_rejects_zero_teacher_epochs(self):
        """teacher_epochs=0 must be rejected, not silently collapsed into
        "follow epochs" by an `or` fallback (falsy-zero regression)."""
        with pytest.raises(ValueError, match="teacher_epochs"):
            FairGKD(teacher_epochs=0)
        FairGKD(teacher_epochs=None)  # the documented follow-default

    def test_slower_than_vanilla(self, small_graph):
        # Two extra teachers must cost wall-clock time (Fig. 8's claim).
        vanilla = Vanilla(**FAST).fit(small_graph, seed=0)
        gkd = FairGKD(**FAST).fit(small_graph, seed=0)
        assert gkd.seconds > vanilla.seconds
