"""Tests for the GNN backbones."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gnnzoo import GAT, GCN, GIN, GraphSAGE, make_backbone
from repro.tensor import Tensor
from repro.tensor import ops

BACKBONES = ["gcn", "gin", "gat", "sage"]


@pytest.fixture
def features(tiny_graph):
    return Tensor(tiny_graph.features)


class TestFactory:
    def test_registry(self):
        assert isinstance(make_backbone("gcn", 4, 8, np.random.default_rng(0)), GCN)
        assert isinstance(make_backbone("GIN", 4, 8, np.random.default_rng(0)), GIN)
        assert isinstance(make_backbone("gat", 4, 8, np.random.default_rng(0)), GAT)
        assert isinstance(
            make_backbone("sage", 4, 8, np.random.default_rng(0)), GraphSAGE
        )

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown backbone"):
            make_backbone("transformer", 4, 8, np.random.default_rng(0))


@pytest.mark.parametrize("name", BACKBONES)
class TestBackboneContract:
    def test_logit_shape(self, name, tiny_graph, features):
        model = make_backbone(name, 4, 8, np.random.default_rng(0))
        assert model(features, tiny_graph.adjacency).shape == (6,)

    def test_embed_shape(self, name, tiny_graph, features):
        model = make_backbone(name, 4, 8, np.random.default_rng(0))
        assert model.embed(features, tiny_graph.adjacency).shape == (6, 8)

    def test_all_parameters_receive_gradients(self, name, tiny_graph, features):
        model = make_backbone(name, 4, 8, np.random.default_rng(0))
        loss = ops.mean(ops.power(model(features, tiny_graph.adjacency), 2.0))
        loss.backward()
        missing = [
            pname for pname, p in model.named_parameters() if p.grad is None
        ]
        assert not missing, f"no gradient for {missing}"

    def test_deterministic_given_seed(self, name, tiny_graph, features):
        out1 = make_backbone(name, 4, 8, np.random.default_rng(7))(
            features, tiny_graph.adjacency
        )
        out2 = make_backbone(name, 4, 8, np.random.default_rng(7))(
            features, tiny_graph.adjacency
        )
        np.testing.assert_allclose(out1.data, out2.data)

    def test_two_layers(self, name, tiny_graph, features):
        model = make_backbone(name, 4, 8, np.random.default_rng(0), num_layers=2)
        assert model(features, tiny_graph.adjacency).shape == (6,)

    def test_rejects_zero_layers(self, name):
        with pytest.raises(ValueError):
            make_backbone(name, 4, 8, np.random.default_rng(0), num_layers=0)

    def test_dropout_only_in_training(self, name, tiny_graph, features):
        model = make_backbone(name, 4, 8, np.random.default_rng(0), dropout=0.5)
        model.eval()
        out1 = model(features, tiny_graph.adjacency)
        out2 = model(features, tiny_graph.adjacency)
        np.testing.assert_allclose(out1.data, out2.data)


class TestMessagePassingSemantics:
    def test_gcn_isolated_node_keeps_self_signal(self, tiny_graph):
        # With self-loops an isolated node's embedding depends only on itself.
        import scipy.sparse as sp

        adj = sp.csr_matrix((3, 3))
        model = GCN(2, 4, np.random.default_rng(0))
        feats = np.array([[1.0, 0.0], [0.0, 1.0], [0.0, 0.0]])
        out = model.embed(Tensor(feats), adj)
        np.testing.assert_allclose(out.data[2], np.maximum(model.layers[0].bias.data, 0.0))

    def test_gin_sum_aggregation(self):
        # Star graph: centre sees the sum of leaves (+ (1+eps)*self).
        import scipy.sparse as sp

        adj = sp.csr_matrix(
            (np.ones(6), ([0, 0, 0, 1, 2, 3], [1, 2, 3, 0, 0, 0])), shape=(4, 4)
        )
        model = GIN(1, 4, np.random.default_rng(0))
        feats = np.array([[0.0], [1.0], [2.0], [3.0]])
        # Pre-MLP aggregation for the centre node is (1+0)*0 + (1+2+3) = 6.
        matrix = model._propagation_matrix(adj)
        agg = matrix @ feats
        assert agg[0, 0] == pytest.approx(6.0)

    def test_gat_attention_rows_normalised(self, tiny_graph):
        model = GAT(4, 8, np.random.default_rng(0))
        feats = Tensor(np.random.default_rng(1).normal(size=(6, 4)))
        src, dst = model._edges(tiny_graph.adjacency)
        # With self-loops every node has at least one incoming edge.
        assert set(dst) == set(range(6))
        out = model.embed(feats, tiny_graph.adjacency)
        assert np.isfinite(out.data).all()

    def test_sage_separate_self_and_neighbor_weights(self, tiny_graph):
        model = GraphSAGE(4, 8, np.random.default_rng(0))
        assert len(model.self_layers) == 1
        assert len(model.neighbor_layers) == 1
        assert model.neighbor_layers[0].bias is None

    def test_propagation_cache_reused(self, tiny_graph):
        model = GCN(4, 8, np.random.default_rng(0))
        feats = Tensor(np.zeros((6, 4)))
        model.embed(feats, tiny_graph.adjacency)
        cached = model._prop_cache[id(tiny_graph.adjacency)]
        model.embed(feats, tiny_graph.adjacency)
        assert model._prop_cache[id(tiny_graph.adjacency)] is cached

    def test_head_maps_hidden_to_logit(self, tiny_graph):
        model = GCN(4, 8, np.random.default_rng(0))
        feats = Tensor(np.random.default_rng(2).normal(size=(6, 4)))
        h = model.embed(feats, tiny_graph.adjacency)
        logits = model.head(h).reshape(-1)
        np.testing.assert_allclose(
            logits.data, model(feats, tiny_graph.adjacency).data
        )
