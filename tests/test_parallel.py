"""Multiprocess sampler workers (repro.training.parallel).

The headline contract is *bit-identity*: with the same seeds, a run with
``num_workers > 0`` must produce byte-for-byte the results of the serial
engine — same losses, same weights, same rng end state — because workers
only evaluate pre-drawn sampling keys (the draw/select split of
:class:`repro.graph.sampling.NeighborSampler`).
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.ann import RPForestIndex
from repro.graph.sampling import NeighborSampler
from repro.tensor import Tensor
from repro.training import MinibatchEngine, WorkerPool, fit_minibatch
from repro.gnnzoo import make_backbone


def _random_adjacency(num_nodes: int, rng: np.random.Generator) -> sp.csr_matrix:
    rows = rng.integers(0, num_nodes, size=num_nodes * 6)
    cols = rng.integers(0, num_nodes, size=num_nodes * 6)
    keep = rows != cols
    data = np.ones(keep.sum())
    adj = sp.csr_matrix(
        (data, (rows[keep], cols[keep])), shape=(num_nodes, num_nodes)
    )
    adj = ((adj + adj.T) > 0).astype(np.float64)
    return adj.tocsr()


def _state_arrays(model) -> dict:
    return {k: np.array(v, copy=True) for k, v in model.state_dict().items()}


def _fit_history(graph, *, num_workers, prefetch_epochs=1, cache_epochs=1):
    rng = np.random.default_rng(11)
    model = make_backbone("sage", graph.num_features, 8, rng, num_layers=2)
    history = fit_minibatch(
        model,
        Tensor(graph.features),
        graph.adjacency,
        graph.labels,
        graph.train_mask,
        graph.val_mask,
        epochs=6,
        fanouts=(5, 3),
        batch_size=64,
        rng=np.random.default_rng(3),
        cache_epochs=cache_epochs,
        num_workers=num_workers,
        prefetch_epochs=prefetch_epochs,
    )
    return history, _state_arrays(model)


class TestSamplerSplit:
    @pytest.mark.parametrize("replace", [False, True])
    @pytest.mark.parametrize("fanouts", [(5,), (7, 3), (None,)])
    def test_draw_select_split_matches_fused(self, rng, replace, fanouts):
        """draw_edge_keys + sample_blocks_with_keys == sample_blocks."""
        adjacency = _random_adjacency(300, rng)
        sampler = NeighborSampler(adjacency, fanouts, replace=replace)
        seeds = rng.choice(300, size=40, replace=False)

        fused_rng = np.random.default_rng(99)
        split_rng = np.random.default_rng(99)
        fused = sampler.sample_blocks(seeds, fused_rng)

        dst = np.asarray(seeds, dtype=np.int64)
        keys_list = []
        for fanout in reversed(sampler.fanouts):
            keys = sampler.draw_edge_keys(dst, fanout, split_rng)
            keys_list.append(keys)
            block = sampler.sample_block_with_keys(dst, fanout, keys)
            dst = block.src_nodes
        split = sampler.sample_blocks_with_keys(seeds, keys_list)

        assert fused_rng.bit_generator.state == split_rng.bit_generator.state
        for a, b in zip(fused, split):
            assert np.array_equal(a.src_nodes, b.src_nodes)
            assert np.array_equal(a.dst_nodes, b.dst_nodes)
            assert np.array_equal(a.adjacency.indptr, b.adjacency.indptr)
            assert np.array_equal(a.adjacency.indices, b.adjacency.indices)
            assert np.array_equal(a.adjacency.data, b.adjacency.data)


class TestParallelBitIdentity:
    @pytest.mark.parametrize("num_workers", [2, 4])
    def test_fit_minibatch_matches_serial(self, small_graph, num_workers):
        serial_hist, serial_state = _fit_history(small_graph, num_workers=0)
        par_hist, par_state = _fit_history(small_graph, num_workers=num_workers)
        assert par_hist.train_loss == serial_hist.train_loss
        assert par_hist.val_accuracy == serial_hist.val_accuracy
        for key in serial_state:
            assert np.array_equal(serial_state[key], par_state[key]), key

    def test_prefetch_and_cache_interplay(self, small_graph):
        serial_hist, serial_state = _fit_history(
            small_graph, num_workers=0, cache_epochs=3
        )
        for prefetch in (0, 2):
            par_hist, par_state = _fit_history(
                small_graph,
                num_workers=2,
                prefetch_epochs=prefetch,
                cache_epochs=3,
            )
            assert par_hist.train_loss == serial_hist.train_loss
            for key in serial_state:
                assert np.array_equal(serial_state[key], par_state[key])

    def test_fairwos_finetune_matches_serial(self, small_graph):
        from repro.core import FairwosConfig, FairwosTrainer

        def run(num_workers):
            config = FairwosConfig(
                minibatch=True,
                encoder_epochs=3,
                classifier_epochs=3,
                finetune_epochs=3,
                batch_size=64,
                cf_backend="ann",
                num_workers=num_workers,
            )
            return FairwosTrainer(config).fit(small_graph, seed=0)

        serial = run(0)
        parallel = run(2)
        assert parallel.history == serial.history
        assert np.array_equal(parallel.lambda_weights, serial.lambda_weights)
        assert parallel.test.accuracy == serial.test.accuracy


class TestForestSharding:
    def test_build_and_update_match_serial(self, rng):
        X = rng.normal(size=(400, 8))
        serial = RPForestIndex(num_trees=6, leaf_size=16, seed=5)
        serial.build(X)
        sharded = RPForestIndex(num_trees=6, leaf_size=16, seed=5)
        with WorkerPool(3) as pool:
            sharded.build(X, pool=pool)
            drifted = X.copy()
            drifted[: len(X) // 3] += rng.normal(
                scale=0.5, size=(len(X) // 3, 8)
            )
            serial.update(drifted)
            sharded.update(drifted, pool=pool)

        serial_arrays = serial.to_arrays()
        sharded_arrays = sharded.to_arrays()
        assert serial_arrays.keys() == sharded_arrays.keys()
        for key in serial_arrays:
            assert np.array_equal(serial_arrays[key], sharded_arrays[key]), key

        queries = rng.choice(400, size=25, replace=False)
        assert np.array_equal(
            serial.query(drifted[queries], 5), sharded.query(drifted[queries], 5)
        )


class TestPoolRobustness:
    def test_worker_crash_falls_back_to_local(self, small_graph):
        # Depth 1 so fresh epochs actually fan block assembly to the pool
        # (deeper chains are built by the prefetch thread in-process);
        # prefetch_epochs=0 keeps production synchronous so the fallback
        # warning surfaces deterministically in the training thread.
        def fit(num_workers, worker_pool=None):
            rng = np.random.default_rng(11)
            model = make_backbone("sage", small_graph.num_features, 8, rng)
            history = fit_minibatch(
                model,
                Tensor(small_graph.features),
                small_graph.adjacency,
                small_graph.labels,
                small_graph.train_mask,
                small_graph.val_mask,
                epochs=6,
                fanouts=(5,),
                batch_size=64,
                rng=np.random.default_rng(3),
                num_workers=num_workers,
                prefetch_epochs=0,
                worker_pool=worker_pool,
            )
            return history, _state_arrays(model)

        serial_hist, serial_state = fit(0)
        pool = WorkerPool(2, adjacency=small_graph.adjacency)
        try:
            for proc in pool._workers:
                proc.terminate()
                proc.join(timeout=5)
            with pytest.warns(RuntimeWarning, match="worker"):
                history, state = fit(2, worker_pool=pool)
        finally:
            pool.shutdown()
        assert not pool.healthy
        assert history.train_loss == serial_hist.train_loss
        for key in serial_state:
            assert np.array_equal(serial_state[key], state[key])

    def test_engine_rejects_foreign_pool(self, small_graph, rng):
        other = _random_adjacency(100, rng)
        with WorkerPool(1, adjacency=other) as pool:
            engine = MinibatchEngine(
                make_backbone("sage", small_graph.num_features, 8, rng),
                small_graph.features,
                small_graph.adjacency,
                fanouts=(5,),
                batch_size=64,
                num_workers=2,
                worker_pool=pool,
            )
            val = np.where(small_graph.val_mask)[0]
            with pytest.raises(ValueError, match="different adjacency"):
                engine.run(
                    np.where(small_graph.train_mask)[0],
                    1,
                    lambda step: Tensor(np.zeros(())),
                    np.random.default_rng(0),
                    val_nodes=val,
                    val_labels=small_graph.labels[val],
                )

    def test_num_workers_zero_never_builds_pool(self, small_graph):
        """num_workers=0 is byte-identical serial: no pool, no prefetcher."""
        rng = np.random.default_rng(11)
        engine = MinibatchEngine(
            make_backbone("sage", small_graph.num_features, 8, rng),
            small_graph.features,
            small_graph.adjacency,
            fanouts=(5,),
            batch_size=64,
        )
        assert engine.num_workers == 0
        assert engine._shared_pool is None
        assert engine._active_prefetcher is None
