"""Tests for SGD / Adam and gradient clipping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Linear, Parameter
from repro.optim import SGD, Adam, clip_grad_norm
from repro.tensor import Tensor
from repro.tensor import ops


def _quadratic_loss(param: Parameter) -> float:
    """One step of minimising ||p - 3||² returns the loss value."""
    loss = ops.sum(ops.power(ops.sub(param, 3.0), 2.0))
    return loss


class TestSGD:
    def test_converges_on_quadratic(self):
        param = Parameter(np.zeros(4))
        opt = SGD([param], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            _quadratic_loss(param).backward()
            opt.step()
        np.testing.assert_allclose(param.data, 3.0, atol=1e-4)

    def test_momentum_accelerates(self):
        plain, momentum = Parameter(np.zeros(1)), Parameter(np.zeros(1))
        opt_plain = SGD([plain], lr=0.01)
        opt_momentum = SGD([momentum], lr=0.01, momentum=0.9)
        for _ in range(30):
            for param, opt in ((plain, opt_plain), (momentum, opt_momentum)):
                opt.zero_grad()
                _quadratic_loss(param).backward()
                opt.step()
        assert abs(momentum.data[0] - 3.0) < abs(plain.data[0] - 3.0)

    def test_weight_decay_shrinks(self):
        param = Parameter(np.full(1, 10.0))
        opt = SGD([param], lr=0.1, weight_decay=1.0)
        opt.zero_grad()
        ops.sum(param * 0.0).backward()
        opt.step()
        assert param.data[0] == pytest.approx(9.0)

    def test_skips_params_without_grad(self):
        param = Parameter(np.ones(1))
        SGD([param], lr=0.1).step()
        assert param.data[0] == 1.0

    def test_rejects_bad_lr(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.ones(1))], lr=0.0)

    def test_rejects_empty_params(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        param = Parameter(np.zeros(4))
        opt = Adam([param], lr=0.1)
        for _ in range(300):
            opt.zero_grad()
            _quadratic_loss(param).backward()
            opt.step()
        np.testing.assert_allclose(param.data, 3.0, atol=1e-3)

    def test_first_step_size_is_about_lr(self):
        # Bias correction makes the very first Adam step ≈ lr in magnitude.
        param = Parameter(np.zeros(1))
        opt = Adam([param], lr=0.05)
        opt.zero_grad()
        _quadratic_loss(param).backward()
        opt.step()
        assert abs(param.data[0]) == pytest.approx(0.05, rel=1e-3)

    def test_weight_decay(self):
        param = Parameter(np.full(1, 5.0))
        opt = Adam([param], lr=0.01, weight_decay=0.1)
        opt.zero_grad()
        ops.sum(param * 0.0).backward()
        opt.step()
        assert param.data[0] < 5.0

    def test_rejects_bad_betas(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.ones(1))], betas=(1.0, 0.999))

    def test_trains_linear_regression(self):
        rng = np.random.default_rng(0)
        true_w = np.array([[2.0], [-1.0]])
        x = rng.normal(size=(200, 2))
        y = x @ true_w
        layer = Linear(2, 1, rng, bias=False)
        opt = Adam(layer.parameters(), lr=0.05)
        for _ in range(300):
            opt.zero_grad()
            pred = layer(Tensor(x))
            loss = ops.mean(ops.power(ops.sub(pred, Tensor(y)), 2.0))
            loss.backward()
            opt.step()
        np.testing.assert_allclose(layer.weight.data, true_w, atol=0.05)


class TestClipGradNorm:
    def test_clips_large_gradients(self):
        param = Parameter(np.zeros(3))
        param.grad = np.array([3.0, 4.0, 0.0])  # norm 5
        norm = clip_grad_norm([param], max_norm=1.0)
        assert norm == pytest.approx(5.0)
        assert np.linalg.norm(param.grad) == pytest.approx(1.0)

    def test_leaves_small_gradients(self):
        param = Parameter(np.zeros(2))
        param.grad = np.array([0.3, 0.4])
        clip_grad_norm([param], max_norm=1.0)
        np.testing.assert_allclose(param.grad, [0.3, 0.4])

    def test_ignores_none_grads(self):
        param = Parameter(np.zeros(2))
        assert clip_grad_norm([param], max_norm=1.0) == 0.0
