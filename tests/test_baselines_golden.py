"""Golden-value regression fixture for the five comparison baselines.

``golden_baselines.json`` pins seed-0 test accuracy / ΔSP / ΔEO for every
baseline on the small causal graph, so refactors of the training engines,
the fair losses or the sampling stack cannot *silently* shift the numbers
Table 2 is built from — an intentional change must regenerate the fixture
and show up in review.

Regenerate after a deliberate behaviour change with::

    PYTHONPATH=src python tests/test_baselines_golden.py

The metrics are deterministic functions of the seed (all stochasticity goes
through ``numpy.random.Generator``), so the comparison is tight (1e-9);
accuracy/ΔSP/ΔEO are exact small-integer ratios, which also makes them
robust to BLAS-level float variation across platforms.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.baselines import FairGKD, FairRF, KSMOTE, RemoveR, Vanilla
from repro.datasets import BiasSpec, generate_biased_graph

GOLDEN_PATH = Path(__file__).parent / "golden_baselines.json"
# The run_method defaults — the budget Table 2 is actually produced at.
BUDGET = dict(epochs=150, patience=30)
BASELINES = {
    "vanilla": Vanilla,
    "remover": RemoveR,
    "ksmote": KSMOTE,
    "fairrf": FairRF,
    "fairgkd": FairGKD,
}


def _golden_graph():
    """The fixture graph — independent of conftest so the regeneration
    script stays standalone."""
    return generate_biased_graph(
        num_nodes=250,
        num_features=12,
        average_degree=10,
        spec=BiasSpec(
            label_bias=0.2,
            proxy_strength=1.0,
            group_homophily=2.0,
            label_signal_strength=0.5,
        ),
        seed=7,
        name="golden",
    ).standardized()


def _compute_metrics() -> dict[str, dict[str, float]]:
    graph = _golden_graph()
    out: dict[str, dict[str, float]] = {}
    for key, cls in BASELINES.items():
        result = cls(**BUDGET).fit(graph, seed=0)
        out[key] = {
            "accuracy": float(result.test.accuracy),
            "delta_sp": float(result.test.delta_sp),
            "delta_eo": float(result.test.delta_eo),
        }
    return out


@pytest.fixture(scope="module")
def golden() -> dict:
    assert GOLDEN_PATH.exists(), (
        f"{GOLDEN_PATH} missing — regenerate with "
        f"`PYTHONPATH=src python {Path(__file__).name}`"
    )
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def current() -> dict:
    return _compute_metrics()


class TestGoldenBaselines:
    def test_every_baseline_pinned(self, golden):
        assert set(golden) == set(BASELINES)

    @pytest.mark.parametrize("method", sorted(BASELINES))
    def test_metrics_match_golden(self, method, golden, current):
        for metric, pinned in golden[method].items():
            actual = current[method][metric]
            assert actual == pytest.approx(pinned, abs=1e-9), (
                f"{method}.{metric} drifted: golden {pinned!r} vs current "
                f"{actual!r}.  If the change is intentional, regenerate "
                f"tests/golden_baselines.json (see module docstring)."
            )


if __name__ == "__main__":
    metrics = _compute_metrics()
    GOLDEN_PATH.write_text(json.dumps(metrics, indent=2, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH}")
    for name, values in metrics.items():
        print(f"  {name:8s} {values}")
