"""Tests for the stochastic graph sampling utilities."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import random_walks, sample_neighbors, subsample_edges


class TestSampleNeighbors:
    def test_returns_actual_neighbors(self, tiny_adjacency):
        rng = np.random.default_rng(0)
        samples = sample_neighbors(tiny_adjacency, np.array([0, 2]), fanout=2, rng=rng)
        assert set(samples[0]) <= {1, 2}
        assert set(samples[1]) <= {0, 1, 3}

    def test_fanout_respected(self, tiny_adjacency):
        rng = np.random.default_rng(0)
        samples = sample_neighbors(tiny_adjacency, np.array([2]), fanout=2, rng=rng)
        assert len(samples[0]) == 2
        assert len(set(samples[0])) == 2  # without replacement

    def test_small_neighborhood_returns_all(self, tiny_adjacency):
        rng = np.random.default_rng(0)
        samples = sample_neighbors(tiny_adjacency, np.array([0]), fanout=10, rng=rng)
        assert set(samples[0]) == {1, 2}

    def test_with_replacement_pads(self, tiny_adjacency):
        rng = np.random.default_rng(0)
        samples = sample_neighbors(
            tiny_adjacency, np.array([0]), fanout=5, rng=rng, replace=True
        )
        assert len(samples[0]) == 5
        assert set(samples[0]) <= {1, 2}

    def test_isolated_node_empty(self):
        adj = sp.csr_matrix((3, 3))
        samples = sample_neighbors(adj, np.array([1]), 2, np.random.default_rng(0))
        assert samples[0].size == 0

    def test_rejects_bad_fanout(self, tiny_adjacency):
        with pytest.raises(ValueError):
            sample_neighbors(tiny_adjacency, np.array([0]), 0, np.random.default_rng(0))


class TestRandomWalks:
    def test_shape_and_start_column(self, tiny_adjacency):
        rng = np.random.default_rng(0)
        walks = random_walks(tiny_adjacency, np.array([0, 3, 5]), length=4, rng=rng)
        assert walks.shape == (3, 5)
        np.testing.assert_array_equal(walks[:, 0], [0, 3, 5])

    def test_steps_follow_edges(self, tiny_adjacency):
        rng = np.random.default_rng(1)
        walks = random_walks(tiny_adjacency, np.arange(6), length=6, rng=rng)
        dense = tiny_adjacency.toarray()
        for walk in walks:
            for a, b in zip(walk[:-1], walk[1:]):
                assert a == b or dense[a, b] == 1

    def test_isolated_node_self_absorbing(self):
        adj = sp.csr_matrix((2, 2))
        walks = random_walks(adj, np.array([0]), length=3, rng=np.random.default_rng(0))
        np.testing.assert_array_equal(walks[0], [0, 0, 0, 0])

    def test_rejects_zero_length(self, tiny_adjacency):
        with pytest.raises(ValueError):
            random_walks(tiny_adjacency, np.array([0]), 0, np.random.default_rng(0))

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 100), length=st.integers(1, 8))
    def test_property_walks_stay_in_graph(self, seed, length):
        rng = np.random.default_rng(seed)
        dense = (rng.random((8, 8)) < 0.3).astype(float)
        dense = np.triu(dense, 1)
        adj = sp.csr_matrix(dense + dense.T)
        walks = random_walks(adj, np.arange(8), length, np.random.default_rng(seed))
        assert walks.min() >= 0
        assert walks.max() < 8


class TestSubsampleEdges:
    def test_keep_all(self, tiny_adjacency):
        out = subsample_edges(tiny_adjacency, 1.0, np.random.default_rng(0))
        assert (out != tiny_adjacency).nnz == 0

    def test_keeps_roughly_fraction(self):
        rng = np.random.default_rng(0)
        dense = np.triu(np.ones((40, 40)), 1)
        adj = sp.csr_matrix(dense + dense.T)
        out = subsample_edges(adj, 0.5, rng)
        ratio = out.nnz / adj.nnz
        assert 0.35 < ratio < 0.65

    def test_result_symmetric(self, tiny_adjacency):
        out = subsample_edges(tiny_adjacency, 0.5, np.random.default_rng(3))
        assert (out != out.T).nnz == 0

    def test_rejects_bad_fraction(self, tiny_adjacency):
        with pytest.raises(ValueError):
            subsample_edges(tiny_adjacency, 0.0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            subsample_edges(tiny_adjacency, 1.5, np.random.default_rng(0))
