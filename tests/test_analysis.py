"""Tests for PCA, k-means, t-SNE and correlation utilities."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    correlation_with_vector,
    kmeans,
    pca,
    pearson_correlation,
    tsne,
)


@pytest.fixture
def rng():
    return np.random.default_rng(11)


class TestPCA:
    def test_variance_ordering(self, rng):
        data = rng.normal(size=(200, 5)) * np.array([10.0, 5.0, 1.0, 0.5, 0.1])
        _, ratios = pca(data, 5)
        assert (np.diff(ratios) <= 1e-12).all()

    def test_ratio_sums_to_one_with_all_components(self, rng):
        data = rng.normal(size=(50, 4))
        _, ratios = pca(data, 4)
        assert ratios.sum() == pytest.approx(1.0)

    def test_projection_shape(self, rng):
        scores, _ = pca(rng.normal(size=(30, 6)), 2)
        assert scores.shape == (30, 2)

    def test_scores_are_centered(self, rng):
        scores, _ = pca(rng.normal(size=(40, 3)) + 5.0, 2)
        np.testing.assert_allclose(scores.mean(axis=0), 0.0, atol=1e-10)

    def test_recovers_dominant_direction(self, rng):
        direction = np.array([1.0, 1.0]) / np.sqrt(2)
        data = rng.normal(size=(500, 1)) * 5.0 @ direction[None, :]
        data += rng.normal(size=(500, 2)) * 0.1
        scores, ratios = pca(data, 1)
        assert ratios[0] > 0.95

    def test_invalid_components(self, rng):
        with pytest.raises(ValueError):
            pca(rng.normal(size=(10, 3)), 4)
        with pytest.raises(ValueError):
            pca(rng.normal(size=(10, 3)), 0)

    def test_rejects_1d(self, rng):
        with pytest.raises(ValueError):
            pca(rng.normal(size=10), 1)


class TestKMeans:
    def test_separates_obvious_clusters(self, rng):
        a = rng.normal(size=(50, 2)) + np.array([10.0, 0.0])
        b = rng.normal(size=(50, 2)) - np.array([10.0, 0.0])
        data = np.vstack([a, b])
        assignments, centers, inertia = kmeans(data, 2, rng)
        assert len(np.unique(assignments[:50])) == 1
        assert len(np.unique(assignments[50:])) == 1
        assert assignments[0] != assignments[50]

    def test_k_equals_n(self, rng):
        data = rng.normal(size=(5, 2))
        assignments, _, inertia = kmeans(data, 5, rng)
        assert len(np.unique(assignments)) == 5
        assert inertia == pytest.approx(0.0, abs=1e-18)

    def test_single_cluster(self, rng):
        data = rng.normal(size=(20, 3))
        assignments, centers, _ = kmeans(data, 1, rng)
        np.testing.assert_array_equal(assignments, 0)
        np.testing.assert_allclose(centers[0], data.mean(axis=0))

    def test_invalid_k(self, rng):
        with pytest.raises(ValueError):
            kmeans(rng.normal(size=(5, 2)), 6, rng)
        with pytest.raises(ValueError):
            kmeans(rng.normal(size=(5, 2)), 0, rng)

    def test_inertia_nonincreasing_in_k(self, rng):
        data = rng.normal(size=(100, 3))
        inertias = [kmeans(data, k, np.random.default_rng(0))[2] for k in (1, 2, 4, 8)]
        for small, large in zip(inertias, inertias[1:]):
            assert large <= small + 1e-9

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 200), k=st.integers(1, 5))
    def test_property_assignments_in_range(self, seed, k):
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(30, 2))
        assignments, centers, _ = kmeans(data, k, rng)
        assert assignments.min() >= 0
        assert assignments.max() < k
        assert centers.shape == (k, 2)


class TestTSNE:
    def test_output_shape(self, rng):
        data = rng.normal(size=(40, 8))
        out = tsne(data, rng, iterations=60)
        assert out.shape == (40, 2)
        assert np.isfinite(out).all()

    def test_separates_distant_clusters(self, rng):
        a = rng.normal(size=(25, 6)) + 20.0
        b = rng.normal(size=(25, 6)) - 20.0
        out = tsne(np.vstack([a, b]), rng, iterations=250, perplexity=10)
        centroid_a = out[:25].mean(axis=0)
        centroid_b = out[25:].mean(axis=0)
        spread = max(out[:25].std(), out[25:].std())
        assert np.linalg.norm(centroid_a - centroid_b) > 2 * spread

    def test_needs_min_points(self, rng):
        with pytest.raises(ValueError):
            tsne(rng.normal(size=(3, 4)), rng)

    def test_embedding_centered(self, rng):
        out = tsne(rng.normal(size=(20, 5)), rng, iterations=30)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-9)


class TestCorrelation:
    def test_perfect_correlation(self):
        a = np.arange(10.0)
        assert pearson_correlation(a, 2 * a + 1) == pytest.approx(1.0)
        assert pearson_correlation(a, -a) == pytest.approx(-1.0)

    def test_constant_input_gives_zero(self):
        assert pearson_correlation(np.ones(5), np.arange(5.0)) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            pearson_correlation(np.ones(3), np.ones(4))

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            pearson_correlation(np.ones(1), np.ones(1))

    def test_matches_numpy_corrcoef(self, rng):
        a, b = rng.normal(size=50), rng.normal(size=50)
        assert pearson_correlation(a, b) == pytest.approx(np.corrcoef(a, b)[0, 1])

    def test_columnwise(self, rng):
        v = rng.normal(size=30)
        matrix = np.stack([v, -v, rng.normal(size=30), np.ones(30)], axis=1)
        corr = correlation_with_vector(matrix, v)
        assert corr[0] == pytest.approx(1.0)
        assert corr[1] == pytest.approx(-1.0)
        assert abs(corr[2]) < 0.5
        assert corr[3] == 0.0  # constant column

    def test_columnwise_row_mismatch(self, rng):
        with pytest.raises(ValueError):
            correlation_with_vector(rng.normal(size=(5, 2)), rng.normal(size=6))

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 300))
    def test_property_bounded(self, seed):
        rng = np.random.default_rng(seed)
        corr = correlation_with_vector(rng.normal(size=(20, 4)), rng.normal(size=20))
        assert (np.abs(corr) <= 1.0).all()
