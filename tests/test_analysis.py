"""Tests for PCA, k-means, t-SNE and correlation utilities."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    assign_to_centers,
    correlation_with_vector,
    kmeans,
    minibatch_kmeans,
    pca,
    pearson_correlation,
    tsne,
)


@pytest.fixture
def rng():
    return np.random.default_rng(11)


class TestPCA:
    def test_variance_ordering(self, rng):
        data = rng.normal(size=(200, 5)) * np.array([10.0, 5.0, 1.0, 0.5, 0.1])
        _, ratios = pca(data, 5)
        assert (np.diff(ratios) <= 1e-12).all()

    def test_ratio_sums_to_one_with_all_components(self, rng):
        data = rng.normal(size=(50, 4))
        _, ratios = pca(data, 4)
        assert ratios.sum() == pytest.approx(1.0)

    def test_projection_shape(self, rng):
        scores, _ = pca(rng.normal(size=(30, 6)), 2)
        assert scores.shape == (30, 2)

    def test_scores_are_centered(self, rng):
        scores, _ = pca(rng.normal(size=(40, 3)) + 5.0, 2)
        np.testing.assert_allclose(scores.mean(axis=0), 0.0, atol=1e-10)

    def test_recovers_dominant_direction(self, rng):
        direction = np.array([1.0, 1.0]) / np.sqrt(2)
        data = rng.normal(size=(500, 1)) * 5.0 @ direction[None, :]
        data += rng.normal(size=(500, 2)) * 0.1
        scores, ratios = pca(data, 1)
        assert ratios[0] > 0.95

    def test_invalid_components(self, rng):
        with pytest.raises(ValueError):
            pca(rng.normal(size=(10, 3)), 4)
        with pytest.raises(ValueError):
            pca(rng.normal(size=(10, 3)), 0)

    def test_rejects_1d(self, rng):
        with pytest.raises(ValueError):
            pca(rng.normal(size=10), 1)


class TestKMeans:
    def test_separates_obvious_clusters(self, rng):
        a = rng.normal(size=(50, 2)) + np.array([10.0, 0.0])
        b = rng.normal(size=(50, 2)) - np.array([10.0, 0.0])
        data = np.vstack([a, b])
        assignments, centers, inertia = kmeans(data, 2, rng)
        assert len(np.unique(assignments[:50])) == 1
        assert len(np.unique(assignments[50:])) == 1
        assert assignments[0] != assignments[50]

    def test_k_equals_n(self, rng):
        data = rng.normal(size=(5, 2))
        assignments, _, inertia = kmeans(data, 5, rng)
        assert len(np.unique(assignments)) == 5
        assert inertia == pytest.approx(0.0, abs=1e-18)

    def test_single_cluster(self, rng):
        data = rng.normal(size=(20, 3))
        assignments, centers, _ = kmeans(data, 1, rng)
        np.testing.assert_array_equal(assignments, 0)
        np.testing.assert_allclose(centers[0], data.mean(axis=0))

    def test_invalid_k(self, rng):
        with pytest.raises(ValueError):
            kmeans(rng.normal(size=(5, 2)), 6, rng)
        with pytest.raises(ValueError):
            kmeans(rng.normal(size=(5, 2)), 0, rng)

    def test_inertia_nonincreasing_in_k(self, rng):
        data = rng.normal(size=(100, 3))
        inertias = [kmeans(data, k, np.random.default_rng(0))[2] for k in (1, 2, 4, 8)]
        for small, large in zip(inertias, inertias[1:]):
            assert large <= small + 1e-9

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 200), k=st.integers(1, 5))
    def test_property_assignments_in_range(self, seed, k):
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(30, 2))
        assignments, centers, _ = kmeans(data, k, rng)
        assert assignments.min() >= 0
        assert assignments.max() < k
        assert centers.shape == (k, 2)


class TestMinibatchKMeans:
    """Sampled-centroid k-means (KSMOTE's large-graph cluster step)."""

    def _blobs(self, rng, per_cluster=120):
        offsets = np.array([[12.0, 0.0], [-12.0, 0.0], [0.0, 12.0]])
        return np.vstack(
            [rng.normal(size=(per_cluster, 2)) + off for off in offsets]
        )

    def test_covering_batch_delegates_to_exact(self, rng):
        data = rng.normal(size=(40, 3))
        exact = kmeans(data, 3, np.random.default_rng(5))
        sampled = minibatch_kmeans(data, 3, np.random.default_rng(5), batch_size=40)
        np.testing.assert_array_equal(exact[0], sampled[0])
        np.testing.assert_allclose(exact[1], sampled[1])
        assert exact[2] == sampled[2]

    def test_separates_obvious_clusters_sampled(self, rng):
        data = self._blobs(rng)
        assignments, _, _ = minibatch_kmeans(
            data, 3, np.random.default_rng(0), batch_size=64
        )
        for start in (0, 120, 240):
            block = assignments[start : start + 120]
            assert len(np.unique(block)) == 1
        assert len(np.unique(assignments)) == 3

    def test_inertia_close_to_exact_on_separable_data(self, rng):
        data = self._blobs(rng)
        exact_inertia = kmeans(data, 3, np.random.default_rng(1))[2]
        sampled_inertia = minibatch_kmeans(
            data, 3, np.random.default_rng(1), batch_size=64
        )[2]
        assert sampled_inertia <= exact_inertia * 1.10

    def test_deterministic_given_rng(self, rng):
        data = rng.normal(size=(200, 4))
        a = minibatch_kmeans(data, 4, np.random.default_rng(9), batch_size=32)
        b = minibatch_kmeans(data, 4, np.random.default_rng(9), batch_size=32)
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_allclose(a[1], b[1])

    def test_validation(self, rng):
        data = rng.normal(size=(20, 2))
        with pytest.raises(ValueError):
            minibatch_kmeans(data, 0, rng)
        with pytest.raises(ValueError):
            minibatch_kmeans(data, 2, rng, batch_size=0)
        with pytest.raises(ValueError):
            minibatch_kmeans(data, 8, rng, batch_size=4)
        with pytest.raises(ValueError):
            minibatch_kmeans(rng.normal(size=10), 2, rng)

    def test_assign_to_centers_matches_direct_argmin(self, rng):
        data = rng.normal(size=(100, 3))
        centers = rng.normal(size=(5, 3))
        assignments, inertia = assign_to_centers(data, centers, chunk_size=7)
        distances = ((data[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        np.testing.assert_array_equal(assignments, distances.argmin(axis=1))
        assert inertia == pytest.approx(distances.min(axis=1).sum())


class TestTSNE:
    def test_output_shape(self, rng):
        data = rng.normal(size=(40, 8))
        out = tsne(data, rng, iterations=60)
        assert out.shape == (40, 2)
        assert np.isfinite(out).all()

    def test_separates_distant_clusters(self, rng):
        a = rng.normal(size=(25, 6)) + 20.0
        b = rng.normal(size=(25, 6)) - 20.0
        out = tsne(np.vstack([a, b]), rng, iterations=250, perplexity=10)
        centroid_a = out[:25].mean(axis=0)
        centroid_b = out[25:].mean(axis=0)
        spread = max(out[:25].std(), out[25:].std())
        assert np.linalg.norm(centroid_a - centroid_b) > 2 * spread

    def test_needs_min_points(self, rng):
        with pytest.raises(ValueError):
            tsne(rng.normal(size=(3, 4)), rng)

    def test_embedding_centered(self, rng):
        out = tsne(rng.normal(size=(20, 5)), rng, iterations=30)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-9)


class TestCorrelation:
    def test_perfect_correlation(self):
        a = np.arange(10.0)
        assert pearson_correlation(a, 2 * a + 1) == pytest.approx(1.0)
        assert pearson_correlation(a, -a) == pytest.approx(-1.0)

    def test_constant_input_gives_zero(self):
        assert pearson_correlation(np.ones(5), np.arange(5.0)) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            pearson_correlation(np.ones(3), np.ones(4))

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            pearson_correlation(np.ones(1), np.ones(1))

    def test_matches_numpy_corrcoef(self, rng):
        a, b = rng.normal(size=50), rng.normal(size=50)
        assert pearson_correlation(a, b) == pytest.approx(np.corrcoef(a, b)[0, 1])

    def test_columnwise(self, rng):
        v = rng.normal(size=30)
        matrix = np.stack([v, -v, rng.normal(size=30), np.ones(30)], axis=1)
        corr = correlation_with_vector(matrix, v)
        assert corr[0] == pytest.approx(1.0)
        assert corr[1] == pytest.approx(-1.0)
        assert abs(corr[2]) < 0.5
        assert corr[3] == 0.0  # constant column

    def test_columnwise_row_mismatch(self, rng):
        with pytest.raises(ValueError):
            correlation_with_vector(rng.normal(size=(5, 2)), rng.normal(size=6))

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 300))
    def test_property_bounded(self, seed):
        rng = np.random.default_rng(seed)
        corr = correlation_with_vector(rng.normal(size=(20, 4)), rng.normal(size=20))
        assert (np.abs(corr) <= 1.0).all()
