"""Shared fixtures and hypothesis profiles for the test-suite.

Hypothesis profiles (select with ``HYPOTHESIS_PROFILE=<name>``):

* ``ci`` — the fast CI matrix: fewer examples, derandomized so every run
  replays the same cases;
* ``ci-slow`` — the non-blocking slow job: many more examples to hunt for
  adversarial inputs without gating the PR;
* default — hypothesis's stock settings for local development.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import HealthCheck, settings

from repro.datasets import BiasSpec, generate_biased_graph
from repro.graph import Graph

settings.register_profile(
    "ci",
    max_examples=20,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "ci-slow",
    max_examples=200,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_adjacency() -> sp.csr_matrix:
    """A fixed 6-node symmetric adjacency (two triangles + a bridge)."""
    edges = [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)]
    rows = [e[0] for e in edges] + [e[1] for e in edges]
    cols = [e[1] for e in edges] + [e[0] for e in edges]
    return sp.csr_matrix(
        (np.ones(len(rows)), (rows, cols)), shape=(6, 6)
    )


@pytest.fixture
def tiny_graph(tiny_adjacency) -> Graph:
    """A hand-built 6-node graph with masks, labels and a sensitive attr."""
    rng = np.random.default_rng(0)
    return Graph(
        adjacency=tiny_adjacency,
        features=rng.normal(size=(6, 4)),
        labels=np.array([0, 0, 1, 1, 0, 1]),
        sensitive=np.array([0, 0, 0, 1, 1, 1]),
        train_mask=np.array([True, True, True, False, False, False]),
        val_mask=np.array([False, False, False, True, True, False]),
        test_mask=np.array([False, False, False, False, False, True]),
        related_feature_indices=np.array([0, 2]),
        name="tiny",
    )


@pytest.fixture(scope="session")
def small_graph() -> Graph:
    """A 250-node generated graph with planted bias (shared across tests)."""
    return generate_biased_graph(
        num_nodes=250,
        num_features=12,
        average_degree=10,
        spec=BiasSpec(
            label_bias=0.2,
            proxy_strength=1.0,
            group_homophily=2.0,
            label_signal_strength=0.5,
        ),
        seed=7,
        name="small",
    ).standardized()
