"""Shared fixtures for the test-suite."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.datasets import BiasSpec, generate_biased_graph
from repro.graph import Graph


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_adjacency() -> sp.csr_matrix:
    """A fixed 6-node symmetric adjacency (two triangles + a bridge)."""
    edges = [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)]
    rows = [e[0] for e in edges] + [e[1] for e in edges]
    cols = [e[1] for e in edges] + [e[0] for e in edges]
    return sp.csr_matrix(
        (np.ones(len(rows)), (rows, cols)), shape=(6, 6)
    )


@pytest.fixture
def tiny_graph(tiny_adjacency) -> Graph:
    """A hand-built 6-node graph with masks, labels and a sensitive attr."""
    rng = np.random.default_rng(0)
    return Graph(
        adjacency=tiny_adjacency,
        features=rng.normal(size=(6, 4)),
        labels=np.array([0, 0, 1, 1, 0, 1]),
        sensitive=np.array([0, 0, 0, 1, 1, 1]),
        train_mask=np.array([True, True, True, False, False, False]),
        val_mask=np.array([False, False, False, True, True, False]),
        test_mask=np.array([False, False, False, False, False, True]),
        related_feature_indices=np.array([0, 2]),
        name="tiny",
    )


@pytest.fixture(scope="session")
def small_graph() -> Graph:
    """A 250-node generated graph with planted bias (shared across tests)."""
    return generate_biased_graph(
        num_nodes=250,
        num_features=12,
        average_degree=10,
        spec=BiasSpec(
            label_bias=0.2,
            proxy_strength=1.0,
            group_homophily=2.0,
            label_signal_strength=0.5,
        ),
        seed=7,
        name="small",
    ).standardized()
