"""Tests for the counterfactual search (Section III-D, Eq. 12)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CounterfactualSearch


class TestSearchBasics:
    def test_finds_nearest_opposite_attribute(self):
        # 1-D representations, one attribute, all same label.
        reps = np.array([[0.0], [1.0], [10.0], [11.0]])
        labels = np.zeros(4, dtype=int)
        attrs = np.array([[0], [1], [0], [1]])
        index = CounterfactualSearch(top_k=1).search(reps, labels, attrs)
        # node 0 (attr 0) → nearest attr-1 node is node 1.
        assert index.indices[0, 0, 0] == 1
        # node 2 (attr 0) → nearest attr-1 node is node 3.
        assert index.indices[0, 2, 0] == 3
        assert index.valid.all()

    def test_counterfactuals_have_same_label(self):
        rng = np.random.default_rng(0)
        reps = rng.normal(size=(40, 4))
        labels = rng.integers(0, 2, size=40)
        attrs = rng.integers(0, 2, size=(40, 3))
        index = CounterfactualSearch(top_k=2).search(reps, labels, attrs)
        for attr in range(3):
            for node in range(40):
                if not index.valid[attr, node]:
                    continue
                for k in range(2):
                    assert labels[index.indices[attr, node, k]] == labels[node]

    def test_counterfactuals_have_different_attribute(self):
        rng = np.random.default_rng(1)
        reps = rng.normal(size=(30, 4))
        labels = rng.integers(0, 2, size=30)
        attrs = rng.integers(0, 2, size=(30, 2))
        index = CounterfactualSearch(top_k=2).search(reps, labels, attrs)
        for attr in range(2):
            for node in range(30):
                if not index.valid[attr, node]:
                    continue
                for cf in index.indices[attr, node]:
                    assert attrs[cf, attr] != attrs[node, attr]

    def test_top_k_ordered_by_distance(self):
        reps = np.array([[0.0], [1.0], [2.0], [5.0]])
        labels = np.zeros(4, dtype=int)
        attrs = np.array([[0], [1], [1], [1]])
        index = CounterfactualSearch(top_k=3).search(reps, labels, attrs)
        np.testing.assert_array_equal(index.indices[0, 0], [1, 2, 3])

    def test_invalid_when_no_opposite_side(self):
        reps = np.random.default_rng(2).normal(size=(5, 2))
        labels = np.zeros(5, dtype=int)
        attrs = np.zeros((5, 1), dtype=int)  # everyone on the same side
        index = CounterfactualSearch(top_k=1).search(reps, labels, attrs)
        assert not index.valid.any()
        # Invalid entries self-point so downstream gathers stay in range.
        np.testing.assert_array_equal(index.indices[0, :, 0], np.arange(5))

    def test_cycles_when_fewer_candidates_than_k(self):
        reps = np.array([[0.0], [1.0], [2.0]])
        labels = np.zeros(3, dtype=int)
        attrs = np.array([[0], [0], [1]])  # single attr-1 candidate
        index = CounterfactualSearch(top_k=3).search(reps, labels, attrs)
        np.testing.assert_array_equal(index.indices[0, 0], [2, 2, 2])
        assert index.valid[0, 0]

    def test_labels_partition_search(self):
        # Nearest opposite-attr node overall has a different label and must
        # NOT be selected.
        reps = np.array([[0.0], [0.1], [5.0]])
        labels = np.array([0, 1, 0])
        attrs = np.array([[0], [1], [1]])
        index = CounterfactualSearch(top_k=1).search(reps, labels, attrs)
        assert index.indices[0, 0, 0] == 2  # node 1 excluded by label

    def test_coverage_statistic(self):
        reps = np.random.default_rng(3).normal(size=(10, 2))
        labels = np.zeros(10, dtype=int)
        attrs = np.zeros((10, 2), dtype=int)
        attrs[:5, 0] = 1  # attr 0 has both sides, attr 1 does not
        index = CounterfactualSearch(top_k=1).search(reps, labels, attrs)
        assert index.coverage() == pytest.approx(0.5)

    def test_result_shape_properties(self):
        reps = np.random.default_rng(4).normal(size=(12, 3))
        labels = np.random.default_rng(5).integers(0, 2, size=12)
        attrs = np.random.default_rng(6).integers(0, 2, size=(12, 4))
        index = CounterfactualSearch(top_k=2).search(reps, labels, attrs)
        assert index.num_attributes == 4
        assert index.top_k == 2
        assert index.indices.shape == (4, 12, 2)
        assert index.valid.shape == (4, 12)


class TestValidationAndOptions:
    def test_rejects_bad_top_k(self):
        with pytest.raises(ValueError):
            CounterfactualSearch(top_k=0)

    def test_rejects_small_candidate_pool(self):
        with pytest.raises(ValueError):
            CounterfactualSearch(top_k=5, candidate_pool=3)

    def test_shape_mismatches(self):
        search = CounterfactualSearch(top_k=1)
        reps = np.zeros((5, 2))
        with pytest.raises(ValueError):
            search.search(reps, np.zeros(4, dtype=int), np.zeros((5, 1), dtype=int))
        with pytest.raises(ValueError):
            search.search(reps, np.zeros(5, dtype=int), np.zeros((4, 1), dtype=int))

    def test_candidate_pool_subsampling_still_valid(self):
        rng = np.random.default_rng(7)
        reps = rng.normal(size=(60, 3))
        labels = np.zeros(60, dtype=int)
        attrs = rng.integers(0, 2, size=(60, 1))
        index = CounterfactualSearch(
            top_k=2, candidate_pool=5, rng=np.random.default_rng(0)
        ).search(reps, labels, attrs)
        for node in range(60):
            for cf in index.indices[0, node]:
                assert attrs[cf, 0] != attrs[node, 0]

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 200), k=st.integers(1, 4))
    def test_property_indices_always_in_range(self, seed, k):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(6, 30))
        reps = rng.normal(size=(n, 3))
        labels = rng.integers(0, 2, size=n)
        attrs = rng.integers(0, 2, size=(n, 2))
        index = CounterfactualSearch(top_k=k).search(reps, labels, attrs)
        assert index.indices.min() >= 0
        assert index.indices.max() < n

    def test_deterministic(self):
        rng = np.random.default_rng(8)
        reps = rng.normal(size=(25, 4))
        labels = rng.integers(0, 2, size=25)
        attrs = rng.integers(0, 2, size=(25, 3))
        a = CounterfactualSearch(top_k=2).search(reps, labels, attrs)
        b = CounterfactualSearch(top_k=2).search(reps, labels, attrs)
        np.testing.assert_array_equal(a.indices, b.indices)
        np.testing.assert_array_equal(a.valid, b.valid)


class TestBackends:
    """The exact path stays the oracle; the ANN path must never violate the
    counterfactual constraints and reproduces the oracle bit-for-bit under
    exhaustive probing."""

    @staticmethod
    def _data(seed, n=120, dim=5, num_attrs=3):
        rng = np.random.default_rng(seed)
        return (
            rng.normal(size=(n, dim)),
            rng.integers(0, 2, size=n),
            rng.integers(0, 2, size=(n, num_attrs)),
        )

    @settings(deadline=None)
    @given(seed=st.integers(0, 5000), k=st.integers(1, 6))
    def test_ann_exhaustive_bit_for_bit(self, seed, k):
        reps, labels, attrs = self._data(seed)
        exact = CounterfactualSearch(top_k=k).search(reps, labels, attrs)
        ann = CounterfactualSearch(
            top_k=k, backend="ann", backend_options={"exhaustive": True, "seed": seed}
        ).search(reps, labels, attrs)
        np.testing.assert_array_equal(exact.indices, ann.indices)
        np.testing.assert_array_equal(exact.valid, ann.valid)

    @settings(deadline=None)
    @given(seed=st.integers(0, 5000))
    def test_ann_respects_label_and_attribute_constraints(self, seed):
        reps, labels, attrs = self._data(seed)
        index = CounterfactualSearch(
            top_k=3, backend="ann",
            backend_options={"num_trees": 10, "probes": 3, "seed": seed},
        ).search(reps, labels, attrs)
        for attr in range(attrs.shape[1]):
            for node in np.flatnonzero(index.valid[attr]):
                for cf in index.indices[attr, node]:
                    assert labels[cf] == labels[node]
                    assert attrs[cf, attr] != attrs[node, attr]

    def test_ann_deterministic_given_seed(self):
        reps, labels, attrs = self._data(11)
        make = lambda: CounterfactualSearch(  # noqa: E731
            top_k=2, backend="ann", backend_options={"seed": 5}
        ).search(reps, labels, attrs)
        a, b = make(), make()
        np.testing.assert_array_equal(a.indices, b.indices)
        np.testing.assert_array_equal(a.valid, b.valid)

    def test_ann_high_agreement_with_exact(self):
        reps, labels, attrs = self._data(13, n=300)
        exact = CounterfactualSearch(top_k=3).search(reps, labels, attrs)
        ann = CounterfactualSearch(
            top_k=3, backend="ann",
            backend_options={"num_trees": 10, "probes": 3, "seed": 0},
        ).search(reps, labels, attrs)
        both = exact.valid & ann.valid
        agreement = (exact.indices == ann.indices)[both].mean()
        assert agreement >= 0.9
        assert ann.coverage() >= exact.coverage() - 0.05

    def test_ann_misses_marked_invalid_not_wrong(self):
        # A deliberately weak forest may miss candidates; the contract is
        # that misses surface as invalid self-pointers, never as nodes that
        # break the constraints.
        reps, labels, attrs = self._data(17, n=200)
        index = CounterfactualSearch(
            top_k=2, backend="ann",
            backend_options={"num_trees": 1, "leaf_size": 4, "probes": 1, "seed": 0},
        ).search(reps, labels, attrs)
        n = reps.shape[0]
        for attr in range(attrs.shape[1]):
            invalid = ~index.valid[attr]
            np.testing.assert_array_equal(
                index.indices[attr, invalid, 0], np.arange(n)[invalid]
            )
            for node in np.flatnonzero(index.valid[attr]):
                for cf in index.indices[attr, node]:
                    assert attrs[cf, attr] != attrs[node, attr]

    def test_backend_object_passthrough(self):
        from repro.core.ann import ExactBackend

        reps, labels, attrs = self._data(19, n=60)
        via_str = CounterfactualSearch(top_k=2).search(reps, labels, attrs)
        via_obj = CounterfactualSearch(top_k=2, backend=ExactBackend()).search(
            reps, labels, attrs
        )
        np.testing.assert_array_equal(via_str.indices, via_obj.indices)


class TestQueryNodeSubset:
    """search(nodes=...) restricts queries, not candidates."""

    def _data(self, seed=0, n=60):
        rng = np.random.default_rng(seed)
        reps = rng.normal(size=(n, 4))
        labels = rng.integers(0, 2, size=n)
        attrs = rng.integers(0, 2, size=(n, 3))
        return reps, labels, attrs

    def test_subset_rows_match_full_search(self):
        reps, labels, attrs = self._data()
        search = CounterfactualSearch(top_k=2)
        nodes = np.array([0, 7, 31, 59])
        full = search.search(reps, labels, attrs)
        subset = search.search(reps, labels, attrs, nodes=nodes)
        np.testing.assert_array_equal(
            subset.indices[:, nodes], full.indices[:, nodes]
        )
        np.testing.assert_array_equal(subset.valid[:, nodes], full.valid[:, nodes])

    def test_unqueried_rows_invalid_and_self_pointing(self):
        reps, labels, attrs = self._data(seed=1)
        nodes = np.array([2, 3])
        result = CounterfactualSearch(top_k=2).search(
            reps, labels, attrs, nodes=nodes
        )
        others = np.setdiff1d(np.arange(reps.shape[0]), nodes)
        assert not result.valid[:, others].any()
        # unqueried rows keep the self-pointing convention
        for v in others[:5]:
            assert (result.indices[:, v] == v).all()

    def test_candidates_stay_full_set(self):
        # A queried node's counterfactual may be an *unqueried* node.
        reps = np.array([[0.0], [1.0], [10.0], [11.0]])
        labels = np.zeros(4, dtype=int)
        attrs = np.array([[0], [1], [0], [1]])
        result = CounterfactualSearch(top_k=1).search(
            reps, labels, attrs, nodes=np.array([0])
        )
        assert result.indices[0, 0, 0] == 1  # node 1 was not queried
        assert result.valid[0, 0]

    def test_node_validation(self):
        reps, labels, attrs = self._data()
        search = CounterfactualSearch(top_k=1)
        with pytest.raises(ValueError):
            search.search(reps, labels, attrs, nodes=np.array([-1]))
        with pytest.raises(ValueError):
            search.search(reps, labels, attrs, nodes=np.array([reps.shape[0]]))
