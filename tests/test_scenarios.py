"""Scenario-matrix layers: generators, registry resolution, task runners.

Covers the datasets layer (ER/SBM generators, temporal replay, the unified
registry), the experiments layer (``Scenario`` dispatch, link-prediction
splits, the shared cell runner), and their seams — everything the golden
fixtures in ``test_scenarios_golden.py`` then pin numerically.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    GRAPH_FAMILIES,
    TemporalEdgeStream,
    available_families,
    dataset_cli_flags,
    generate_erdos_renyi_graph,
    generate_sbm_graph,
    load_dataset,
    load_family,
)
from repro.experiments import Scale, Scenario, run_scenario_cell
from repro.experiments.linkpred import (
    edge_dyad_groups,
    make_link_split,
    run_linkpred_method,
)
from repro.graph import Graph


class TestErdosRenyi:
    def test_shapes_and_determinism(self):
        a = generate_erdos_renyi_graph(300, seed=4)
        b = generate_erdos_renyi_graph(300, seed=4)
        assert isinstance(a, Graph) and a.num_nodes == 300
        assert np.array_equal(a.features, b.features)
        assert (a.adjacency != b.adjacency).nnz == 0
        c = generate_erdos_renyi_graph(300, seed=5)
        assert not np.array_equal(a.features, c.features)

    def test_adjacency_symmetric_no_loops(self):
        graph = generate_erdos_renyi_graph(200, seed=0)
        adj = graph.adjacency
        assert (adj != adj.T).nnz == 0
        assert adj.diagonal().sum() == 0

    def test_homophily_raises_same_group_fraction(self):
        from repro.graph.utils import edge_homophily

        low = generate_erdos_renyi_graph(600, group_homophily=1.0, seed=1)
        high = generate_erdos_renyi_graph(600, group_homophily=6.0, seed=1)
        assert edge_homophily(
            high.adjacency, high.sensitive
        ) > edge_homophily(low.adjacency, low.sensitive)


class TestSBM:
    def test_balanced_communities_in_meta(self):
        graph = generate_sbm_graph(400, num_communities=4, seed=2)
        community = graph.meta["extra_sensitive"]["community"]
        assert community.shape == (400,)
        assert np.bincount(community).tolist() == [100] * 4
        assert graph.meta["generator"] == "sbm"

    def test_community_mixing_controls_intra_fraction(self):
        def intra_fraction(mixing):
            g = generate_sbm_graph(500, community_mixing=mixing, seed=3)
            community = g.meta["extra_sensitive"]["community"]
            coo = g.adjacency.tocoo()
            upper = coo.row < coo.col
            return (
                community[coo.row[upper]] == community[coo.col[upper]]
            ).mean()

        assert intra_fraction(0.1) > intra_fraction(0.6)

    def test_sensitive_mixing_decouples_sensitive_from_community(self):
        def parity_agreement(mixing):
            g = generate_sbm_graph(500, sensitive_mixing=mixing, seed=3)
            community = g.meta["extra_sensitive"]["community"]
            return (g.sensitive == community % 2).mean()

        assert parity_agreement(0.1) > 0.8
        assert abs(parity_agreement(0.5) - 0.5) < 0.1

    def test_deterministic(self):
        a = generate_sbm_graph(300, seed=6)
        b = generate_sbm_graph(300, seed=6)
        assert np.array_equal(a.features, b.features)
        assert (a.adjacency != b.adjacency).nnz == 0


class TestTemporalStream:
    def test_batches_partition_the_edges(self):
        graph = generate_sbm_graph(300, seed=1)
        stream = TemporalEdgeStream(graph, num_batches=5, seed=0)
        total = sum(batch.num_edges for batch in stream.batches())
        coo = graph.adjacency.tocoo()
        assert total == int((coo.row < coo.col).sum())
        assert [b.timestamp for b in stream.batches()] == list(range(5))

    def test_snapshot_prefix_grows_to_full_graph(self):
        graph = generate_sbm_graph(300, seed=1)
        stream = TemporalEdgeStream(graph, num_batches=4, seed=0)
        sizes = [stream.snapshot(t).adjacency.nnz for t in range(4)]
        assert sizes == sorted(sizes)
        assert sizes[-1] == graph.adjacency.nnz
        snap = stream.snapshot(1)
        assert snap.meta["snapshot_timestamp"] == 1
        assert snap.num_nodes == graph.num_nodes

    def test_deterministic_given_seed(self):
        graph = generate_sbm_graph(200, seed=1)
        a = TemporalEdgeStream(graph, num_batches=3, seed=5)
        b = TemporalEdgeStream(graph, num_batches=3, seed=5)
        for t in range(3):
            assert np.array_equal(a.batch(t).src, b.batch(t).src)


class TestRegistryResolution:
    def test_family_keys_resolve(self):
        for family in available_families():
            graph = load_dataset(family, seed=0, num_nodes=120)
            assert graph.num_nodes == 120

    def test_family_params_flow_through(self):
        graph = load_dataset("sbm", seed=0, num_nodes=200, mixing=0.4, homophily=2.0)
        assert graph.meta["sensitive_mixing"] == 0.4

    def test_mixing_rejected_off_sbm(self):
        with pytest.raises(ValueError, match="sbm"):
            load_family("scalefree", num_nodes=100, mixing=0.3)

    def test_named_dataset_rejects_generator_params(self):
        with pytest.raises(TypeError, match="no generator parameters"):
            load_dataset("nba", num_nodes=100)

    def test_unknown_name_lists_all_keys(self):
        with pytest.raises(KeyError, match="sbm"):
            load_dataset("not_a_dataset")

    def test_saved_npz_path_roundtrip(self, tmp_path):
        from repro.io import save_graph

        graph = load_family("erdos_renyi", num_nodes=150, seed=1)
        path = save_graph(graph, tmp_path / "er.npz")
        loaded = load_dataset(str(path))
        assert np.array_equal(loaded.features, graph.features)

    def test_saved_mmap_directory_loads_memory_mapped(self, tmp_path):
        from repro.io import save_graph_mmap

        graph = load_family("sbm", num_nodes=150, seed=1)
        save_graph_mmap(graph, tmp_path / "sbm_dir")
        loaded = load_dataset(str(tmp_path / "sbm_dir"))
        assert isinstance(loaded.features, np.memmap)
        assert np.array_equal(np.asarray(loaded.features), graph.features)

    def test_cli_flag_table_shape(self):
        rows = dict(dataset_cli_flags())
        assert set(rows) == {"family", "homophily", "mixing"}
        assert rows["family"]["choices"] == sorted(GRAPH_FAMILIES)


class TestLinkSplit:
    def test_partitions_are_disjoint_and_labelled(self):
        graph = generate_sbm_graph(300, seed=2)
        split = make_link_split(graph, seed=0)
        for part in (split.train, split.val, split.test):
            pos = part.labels == 1
            assert pos.sum() == (~pos).sum()  # balanced negatives
            assert (part.src < part.dst).all()  # canonical upper triangle
        keys = [
            part.src.astype(np.int64) * graph.num_nodes + part.dst
            for part in (split.train, split.val, split.test)
        ]
        positives = [k[p.labels == 1] for k, p in zip(
            keys, (split.train, split.val, split.test))]
        all_pos = np.concatenate(positives)
        assert np.unique(all_pos).size == all_pos.size  # no edge in two splits

    def test_negatives_are_not_graph_edges(self):
        graph = generate_sbm_graph(300, seed=2)
        split = make_link_split(graph, seed=0)
        coo = graph.adjacency.tocoo()
        upper = coo.row < coo.col
        edge_keys = set(
            (coo.row[upper] * graph.num_nodes + coo.col[upper]).tolist()
        )
        for part in (split.train, split.val, split.test):
            neg = part.labels == 0
            neg_keys = part.src[neg] * graph.num_nodes + part.dst[neg]
            assert not edge_keys.intersection(neg_keys.tolist())

    def test_train_adjacency_excludes_heldout_edges(self):
        graph = generate_sbm_graph(300, seed=2)
        split = make_link_split(graph, seed=0)
        n_train_pos = int((split.train.labels == 1).sum())
        assert split.train_adjacency.nnz == 2 * n_train_pos

    def test_edge_dyad_groups(self):
        from repro.experiments.linkpred import EdgeSet

        sensitive = np.array([0, 0, 1, 1])
        edges = EdgeSet(
            src=np.array([0, 0, 2]),
            dst=np.array([1, 2, 3]),
            labels=np.ones(3, dtype=np.int64),
        )
        assert edge_dyad_groups(sensitive, edges).tolist() == [1, 0, 1]


class TestScenarioProtocol:
    def test_label_defaults(self):
        assert Scenario("sbm").label == "sbm/nc"
        assert Scenario("sbm", task="link_prediction").label == "sbm/lp"
        assert Scenario("sbm", name="custom").label == "custom"

    def test_validate_rejects_bad_task(self):
        with pytest.raises(ValueError, match="unknown task"):
            Scenario("sbm", task="regression").validate()

    def test_validate_rejects_empty_attrs(self):
        with pytest.raises(ValueError, match="at least one"):
            Scenario("sbm", sensitive_attrs=()).validate()

    def test_validate_rejects_intersectional_linkpred(self):
        with pytest.raises(ValueError, match="node classification"):
            Scenario(
                "sbm",
                task="link_prediction",
                sensitive_attrs=("sensitive", "community"),
            ).validate()

    def test_attributes_resolve_extra_sensitive(self):
        scenario = Scenario("sbm", sensitive_attrs=("sensitive", "community"))
        graph = scenario.load(seed=0)
        attrs = scenario.attributes(graph)
        assert set(attrs) == {"sensitive", "community"}
        assert attrs["community"].shape == (graph.num_nodes,)

    def test_attributes_unknown_name(self):
        scenario = Scenario("sbm", sensitive_attrs=("nope",))
        graph = Scenario("sbm").load(seed=0)
        with pytest.raises(KeyError, match="nope"):
            scenario.attributes(graph)


class TestScenarioRunner:
    def test_linkpred_methods_run_and_are_deterministic(self):
        graph = generate_sbm_graph(250, seed=0).standardized()
        a = run_linkpred_method("vanilla", graph, seed=0, epochs=8)
        b = run_linkpred_method("vanilla", graph, seed=0, epochs=8)
        assert a.test.accuracy == b.test.accuracy
        assert a.test.delta_sp == b.test.delta_sp
        assert 0.0 <= a.test.accuracy <= 1.0

    def test_unknown_linkpred_method(self):
        graph = generate_sbm_graph(250, seed=0).standardized()
        with pytest.raises(ValueError, match="unknown method"):
            run_linkpred_method("oracle", graph, epochs=2)

    def test_cell_runner_attaches_intersectional_audit(self):
        scenario = Scenario(
            "sbm",
            sensitive_attrs=("sensitive", "community"),
            dataset_params={"num_nodes": 250, "num_communities": 2},
        )
        cell = run_scenario_cell(
            scenario,
            methods=["vanilla"],
            scale=Scale(seeds=1, epochs=8, finetune_epochs=2, patience=5),
        )
        assert set(cell.summaries) == {"vanilla"}
        audit = cell.intersectional["vanilla"]
        assert audit.attribute_names == ("sensitive", "community")
        assert audit.num_cells == 4
        # keep_logits is transient — the stored result stays lean.
        assert "logits" not in cell.summaries  # summaries are MetricSummary

    def test_single_attr_cell_has_no_audit(self):
        scenario = Scenario("erdos_renyi", dataset_params={"num_nodes": 250})
        cell = run_scenario_cell(
            scenario,
            methods=["vanilla"],
            scale=Scale(seeds=1, epochs=8, finetune_epochs=2, patience=5),
        )
        assert cell.intersectional == {}
