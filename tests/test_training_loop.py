"""Tests for the shared supervised training loop."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gnnzoo import make_backbone
from repro.tensor import Tensor
from repro.tensor import ops
from repro.training import fit_binary_classifier, predict_logits


@pytest.fixture
def setup(small_graph):
    model = make_backbone(
        "gcn", small_graph.num_features, 16, np.random.default_rng(0)
    )
    return model, Tensor(small_graph.features), small_graph


class TestFitBinaryClassifier:
    def test_training_improves_over_initial(self, setup):
        model, features, graph = setup
        initial = predict_logits(model, features, graph.adjacency)
        initial_acc = (
            ((initial[graph.val_mask] > 0).astype(int) == graph.labels[graph.val_mask])
            .mean()
        )
        history = fit_binary_classifier(
            model, features, graph.adjacency, graph.labels,
            graph.train_mask, graph.val_mask, epochs=60,
        )
        assert history.best_val_accuracy >= initial_acc

    def test_loss_decreases(self, setup):
        model, features, graph = setup
        history = fit_binary_classifier(
            model, features, graph.adjacency, graph.labels,
            graph.train_mask, graph.val_mask, epochs=50,
        )
        assert history.train_loss[-1] < history.train_loss[0]

    def test_best_state_restored(self, setup):
        model, features, graph = setup
        history = fit_binary_classifier(
            model, features, graph.adjacency, graph.labels,
            graph.train_mask, graph.val_mask, epochs=40,
        )
        logits = predict_logits(model, features, graph.adjacency)
        val_acc = (
            ((logits[graph.val_mask] > 0).astype(int) == graph.labels[graph.val_mask])
            .mean()
        )
        assert val_acc == pytest.approx(history.best_val_accuracy)

    def test_early_stopping_stops(self, setup):
        model, features, graph = setup
        history = fit_binary_classifier(
            model, features, graph.adjacency, graph.labels,
            graph.train_mask, graph.val_mask, epochs=500, patience=3,
        )
        assert history.epochs_run < 500
        assert history.stopped_early

    def test_no_patience_runs_all_epochs(self, setup):
        model, features, graph = setup
        history = fit_binary_classifier(
            model, features, graph.adjacency, graph.labels,
            graph.train_mask, graph.val_mask, epochs=15, patience=None,
        )
        assert history.epochs_run == 15
        assert not history.stopped_early

    def test_extra_loss_hook_called(self, setup):
        model, features, graph = setup
        calls = []

        def hook(logits):
            calls.append(1)
            return ops.mul(ops.mean(ops.power(logits, 2.0)), 0.01)

        fit_binary_classifier(
            model, features, graph.adjacency, graph.labels,
            graph.train_mask, graph.val_mask, epochs=5, extra_loss=hook,
        )
        assert len(calls) == 5

    def test_rejects_empty_masks(self, setup):
        model, features, graph = setup
        with pytest.raises(ValueError):
            fit_binary_classifier(
                model, features, graph.adjacency, graph.labels,
                np.zeros(graph.num_nodes, dtype=bool), graph.val_mask, epochs=5,
            )

    def test_rejects_zero_epochs(self, setup):
        model, features, graph = setup
        with pytest.raises(ValueError):
            fit_binary_classifier(
                model, features, graph.adjacency, graph.labels,
                graph.train_mask, graph.val_mask, epochs=0,
            )

    def test_predict_logits_mode_restoration(self, setup):
        model, features, graph = setup
        model.train()
        predict_logits(model, features, graph.adjacency)
        assert model.training
        model.eval()
        predict_logits(model, features, graph.adjacency)
        assert not model.training
