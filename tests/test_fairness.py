"""Tests for fairness metrics and the evaluation harness."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fairness import (
    accuracy,
    auc_score,
    counterfactual_flip_rate,
    demographic_parity_difference,
    equal_opportunity_difference,
    evaluate_predictions,
    f1_score,
    group_confusion,
    group_positive_rates,
)


class TestUtilityMetrics:
    def test_accuracy(self):
        assert accuracy(np.array([1, 0, 1]), np.array([1, 1, 1])) == pytest.approx(2 / 3)

    def test_accuracy_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy(np.zeros(3), np.zeros(4))

    def test_accuracy_empty(self):
        with pytest.raises(ValueError):
            accuracy(np.array([]), np.array([]))

    def test_f1_perfect(self):
        assert f1_score(np.array([1, 0, 1]), np.array([1, 0, 1])) == 1.0

    def test_f1_degenerate_no_positives(self):
        assert f1_score(np.zeros(4, dtype=int), np.zeros(4, dtype=int)) == 0.0

    def test_f1_hand_computed(self):
        # tp=1, fp=1, fn=1 → f1 = 2/(2+1+1) = 0.5
        preds = np.array([1, 1, 0, 0])
        labels = np.array([1, 0, 1, 0])
        assert f1_score(preds, labels) == pytest.approx(0.5)

    def test_auc_perfect_ranking(self):
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        labels = np.array([0, 0, 1, 1])
        assert auc_score(scores, labels) == 1.0

    def test_auc_random_is_half(self):
        rng = np.random.default_rng(0)
        scores = rng.normal(size=10_000)
        labels = rng.integers(0, 2, size=10_000)
        assert auc_score(scores, labels) == pytest.approx(0.5, abs=0.02)

    def test_auc_ties_averaged(self):
        scores = np.zeros(4)
        labels = np.array([0, 1, 0, 1])
        assert auc_score(scores, labels) == pytest.approx(0.5)

    def test_auc_needs_both_classes(self):
        with pytest.raises(ValueError):
            auc_score(np.ones(3), np.ones(3, dtype=int))

    def test_binary_validation(self):
        with pytest.raises(ValueError, match="binary"):
            f1_score(np.array([0, 2]), np.array([0, 1]))


class TestFairnessMetrics:
    def test_dsp_hand_computed(self):
        # group 0: rate 1.0; group 1: rate 0.5 → ΔSP = 0.5
        preds = np.array([1, 1, 1, 0])
        sens = np.array([0, 0, 1, 1])
        assert demographic_parity_difference(preds, sens) == pytest.approx(0.5)

    def test_dsp_zero_when_equal(self):
        preds = np.array([1, 0, 1, 0])
        sens = np.array([0, 0, 1, 1])
        assert demographic_parity_difference(preds, sens) == 0.0

    def test_dsp_empty_group_raises(self):
        with pytest.raises(ValueError, match="empty"):
            demographic_parity_difference(np.array([1, 0]), np.array([0, 0]))

    def test_deo_hand_computed(self):
        # positives only: group 0 TPR 1.0, group 1 TPR 0.0 → ΔEO = 1
        preds = np.array([1, 0, 0, 1])
        labels = np.array([1, 1, 0, 0])
        sens = np.array([0, 1, 0, 1])
        assert equal_opportunity_difference(preds, labels, sens) == 1.0

    def test_deo_no_positives_raises(self):
        with pytest.raises(ValueError, match="positive"):
            equal_opportunity_difference(
                np.array([0, 0]), np.array([0, 0]), np.array([0, 1])
            )

    def test_group_positive_rates_order(self):
        preds = np.array([1, 0, 1, 1])
        sens = np.array([0, 0, 1, 1])
        rate0, rate1 = group_positive_rates(preds, sens)
        assert rate0 == pytest.approx(0.5)
        assert rate1 == pytest.approx(1.0)

    def test_group_confusion_counts(self):
        preds = np.array([1, 0, 1, 0])
        labels = np.array([1, 1, 0, 0])
        sens = np.array([0, 0, 1, 1])
        confusion = group_confusion(preds, labels, sens)
        assert confusion[0] == {"tp": 1, "fp": 0, "tn": 0, "fn": 1}
        assert confusion[1] == {"tp": 0, "fp": 1, "tn": 1, "fn": 0}

    def test_flip_rate(self):
        assert counterfactual_flip_rate(
            np.array([1, 1, 0, 0]), np.array([1, 0, 0, 1])
        ) == pytest.approx(0.5)

    def test_flip_rate_shape_mismatch(self):
        with pytest.raises(ValueError):
            counterfactual_flip_rate(np.array([1]), np.array([1, 0]))

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 500), n=st.integers(4, 60))
    def test_property_dsp_bounds_and_symmetry(self, seed, n):
        rng = np.random.default_rng(seed)
        preds = rng.integers(0, 2, size=n)
        sens = rng.integers(0, 2, size=n)
        if sens.min() == sens.max():
            sens[0] = 1 - sens[0]
        value = demographic_parity_difference(preds, sens)
        assert 0.0 <= value <= 1.0
        # Swapping group labels leaves ΔSP invariant.
        assert demographic_parity_difference(preds, 1 - sens) == pytest.approx(value)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 500))
    def test_property_deo_conditioning(self, seed):
        # ΔEO equals ΔSP computed on the ground-truth-positive subset.
        rng = np.random.default_rng(seed)
        n = 40
        preds = rng.integers(0, 2, size=n)
        labels = rng.integers(0, 2, size=n)
        sens = np.tile([0, 1], n // 2)
        labels[:4] = 1  # ensure positives in both groups
        positives = labels == 1
        if len(np.unique(sens[positives])) < 2:
            return
        expected = demographic_parity_difference(preds[positives], sens[positives])
        assert equal_opportunity_difference(preds, labels, sens) == pytest.approx(
            expected
        )


class TestEvaluation:
    def test_eval_result_fields(self):
        logits = np.array([2.0, -2.0, 2.0, -2.0])
        labels = np.array([1, 0, 1, 0])
        sens = np.array([0, 0, 1, 1])
        result = evaluate_predictions(logits, labels, sens)
        assert result.accuracy == 1.0
        assert result.delta_sp == 0.0
        assert result.num_nodes == 4

    def test_mask_restriction(self):
        logits = np.array([2.0, -2.0, 2.0, -2.0, -5.0, -5.0])
        labels = np.array([1, 0, 1, 0, 0, 0])
        sens = np.array([0, 0, 1, 1, 0, 1])
        mask = np.array([True, True, True, True, False, False])
        result = evaluate_predictions(logits, labels, sens, mask)
        assert result.num_nodes == 4
        assert result.accuracy == 1.0

    def test_threshold_shifts_predictions(self):
        logits = np.array([0.5, 0.5, 0.5, 0.5])
        labels = np.array([1, 1, 0, 0])
        sens = np.array([0, 1, 0, 1])
        low = evaluate_predictions(logits, labels, sens, threshold=0.0)
        high = evaluate_predictions(logits, labels, sens, threshold=1.0)
        assert low.positive_rate_s0 == 1.0
        assert high.positive_rate_s0 == 0.0

    def test_empty_mask_raises(self):
        with pytest.raises(ValueError):
            evaluate_predictions(
                np.ones(3), np.ones(3), np.array([0, 1, 0]), np.zeros(3, dtype=bool)
            )

    def test_percentages(self):
        logits = np.array([2.0, -2.0, 2.0, -2.0])
        labels = np.array([1, 0, 1, 0])
        sens = np.array([0, 0, 1, 1])
        result = evaluate_predictions(logits, labels, sens)
        assert result.as_percentages()["ACC"] == 100.0

    def test_str_contains_metrics(self):
        logits = np.array([2.0, -2.0, 2.0, -2.0])
        result = evaluate_predictions(
            logits, np.array([1, 0, 1, 0]), np.array([0, 0, 1, 1])
        )
        text = str(result)
        assert "ACC" in text and "ΔSP" in text and "ΔEO" in text
