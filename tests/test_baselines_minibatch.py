"""Full-vs-minibatch differential tests for KSMOTE, FairRF and FairGKD.

Same evidence structure as ``tests/test_finetune_minibatch.py``:

* **covering batch** — with ``batch_size >= N`` and exhaustive fanout the
  sampled formulation computes exactly the full-batch objective (KSMOTE's
  cluster step delegates to exact k-means, FairRF's correlations and
  FairGKD's distillation see every node per step), so the run must equal
  full-batch to float precision;
* **genuinely sampled** — fanout 10, batches of 256: seed-averaged accuracy
  and ΔSP stay within 2 points of full-batch on a ~500-node biased causal
  graph;
* **dispatch validation** — ``BaselineMethod`` must refuse
  ``minibatch=True`` on a subclass that never declared ``fanouts`` /
  ``batch_size`` instead of silently ignoring or crashing into it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import StreamingCorrelation
from repro.baselines import FairGKD, FairRF, KSMOTE
from repro.baselines.base import BaselineMethod
from repro.datasets import BiasSpec, generate_biased_graph
from repro.fairness import evaluate_predictions
from repro.gnnzoo import make_backbone
from repro.tensor import Tensor


@pytest.fixture(scope="module")
def causal_graph():
    """A ~500-node generated causal graph with planted bias."""
    return generate_biased_graph(
        num_nodes=500,
        num_features=12,
        average_degree=10,
        spec=BiasSpec(
            label_bias=0.2,
            proxy_strength=1.0,
            group_homophily=2.0,
            label_signal_strength=0.5,
        ),
        seed=7,
        name="agreement",
    ).standardized()


# Budgets at which *both* formulations converge: full-batch takes one
# optimizer step per epoch, so it needs the longer leash for the sampled
# run's extra steps not to read as an accuracy gap.
BUDGET = dict(epochs=300, patience=60)
# Covering configuration: one batch spans every node (and every synthetic
# KSMOTE node), fanout None folds the exact neighbourhood.
COVERING = dict(minibatch=True, batch_size=2048, fanouts=(None,))
SAMPLED = dict(minibatch=True, batch_size=256, fanouts=(10,))

# KSMOTE's batch parity penalty is a sampled estimate (train-only batches),
# so its covering contract is pinned with the penalty disabled; FairRF and
# FairGKD are covering-exact with their full fairness terms on.
COVERING_CASES = [
    (KSMOTE, {"parity_weight": 0.0}),
    (FairRF, {}),
    (FairGKD, {}),
]
# The sampled KSMOTE case pins its cluster step at covering size: k-means is
# discretely unstable (different centroids -> different synthetic nodes ->
# several points of ΔSP movement either way on a 500-node graph), so the
# 2-point contract isolates the sampled *training* formulation here while
# minibatch_kmeans itself is differential-tested in test_analysis.py.
SAMPLED_CASES = [
    (KSMOTE, {"kmeans_batch_size": 2048}),
    (FairRF, {}),
    (FairGKD, {}),
]


def _eval_all_nodes(cls, graph, seed, **kwargs):
    """Train via ``_train_logits`` and evaluate over every node (the same
    whole-graph contract the fine-tune differential test uses)."""
    logits, _ = cls(**kwargs)._train_logits(graph, np.random.default_rng(seed))
    return evaluate_predictions(
        logits,
        graph.labels,
        graph.sensitive,
        np.ones(graph.num_nodes, dtype=bool),
    )


class TestCoveringBatchEqualsFullBatch:
    @pytest.mark.parametrize(
        "cls,extra", COVERING_CASES, ids=["ksmote", "fairrf", "fairgkd"]
    )
    def test_covering_batch_matches_fullbatch(self, cls, extra, causal_graph):
        full = _eval_all_nodes(cls, causal_graph, seed=0, **BUDGET, **extra)
        mini = _eval_all_nodes(
            cls, causal_graph, seed=0, **BUDGET, **extra, **COVERING
        )
        assert abs(full.accuracy - mini.accuracy) < 1e-9
        assert abs(full.delta_sp - mini.delta_sp) < 1e-9


class TestSampledWithinTwoPoints:
    @pytest.mark.parametrize(
        "cls,extra", SAMPLED_CASES, ids=["ksmote", "fairrf", "fairgkd"]
    )
    def test_sampled_within_two_points(self, cls, extra, causal_graph):
        seeds = (0, 1, 2, 3, 4)
        full = [
            _eval_all_nodes(cls, causal_graph, seed=s, **BUDGET, **extra)
            for s in seeds
        ]
        mini = [
            _eval_all_nodes(cls, causal_graph, seed=s, **BUDGET, **extra, **SAMPLED)
            for s in seeds
        ]
        acc_gap = abs(
            np.mean([e.accuracy for e in full]) - np.mean([e.accuracy for e in mini])
        )
        sp_gap = abs(
            np.mean([e.delta_sp for e in full]) - np.mean([e.delta_sp for e in mini])
        )
        assert acc_gap <= 0.02, f"accuracy gap {acc_gap:.4f} > 2 points"
        assert sp_gap <= 0.02, f"ΔSP gap {sp_gap:.4f} > 2 points"


class TestSampledContracts:
    @pytest.mark.parametrize(
        "cls", [KSMOTE, FairRF, FairGKD], ids=["ksmote", "fairrf", "fairgkd"]
    )
    def test_minibatch_deterministic_given_seed(self, cls, causal_graph):
        kwargs = dict(epochs=20, patience=5, **SAMPLED)
        r1 = cls(**kwargs).fit(causal_graph, seed=3)
        r2 = cls(**kwargs).fit(causal_graph, seed=3)
        assert r1.test.accuracy == r2.test.accuracy
        assert r1.test.delta_sp == r2.test.delta_sp

    @pytest.mark.parametrize(
        "cls", [KSMOTE, FairRF, FairGKD], ids=["ksmote", "fairrf", "fairgkd"]
    )
    def test_minibatch_via_fit(self, cls, causal_graph):
        result = cls(epochs=15, patience=5, **SAMPLED).fit(causal_graph, seed=0)
        assert 0.0 <= result.test.accuracy <= 1.0
        assert 0.0 <= result.test.delta_sp <= 1.0


def _full_squared_correlation(predictions: np.ndarray, columns: np.ndarray):
    """Reference corr² of the full prediction vector with each column."""
    cp = predictions - predictions.mean()
    cx = columns - columns.mean(axis=0)
    return (cx * cp[:, None]).sum(axis=0) ** 2 / (
        (cp**2).sum() * (cx**2).sum(axis=0)
    )


def _batch_mean_squared_correlation(
    predictions: np.ndarray, columns: np.ndarray, batch_size: int
):
    """The pre-Welford FairRF estimator: size-weighted mean of per-batch corr²."""
    sums = np.zeros(columns.shape[1])
    for start in range(0, predictions.size, batch_size):
        p = predictions[start : start + batch_size]
        x = columns[start : start + batch_size]
        sums += _full_squared_correlation(p, x) * p.size
    return sums / predictions.size


class TestStreamingCorrelationEstimator:
    """The FairRF λ-update statistic: pooled Welford moments instead of the
    mean of per-batch squared correlations (ROADMAP: the latter is biased,
    ``E[corr²_batch] > corr²_full``, and widens the sampled ΔSP gap).

    The gap-tightening assertion lives at the estimator level because it is
    sharp there: the simplex weight update is shift-invariant, so on graphs
    whose related features are all inflated by a similar amount the bias
    cancels out of the weights — the pooled estimator's win appears exactly
    when correlations are heterogeneous, which these tests construct
    directly (one correlated column among uncorrelated ones)."""

    def _data(self, seed=0, n=2048, num_columns=3):
        rng = np.random.default_rng(seed)
        columns = rng.normal(size=(n, num_columns))
        # Predictions weakly correlated with column 0 only.
        predictions = 0.15 * columns[:, 0] + rng.normal(size=n)
        return predictions, columns

    def test_pooled_equals_full_for_fixed_predictions(self):
        predictions, columns = self._data()
        moments = StreamingCorrelation(columns.shape[1])
        for start in range(0, predictions.size, 64):
            moments.update(
                predictions[start : start + 64], columns[start : start + 64]
            )
        np.testing.assert_allclose(
            moments.squared_correlations(),
            _full_squared_correlation(predictions, columns),
            atol=1e-9,
        )

    def test_single_covering_batch_matches_batch_formula(self):
        predictions, columns = self._data(seed=1)
        moments = StreamingCorrelation(columns.shape[1])
        moments.update(predictions, columns)
        np.testing.assert_allclose(
            moments.squared_correlations(),
            _full_squared_correlation(predictions, columns),
            atol=1e-12,
        )

    def test_constant_column_reports_zero(self):
        predictions, columns = self._data(seed=2)
        columns[:, 1] = 3.5
        moments = StreamingCorrelation(columns.shape[1])
        moments.update(predictions[:100], columns[:100])
        moments.update(predictions[100:], columns[100:])
        assert moments.squared_correlations()[1] == 0.0

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_batch_mean_is_inflated_and_pooled_tightens_it(self, seed):
        """The estimator-level version of 'the sampled ΔSP gap tightens':
        at batch 64 the old batch-mean estimate of a near-zero correlation
        is inflated by ~1/batch, while the pooled estimate stays at the
        full-data value — so the weight update stops chasing noise."""
        predictions, columns = self._data(seed=seed)
        full = _full_squared_correlation(predictions, columns)
        batch_mean = _batch_mean_squared_correlation(predictions, columns, 64)
        moments = StreamingCorrelation(columns.shape[1])
        for start in range(0, predictions.size, 64):
            moments.update(
                predictions[start : start + 64], columns[start : start + 64]
            )
        pooled = moments.squared_correlations()
        # Uncorrelated columns: E[corr²_batch] ≈ 1/64 ≫ corr²_full ≈ 1/2048.
        for j in (1, 2):
            assert batch_mean[j] > full[j] + 5e-3
            assert abs(pooled[j] - full[j]) < 1e-9
        assert np.abs(pooled - full).max() < np.abs(batch_mean - full).max()

    def test_validates_shapes(self):
        moments = StreamingCorrelation(2)
        with pytest.raises(ValueError, match="columns"):
            moments.update(np.zeros(4), np.zeros((4, 3)))
        with pytest.raises(ValueError, match="num_columns"):
            StreamingCorrelation(0)


class TestDispatchValidation:
    """Regression: the minibatch dispatch must validate, not silently skip."""

    def test_undeclared_sampling_knobs_raise(self, causal_graph):
        class Undeclared(BaselineMethod):
            name = "undeclared"

            def __init__(self, **kwargs):
                super().__init__(**kwargs)
                self.minibatch = True  # but no fanouts / batch_size

            def _train_logits(self, graph, rng):
                model = make_backbone(
                    self.backbone, graph.num_features, self.hidden_dim, rng
                )
                _, logits = self._fit_and_predict(
                    model, Tensor(graph.features), graph, rng
                )
                return logits, {}

        with pytest.raises(ValueError, match="fanouts"):
            Undeclared(epochs=2).fit(causal_graph, seed=0)

    def test_partially_declared_names_missing_attr(self, causal_graph):
        class Partial(BaselineMethod):
            name = "partial"

            def __init__(self, **kwargs):
                super().__init__(**kwargs)
                self.minibatch = True
                self.fanouts = (5,)  # batch_size still missing

            def _train_logits(self, graph, rng):
                model = make_backbone(
                    self.backbone, graph.num_features, self.hidden_dim, rng
                )
                _, logits = self._fit_and_predict(
                    model, Tensor(graph.features), graph, rng
                )
                return logits, {}

        with pytest.raises(ValueError, match="batch_size"):
            Partial(epochs=2).fit(causal_graph, seed=0)

    @pytest.mark.parametrize(
        "cls", [KSMOTE, FairRF, FairGKD], ids=["ksmote", "fairrf", "fairgkd"]
    )
    def test_wired_baselines_pass_validation(self, cls):
        fanouts, batch_size = cls(minibatch=True)._sampling_config()
        assert batch_size >= 1

    def test_fairgkd_rejects_fanout_depth_mismatch_before_training(
        self, causal_graph
    ):
        """Regression: teacher training is FairGKD's dominant cost, so a
        fanouts/num_layers mismatch must fail before any teacher trains —
        not when the student folds its first (wrongly deep) block chain."""
        method = FairGKD(epochs=50, minibatch=True, fanouts=(10, 5))  # 1 layer
        with pytest.raises(ValueError, match="fanouts has 2 entries"):
            method._train_logits(causal_graph, np.random.default_rng(0))
