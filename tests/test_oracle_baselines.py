"""Tests for the oracle (sensitive-attribute-using) reference baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import Vanilla
from repro.baselines.base import MethodResult
from repro.baselines.oracle import FairGNN, NIFTY

FAST = dict(epochs=30, patience=10)


@pytest.mark.parametrize("cls", [NIFTY, FairGNN], ids=["nifty", "fairgnn"])
class TestOracleContract:
    def test_fit_returns_method_result(self, cls, small_graph):
        result = cls(**FAST).fit(small_graph, seed=0)
        assert isinstance(result, MethodResult)
        assert result.extra["uses_sensitive"] is True
        assert 0.0 <= result.test.accuracy <= 1.0

    def test_deterministic(self, cls, small_graph):
        r1 = cls(**FAST).fit(small_graph, seed=2)
        r2 = cls(**FAST).fit(small_graph, seed=2)
        assert r1.test.accuracy == r2.test.accuracy


class TestNIFTY:
    def test_rejects_bad_edge_drop(self):
        with pytest.raises(ValueError):
            NIFTY(edge_drop_rate=1.0)

    def test_rejects_negative_weights(self):
        with pytest.raises(ValueError):
            NIFTY(sim_weight=-0.1)

    def test_edge_drop_zero_keeps_adjacency(self, small_graph):
        method = NIFTY(edge_drop_rate=0.0, **FAST)
        dropped = method._drop_edges(small_graph.adjacency, np.random.default_rng(0))
        assert dropped is small_graph.adjacency

    def test_edge_drop_removes_edges(self, small_graph):
        method = NIFTY(edge_drop_rate=0.5, **FAST)
        dropped = method._drop_edges(small_graph.adjacency, np.random.default_rng(0))
        assert dropped.nnz < small_graph.adjacency.nnz

    def test_reproduces_the_papers_critique(self):
        """The paper argues perturbing only the sensitive bit gives
        non-realistic counterfactuals that fail to constrain proxy/structure
        bias.  Our NIFTY oracle exhibits exactly that: it does NOT reduce
        ΔSP on the amplification-driven NBA benchmark (see EXPERIMENTS.md).
        This test pins the observation structurally: NIFTY trains fine and
        stays in metric bounds, but no fairness guarantee is asserted."""
        from repro.datasets import load_dataset

        graph = load_dataset("nba", seed=0)
        result = NIFTY(epochs=60, patience=20).fit(graph, seed=0)
        assert 0.0 <= result.test.delta_sp <= 1.0
        assert result.test.accuracy > 0.5


class TestFairGNN:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            FairGNN(adversary_weight=-1.0)
        with pytest.raises(ValueError):
            FairGNN(adversary_steps=0)

    def test_multiple_adversary_steps(self, small_graph):
        result = FairGNN(adversary_steps=2, **FAST).fit(small_graph, seed=0)
        assert 0.0 <= result.test.accuracy <= 1.0

    @pytest.mark.slow
    def test_adversarial_training_reduces_bias_on_nba(self):
        from repro.datasets import load_dataset

        graph = load_dataset("nba", seed=0)
        vanilla = Vanilla(epochs=150, patience=30).fit(graph, seed=0)
        fair = FairGNN(epochs=150, patience=30).fit(graph, seed=0)
        assert fair.test.delta_sp < vanilla.test.delta_sp
        assert fair.test.accuracy >= vanilla.test.accuracy - 0.05
