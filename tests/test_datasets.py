"""Tests for the causal generator, registry and splits."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import correlation_with_vector
from repro.datasets import (
    BiasSpec,
    available_datasets,
    dataset_statistics_rows,
    generate_biased_graph,
    load_dataset,
    random_split_masks,
)
from repro.graph.utils import edge_homophily


class TestSplits:
    def test_partition(self):
        rng = np.random.default_rng(0)
        train, val, test = random_split_masks(100, rng)
        combined = train.astype(int) + val.astype(int) + test.astype(int)
        np.testing.assert_array_equal(combined, 1)

    def test_fractions(self):
        rng = np.random.default_rng(0)
        train, val, test = random_split_masks(1000, rng, 0.5, 0.25)
        assert train.sum() == 500
        assert val.sum() == 250
        assert test.sum() == 250

    def test_rejects_bad_fractions(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            random_split_masks(10, rng, 0.8, 0.3)
        with pytest.raises(ValueError):
            random_split_masks(10, rng, 0.0, 0.3)

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(10, 500), seed=st.integers(0, 100))
    def test_property_always_partitions(self, n, seed):
        rng = np.random.default_rng(seed)
        train, val, test = random_split_masks(n, rng)
        assert (train | val | test).all()
        assert not (train & val).any()
        assert not (train & test).any()
        assert not (val & test).any()


class TestBiasSpec:
    def test_defaults_valid(self):
        BiasSpec().validate()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"group_balance": 0.0},
            {"group_balance": 1.0},
            {"proxy_fraction": 1.5},
            {"latent_dim": 0},
            {"proxy_strength": -1.0},
            {"group_homophily": -0.5},
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            BiasSpec(**kwargs).validate()


class TestGenerator:
    def test_shapes_and_types(self):
        graph = generate_biased_graph(100, 10, 8.0, seed=0)
        assert graph.num_nodes == 100
        assert graph.num_features == 10
        assert set(np.unique(graph.labels)) <= {0, 1}
        assert set(np.unique(graph.sensitive)) <= {0, 1}

    def test_sensitive_not_a_feature_column(self):
        # No feature column may equal the sensitive attribute exactly.
        graph = generate_biased_graph(200, 10, 8.0, seed=1)
        for j in range(graph.num_features):
            assert not np.array_equal(
                (graph.features[:, j] > 0).astype(int), graph.sensitive
            )

    def test_deterministic_given_seed(self):
        g1 = generate_biased_graph(80, 6, 6.0, seed=5)
        g2 = generate_biased_graph(80, 6, 6.0, seed=5)
        np.testing.assert_allclose(g1.features, g2.features)
        np.testing.assert_array_equal(g1.labels, g2.labels)
        assert (g1.adjacency != g2.adjacency).nnz == 0

    def test_different_seeds_differ(self):
        g1 = generate_biased_graph(80, 6, 6.0, seed=5)
        g2 = generate_biased_graph(80, 6, 6.0, seed=6)
        assert not np.allclose(g1.features, g2.features)

    def test_average_degree_calibration(self):
        graph = generate_biased_graph(600, 8, 20.0, seed=2)
        assert graph.average_degree == pytest.approx(20.0, rel=0.15)

    def test_adjacency_symmetric_no_loops(self):
        graph = generate_biased_graph(150, 6, 10.0, seed=3)
        adj = graph.adjacency
        assert (adj != adj.T).nnz == 0
        assert adj.diagonal().sum() == 0.0

    @pytest.mark.slow
    def test_label_bias_increases_base_rate_gap(self):
        gaps = []
        for bias in (0.0, 1.5):
            spec = BiasSpec(label_bias=bias)
            graph = generate_biased_graph(3000, 6, 8.0, spec, seed=4)
            rate1 = graph.labels[graph.sensitive == 1].mean()
            rate0 = graph.labels[graph.sensitive == 0].mean()
            gaps.append(abs(rate1 - rate0))
        assert gaps[1] > gaps[0] + 0.1

    def test_proxy_columns_correlate_with_sensitive(self):
        spec = BiasSpec(proxy_strength=2.0, proxy_fraction=0.25, feature_noise=0.3)
        graph = generate_biased_graph(1000, 12, 8.0, spec, seed=5)
        corr = np.abs(correlation_with_vector(graph.features, graph.sensitive))
        proxies = graph.related_feature_indices
        others = np.setdiff1d(np.arange(12), proxies)
        assert corr[proxies].mean() > corr[others].mean() + 0.2

    def test_group_homophily_raises_edge_homophily(self):
        values = []
        for homophily in (0.0, 8.0):
            spec = BiasSpec(group_homophily=homophily)
            graph = generate_biased_graph(800, 6, 10.0, spec, seed=6)
            values.append(edge_homophily(graph.adjacency, graph.sensitive))
        assert values[1] > values[0] + 0.1

    @pytest.mark.slow
    def test_group_balance(self):
        spec = BiasSpec(group_balance=0.2)
        graph = generate_biased_graph(4000, 6, 6.0, spec, seed=7)
        assert graph.sensitive.mean() == pytest.approx(0.2, abs=0.03)

    def test_rejects_tiny_inputs(self):
        with pytest.raises(ValueError):
            generate_biased_graph(5, 10, 3.0)
        with pytest.raises(ValueError):
            generate_biased_graph(100, 1, 3.0)

    @settings(max_examples=10, deadline=None)
    @given(
        n=st.integers(50, 200),
        f=st.integers(3, 20),
        degree=st.floats(2.0, 15.0),
        seed=st.integers(0, 50),
    )
    def test_property_valid_graph_for_any_config(self, n, f, degree, seed):
        graph = generate_biased_graph(n, f, degree, seed=seed)
        graph.validate()
        assert graph.related_feature_indices.size >= 1
        assert graph.related_feature_indices.max() < f


class TestRegistry:
    def test_all_six_datasets_present(self):
        assert available_datasets() == sorted(
            ["bail", "credit", "pokec_z", "pokec_n", "nba", "occupation"]
        )

    def test_load_dataset_aliases(self):
        graph = load_dataset("Pokec-Z", seed=0)
        assert graph.name == "pokec_z"

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            load_dataset("cora")

    def test_nba_kept_at_true_size(self):
        assert load_dataset("nba", seed=0).num_nodes == 403

    def test_feature_dims_match_paper(self):
        expected = {
            "bail": 18,
            "credit": 13,
            "pokec_z": 277,
            "pokec_n": 266,
            "nba": 39,
            "occupation": 768,
        }
        for name, dims in expected.items():
            assert load_dataset(name, seed=0).num_features == dims

    def test_average_degree_matches_paper(self):
        rows = {r["dataset"]: r for r in dataset_statistics_rows()}
        for name in ("bail", "nba"):
            graph = load_dataset(name, seed=0)
            assert graph.average_degree == pytest.approx(
                rows[name]["paper_avg_degree"], rel=0.1
            )

    def test_standardize_flag(self):
        raw = load_dataset("bail", seed=0, standardize=False)
        std = load_dataset("bail", seed=0)
        assert not np.allclose(raw.features.mean(axis=0), 0.0, atol=1e-6)
        np.testing.assert_allclose(std.features.mean(axis=0), 0.0, atol=1e-9)

    def test_meta_provenance(self):
        graph = load_dataset("credit", seed=3)
        assert graph.meta["sensitive_name"] == "age"
        assert graph.meta["seed"] == 3

    def test_statistics_rows_complete(self):
        rows = dataset_statistics_rows()
        assert len(rows) == 6
        for row in rows:
            assert row["paper_nodes"] > 0
            assert row["sensitive"]
