"""Cross-module integration tests: the paper's headline claims in miniature.

These use the calibrated `nba` dataset (the paper's strongest-effect case)
at a budget big enough for the phenomena to appear but small enough for CI.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import Vanilla
from repro.core import FairwosConfig, FairwosTrainer
from repro.datasets import load_dataset
from repro.experiments.methods import FAIRWOS_OVERRIDES


@pytest.fixture(scope="module")
def nba_runs():
    """Train vanilla GCN and Fairwos on NBA once, share across tests."""
    graph = load_dataset("nba", seed=0)
    vanilla = Vanilla(epochs=150, patience=30).fit(graph, seed=0)
    config = FairwosConfig(
        encoder_epochs=150,
        classifier_epochs=150,
        finetune_epochs=15,
        patience=30,
        **FAIRWOS_OVERRIDES["nba"],
    )
    fair = FairwosTrainer(config).fit(graph, seed=0)
    return graph, vanilla, fair


class TestHeadlineClaims:
    def test_vanilla_is_unfair_without_sensitive_attribute(self, nba_runs):
        """Intro claim: bias persists even though s is excluded from X."""
        _, vanilla, _ = nba_runs
        assert vanilla.test.delta_sp > 0.10

    def test_fairwos_reduces_statistical_parity_gap(self, nba_runs):
        _, vanilla, fair = nba_runs
        assert fair.test.delta_sp < vanilla.test.delta_sp

    def test_fairwos_keeps_competitive_utility(self, nba_runs):
        """Table II claim: fairness without a significant accuracy drop."""
        _, vanilla, fair = nba_runs
        assert fair.test.accuracy >= vanilla.test.accuracy - 0.03

    def test_lambda_is_a_distribution(self, nba_runs):
        _, _, fair = nba_runs
        assert fair.lambda_weights.sum() == pytest.approx(1.0)
        assert (fair.lambda_weights >= 0).all()

    def test_counterfactual_coverage_high(self, nba_runs):
        """Real-data counterfactual search should cover most node/attr pairs."""
        _, _, fair = nba_runs
        assert fair.counterfactual_coverage > 0.8

    def test_pseudo_attributes_leak_sensitive_information(self, nba_runs):
        """RQ5: pseudo-sensitive attributes capture aspects of s (Fig. 7) —
        that is exactly why regularising them promotes fairness."""
        graph, _, fair = nba_runs
        from repro.experiments.fig7_tsne import knn_leakage

        attrs = fair.pseudo_attributes[graph.test_mask]
        sens = graph.sensitive[graph.test_mask]
        base = max(sens.mean(), 1 - sens.mean())
        assert knn_leakage(attrs, sens) > base - 0.05


class TestMessagePassingAmplification:
    def test_gnn_amplifies_base_rate_gap(self, nba_runs):
        """Intro claim: message passing magnifies the bias — the model's
        prediction gap exceeds the label base-rate gap."""
        graph, vanilla, _ = nba_runs
        test = graph.test_mask
        labels, sens = graph.labels[test], graph.sensitive[test]
        base_gap = abs(
            labels[sens == 1].mean() - labels[sens == 0].mean()
        )
        assert vanilla.test.delta_sp > base_gap
