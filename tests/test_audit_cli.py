"""Tests for the bias-audit module and the command-line interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.fairness.audit import audit_graph, audit_predictions


class TestAuditGraph:
    def test_fields_and_ranges(self, small_graph):
        audit = audit_graph(small_graph)
        assert audit.feature_leakage.shape == (small_graph.num_features,)
        assert (audit.feature_leakage >= 0).all()
        assert 0.0 <= audit.sensitive_homophily <= 1.0
        assert 0.0 <= audit.label_homophily <= 1.0
        assert 0.0 <= audit.base_rate_gap <= 1.0
        assert 0.0 <= audit.structural_leakage <= 1.0

    def test_proxy_features_ranked_first(self, small_graph):
        audit = audit_graph(small_graph)
        # The generator's planted proxies should dominate the leakage ranking.
        top = set(audit.top_proxy_features[: small_graph.related_feature_indices.size])
        planted = set(small_graph.related_feature_indices.tolist())
        assert len(top & planted) >= 1

    def test_homophilous_graph_high_structural_leakage(self, small_graph):
        audit = audit_graph(small_graph)
        # group_homophily=2.0 was planted: structure must beat coin flipping.
        assert audit.structural_leakage > 0.5

    def test_render_contains_key_lines(self, small_graph):
        text = audit_graph(small_graph).render()
        assert "homophily" in text
        assert "proxy features" in text


class TestAuditPredictions:
    def test_amplification_of_constant_gap(self, small_graph):
        # A predictor that predicts the label perfectly has amplification 1.
        logits = np.where(small_graph.labels == 1, 5.0, -5.0)
        audit = audit_predictions(logits, small_graph)
        assert audit.amplification == pytest.approx(1.0, abs=1e-6)

    def test_constant_prediction_zero_gap(self, small_graph):
        logits = np.full(small_graph.num_nodes, 5.0)
        audit = audit_predictions(logits, small_graph)
        assert audit.evaluation.delta_sp == 0.0
        assert audit.amplification == pytest.approx(0.0)

    def test_render(self, small_graph):
        logits = np.where(small_graph.labels == 1, 5.0, -5.0)
        text = audit_predictions(logits, small_graph).render()
        assert "amplification" in text
        assert "verdict" in text


class TestCLI:
    def test_parser_commands(self):
        parser = build_parser()
        args = parser.parse_args(["run", "--method", "vanilla", "--dataset", "nba"])
        assert args.command == "run"
        assert args.method == "vanilla"

    def test_parser_rejects_unknown_method(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--method", "bogus"])

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_datasets_command(self, capsys):
        output = main(["datasets"])
        assert "nba" in output
        assert "sensitive" in output

    def test_run_command_vanilla(self):
        output = main(["run", "--method", "vanilla", "--dataset", "nba",
                       "--epochs", "20"])
        assert "Vanilla" in output
        assert "ACC" in output

    def test_table2_smoke(self):
        output = main([
            "table2", "--datasets", "nba", "--backbones", "gcn",
            "--methods", "vanilla", "--scale", "smoke",
        ])
        assert "Table II" in output

    def test_parser_cf_backend_options(self):
        args = build_parser().parse_args([
            "run", "--method", "fairwos", "--cf-backend", "ann",
            "--cf-refresh", "3",
        ])
        assert args.cf_backend == "ann"
        assert args.cf_refresh_epochs == 3
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--cf-backend", "bogus"])

    def test_leading_option_defaults_to_run(self):
        # `repro --method ...` (no subcommand) is shorthand for `repro run ...`.
        output = main(["--method", "vanilla", "--dataset", "nba",
                       "--epochs", "20"])
        assert "Vanilla" in output

    def test_run_fairwos_ann_minibatch(self):
        output = main([
            "run", "--method", "fairwos", "--dataset", "nba",
            "--epochs", "15", "--minibatch", "--batch-size", "128",
            "--cf-backend", "ann", "--cf-refresh", "5",
        ])
        assert "Fairwos" in output
        assert "cf-backend=ann" in output


class TestAuditPredictionWindows:
    def _stream(self, n=80, seed=0):
        rng = np.random.default_rng(seed)
        logits = rng.normal(size=n)
        labels = rng.integers(0, 2, size=n)
        sensitive = rng.integers(0, 2, size=n)
        return logits, labels, sensitive

    def test_windows_tile_the_stream(self):
        from repro.fairness.audit import audit_prediction_windows

        logits, labels, sensitive = self._stream()
        report = audit_prediction_windows(logits, labels, sensitive, num_windows=4)
        assert report.num_windows == 4
        assert report.starts[0] == 0
        assert report.ends[-1] == logits.size
        np.testing.assert_array_equal(report.starts[1:], report.ends[:-1])
        assert sum(ev.num_nodes for ev in report.evaluations) == logits.size

    def test_single_window_zero_drift(self):
        from repro.fairness.audit import audit_prediction_windows

        logits, labels, sensitive = self._stream()
        report = audit_prediction_windows(logits, labels, sensitive, num_windows=1)
        assert report.delta_sp_drift == 0.0

    def test_drift_detects_flipped_half(self):
        from repro.fairness.audit import audit_prediction_windows

        # First half: predictions independent of s.  Second half: predict s.
        n = 100
        rng = np.random.default_rng(3)
        sensitive = rng.integers(0, 2, size=n)
        labels = rng.integers(0, 2, size=n)
        logits = np.concatenate(
            [rng.normal(size=n // 2), np.where(sensitive[n // 2 :] == 1, 5.0, -5.0)]
        )
        report = audit_prediction_windows(logits, labels, sensitive, num_windows=2)
        assert report.delta_sp_drift > 0.3

    def test_one_sided_window_reports_nan_not_crash(self):
        from repro.fairness.audit import audit_prediction_windows

        logits = np.array([1.0, -1.0, 1.0, -1.0])
        labels = np.array([1, 0, 1, 0])
        sensitive = np.array([0, 0, 1, 1])  # window 0 all-s0, window 1 all-s1
        report = audit_prediction_windows(logits, labels, sensitive, num_windows=2)
        assert np.isnan(report.evaluations[0].delta_sp)
        assert report.evaluations[0].accuracy == 1.0
        assert report.delta_sp_drift == 0.0
        assert "nan" in report.render()

    def test_validation_errors(self):
        from repro.fairness.audit import audit_prediction_windows

        logits, labels, sensitive = self._stream(n=4)
        with pytest.raises(ValueError, match="aligned"):
            audit_prediction_windows(logits, labels[:-1], sensitive)
        with pytest.raises(ValueError, match="num_windows"):
            audit_prediction_windows(logits, labels, sensitive, num_windows=0)
        with pytest.raises(ValueError, match="cannot split"):
            audit_prediction_windows(logits, labels, sensitive, num_windows=5)


@pytest.fixture(scope="module")
def cli_artifact(tmp_path_factory):
    """A small Fairwos artifact trained through the CLI itself."""
    path = tmp_path_factory.mktemp("cli") / "artifact"
    main([
        "run", "--method", "fairwos", "--dataset", "nba", "--epochs", "5",
        "--save", str(path),
    ])
    return path


class TestScoreCommand:
    def test_score_full_graph(self, cli_artifact):
        output = main(["score", "--artifact", str(cli_artifact)])
        assert "Fairwos artifact" in output
        assert "scored 403 nodes" in output

    def test_score_nodes_audit_and_out(self, cli_artifact, tmp_path):
        out = tmp_path / "logits.npy"
        output = main([
            "score", "--artifact", str(cli_artifact),
            "--node-ids", "1,5,9", "--out", str(out),
            "--audit", "--audit-windows", "3", "--counterfactuals", "2",
        ])
        assert "scored 3 nodes" in output
        assert "Bias audit" in output
        assert "Fairness drift audit (3 windows)" in output
        assert "counterfactual twins" in output
        assert np.load(out).shape == (3,)

    def test_score_missing_artifact_raises(self, tmp_path):
        from repro.io import ArtifactError

        with pytest.raises(ArtifactError, match="not a model artifact"):
            main(["score", "--artifact", str(tmp_path)])

    def test_parser_score_flags(self):
        args = build_parser().parse_args([
            "score", "--artifact", "a", "--node-ids", "1,2", "--probes",
            "exhaustive",
        ])
        assert args.command == "score"
        assert args.probes == "exhaustive"


class TestServeCommand:
    def test_serve_loop(self, cli_artifact, capsys):
        import io

        from repro.cli import _cmd_serve

        args = build_parser().parse_args(["serve", "--artifact", str(cli_artifact)])
        stdin = io.StringIO("score 1,5,9\ncf 3 2\naudit\nwindows 2\nbogus\nquit\n")
        summary = _cmd_serve(args, stdin=stdin)
        assert "served 5 requests" in summary
        transcript = capsys.readouterr().out
        assert "1:" in transcript and "5:" in transcript
        assert "counterfactual twins" in transcript
        assert "Fairness drift audit (2 windows)" in transcript
        assert "unknown command 'bogus'" in transcript

    def test_serve_bad_request_is_nonfatal(self, cli_artifact, capsys):
        import io

        from repro.cli import _cmd_serve

        args = build_parser().parse_args(["serve", "--artifact", str(cli_artifact)])
        stdin = io.StringIO("score 999999\nscore 1\n")
        summary = _cmd_serve(args, stdin=stdin)
        assert "served 2 requests" in summary
        transcript = capsys.readouterr().out
        assert "error:" in transcript
        assert "1:" in transcript
