"""Tests for the bias-audit module and the command-line interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.fairness.audit import audit_graph, audit_predictions


class TestAuditGraph:
    def test_fields_and_ranges(self, small_graph):
        audit = audit_graph(small_graph)
        assert audit.feature_leakage.shape == (small_graph.num_features,)
        assert (audit.feature_leakage >= 0).all()
        assert 0.0 <= audit.sensitive_homophily <= 1.0
        assert 0.0 <= audit.label_homophily <= 1.0
        assert 0.0 <= audit.base_rate_gap <= 1.0
        assert 0.0 <= audit.structural_leakage <= 1.0

    def test_proxy_features_ranked_first(self, small_graph):
        audit = audit_graph(small_graph)
        # The generator's planted proxies should dominate the leakage ranking.
        top = set(audit.top_proxy_features[: small_graph.related_feature_indices.size])
        planted = set(small_graph.related_feature_indices.tolist())
        assert len(top & planted) >= 1

    def test_homophilous_graph_high_structural_leakage(self, small_graph):
        audit = audit_graph(small_graph)
        # group_homophily=2.0 was planted: structure must beat coin flipping.
        assert audit.structural_leakage > 0.5

    def test_render_contains_key_lines(self, small_graph):
        text = audit_graph(small_graph).render()
        assert "homophily" in text
        assert "proxy features" in text


class TestAuditPredictions:
    def test_amplification_of_constant_gap(self, small_graph):
        # A predictor that predicts the label perfectly has amplification 1.
        logits = np.where(small_graph.labels == 1, 5.0, -5.0)
        audit = audit_predictions(logits, small_graph)
        assert audit.amplification == pytest.approx(1.0, abs=1e-6)

    def test_constant_prediction_zero_gap(self, small_graph):
        logits = np.full(small_graph.num_nodes, 5.0)
        audit = audit_predictions(logits, small_graph)
        assert audit.evaluation.delta_sp == 0.0
        assert audit.amplification == pytest.approx(0.0)

    def test_render(self, small_graph):
        logits = np.where(small_graph.labels == 1, 5.0, -5.0)
        text = audit_predictions(logits, small_graph).render()
        assert "amplification" in text
        assert "verdict" in text


class TestCLI:
    def test_parser_commands(self):
        parser = build_parser()
        args = parser.parse_args(["run", "--method", "vanilla", "--dataset", "nba"])
        assert args.command == "run"
        assert args.method == "vanilla"

    def test_parser_rejects_unknown_method(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--method", "bogus"])

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_datasets_command(self, capsys):
        output = main(["datasets"])
        assert "nba" in output
        assert "sensitive" in output

    def test_run_command_vanilla(self):
        output = main(["run", "--method", "vanilla", "--dataset", "nba",
                       "--epochs", "20"])
        assert "Vanilla" in output
        assert "ACC" in output

    def test_table2_smoke(self):
        output = main([
            "table2", "--datasets", "nba", "--backbones", "gcn",
            "--methods", "vanilla", "--scale", "smoke",
        ])
        assert "Table II" in output

    def test_parser_cf_backend_options(self):
        args = build_parser().parse_args([
            "run", "--method", "fairwos", "--cf-backend", "ann",
            "--cf-refresh", "3",
        ])
        assert args.cf_backend == "ann"
        assert args.cf_refresh == 3
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--cf-backend", "bogus"])

    def test_leading_option_defaults_to_run(self):
        # `repro --method ...` (no subcommand) is shorthand for `repro run ...`.
        output = main(["--method", "vanilla", "--dataset", "nba",
                       "--epochs", "20"])
        assert "Vanilla" in output

    def test_run_fairwos_ann_minibatch(self):
        output = main([
            "run", "--method", "fairwos", "--dataset", "nba",
            "--epochs", "15", "--minibatch", "--batch-size", "128",
            "--cf-backend", "ann", "--cf-refresh", "5",
        ])
        assert "Fairwos" in output
        assert "cf-backend=ann" in output
