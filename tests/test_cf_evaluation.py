"""Tests for the counterfactual-fairness evaluation module."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import evaluate_counterfactual_fairness


class TestCounterfactualFairness:
    def _inputs(self, seed=0, n=30, d=3, attrs=2):
        rng = np.random.default_rng(seed)
        logits = rng.normal(size=n)
        reps = rng.normal(size=(n, d))
        pseudo = rng.normal(size=(n, attrs))
        labels = rng.integers(0, 2, size=n)
        return logits, reps, pseudo, labels

    def test_report_structure(self):
        logits, reps, pseudo, labels = self._inputs()
        report = evaluate_counterfactual_fairness(logits, reps, pseudo, labels)
        assert report.flip_rates.shape == (2,)
        assert 0.0 <= report.coverage <= 1.0
        valid = ~np.isnan(report.flip_rates)
        assert ((report.flip_rates[valid] >= 0) & (report.flip_rates[valid] <= 1)).all()

    def test_constant_prediction_never_flips(self):
        logits, reps, pseudo, labels = self._inputs(seed=1)
        logits = np.full_like(logits, 3.0)
        report = evaluate_counterfactual_fairness(logits, reps, pseudo, labels)
        valid = ~np.isnan(report.flip_rates)
        np.testing.assert_allclose(report.flip_rates[valid], 0.0)
        assert report.overall == 0.0

    def test_label_aligned_prediction_never_flips(self):
        # Twins share the label; predicting exactly the label ⇒ no flips.
        logits, reps, pseudo, labels = self._inputs(seed=2)
        logits = np.where(labels == 1, 5.0, -5.0)
        report = evaluate_counterfactual_fairness(logits, reps, pseudo, labels)
        valid = ~np.isnan(report.flip_rates)
        np.testing.assert_allclose(report.flip_rates[valid], 0.0)

    def test_attribute_dependent_prediction_flips(self):
        # Prediction = binarised attr 0 while label is constant ⇒ every twin
        # along attribute 0 disagrees.
        n = 20
        rng = np.random.default_rng(3)
        pseudo = rng.normal(size=(n, 1))
        median = np.median(pseudo[:, 0])
        logits = np.where(pseudo[:, 0] > median, 5.0, -5.0)
        reps = rng.normal(size=(n, 2))
        labels = np.zeros(n, dtype=int)
        report = evaluate_counterfactual_fairness(logits, reps, pseudo, labels)
        assert report.flip_rates[0] == pytest.approx(1.0)

    def test_mask_restricts_counting(self):
        logits, reps, pseudo, labels = self._inputs(seed=4)
        mask = np.zeros(len(logits), dtype=bool)
        mask[:10] = True
        report = evaluate_counterfactual_fairness(
            logits, reps, pseudo, labels, mask=mask
        )
        assert report.flip_rates.shape == (2,)

    def test_no_counterfactuals_gives_nan(self):
        n = 10
        rng = np.random.default_rng(5)
        pseudo = np.ones((n, 1))  # constant → binarises to all-zero
        report = evaluate_counterfactual_fairness(
            rng.normal(size=n), rng.normal(size=(n, 2)), pseudo,
            np.zeros(n, dtype=int),
        )
        assert np.isnan(report.flip_rates[0])
        assert np.isnan(report.overall)

    def test_render(self):
        logits, reps, pseudo, labels = self._inputs(seed=6)
        text = evaluate_counterfactual_fairness(logits, reps, pseudo, labels).render()
        assert "flip rate" in text
        assert "x0_0" in text

    def test_end_to_end_with_trainer(self, small_graph):
        from repro.core import FairwosConfig, FairwosTrainer
        from repro.tensor import Tensor, no_grad

        trainer = FairwosTrainer(
            FairwosConfig(
                encoder_epochs=25, classifier_epochs=25, finetune_epochs=3,
                encoder_dim=6, patience=10,
            )
        )
        fit = trainer.fit(small_graph, seed=0)
        with no_grad():
            reps = trainer.classifier.embed(
                Tensor(fit.pseudo_attributes), small_graph.adjacency
            ).data
        logits = trainer.predict(small_graph)
        report = evaluate_counterfactual_fairness(
            logits, reps, fit.pseudo_attributes, small_graph.labels,
            mask=small_graph.test_mask,
        )
        assert report.coverage > 0.5
