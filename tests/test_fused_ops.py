"""Fused hot-path kernels pinned against their composed-graph oracles.

Three chains were collapsed into single autograd nodes with analytic
adjoints (fused BCE-with-logits, the fair-loss pair-disparity kernel, and
the in-place Adam update).  These tests pin each one *bit-identical* to the
composed form it replaced — same float ops, same accumulation association —
and additionally gradcheck the analytic adjoints against finite differences.
The autograd-core bugfix regressions from the same sweep live here too.
"""

import gc

import numpy as np
import pytest

from repro.core import fairloss
from repro.core.fairloss import (
    _composed_pair_disparities,
    _fused_pair_disparities,
    _gather_csr_handle,
)
from repro.nn.losses import (
    binary_cross_entropy_with_logits,
    binary_cross_entropy_with_logits_reference,
)
from repro.nn.module import Parameter
from repro.optim import Adam
from repro.tensor import Tensor, dtype_scope, gradcheck, ops


class TestFusedBCE:
    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    @pytest.mark.parametrize("weighted", [False, True])
    def test_bitwise_identical_to_composed(self, dtype, weighted):
        rng = np.random.default_rng(0)
        with dtype_scope(dtype):
            logits = rng.standard_normal((7, 5)) * 3.0
            targets = (rng.random((7, 5)) > 0.4).astype(float)
            weights = rng.random((7, 5)) if weighted else None
            a = Tensor(logits, requires_grad=True)
            b = Tensor(logits, requires_grad=True)
            fused = binary_cross_entropy_with_logits(a, targets, weights)
            composed = binary_cross_entropy_with_logits_reference(
                b, targets, weights
            )
            assert fused.data.dtype == composed.data.dtype
            assert np.array_equal(fused.data, composed.data)
            fused.backward()
            composed.backward()
            assert np.array_equal(a.grad, b.grad)

    def test_upstream_gradient_is_threaded(self):
        logits = np.linspace(-2, 2, 6)
        a = Tensor(logits, requires_grad=True)
        b = Tensor(logits, requires_grad=True)
        # A non-trivial op above the loss exercises the non-unit upstream
        # gradient path of the fused adjoint.
        ops.mul(binary_cross_entropy_with_logits(a, np.ones(6)), 3.0).backward()
        ops.mul(
            binary_cross_entropy_with_logits_reference(b, np.ones(6)), 3.0
        ).backward()
        assert np.array_equal(a.grad, b.grad)

    @pytest.mark.parametrize("weighted", [False, True])
    def test_gradcheck(self, weighted):
        rng = np.random.default_rng(1)
        logits = rng.standard_normal(12)
        targets = (rng.random(12) > 0.5).astype(float)
        weights = rng.random(12) + 0.1 if weighted else None
        assert gradcheck(
            lambda t: binary_cross_entropy_with_logits(t, targets, weights),
            [Tensor(logits, requires_grad=True)],
        )

    def test_zero_weight_sum_raises(self):
        # Previously produced a silent NaN loss that poisoned the whole run.
        logits = Tensor(np.ones(4), requires_grad=True)
        with pytest.raises(ValueError, match="weights sum to zero"):
            binary_cross_entropy_with_logits(
                logits, np.ones(4), np.zeros(4)
            )

    def test_zero_weight_sum_raises_in_reference(self):
        logits = Tensor(np.ones(4), requires_grad=True)
        with pytest.raises(ValueError, match="weights sum to zero"):
            binary_cross_entropy_with_logits_reference(
                logits, np.ones(4), np.zeros(4)
            )


def _random_fair_case(rng, num_nodes, dim, num_pairs, top_k):
    h = rng.standard_normal((num_nodes, dim))
    indices = rng.integers(0, num_nodes, size=(num_pairs, num_nodes, top_k))
    anchors = np.arange(num_nodes, dtype=np.int64)
    valid = rng.random((num_pairs, num_nodes)) < 0.9
    counts = valid.sum(axis=1).astype(float)
    scale = valid * np.divide(
        1.0, counts, out=np.zeros_like(counts), where=counts > 0
    )[:, None]
    return h, indices, anchors, scale


class TestFusedFairLoss:
    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    @pytest.mark.parametrize(
        "num_nodes,top_k", [(60, 4), (2500, 3)]
    )  # below/above the scatter CSR threshold
    def test_bitwise_identical_to_composed(self, dtype, num_nodes, top_k):
        rng = np.random.default_rng(2)
        with dtype_scope(dtype):
            h, idx, anchors, scale = _random_fair_case(
                rng, num_nodes, 8, 3, top_k
            )
            a = Tensor(h, requires_grad=True)
            b = Tensor(h, requires_grad=True)
            fused = _fused_pair_disparities(a, idx, anchors, scale)
            composed = _composed_pair_disparities(b, idx, anchors, scale)
            assert fused.data.dtype == composed.data.dtype
            assert np.array_equal(fused.data, composed.data)
            upstream = rng.standard_normal(3)
            fused.backward(upstream)
            composed.backward(upstream)
            assert np.array_equal(a.grad, b.grad)

    def test_gradcheck(self):
        rng = np.random.default_rng(3)
        h, idx, anchors, scale = _random_fair_case(rng, 20, 4, 2, 3)
        assert gradcheck(
            lambda t: ops.sum(_fused_pair_disparities(t, idx, anchors, scale)),
            [Tensor(h, requires_grad=True)],
        )

    def test_csr_handle_cached_per_indices_array(self):
        rng = np.random.default_rng(4)
        idx = rng.integers(0, 30, size=(2, 30, 3))
        first = _gather_csr_handle(idx, 30, np.dtype("float64"))
        assert _gather_csr_handle(idx, 30, np.dtype("float64")) is first
        # A different dtype gets its own prepared variant of the same base.
        assert _gather_csr_handle(idx, 30, np.dtype("float32")) is not first
        # A fresh indices array (as every counterfactual refresh builds)
        # yields a fresh handle even if the old id was recycled.
        other = _gather_csr_handle(idx.copy(), 30, np.dtype("float64"))
        assert other is not first

    def test_csr_cache_is_bounded(self):
        keep = [
            np.random.default_rng(i).integers(0, 10, size=(1, 10, 2))
            for i in range(fairloss._GATHER_CSR_CACHE_MAX + 4)
        ]
        for idx in keep:
            _gather_csr_handle(idx, 10, np.dtype("float64"))
        assert len(fairloss._GATHER_CSR_CACHE) <= fairloss._GATHER_CSR_CACHE_MAX

    def test_csr_cache_drops_dead_arrays(self):
        idx = np.random.default_rng(9).integers(0, 10, size=(1, 10, 2))
        _gather_csr_handle(idx, 10, np.dtype("float64"))
        key = id(idx)
        assert key in fairloss._GATHER_CSR_CACHE
        del idx
        gc.collect()
        # The next miss sweeps dead entries.
        fresh = np.random.default_rng(10).integers(0, 10, size=(1, 10, 2))
        _gather_csr_handle(fresh, 10, np.dtype("float64"))
        live = [
            k
            for k, e in fairloss._GATHER_CSR_CACHE.items()
            if e[0]() is None
        ]
        assert key not in fairloss._GATHER_CSR_CACHE or not live


def _composed_adam_step(param, grad, m, v, t, lr, beta1, beta2, eps, wd):
    """The pre-fusion composed update, kept verbatim as the oracle."""
    if wd:
        grad = grad + wd * param
    m = beta1 * m + (1.0 - beta1) * grad
    v = beta2 * v + (1.0 - beta2) * grad**2
    m_hat = m / (1.0 - beta1**t)
    v_hat = v / (1.0 - beta2**t)
    param = param - lr * m_hat / (np.sqrt(v_hat) + eps)
    return param, m, v


class TestFusedAdam:
    @pytest.mark.parametrize("weight_decay", [0.0, 0.05])
    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_bitwise_identical_to_composed(self, weight_decay, dtype):
        rng = np.random.default_rng(5)
        with dtype_scope(dtype):
            w = Tensor(rng.standard_normal((6, 4))).data
            param = Parameter(w.copy())
            opt = Adam([param], lr=0.01, weight_decay=weight_decay)
            ref_p, ref_m, ref_v = w.copy(), np.zeros_like(w), np.zeros_like(w)
            for t in range(1, 6):
                grad = Tensor(rng.standard_normal((6, 4))).data
                param.grad = grad.copy()
                opt.step()
                ref_p, ref_m, ref_v = _composed_adam_step(
                    ref_p, grad, ref_m, ref_v, t,
                    lr=0.01, beta1=0.9, beta2=0.999, eps=1e-8, wd=weight_decay,
                )
                assert np.array_equal(param.data, ref_p)
            assert np.array_equal(opt._m[0], ref_m)
            assert np.array_equal(opt._v[0], ref_v)

    def test_update_is_in_place(self):
        param = Parameter(np.ones((3, 2)))
        buffer = param.data
        param.grad = np.full((3, 2), 0.5)
        Adam([param], lr=0.1).step()
        assert param.data is buffer  # mutated, not rebound

    def test_step_does_not_mutate_the_gradient(self):
        param = Parameter(np.ones((3, 2)))
        grad = np.full((3, 2), 0.5)
        param.grad = grad
        Adam([param], lr=0.1, weight_decay=0.01).step()
        np.testing.assert_array_equal(grad, np.full((3, 2), 0.5))


class TestAutogradCoreRegressions:
    """Bugfix sweep: detach/copy dtype recast, leaf-only accumulation,
    item() on multi-element tensors."""

    def test_detach_preserves_dtype_across_scope(self):
        t = Tensor(np.ones(3))  # float64 under the default scope
        with dtype_scope("float32"):
            detached = t.detach()
        assert detached.data.dtype == np.float64
        assert detached.data is t.data  # a view, not a recast copy
        assert not detached.requires_grad

    def test_copy_preserves_dtype_across_scope(self):
        t = Tensor(np.ones(3))
        with dtype_scope("float32"):
            copied = t.copy()
        assert copied.data.dtype == np.float64
        copied.data[0] = 5.0
        assert t.data[0] == 1.0

    def test_from_op_preserves_op_dtype(self):
        with dtype_scope("float32"):
            a = Tensor(np.ones(3), requires_grad=True)
            out = ops.mul(a, a)
        assert out.data.dtype == np.float32

    def test_backward_populates_leaves_only(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.full(3, 2.0), requires_grad=True)
        interior = ops.mul(a, b)
        out = ops.sum(interior)
        out.backward()
        np.testing.assert_array_equal(a.grad, b.data)
        np.testing.assert_array_equal(b.grad, a.data)
        assert interior.grad is None  # no retain_grad: interior stays bare
        assert out.grad is None

    def test_item_on_scalar(self):
        assert Tensor(np.array(3.5)).item() == pytest.approx(3.5)
        assert Tensor(np.array([3.5])).item() == pytest.approx(3.5)

    def test_item_on_multi_element_raises(self):
        with pytest.raises(ValueError, match="single-element"):
            Tensor(np.ones(3)).item()
