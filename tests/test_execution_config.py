"""ExecutionConfig: the unified execution API behind run_method and the CLI."""

from __future__ import annotations

import pytest

from repro.core import ExecutionConfig, FairwosConfig
from repro.experiments import run_method


class TestValidation:
    def test_defaults_validate(self):
        ExecutionConfig().validate()

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"batch_size": 0}, "batch_size"),
            ({"cache_epochs": 0}, "cache_epochs"),
            ({"cf_backend": "faiss"}, "cf_backend"),
            ({"cf_refresh_epochs": 0}, "cf_refresh_epochs"),
            ({"cf_update": "lazy"}, "cf_update"),
            ({"cf_update": "incremental"}, "cf_backend"),
            ({"num_workers": -1}, "num_workers"),
            ({"prefetch_epochs": -1}, "prefetch_epochs"),
            ({"fanouts": ()}, "fanouts"),
            ({"fanouts": (0,)}, "fanouts"),
            ({"dtype": "float16"}, "float"),
        ],
    )
    def test_rejects_bad_settings(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            ExecutionConfig(**kwargs).validate()

    def test_frozen(self):
        with pytest.raises(Exception):
            ExecutionConfig().minibatch = True

    def test_fairwos_config_validates_new_knobs(self):
        with pytest.raises(ValueError, match="num_workers"):
            FairwosConfig(num_workers=-1).validate()
        with pytest.raises(ValueError, match="prefetch_epochs"):
            FairwosConfig(prefetch_epochs=-2).validate()


class TestCompatShim:
    def test_flat_kwargs_emit_deprecation_warning(self, small_graph):
        with pytest.warns(DeprecationWarning, match="ExecutionConfig"):
            run_method(
                "vanilla", small_graph, epochs=3, minibatch=True,
                batch_size=64,
            )

    def test_flat_and_execution_together_error(self, small_graph):
        with pytest.raises(ValueError, match="both"):
            run_method(
                "vanilla",
                small_graph,
                epochs=3,
                minibatch=True,
                execution=ExecutionConfig(minibatch=True),
            )

    @pytest.mark.parametrize("method", ["vanilla", "fairwos"])
    def test_shim_parity_with_execution_config(self, method, small_graph):
        """Flat kwargs and ExecutionConfig produce identical results."""
        settings = dict(minibatch=True, fanouts=(5,), batch_size=64)
        with pytest.warns(DeprecationWarning):
            flat = run_method(
                method, small_graph, epochs=6, finetune_epochs=2,
                patience=None, seed=0, **settings,
            )
        config = run_method(
            method, small_graph, epochs=6, finetune_epochs=2,
            patience=None, seed=0, execution=ExecutionConfig(**settings),
        )
        assert flat.test == config.test
        assert flat.validation == config.validation
        assert flat.method == config.method

    def test_new_knobs_have_no_flat_spelling(self, small_graph):
        with pytest.raises(TypeError):
            run_method("vanilla", small_graph, epochs=3, num_workers=2)


class TestFairwosConfigConflicts:
    """Every execution field that disagrees with an explicit FairwosConfig
    must be rejected — including fanouts/batch_size, which the historical
    check silently ignored."""

    @pytest.mark.parametrize(
        "field, value",
        [
            ("minibatch", True),
            ("fanouts", (7,)),
            ("batch_size", 64),
            ("cache_epochs", 2),
            ("finetune_minibatch", True),
            ("cf_backend", "ann"),
            ("cf_refresh_epochs", 3),
            ("cf_update", "incremental"),
            ("dtype", "float32"),
            ("num_workers", 2),
            ("prefetch_epochs", 2),
        ],
    )
    def test_rejects_disagreeing_field(self, small_graph, field, value):
        kwargs = {field: value}
        if field == "cf_update":
            kwargs["cf_backend"] = "ann"
        with pytest.raises(ValueError, match="fairwos_config"):
            run_method(
                "fairwos",
                small_graph,
                fairwos_config=FairwosConfig(),
                execution=ExecutionConfig(**kwargs),
            )

    def test_agreeing_fields_pass(self, small_graph):
        """Execution values that match the config are not conflicts."""
        config = FairwosConfig(
            minibatch=True, batch_size=64,
            encoder_epochs=3, classifier_epochs=3, finetune_epochs=2,
        )
        result = run_method(
            "fairwos",
            small_graph,
            fairwos_config=config,
            execution=ExecutionConfig(minibatch=True, batch_size=64),
        )
        assert 0.0 <= result.test.accuracy <= 1.0

    def test_legacy_flat_conflicts_still_raise(self, small_graph):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="fairwos_config"):
                run_method(
                    "fairwos", small_graph,
                    fairwos_config=FairwosConfig(), cf_backend="ann",
                )


class TestCliDerivation:
    def test_run_flags_derive_from_table(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(
            [
                "run", "--method", "vanilla", "--minibatch",
                "--fanout", "10,5", "--batch-size", "256",
                "--num-workers", "4", "--prefetch-epochs", "2",
                "--cf-refresh", "3", "--dtype", "float32",
            ]
        )
        execution = ExecutionConfig(
            **{
                name: getattr(args, name)
                for name, _ in ExecutionConfig.cli_flags()
            }
        )
        assert execution.minibatch is True
        assert execution.fanouts == (10, 5)
        assert execution.batch_size == 256
        assert execution.num_workers == 4
        assert execution.prefetch_epochs == 2
        assert execution.cf_refresh_epochs == 3
        assert execution.dtype == "float32"
        execution.validate()

    def test_every_table_row_is_a_config_field(self):
        names = ExecutionConfig.field_names()
        for field_name, spec in ExecutionConfig.cli_flags():
            assert field_name in names
            assert spec["flag"].startswith("--")

    def test_save_persists_execution(self, small_graph, tmp_path):
        from repro.experiments import run_method as _run
        from repro.io import load_artifact, save_artifact

        execution = ExecutionConfig(minibatch=True, batch_size=64)
        result = _run(
            "vanilla", small_graph, epochs=3, execution=execution,
            keep_model=True,
        )
        path = save_artifact(
            result.extra["model"], small_graph, tmp_path / "art",
            execution=execution,
        )
        artifact = load_artifact(path)
        assert artifact.execution["minibatch"] is True
        assert artifact.execution["batch_size"] == 64
        assert artifact.execution["num_workers"] == 0
