"""Golden round-trip tests for the model-artifact subsystem.

The serving contract: ``save_artifact`` → ``load_artifact`` → ``score``
reproduces the in-memory model's logits bit-identically, and the persisted
counterfactual index answers queries exactly like the live one.  Plus the
failure modes: wrong schema version, corrupt manifest, missing members.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.counterfactual import CounterfactualSearch
from repro.experiments.methods import run_method
from repro.io import ArtifactError, load_artifact, save_artifact
from repro.io.artifact import ARTIFACT_VERSION, graph_fingerprints
from repro.tensor import Tensor
from repro.training import predict_logits, predict_logits_batched


@pytest.fixture(scope="module")
def fairwos_run(small_graph):
    """A fitted Fairwos trainer (ANN backend) kept for parity checks."""
    result = run_method(
        "fairwos",
        small_graph,
        epochs=4,
        finetune_epochs=2,
        cf_backend="ann",
        keep_model=True,
    )
    return result.extra["model"]


@pytest.fixture(scope="module")
def fairwos_artifact(fairwos_run, small_graph, tmp_path_factory):
    path = tmp_path_factory.mktemp("artifacts") / "fairwos"
    save_artifact(fairwos_run, small_graph, path)
    return path


class TestFairwosRoundTrip:
    def test_score_bit_identical(self, fairwos_run, fairwos_artifact, small_graph):
        live = fairwos_run.predict(small_graph)
        art = load_artifact(fairwos_artifact)
        reloaded = art.score()
        np.testing.assert_array_equal(reloaded, live)
        # the acceptance bound, trivially implied by exact equality
        assert np.abs(reloaded - live).max() <= 1e-12

    def test_score_node_subset_aligns(self, fairwos_run, fairwos_artifact, small_graph):
        art = load_artifact(fairwos_artifact)
        nodes = np.array([3, 17, 42, 99])
        np.testing.assert_array_equal(
            art.score(nodes=nodes), fairwos_run.predict(small_graph)[nodes]
        )

    def test_manifest_records_dataset(self, fairwos_artifact, small_graph):
        art = load_artifact(fairwos_artifact)
        dataset = art.manifest["dataset"]
        assert dataset["name"] == small_graph.name
        assert dataset["num_nodes"] == small_graph.num_nodes
        assert dataset["fingerprints"] == graph_fingerprints(small_graph)

    def test_matches_fingerprints(self, fairwos_artifact, small_graph, tiny_graph):
        art = load_artifact(fairwos_artifact)
        assert art.matches(small_graph)
        assert not art.matches(tiny_graph)

    def test_bundled_graph_round_trips(self, fairwos_artifact, small_graph):
        art = load_artifact(fairwos_artifact)
        np.testing.assert_array_equal(art.graph.features, small_graph.features)
        np.testing.assert_array_equal(art.graph.labels, small_graph.labels)

    def test_wrong_node_count_suggests_features(self, fairwos_artifact, tiny_graph):
        art = load_artifact(fairwos_artifact)
        with pytest.raises(ArtifactError, match="pass features="):
            art.score(graph=tiny_graph)

    def test_score_new_features_matches_transform(
        self, fairwos_run, fairwos_artifact, small_graph, rng
    ):
        art = load_artifact(fairwos_artifact)
        perturbed = small_graph.features + 0.01 * rng.normal(
            size=small_graph.features.shape
        )
        scored = art.score(features=perturbed)
        pseudo = fairwos_run.transform_features(perturbed, small_graph.adjacency)
        expected = predict_logits(
            fairwos_run.classifier, Tensor(pseudo), small_graph.adjacency
        )
        np.testing.assert_array_equal(scored, expected)


class TestPersistedIndex:
    def test_exhaustive_retrieval_matches_exact_oracle(
        self, fairwos_run, fairwos_artifact
    ):
        art = load_artifact(fairwos_artifact)
        persisted = art.counterfactuals(probes="exhaustive")
        search = CounterfactualSearch(fairwos_run.config.top_k)  # exact backend
        live = search.search(
            art._index_points,
            fairwos_run._pseudo_labels,
            fairwos_run._binary_attrs,
        )
        np.testing.assert_array_equal(persisted.indices, live.indices)
        np.testing.assert_array_equal(persisted.valid, live.valid)

    def test_persisted_forest_matches_live_forest(self, fairwos_run, fairwos_artifact):
        # Same forest, same routing tables: default-probes queries agree
        # with the live index the trainer left standing.
        live_index = fairwos_run._search.backend._index
        art = load_artifact(fairwos_artifact)
        assert art._index is not None
        assert art._index.update_count == live_index.update_count
        queries = live_index.points[:16]
        np.testing.assert_array_equal(
            art._index.query(queries, 3), live_index.query(queries, 3)
        )

    def test_node_subset_rows_match_full_query(self, fairwos_artifact):
        art = load_artifact(fairwos_artifact)
        nodes = np.array([5, 9, 23])
        subset = art.counterfactuals(nodes=nodes, probes="exhaustive")
        full = art.counterfactuals(probes="exhaustive")
        np.testing.assert_array_equal(
            subset.indices[:, nodes], full.indices[:, nodes]
        )
        # unqueried rows are left invalid
        others = np.setdiff1d(np.arange(subset.valid.shape[1]), nodes)
        assert not subset.valid[:, others].any()

    def test_probes_override_int(self, fairwos_artifact):
        art = load_artifact(fairwos_artifact)
        result = art.counterfactuals(top_k=2, probes=4)
        assert result.top_k == 2


class TestBaselineRoundTrip:
    def test_vanilla_fullbatch_bit_identical(self, small_graph, tmp_path):
        result = run_method("vanilla", small_graph, epochs=5, keep_model=True)
        runner = result.extra["model"]
        live = predict_logits(
            runner.model_, Tensor(small_graph.features), small_graph.adjacency
        )
        save_artifact(runner, small_graph, tmp_path / "vanilla")
        art = load_artifact(tmp_path / "vanilla")
        np.testing.assert_array_equal(art.score(), live)
        assert np.abs(art.score() - live).max() <= 1e-12

    def test_remover_minibatch_bit_identical(self, small_graph, tmp_path):
        result = run_method(
            "remover",
            small_graph,
            epochs=4,
            minibatch=True,
            fanouts=(5,),
            batch_size=64,
            keep_model=True,
        )
        runner = result.extra["model"]
        raw = small_graph.features[:, runner.feature_columns_]
        live = predict_logits_batched(
            runner.model_, raw, small_graph.adjacency, batch_size=64
        )
        save_artifact(runner, small_graph, tmp_path / "remover")
        art = load_artifact(tmp_path / "remover")
        np.testing.assert_array_equal(art.score(), live)
        # the column selection itself round-trips
        np.testing.assert_array_equal(
            art.baseline.feature_columns_, runner.feature_columns_
        )

    def test_baseline_has_no_counterfactuals(self, small_graph, tmp_path):
        result = run_method("vanilla", small_graph, epochs=2, keep_model=True)
        save_artifact(result.extra["model"], small_graph, tmp_path / "v")
        art = load_artifact(tmp_path / "v")
        with pytest.raises(ArtifactError, match="no counterfactual"):
            art.counterfactuals()

    def test_unfitted_baseline_rejected(self, small_graph, tmp_path):
        from repro.baselines import Vanilla

        with pytest.raises(ArtifactError, match="model_"):
            save_artifact(Vanilla(), small_graph, tmp_path / "unfit")


class TestManifestValidation:
    def test_not_an_artifact(self, tmp_path):
        with pytest.raises(ArtifactError, match="not a model artifact"):
            load_artifact(tmp_path)

    def test_version_mismatch(self, fairwos_artifact, tmp_path):
        import shutil

        copy = tmp_path / "bumped"
        shutil.copytree(fairwos_artifact, copy)
        manifest = json.loads((copy / "manifest.json").read_text())
        manifest["format_version"] = ARTIFACT_VERSION + 1
        (copy / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ArtifactError, match="unsupported artifact version"):
            load_artifact(copy)

    def test_corrupt_manifest_json(self, fairwos_artifact, tmp_path):
        import shutil

        copy = tmp_path / "corrupt"
        shutil.copytree(fairwos_artifact, copy)
        (copy / "manifest.json").write_text("{not json")
        with pytest.raises(ArtifactError, match="corrupt manifest"):
            load_artifact(copy)

    def test_missing_member_file(self, fairwos_artifact, tmp_path):
        import shutil

        copy = tmp_path / "gutted"
        shutil.copytree(fairwos_artifact, copy)
        (copy / "model.npz").unlink()
        with pytest.raises(ArtifactError, match="missing member"):
            load_artifact(copy)

    def test_unknown_kind(self, fairwos_artifact, tmp_path):
        import shutil

        copy = tmp_path / "alien"
        shutil.copytree(fairwos_artifact, copy)
        manifest = json.loads((copy / "manifest.json").read_text())
        manifest["kind"] = "mystery"
        (copy / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ArtifactError, match="unknown artifact kind"):
            load_artifact(copy)

    def test_non_model_rejected(self, small_graph, tmp_path):
        with pytest.raises(ArtifactError, match="cannot persist"):
            save_artifact(object(), small_graph, tmp_path / "obj")


class TestGraphlessArtifact:
    def test_score_requires_explicit_graph(self, fairwos_run, small_graph, tmp_path):
        path = tmp_path / "nograph"
        save_artifact(fairwos_run, small_graph, path, include_graph=False)
        art = load_artifact(path)
        assert art.graph is None
        with pytest.raises(ArtifactError, match="pass one explicitly"):
            art.score()
        np.testing.assert_array_equal(
            art.score(graph=small_graph), fairwos_run.predict(small_graph)
        )


class TestAuditSurface:
    def test_audit_matches_direct_call(self, fairwos_run, fairwos_artifact, small_graph):
        from repro.fairness.audit import audit_predictions

        art = load_artifact(fairwos_artifact)
        direct = audit_predictions(fairwos_run.predict(small_graph), small_graph)
        assert art.audit().evaluation == direct.evaluation

    def test_audit_windows_shapes(self, fairwos_artifact):
        art = load_artifact(fairwos_artifact)
        report = art.audit_windows(num_windows=3)
        assert report.num_windows == 3
        assert int(report.ends[-1]) == art.graph.num_nodes
        assert "drift" in report.render()
