"""Tests for the experiment harness (tables & figures)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    FAIRWOS_OVERRIDES,
    Scale,
    available_methods,
    format_fig4,
    format_fig5,
    format_fig6,
    format_fig7,
    format_fig8,
    format_table1,
    format_table2,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig8,
    run_method,
    run_table1,
    run_table2,
)
from repro.experiments.fig7_tsne import knn_leakage, silhouette
from repro.datasets import load_dataset

SMOKE = Scale.smoke()


class TestScale:
    def test_presets(self):
        assert Scale.paper().seeds == 10
        assert Scale.quick().seeds >= 1
        assert Scale.smoke().epochs < Scale.quick().epochs


class TestMethodRegistry:
    def test_six_methods(self):
        assert available_methods() == [
            "vanilla", "remover", "ksmote", "fairrf", "fairgkd", "fairwos",
        ]

    def test_overrides_cover_all_datasets(self):
        from repro.datasets import available_datasets

        for name in available_datasets():
            assert name in FAIRWOS_OVERRIDES

    @pytest.mark.parametrize("method", ["vanilla", "fairwos"])
    def test_run_method(self, method, small_graph):
        result = run_method(method, small_graph, epochs=25, finetune_epochs=2, patience=5)
        assert 0.0 <= result.test.accuracy <= 1.0

    def test_unknown_method(self, small_graph):
        with pytest.raises(ValueError, match="unknown method"):
            run_method("mystery", small_graph)

    @pytest.mark.parametrize(
        "method", ["vanilla", "remover", "ksmote", "fairrf", "fairgkd", "fairwos"]
    )
    def test_run_method_minibatch(self, method, small_graph):
        """Every Table II method accepts neighbour-sampled training."""
        result = run_method(
            method, small_graph, epochs=25, finetune_epochs=2, patience=5,
            minibatch=True, fanouts=(10,), batch_size=64,
        )
        assert 0.0 <= result.test.accuracy <= 1.0

    def test_run_method_fairwos_ann_backend(self, small_graph):
        result = run_method(
            "fairwos", small_graph, epochs=25, finetune_epochs=2, patience=5,
            minibatch=True, batch_size=64, cf_backend="ann", cf_refresh_epochs=2,
        )
        assert 0.0 <= result.test.accuracy <= 1.0
        assert result.extra["counterfactual_coverage"] > 0.0

    def test_explicit_config_rejects_cf_overrides(self, small_graph):
        from repro.core import FairwosConfig

        with pytest.raises(ValueError, match="fairwos_config"):
            run_method(
                "fairwos", small_graph,
                fairwos_config=FairwosConfig(), cf_backend="ann",
            )
        with pytest.raises(ValueError, match="fairwos_config"):
            run_method(
                "fairwos", small_graph,
                fairwos_config=FairwosConfig(), finetune_minibatch=True,
            )


@pytest.mark.slow
class TestTable1:
    def test_rows_and_formatting(self):
        rows = run_table1(seed=0)
        assert len(rows) == 6
        text = format_table1(rows)
        for name in ("bail", "credit", "nba", "occupation"):
            assert name in text
        assert "Table I" in text

    def test_degree_calibration_within_tolerance(self):
        for row in run_table1(seed=0):
            assert row["avg_degree"] == pytest.approx(
                row["paper_avg_degree"], rel=0.15
            )


class TestTable2:
    def test_small_grid(self):
        result = run_table2(
            datasets=["nba"], backbones=["gcn"],
            methods=["vanilla", "fairwos"], scale=SMOKE,
        )
        summary = result.get("nba", "gcn", "vanilla")
        assert summary.runs == SMOKE.seeds
        assert 0.0 <= summary.acc_mean <= 100.0
        text = format_table2(result)
        assert "Vanilla\\S" in text and "Fairwos" in text


class TestFig4:
    def test_variants_and_formatting(self):
        result = run_fig4(
            datasets=["nba"], backbones=["gcn"],
            variants=["gnn", "fwos_wo_f", "fairwos"], scale=SMOKE,
        )
        assert ("nba", "gcn", "fairwos") in result.cells
        text = format_fig4(result)
        assert "Fwos w/o F" in text

    def test_unknown_variant(self):
        with pytest.raises(ValueError):
            run_fig4(datasets=["nba"], backbones=["gcn"],
                     variants=["bogus"], scale=SMOKE)


class TestFig5:
    def test_dimension_sweep(self):
        result = run_fig5(dataset="nba", dims=[4], backbones=["gcn"], scale=SMOKE)
        assert ("gcn", "fairwos", 4) in result.cells
        assert ("gcn", "gnn", 0) in result.cells
        assert "d=4" in format_fig5(result)


class TestFig6:
    def test_alpha_k_grid(self):
        result = run_fig6(dataset="nba", alphas=[0.0, 1.0], ks=[1, 2], scale=SMOKE)
        assert len(result.cells) == 4
        text = format_fig6(result)
        assert "ACC" in text and "ΔSP" in text


class TestFig7:
    def test_separation_scores(self):
        result = run_fig7(dataset="nba", scale=SMOKE, tsne_iterations=50)
        assert result.embedding.shape[1] == 2
        assert len(result.embedding) == len(result.sensitive)
        assert -1.0 <= result.silhouette_score <= 1.0
        assert 0.0 <= result.leakage <= 1.0
        assert "t-SNE" in format_fig7(result)

    def test_silhouette_separated_clusters(self):
        rng = np.random.default_rng(0)
        points = np.vstack([rng.normal(size=(20, 2)) + 50, rng.normal(size=(20, 2)) - 50])
        groups = np.repeat([0, 1], 20)
        assert silhouette(points, groups) > 0.9
        assert knn_leakage(points, groups) == 1.0

    def test_silhouette_single_group_raises(self):
        with pytest.raises(ValueError):
            silhouette(np.zeros((4, 2)), np.zeros(4))


class TestFig8:
    def test_runtime_entries(self):
        result = run_fig8(
            dataset="nba", scale=SMOKE, entries=["vanilla", "fairwos", "fwos_wo_f"],
        )
        assert set(result.seconds_mean) == {"vanilla", "fairwos", "fwos_wo_f"}
        assert all(v > 0 for v in result.seconds_mean.values())
        assert "seconds" in format_fig8(result)

    def test_fairwos_slower_than_wo_f(self):
        result = run_fig8(
            dataset="nba", scale=SMOKE, entries=["fairwos", "fwos_wo_f"],
        )
        # Fairness fine-tuning adds work on top of the w/o F variant.
        assert result.seconds_mean["fairwos"] > result.seconds_mean["fwos_wo_f"]
