"""Golden seed-0 pins for the scenario matrix.

``golden_scenarios.json`` pins test accuracy / ΔSP / ΔEO for all six
methods on the new matrix cells — Erdős–Rényi × node classification,
SBM × node classification, SBM × link prediction — plus the vanilla joint
(intersectional) gaps on a scale-free graph with an extra planted sensitive
attribute.  Together with ``golden_baselines.json`` (which pins the
original scale-free node-classification path) this makes every cell of the
matrix a claim: a refactor of the generators, the link-prediction engine
wiring or the audit layer cannot silently shift the numbers.

Regenerate after a deliberate behaviour change with::

    PYTHONPATH=src python tests/test_scenarios_golden.py

All stochasticity flows through ``numpy.random.Generator`` seeded per run,
so the pins are exact and the comparison is tight (1e-9).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.experiments import Scale, Scenario
from repro.experiments.methods import METHOD_ORDER
from repro.experiments.scenario import run_scenario_method
from repro.fairness import audit_intersectional

GOLDEN_PATH = Path(__file__).parent / "golden_scenarios.json"
SCALE = Scale(seeds=1, epochs=30, finetune_epochs=4, patience=10)

CELLS = {
    "er_nc": Scenario(
        "erdos_renyi", dataset_params={"num_nodes": 250}, name="er_nc"
    ),
    "sbm_nc": Scenario("sbm", dataset_params={"num_nodes": 250}, name="sbm_nc"),
    "sbm_lp": Scenario(
        "sbm",
        task="link_prediction",
        dataset_params={"num_nodes": 250},
        name="sbm_lp",
    ),
}
INTERSECTIONAL = Scenario(
    "scalefree",
    sensitive_attrs=("sensitive", "attr1"),
    dataset_params={"num_nodes": 250, "extra_sensitive_attrs": 1},
    name="sf_intersectional",
)


def _compute() -> dict:
    out: dict = {}
    for key, scenario in CELLS.items():
        graph = scenario.load(seed=0)
        out[key] = {}
        for method in METHOD_ORDER:
            result = run_scenario_method(
                scenario, method, graph, seed=0, scale=SCALE
            )
            out[key][method] = {
                "accuracy": float(result.test.accuracy),
                "delta_sp": float(result.test.delta_sp),
                "delta_eo": float(result.test.delta_eo),
            }
    graph = INTERSECTIONAL.load(seed=0)
    result = run_scenario_method(
        INTERSECTIONAL, "vanilla", graph, seed=0, scale=SCALE, keep_logits=True
    )
    test = graph.test_mask
    audit = audit_intersectional(
        result.extra["logits"][test],
        graph.labels[test],
        {k: v[test] for k, v in INTERSECTIONAL.attributes(graph).items()},
    )
    out["sf_intersectional"] = {
        "vanilla": {
            "accuracy": float(result.test.accuracy),
            "joint_delta_sp": float(audit.delta_sp),
            "joint_delta_eo": float(audit.delta_eo),
            "num_cells": audit.num_cells,
        }
    }
    return out


@pytest.fixture(scope="module")
def golden() -> dict:
    assert GOLDEN_PATH.exists(), (
        f"{GOLDEN_PATH} missing — regenerate with "
        f"`PYTHONPATH=src python {Path(__file__).name}`"
    )
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def current() -> dict:
    return _compute()


class TestGoldenScenarios:
    def test_every_cell_pinned(self, golden):
        assert set(golden) == set(CELLS) | {"sf_intersectional"}
        for key in CELLS:
            assert set(golden[key]) == set(METHOD_ORDER)

    @pytest.mark.parametrize("cell", sorted(CELLS) + ["sf_intersectional"])
    def test_cell_matches_golden(self, cell, golden, current):
        for method, pinned_metrics in golden[cell].items():
            for metric, pinned in pinned_metrics.items():
                actual = current[cell][method][metric]
                assert actual == pytest.approx(pinned, abs=1e-9, nan_ok=True), (
                    f"{cell}.{method}.{metric} drifted: golden {pinned!r} vs "
                    f"current {actual!r}.  If intentional, regenerate "
                    f"tests/golden_scenarios.json (see module docstring)."
                )

    def test_intersectional_cell_count(self, current):
        # Two binary attributes → the full 2×2 product is enumerated.
        assert current["sf_intersectional"]["vanilla"]["num_cells"] == 4


if __name__ == "__main__":
    metrics = _compute()
    GOLDEN_PATH.write_text(json.dumps(metrics, indent=2, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH}")
    for cell, methods in metrics.items():
        print(f"  {cell}:")
        for name, values in methods.items():
            print(f"    {name:8s} {values}")
