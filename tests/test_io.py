"""Tests for graph/model persistence and networkx interop."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gnnzoo import make_backbone
from repro.io import (
    from_networkx,
    load_graph,
    load_state,
    save_graph,
    save_graph_mmap,
    save_state,
    to_networkx,
)
from repro.tensor import Tensor


class TestGraphIO:
    def test_round_trip(self, small_graph, tmp_path):
        path = save_graph(small_graph, tmp_path / "graph.npz")
        loaded = load_graph(path)
        assert (loaded.adjacency != small_graph.adjacency).nnz == 0
        np.testing.assert_allclose(loaded.features, small_graph.features)
        np.testing.assert_array_equal(loaded.labels, small_graph.labels)
        np.testing.assert_array_equal(loaded.sensitive, small_graph.sensitive)
        np.testing.assert_array_equal(loaded.train_mask, small_graph.train_mask)
        np.testing.assert_array_equal(
            loaded.related_feature_indices, small_graph.related_feature_indices
        )
        assert loaded.name == small_graph.name

    def test_suffix_added(self, small_graph, tmp_path):
        path = save_graph(small_graph, tmp_path / "graph")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_version_check(self, small_graph, tmp_path):
        path = save_graph(small_graph, tmp_path / "graph.npz")
        with np.load(path) as data:
            payload = {key: data[key] for key in data.files}
        payload["format_version"] = np.array(99)
        np.savez_compressed(path, **payload)
        with pytest.raises(ValueError, match="version"):
            load_graph(path)


class TestGraphMmapIO:
    def _assert_graphs_equal(self, loaded, original):
        assert (loaded.adjacency != original.adjacency).nnz == 0
        np.testing.assert_array_equal(
            np.asarray(loaded.features), original.features
        )
        np.testing.assert_array_equal(loaded.labels, original.labels)
        np.testing.assert_array_equal(loaded.sensitive, original.sensitive)
        np.testing.assert_array_equal(loaded.train_mask, original.train_mask)
        np.testing.assert_array_equal(loaded.val_mask, original.val_mask)
        np.testing.assert_array_equal(loaded.test_mask, original.test_mask)
        np.testing.assert_array_equal(
            loaded.related_feature_indices, original.related_feature_indices
        )
        assert loaded.name == original.name

    def test_directory_round_trip(self, small_graph, tmp_path):
        path = save_graph_mmap(small_graph, tmp_path / "graphdir")
        assert path.is_dir()
        self._assert_graphs_equal(load_graph(path), small_graph)

    def test_mmap_round_trip(self, small_graph, tmp_path):
        path = save_graph_mmap(small_graph, tmp_path / "graphdir")
        self._assert_graphs_equal(load_graph(path, mmap=True), small_graph)

    def test_mmap_arrays_stay_memory_mapped(self, small_graph, tmp_path):
        """The large arrays must remain on-disk views after Graph wraps
        them — an eager copy anywhere in the pipeline defeats the 1M-node
        memory budget."""
        path = save_graph_mmap(small_graph, tmp_path / "graphdir")
        loaded = load_graph(path, mmap=True)

        def disk_backed(array: np.ndarray) -> bool:
            # scipy's CSR constructor may wrap the memmap in a plain
            # ndarray *view*; walk the base chain to the owning buffer.
            while isinstance(array, np.ndarray):
                if isinstance(array, np.memmap):
                    return True
                array = array.base
            return False

        assert disk_backed(loaded.features)
        assert disk_backed(loaded.adjacency.data)
        assert disk_backed(loaded.adjacency.indices)
        assert disk_backed(loaded.adjacency.indptr)

    def test_float32_features_preserved(self, small_graph, tmp_path):
        """float32 features survive save → mmap-load → Graph un-upcast."""
        shrunk = small_graph.with_features(
            small_graph.features.astype(np.float32),
            related=small_graph.related_feature_indices,
        )
        assert shrunk.features.dtype == np.float32
        path = save_graph_mmap(shrunk, tmp_path / "graphdir")
        loaded = load_graph(path, mmap=True)
        assert loaded.features.dtype == np.float32
        assert isinstance(loaded.features, np.memmap)
        assert (path / "features.npy").stat().st_size < small_graph.features.nbytes

    def test_mmap_on_npz_raises(self, small_graph, tmp_path):
        path = save_graph(small_graph, tmp_path / "graph.npz")
        with pytest.raises(ValueError, match="mmap"):
            load_graph(path, mmap=True)

    def test_missing_file_raises(self, small_graph, tmp_path):
        path = save_graph_mmap(small_graph, tmp_path / "graphdir")
        (path / "features.npy").unlink()
        with pytest.raises(ValueError, match="features"):
            load_graph(path)

    def test_version_check(self, small_graph, tmp_path):
        path = save_graph_mmap(small_graph, tmp_path / "graphdir")
        np.save(path / "format_version.npy", np.array(99))
        with pytest.raises(ValueError, match="version"):
            load_graph(path)

    def test_mmap_graph_trains_identically(self, small_graph, tmp_path):
        """A fit on the mmap-loaded graph must be bit-identical to a fit on
        the in-RAM original (the mmap path changes storage, not math)."""
        from repro.baselines import Vanilla

        path = save_graph_mmap(small_graph, tmp_path / "graphdir")
        loaded = load_graph(path, mmap=True)
        kwargs = dict(epochs=15, patience=5, minibatch=True, batch_size=64)
        ref = Vanilla(**kwargs).fit(small_graph, seed=0)
        mapped = Vanilla(**kwargs).fit(loaded, seed=0)
        assert ref.test.accuracy == mapped.test.accuracy
        assert ref.test.delta_sp == mapped.test.delta_sp


class TestModelIO:
    def test_round_trip(self, tmp_path, tiny_graph):
        model = make_backbone("gcn", 4, 8, np.random.default_rng(0))
        feats = Tensor(tiny_graph.features)
        before = model(feats, tiny_graph.adjacency).data.copy()
        path = save_state(model, tmp_path / "ckpt.npz")

        fresh = make_backbone("gcn", 4, 8, np.random.default_rng(99))
        load_state(fresh, path)
        after = fresh(feats, tiny_graph.adjacency).data
        np.testing.assert_allclose(after, before)

    def test_strict_loading(self, tmp_path):
        model = make_backbone("gcn", 4, 8, np.random.default_rng(0))
        path = save_state(model, tmp_path / "ckpt.npz")
        wrong = make_backbone("gcn", 4, 16, np.random.default_rng(0))
        with pytest.raises((KeyError, ValueError)):
            load_state(wrong, path)

    def test_nested_names_round_trip(self, tmp_path):
        model = make_backbone("gin", 4, 8, np.random.default_rng(0))
        names = set(model.state_dict())
        path = save_state(model, tmp_path / "gin.npz")
        fresh = make_backbone("gin", 4, 8, np.random.default_rng(1))
        load_state(fresh, path)
        assert set(fresh.state_dict()) == names


class TestNetworkxBridge:
    def test_to_networkx_attributes(self, tiny_graph):
        nx_graph = to_networkx(tiny_graph)
        assert nx_graph.number_of_nodes() == 6
        assert nx_graph.number_of_edges() == 7
        assert nx_graph.nodes[0]["label"] == 0
        assert nx_graph.nodes[3]["sensitive"] == 1
        assert nx_graph.nodes[0]["split"] == "train"
        assert nx_graph.graph["name"] == "tiny"

    def test_round_trip(self, tiny_graph):
        nx_graph = to_networkx(tiny_graph)
        back = from_networkx(nx_graph)
        assert (back.adjacency != tiny_graph.adjacency).nnz == 0
        np.testing.assert_array_equal(back.labels, tiny_graph.labels)
        np.testing.assert_array_equal(back.sensitive, tiny_graph.sensitive)
        np.testing.assert_array_equal(back.train_mask, tiny_graph.train_mask)
        np.testing.assert_allclose(back.features, tiny_graph.features)

    def test_from_networkx_explicit_arrays(self, tiny_graph):
        nx_graph = to_networkx(tiny_graph, include_attributes=False)
        back = from_networkx(
            nx_graph,
            features=tiny_graph.features,
            labels=tiny_graph.labels,
            sensitive=tiny_graph.sensitive,
            train_mask=tiny_graph.train_mask,
            val_mask=tiny_graph.val_mask,
            test_mask=tiny_graph.test_mask,
        )
        assert back.num_nodes == 6

    def test_from_networkx_missing_attrs_raises(self, tiny_graph):
        nx_graph = to_networkx(tiny_graph, include_attributes=False)
        with pytest.raises(ValueError, match="missing"):
            from_networkx(nx_graph)
