"""Tests for graph/model persistence and networkx interop."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gnnzoo import make_backbone
from repro.io import (
    from_networkx,
    load_graph,
    load_state,
    save_graph,
    save_state,
    to_networkx,
)
from repro.tensor import Tensor


class TestGraphIO:
    def test_round_trip(self, small_graph, tmp_path):
        path = save_graph(small_graph, tmp_path / "graph.npz")
        loaded = load_graph(path)
        assert (loaded.adjacency != small_graph.adjacency).nnz == 0
        np.testing.assert_allclose(loaded.features, small_graph.features)
        np.testing.assert_array_equal(loaded.labels, small_graph.labels)
        np.testing.assert_array_equal(loaded.sensitive, small_graph.sensitive)
        np.testing.assert_array_equal(loaded.train_mask, small_graph.train_mask)
        np.testing.assert_array_equal(
            loaded.related_feature_indices, small_graph.related_feature_indices
        )
        assert loaded.name == small_graph.name

    def test_suffix_added(self, small_graph, tmp_path):
        path = save_graph(small_graph, tmp_path / "graph")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_version_check(self, small_graph, tmp_path):
        path = save_graph(small_graph, tmp_path / "graph.npz")
        with np.load(path) as data:
            payload = {key: data[key] for key in data.files}
        payload["format_version"] = np.array(99)
        np.savez_compressed(path, **payload)
        with pytest.raises(ValueError, match="version"):
            load_graph(path)


class TestModelIO:
    def test_round_trip(self, tmp_path, tiny_graph):
        model = make_backbone("gcn", 4, 8, np.random.default_rng(0))
        feats = Tensor(tiny_graph.features)
        before = model(feats, tiny_graph.adjacency).data.copy()
        path = save_state(model, tmp_path / "ckpt.npz")

        fresh = make_backbone("gcn", 4, 8, np.random.default_rng(99))
        load_state(fresh, path)
        after = fresh(feats, tiny_graph.adjacency).data
        np.testing.assert_allclose(after, before)

    def test_strict_loading(self, tmp_path):
        model = make_backbone("gcn", 4, 8, np.random.default_rng(0))
        path = save_state(model, tmp_path / "ckpt.npz")
        wrong = make_backbone("gcn", 4, 16, np.random.default_rng(0))
        with pytest.raises((KeyError, ValueError)):
            load_state(wrong, path)

    def test_nested_names_round_trip(self, tmp_path):
        model = make_backbone("gin", 4, 8, np.random.default_rng(0))
        names = set(model.state_dict())
        path = save_state(model, tmp_path / "gin.npz")
        fresh = make_backbone("gin", 4, 8, np.random.default_rng(1))
        load_state(fresh, path)
        assert set(fresh.state_dict()) == names


class TestNetworkxBridge:
    def test_to_networkx_attributes(self, tiny_graph):
        nx_graph = to_networkx(tiny_graph)
        assert nx_graph.number_of_nodes() == 6
        assert nx_graph.number_of_edges() == 7
        assert nx_graph.nodes[0]["label"] == 0
        assert nx_graph.nodes[3]["sensitive"] == 1
        assert nx_graph.nodes[0]["split"] == "train"
        assert nx_graph.graph["name"] == "tiny"

    def test_round_trip(self, tiny_graph):
        nx_graph = to_networkx(tiny_graph)
        back = from_networkx(nx_graph)
        assert (back.adjacency != tiny_graph.adjacency).nnz == 0
        np.testing.assert_array_equal(back.labels, tiny_graph.labels)
        np.testing.assert_array_equal(back.sensitive, tiny_graph.sensitive)
        np.testing.assert_array_equal(back.train_mask, tiny_graph.train_mask)
        np.testing.assert_allclose(back.features, tiny_graph.features)

    def test_from_networkx_explicit_arrays(self, tiny_graph):
        nx_graph = to_networkx(tiny_graph, include_attributes=False)
        back = from_networkx(
            nx_graph,
            features=tiny_graph.features,
            labels=tiny_graph.labels,
            sensitive=tiny_graph.sensitive,
            train_mask=tiny_graph.train_mask,
            val_mask=tiny_graph.val_mask,
            test_mask=tiny_graph.test_mask,
        )
        assert back.num_nodes == 6

    def test_from_networkx_missing_attrs_raises(self, tiny_graph):
        nx_graph = to_networkx(tiny_graph, include_attributes=False)
        with pytest.raises(ValueError, match="missing"):
            from_networkx(nx_graph)
