"""Tests for the Graph container, normalisation and graph utilities."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    Graph,
    add_self_loops,
    adjacency_from_edges,
    degree_vector,
    edge_homophily,
    edges_from_adjacency,
    gcn_normalize,
    k_hop_neighbors,
    row_normalize,
    to_symmetric,
)


class TestGraphContainer:
    def test_basic_stats(self, tiny_graph):
        assert tiny_graph.num_nodes == 6
        assert tiny_graph.num_features == 4
        assert tiny_graph.num_edges == 7
        assert tiny_graph.average_degree == pytest.approx(14 / 6)
        assert tiny_graph.num_classes == 2

    def test_split_sizes(self, tiny_graph):
        assert tiny_graph.split_sizes() == {"train": 3, "val": 2, "test": 1}

    def test_rejects_overlapping_masks(self, tiny_graph):
        with pytest.raises(ValueError, match="overlap"):
            Graph(
                adjacency=tiny_graph.adjacency,
                features=tiny_graph.features,
                labels=tiny_graph.labels,
                sensitive=tiny_graph.sensitive,
                train_mask=tiny_graph.train_mask,
                val_mask=tiny_graph.train_mask,
                test_mask=tiny_graph.test_mask,
            )

    def test_rejects_shape_mismatch(self, tiny_graph):
        with pytest.raises(ValueError):
            Graph(
                adjacency=sp.eye(5).tocsr(),
                features=tiny_graph.features,
                labels=tiny_graph.labels,
                sensitive=tiny_graph.sensitive,
                train_mask=tiny_graph.train_mask,
                val_mask=tiny_graph.val_mask,
                test_mask=tiny_graph.test_mask,
            )

    def test_rejects_out_of_range_related(self, tiny_graph):
        with pytest.raises(ValueError, match="related"):
            Graph(
                adjacency=tiny_graph.adjacency,
                features=tiny_graph.features,
                labels=tiny_graph.labels,
                sensitive=tiny_graph.sensitive,
                train_mask=tiny_graph.train_mask,
                val_mask=tiny_graph.val_mask,
                test_mask=tiny_graph.test_mask,
                related_feature_indices=np.array([10]),
            )

    def test_with_features(self, tiny_graph):
        new = tiny_graph.with_features(np.zeros((6, 2)))
        assert new.num_features == 2
        assert tiny_graph.num_features == 4  # original untouched

    def test_without_columns(self, tiny_graph):
        reduced = tiny_graph.without_columns(np.array([0, 2]))
        assert reduced.num_features == 2
        np.testing.assert_allclose(reduced.features, tiny_graph.features[:, [1, 3]])
        assert reduced.related_feature_indices.size == 0

    def test_without_columns_remaps_related(self, tiny_graph):
        # Remove column 1 (not related): related {0, 2} shift to {0, 1}.
        reduced = tiny_graph.without_columns(np.array([1]))
        np.testing.assert_array_equal(reduced.related_feature_indices, [0, 1])

    def test_standardized(self, tiny_graph):
        standard = tiny_graph.standardized()
        np.testing.assert_allclose(standard.features.mean(axis=0), 0.0, atol=1e-12)
        np.testing.assert_allclose(standard.features.std(axis=0), 1.0, atol=1e-12)

    def test_standardized_constant_column(self, tiny_graph):
        features = tiny_graph.features.copy()
        features[:, 0] = 7.0
        graph = tiny_graph.with_features(features)
        np.testing.assert_allclose(graph.standardized().features[:, 0], 0.0)

    def test_subgraph(self, tiny_graph):
        sub = tiny_graph.subgraph(np.array([0, 1, 2]))
        assert sub.num_nodes == 3
        assert sub.num_edges == 3  # the first triangle
        np.testing.assert_array_equal(sub.labels, [0, 0, 1])

    def test_summary_mentions_name(self, tiny_graph):
        assert "tiny" in tiny_graph.summary()


class TestNormalization:
    def test_add_self_loops(self, tiny_adjacency):
        looped = add_self_loops(tiny_adjacency)
        np.testing.assert_allclose(looped.diagonal(), 1.0)
        assert looped.nnz == tiny_adjacency.nnz + 6

    def test_gcn_normalize_symmetric(self, tiny_adjacency):
        norm = gcn_normalize(tiny_adjacency)
        np.testing.assert_allclose(norm.toarray(), norm.toarray().T, atol=1e-12)

    def test_gcn_normalize_spectrum_bounded(self, tiny_adjacency):
        norm = gcn_normalize(tiny_adjacency).toarray()
        eigenvalues = np.linalg.eigvalsh(norm)
        assert eigenvalues.max() <= 1.0 + 1e-9

    def test_gcn_normalize_isolated_node(self):
        adj = sp.csr_matrix((3, 3))
        norm = gcn_normalize(adj)
        # Only self-loops survive, each normalised to 1.
        np.testing.assert_allclose(norm.toarray(), np.eye(3))

    def test_row_normalize_rows_sum_to_one(self, tiny_adjacency):
        norm = row_normalize(tiny_adjacency)
        np.testing.assert_allclose(np.asarray(norm.sum(axis=1)).ravel(), 1.0)

    def test_row_normalize_isolated_node_zero_row(self):
        adj = sp.csr_matrix(np.array([[0, 1, 0], [1, 0, 0], [0, 0, 0]], dtype=float))
        norm = row_normalize(adj)
        np.testing.assert_allclose(np.asarray(norm.sum(axis=1)).ravel(), [1, 1, 0])

    def test_to_symmetric(self):
        adj = sp.csr_matrix(np.array([[0, 1], [0, 0]], dtype=float))
        sym = to_symmetric(adj).toarray()
        np.testing.assert_allclose(sym, [[0, 1], [1, 0]])


class TestGraphUtils:
    def test_edges_round_trip(self, tiny_adjacency):
        edges = edges_from_adjacency(tiny_adjacency)
        rebuilt = adjacency_from_edges(edges, 6)
        np.testing.assert_allclose(rebuilt.toarray(), tiny_adjacency.toarray())

    def test_edges_directed_count(self, tiny_adjacency):
        assert len(edges_from_adjacency(tiny_adjacency, directed=True)) == 14

    def test_adjacency_from_edges_drops_self_loops(self):
        adj = adjacency_from_edges(np.array([[0, 0], [0, 1]]), 3)
        assert adj[0, 0] == 0
        assert adj[0, 1] == 1

    def test_adjacency_from_edges_deduplicates(self):
        adj = adjacency_from_edges(np.array([[0, 1], [1, 0], [0, 1]]), 2)
        assert adj[0, 1] == 1.0
        assert adj.nnz == 2

    def test_adjacency_from_empty_edges(self):
        assert adjacency_from_edges(np.zeros((0, 2)), 4).nnz == 0

    def test_degree_vector(self, tiny_adjacency):
        np.testing.assert_allclose(
            degree_vector(tiny_adjacency), [2, 2, 3, 3, 2, 2]
        )

    def test_k_hop_zero_is_self(self, tiny_adjacency):
        np.testing.assert_array_equal(k_hop_neighbors(tiny_adjacency, 0, 0), [0])

    def test_k_hop_one(self, tiny_adjacency):
        np.testing.assert_array_equal(k_hop_neighbors(tiny_adjacency, 0, 1), [0, 1, 2])

    def test_k_hop_two_crosses_bridge(self, tiny_adjacency):
        np.testing.assert_array_equal(
            k_hop_neighbors(tiny_adjacency, 0, 2), [0, 1, 2, 3]
        )

    def test_k_hop_saturates(self, tiny_adjacency):
        np.testing.assert_array_equal(
            k_hop_neighbors(tiny_adjacency, 0, 10), np.arange(6)
        )

    def test_k_hop_negative_raises(self, tiny_adjacency):
        with pytest.raises(ValueError):
            k_hop_neighbors(tiny_adjacency, 0, -1)

    def test_edge_homophily_extremes(self, tiny_adjacency):
        all_same = np.zeros(6, dtype=int)
        assert edge_homophily(tiny_adjacency, all_same) == 1.0
        # Triangle membership: {0,1,2} vs {3,4,5} — only the bridge crosses.
        groups = np.array([0, 0, 0, 1, 1, 1])
        assert edge_homophily(tiny_adjacency, groups) == pytest.approx(6 / 7)

    def test_edge_homophily_empty_graph(self):
        assert edge_homophily(sp.csr_matrix((3, 3)), np.zeros(3)) == 0.0

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 1000), n=st.integers(4, 12))
    def test_property_round_trip_random_graphs(self, seed, n):
        rng = np.random.default_rng(seed)
        dense = (rng.random((n, n)) < 0.3).astype(float)
        dense = np.triu(dense, k=1)
        adj = sp.csr_matrix(dense + dense.T)
        edges = edges_from_adjacency(adj)
        rebuilt = adjacency_from_edges(edges, n)
        np.testing.assert_allclose(rebuilt.toarray(), adj.toarray())
