"""Tests for the λ weight-update machinery (Eq. 17–24)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import WeightUpdater, project_to_simplex, solve_kkt_eq24


def _disparity_arrays(min_size=1, max_size=12):
    return st.lists(
        st.floats(0.0, 10.0, allow_nan=False), min_size=min_size, max_size=max_size
    ).map(np.array)


class TestSimplexProjection:
    def test_already_on_simplex(self):
        v = np.array([0.2, 0.3, 0.5])
        np.testing.assert_allclose(project_to_simplex(v), v)

    def test_uniform_from_equal_values(self):
        np.testing.assert_allclose(project_to_simplex(np.zeros(4)), 0.25)

    def test_dominant_coordinate(self):
        out = project_to_simplex(np.array([100.0, 0.0, 0.0]))
        np.testing.assert_allclose(out, [1.0, 0.0, 0.0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            project_to_simplex(np.array([]))

    @settings(max_examples=60, deadline=None)
    @given(values=st.lists(st.floats(-50, 50), min_size=1, max_size=15).map(np.array))
    def test_property_valid_simplex_point(self, values):
        out = project_to_simplex(values)
        assert (out >= 0).all()
        assert out.sum() == pytest.approx(1.0)

    @settings(max_examples=40, deadline=None)
    @given(values=st.lists(st.floats(-10, 10), min_size=2, max_size=10).map(np.array))
    def test_property_order_preserving(self, values):
        out = project_to_simplex(values)
        order = np.argsort(values)
        assert (np.diff(out[order]) >= -1e-12).all()

    @settings(max_examples=40, deadline=None)
    @given(
        values=st.lists(st.floats(-5, 5), min_size=2, max_size=8).map(np.array),
        seed=st.integers(0, 100),
    )
    def test_property_is_nearest_simplex_point(self, values, seed):
        # The projection must beat random simplex points in L2 distance.
        projected = project_to_simplex(values)
        rng = np.random.default_rng(seed)
        for _ in range(5):
            other = rng.dirichlet(np.ones(values.size))
            assert np.linalg.norm(values - projected) <= np.linalg.norm(
                values - other
            ) + 1e-9


class TestEq24Solver:
    def test_single_attribute(self):
        np.testing.assert_allclose(solve_kkt_eq24(np.array([3.0])), [1.0])

    def test_equal_disparities_give_uniform(self):
        out = solve_kkt_eq24(np.array([2.0, 2.0, 2.0]))
        np.testing.assert_allclose(out, 1 / 3)

    def test_small_disparity_gets_large_weight(self):
        out = solve_kkt_eq24(np.array([5.0, 0.1]), alpha=1.0)
        assert out[1] > out[0]

    @settings(max_examples=60, deadline=None)
    @given(disparities=_disparity_arrays(), alpha=st.floats(0.01, 10.0))
    def test_property_matches_simplex_projection(self, disparities, alpha):
        """Eq. 24's sorting procedure == projection of −α·D/2 (the math)."""
        expected = project_to_simplex(-alpha * disparities / 2.0)
        actual = solve_kkt_eq24(disparities, alpha=alpha)
        np.testing.assert_allclose(actual, expected, atol=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(disparities=_disparity_arrays(min_size=2), alpha=st.floats(0.01, 5.0))
    def test_property_kkt_optimality(self, disparities, alpha):
        """The solution must minimise α·λ·D + ||λ||² over random feasible λ."""
        lam = solve_kkt_eq24(disparities, alpha=alpha)

        def objective(weights):
            return alpha * weights @ disparities + (weights**2).sum()

        rng = np.random.default_rng(0)
        best = objective(lam)
        for _ in range(10):
            other = rng.dirichlet(np.ones(disparities.size))
            assert best <= objective(other) + 1e-9


class TestWeightUpdater:
    def test_initial_uniform(self):
        updater = WeightUpdater(5, alpha=1.0)
        np.testing.assert_allclose(updater.weights, 0.2)

    def test_math_direction_prefers_small_disparity(self):
        updater = WeightUpdater(3, alpha=2.0, prefer_high_disparity=False)
        weights = updater.update(np.array([5.0, 1.0, 3.0]))
        assert weights[1] == weights.max()

    def test_text_direction_prefers_large_disparity(self):
        updater = WeightUpdater(3, alpha=2.0, prefer_high_disparity=True)
        weights = updater.update(np.array([5.0, 1.0, 3.0]))
        assert weights[0] == weights.max()

    def test_weights_always_simplex(self):
        updater = WeightUpdater(4, alpha=3.0, prefer_high_disparity=True)
        for seed in range(5):
            rng = np.random.default_rng(seed)
            weights = updater.update(rng.uniform(0, 4, size=4))
            assert weights.sum() == pytest.approx(1.0)
            assert (weights >= 0).all()

    def test_zero_alpha_keeps_uniform(self):
        updater = WeightUpdater(4, alpha=0.0)
        weights = updater.update(np.array([9.0, 1.0, 2.0, 3.0]))
        np.testing.assert_allclose(weights, 0.25)

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            WeightUpdater(3, alpha=1.0).update(np.array([1.0, 2.0]))

    def test_rejects_bad_construction(self):
        with pytest.raises(ValueError):
            WeightUpdater(0, alpha=1.0)
        with pytest.raises(ValueError):
            WeightUpdater(3, alpha=-1.0)

    def test_larger_alpha_concentrates_weights(self):
        disparities = np.array([4.0, 3.0, 1.0, 0.5])
        gentle = WeightUpdater(4, alpha=0.1, prefer_high_disparity=True)
        sharp = WeightUpdater(4, alpha=10.0, prefer_high_disparity=True)
        w_gentle = gentle.update(disparities)
        w_sharp = sharp.update(disparities)
        assert w_sharp.max() > w_gentle.max()
