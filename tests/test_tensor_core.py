"""Tests for the Tensor core: graph construction, backward, no_grad."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor import Tensor, is_grad_enabled, no_grad
from repro.tensor import ops
from repro.tensor.tensor import unbroadcast


class TestTensorBasics:
    def test_construction_coerces_dtype(self):
        t = Tensor([1, 2, 3])
        assert t.data.dtype == np.float64

    def test_shape_ndim_size(self):
        t = Tensor(np.zeros((2, 3)))
        assert t.shape == (2, 3)
        assert t.ndim == 2
        assert t.size == 6
        assert len(t) == 2

    def test_repr_mentions_grad(self):
        assert "requires_grad" in repr(Tensor(1.0, requires_grad=True))

    def test_item(self):
        assert Tensor(np.array([3.5])).item() == 3.5

    def test_detach_cuts_graph(self):
        a = Tensor([1.0], requires_grad=True)
        b = (a * 2.0).detach()
        c = (b * 3.0).sum()
        c.backward()
        assert a.grad is None

    def test_copy_is_deep(self):
        a = Tensor([1.0, 2.0])
        b = a.copy()
        b.data[0] = 99.0
        assert a.data[0] == 1.0

    def test_zeros_ones(self):
        assert Tensor.zeros(2, 3).data.sum() == 0.0
        assert Tensor.ones(2, 3).data.sum() == 6.0

    def test_operator_sugar(self):
        a = Tensor([2.0], requires_grad=True)
        out = ((-a + 3.0) * 2.0 / 2.0 - 1.0) ** 2.0
        np.testing.assert_allclose(out.data, [0.0])
        out2 = (1.0 - a) + (6.0 / a)
        np.testing.assert_allclose(out2.data, [2.0])

    def test_getitem_slicing(self):
        a = Tensor(np.arange(12.0).reshape(3, 4), requires_grad=True)
        out = a[1:].sum()
        out.backward()
        np.testing.assert_allclose(a.grad[0], 0.0)
        np.testing.assert_allclose(a.grad[1:], 1.0)

    def test_method_chaining(self):
        a = Tensor(np.full((2, 2), 0.5), requires_grad=True)
        out = a.relu().sigmoid().tanh().exp().log().sqrt().abs().mean()
        assert out.size == 1
        out.backward()
        assert a.grad is not None


class TestBackward:
    def test_backward_requires_scalar(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(ValueError, match="scalar"):
            (a * 2.0).backward()

    def test_backward_with_explicit_grad(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = a * 2.0
        b.backward(np.array([1.0, 2.0, 3.0]))
        np.testing.assert_allclose(a.grad, [2.0, 4.0, 6.0])

    def test_grad_accumulates_across_backwards(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2.0).sum().backward()
        (a * 2.0).sum().backward()
        np.testing.assert_allclose(a.grad, [4.0])

    def test_zero_grad(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2.0).sum().backward()
        a.zero_grad()
        assert a.grad is None

    def test_shared_subexpression_counted_once_per_path(self):
        # y = x*x uses x twice: dy/dx = 2x.
        x = Tensor([3.0], requires_grad=True)
        (x * x).sum().backward()
        np.testing.assert_allclose(x.grad, [6.0])

    def test_diamond_graph(self):
        # z = (x+1) * (x+2): dz/dx = 2x + 3.
        x = Tensor([2.0], requires_grad=True)
        ((x + 1.0) * (x + 2.0)).sum().backward()
        np.testing.assert_allclose(x.grad, [7.0])

    def test_deep_chain_no_recursion_error(self):
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 1.0
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [1.0])

    def test_constant_branch_gets_no_grad(self):
        a = Tensor([1.0], requires_grad=True)
        c = Tensor([5.0])
        (a * c).sum().backward()
        assert c.grad is None


class TestNoGrad:
    def test_no_grad_blocks_graph(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            b = a * 2.0
        assert not b.requires_grad

    def test_no_grad_restores_state(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with no_grad():
                raise RuntimeError("boom")
        assert is_grad_enabled()


class TestUnbroadcast:
    def test_identity_when_shapes_match(self):
        grad = np.ones((2, 3))
        assert unbroadcast(grad, (2, 3)) is grad

    def test_sums_prepended_axes(self):
        grad = np.ones((5, 2, 3))
        np.testing.assert_allclose(unbroadcast(grad, (2, 3)), np.full((2, 3), 5.0))

    def test_sums_stretched_axes(self):
        grad = np.ones((2, 3))
        np.testing.assert_allclose(unbroadcast(grad, (2, 1)), np.full((2, 1), 3.0))

    def test_scalar_target(self):
        grad = np.ones((2, 3))
        np.testing.assert_allclose(unbroadcast(grad, ()), 6.0)

    @settings(max_examples=25, deadline=None)
    @given(
        rows=st.integers(1, 4),
        cols=st.integers(1, 4),
        batch=st.integers(1, 3),
    )
    def test_property_matches_broadcast_adjoint(self, rows, cols, batch):
        # unbroadcast is the adjoint of np.broadcast_to.
        rng = np.random.default_rng(0)
        grad = rng.normal(size=(batch, rows, cols))
        reduced = unbroadcast(grad, (rows, 1))
        # <broadcast(x), grad> == <x, unbroadcast(grad)> for any x.
        x = rng.normal(size=(rows, 1))
        lhs = float((np.broadcast_to(x, grad.shape) * grad).sum())
        rhs = float((x * reduced).sum())
        assert lhs == pytest.approx(rhs)
