"""Intersectional (joint-subgroup) audit: edge cases the issue pins down.

The load-bearing properties: a single binary attribute must reduce to the
existing pairwise metrics bit-for-bit, empty joint cells must degrade to
NaN gaps instead of raising (mirroring ``audit_prediction_windows``), and
the gaps must not depend on the order the attributes are passed in.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.fairness import (
    audit_intersectional,
    demographic_parity_difference,
    equal_opportunity_difference,
)


def _toy(seed: int = 0, n: int = 200):
    rng = np.random.default_rng(seed)
    logits = rng.normal(size=n)
    labels = rng.integers(2, size=n)
    s = rng.integers(2, size=n)
    g = rng.integers(3, size=n)
    return logits, labels, s, g


class TestSingleAttributeReduction:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_delta_sp_bitwise_equal(self, seed):
        logits, labels, s, _ = _toy(seed)
        audit = audit_intersectional(logits, labels, {"s": s})
        predictions = (logits > 0).astype(np.int64)
        assert audit.delta_sp == demographic_parity_difference(predictions, s)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_delta_eo_bitwise_equal(self, seed):
        logits, labels, s, _ = _toy(seed)
        audit = audit_intersectional(logits, labels, {"s": s})
        predictions = (logits > 0).astype(np.int64)
        assert audit.delta_eo == equal_opportunity_difference(
            predictions, labels, s
        )

    def test_cell_structure(self):
        logits, labels, s, _ = _toy()
        audit = audit_intersectional(logits, labels, {"s": s})
        assert audit.attribute_names == ("s",)
        assert audit.num_cells == 2
        assert audit.num_empty_cells == 0
        assert sum(cell.size for cell in audit.cells) == logits.size


class TestEmptyCells:
    def test_empty_joint_cell_reports_nan_not_raise(self):
        # s and g perfectly aligned → the (0,1) and (1,0) cells are empty.
        logits, labels, s, _ = _toy()
        audit = audit_intersectional(logits, labels, {"s": s, "g": s})
        assert audit.num_cells == 4
        assert audit.num_empty_cells == 2
        empty = [cell for cell in audit.cells if cell.size == 0]
        assert all(np.isnan(cell.positive_rate) for cell in empty)
        # Two populated cells remain, so the gaps are still finite.
        assert np.isfinite(audit.delta_sp)

    def test_single_populated_cell_gives_nan_gap(self):
        logits, labels, s, _ = _toy()
        ones = np.ones_like(s)
        audit = audit_intersectional(logits, labels, {"a": ones})
        assert audit.num_cells == 1
        assert np.isnan(audit.delta_sp)
        assert np.isnan(audit.delta_eo)

    def test_cell_without_positives_has_nan_tpr(self):
        logits = np.array([1.0, -1.0, 1.0, -1.0])
        labels = np.array([1, 1, 0, 0])
        s = np.array([0, 0, 1, 1])  # group 1 has no positive labels
        audit = audit_intersectional(logits, labels, {"s": s})
        by_value = {cell.values: cell for cell in audit.cells}
        assert np.isnan(by_value[(1,)].true_positive_rate)
        assert by_value[(0,)].true_positive_rate == 0.5
        # Only one finite TPR → ΔEO degrades to NaN.
        assert np.isnan(audit.delta_eo)


class TestOrderInvariance:
    @pytest.mark.parametrize("seed", [0, 3])
    def test_gaps_independent_of_attribute_order(self, seed):
        logits, labels, s, g = _toy(seed)
        forward = audit_intersectional(logits, labels, {"s": s, "g": g})
        backward = audit_intersectional(logits, labels, {"g": g, "s": s})
        assert forward.delta_sp == backward.delta_sp
        assert forward.delta_eo == backward.delta_eo
        assert forward.num_cells == backward.num_cells == 6
        # Cells correspond under value-tuple reversal.
        fwd = {cell.values: cell.size for cell in forward.cells}
        bwd = {cell.values[::-1]: cell.size for cell in backward.cells}
        assert fwd == bwd


class TestInputHandling:
    def test_float32_logits_accepted(self):
        logits, labels, s, g = _toy()
        a64 = audit_intersectional(logits, labels, {"s": s, "g": g})
        a32 = audit_intersectional(
            logits.astype(np.float32), labels, {"s": s, "g": g}
        )
        # Thresholding at 0 is dtype-insensitive for these magnitudes.
        assert a32.delta_sp == a64.delta_sp
        assert a32.delta_eo == a64.delta_eo

    def test_misaligned_attribute_rejected(self):
        logits, labels, s, _ = _toy()
        with pytest.raises(ValueError, match="expected"):
            audit_intersectional(logits, labels, {"s": s[:-1]})

    def test_no_attributes_rejected(self):
        logits, labels, _, _ = _toy()
        with pytest.raises(ValueError, match="at least one"):
            audit_intersectional(logits, labels, {})

    def test_render_mentions_every_cell(self):
        logits, labels, s, g = _toy()
        audit = audit_intersectional(logits, labels, {"s": s, "g": g})
        text = audit.render()
        assert "s" in text and "g" in text
        assert str(audit.num_cells) in text
