"""Tests for repro.nn: modules, layers, losses, init."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (
    MLP,
    Dropout,
    Identity,
    LeakyReLU,
    Linear,
    Module,
    ModuleList,
    Parameter,
    ReLU,
    Sigmoid,
    Tanh,
    binary_cross_entropy_with_logits,
    cross_entropy,
    init,
    l2_distance,
    mse_loss,
)
from repro.tensor import Tensor, gradcheck
from repro.tensor import ops


@pytest.fixture
def rng():
    return np.random.default_rng(3)


class _Composite(Module):
    def __init__(self, rng):
        super().__init__()
        self.linear = Linear(3, 2, rng)
        self.blocks = ModuleList([Linear(2, 2, rng), Linear(2, 1, rng)])
        self.scale = Parameter(np.ones(1), name="scale")

    def forward(self, x):
        x = self.linear(x)
        for block in self.blocks:
            x = block(x)
        return ops.mul(x, self.scale)


class TestModule:
    def test_named_parameters_recursive(self, rng):
        model = _Composite(rng)
        names = [n for n, _ in model.named_parameters()]
        assert "linear.weight" in names
        assert "blocks.items.0.weight" in names
        assert "scale" in names
        # linear(w+b) + 2 blocks (w+b each) + scale
        assert len(names) == 7

    def test_num_parameters(self, rng):
        model = Linear(3, 2, rng)
        assert model.num_parameters() == 3 * 2 + 2

    def test_state_dict_roundtrip(self, rng):
        model = _Composite(rng)
        state = model.state_dict()
        model.scale.data[:] = 99.0
        model.load_state_dict(state)
        np.testing.assert_allclose(model.scale.data, 1.0)

    def test_state_dict_is_a_copy(self, rng):
        model = Linear(2, 2, rng)
        state = model.state_dict()
        model.weight.data[:] = 0.0
        assert not np.allclose(state["weight"], 0.0)

    def test_load_state_dict_rejects_missing_keys(self, rng):
        model = Linear(2, 2, rng)
        with pytest.raises(KeyError):
            model.load_state_dict({"weight": np.zeros((2, 2))})

    def test_load_state_dict_rejects_bad_shape(self, rng):
        model = Linear(2, 2, rng)
        state = model.state_dict()
        state["weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_train_eval_propagates(self, rng):
        model = _Composite(rng)
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_zero_grad(self, rng):
        model = Linear(2, 1, rng)
        out = ops.sum(model(Tensor(np.ones((3, 2)))))
        out.backward()
        assert model.weight.grad is not None
        model.zero_grad()
        assert model.weight.grad is None

    def test_module_list_container(self, rng):
        ml = ModuleList([Linear(2, 2, rng)])
        ml.append(Linear(2, 1, rng))
        assert len(ml) == 2
        assert isinstance(ml[1], Linear)
        with pytest.raises(RuntimeError):
            ml(Tensor(np.ones((1, 2))))


class TestLayers:
    def test_linear_forward_matches_numpy(self, rng):
        layer = Linear(4, 3, rng)
        x = rng.normal(size=(5, 4))
        expected = x @ layer.weight.data + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).data, expected)

    def test_linear_no_bias(self, rng):
        layer = Linear(4, 3, rng, bias=False)
        assert layer.bias is None
        assert layer(Tensor(np.zeros((2, 4)))).data.sum() == 0.0

    def test_linear_gradcheck(self, rng):
        layer = Linear(3, 2, rng)
        x = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        assert gradcheck(
            lambda x, w, b: ops.sum(ops.tanh(layer(x))),
            [x, layer.weight, layer.bias],
        )

    def test_mlp_depth(self, rng):
        mlp = MLP([4, 8, 8, 2], rng)
        assert len(mlp.layers) == 3
        assert mlp(Tensor(np.zeros((5, 4)))).shape == (5, 2)

    def test_mlp_requires_two_dims(self, rng):
        with pytest.raises(ValueError):
            MLP([4], rng)

    def test_mlp_custom_activation(self, rng):
        mlp = MLP([2, 2, 2], rng, activation=Tanh())
        assert isinstance(mlp.activation, Tanh)

    def test_dropout_train_vs_eval(self, rng):
        drop = Dropout(0.5, rng)
        x = Tensor(np.ones((100, 10)))
        out_train = drop(x)
        assert (out_train.data == 0).any()
        drop.eval()
        np.testing.assert_allclose(drop(x).data, 1.0)

    def test_dropout_invalid_rate(self, rng):
        with pytest.raises(ValueError):
            Dropout(1.5, rng)

    def test_activations_shapes(self, rng):
        x = Tensor(rng.normal(size=(3, 3)))
        for act in (ReLU(), Sigmoid(), Tanh(), LeakyReLU(0.1), Identity()):
            assert act(x).shape == (3, 3)

    def test_identity_is_noop(self, rng):
        x = Tensor(rng.normal(size=(2, 2)))
        assert Identity()(x) is x


class TestInit:
    def test_xavier_uniform_bounds(self, rng):
        w = init.xavier_uniform((100, 50), rng)
        bound = np.sqrt(6.0 / 150)
        assert np.abs(w).max() <= bound

    def test_xavier_normal_std(self, rng):
        w = init.xavier_normal((400, 400), rng)
        assert w.std() == pytest.approx(np.sqrt(2.0 / 800), rel=0.1)

    def test_kaiming_uniform_bounds(self, rng):
        w = init.kaiming_uniform((64, 32), rng)
        assert np.abs(w).max() <= np.sqrt(6.0 / 64)

    def test_zeros(self):
        assert init.zeros((3, 3)).sum() == 0.0

    def test_uniform(self, rng):
        w = init.uniform((50,), rng, 0.2)
        assert np.abs(w).max() <= 0.2


class TestLosses:
    def test_bce_matches_reference(self, rng):
        logits = rng.normal(size=20)
        targets = rng.integers(0, 2, size=20).astype(float)
        probs = 1.0 / (1.0 + np.exp(-logits))
        expected = -(targets * np.log(probs) + (1 - targets) * np.log(1 - probs)).mean()
        loss = binary_cross_entropy_with_logits(Tensor(logits), targets)
        assert float(loss.data) == pytest.approx(expected)

    def test_bce_extreme_logits_finite(self):
        loss = binary_cross_entropy_with_logits(
            Tensor(np.array([1000.0, -1000.0])), np.array([1.0, 0.0])
        )
        assert float(loss.data) == pytest.approx(0.0, abs=1e-9)

    def test_bce_gradcheck(self, rng):
        logits = Tensor(rng.normal(size=8), requires_grad=True)
        targets = rng.integers(0, 2, size=8).astype(float)
        assert gradcheck(
            lambda z: binary_cross_entropy_with_logits(z, targets), [logits]
        )

    def test_bce_weighted(self, rng):
        logits = Tensor(np.zeros(4))
        targets = np.array([1.0, 1.0, 0.0, 0.0])
        weights = np.array([1.0, 0.0, 0.0, 1.0])
        loss = binary_cross_entropy_with_logits(logits, targets, weights)
        assert float(loss.data) == pytest.approx(np.log(2.0))

    def test_cross_entropy_matches_reference(self, rng):
        logits = rng.normal(size=(6, 3))
        labels = rng.integers(0, 3, size=6)
        shifted = logits - logits.max(axis=1, keepdims=True)
        log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        expected = -log_probs[np.arange(6), labels].mean()
        loss = cross_entropy(Tensor(logits), labels)
        assert float(loss.data) == pytest.approx(expected)

    def test_cross_entropy_gradcheck(self, rng):
        logits = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        labels = np.array([0, 2, 1, 1])
        assert gradcheck(lambda z: cross_entropy(z, labels), [logits])

    def test_mse(self, rng):
        a, b = rng.normal(size=5), rng.normal(size=5)
        assert float(mse_loss(Tensor(a), Tensor(b)).data) == pytest.approx(
            ((a - b) ** 2).mean()
        )

    def test_l2_distance_rowwise(self, rng):
        a, b = rng.normal(size=(4, 3)), rng.normal(size=(4, 3))
        out = l2_distance(Tensor(a), Tensor(b))
        np.testing.assert_allclose(out.data, ((a - b) ** 2).sum(axis=1))

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(-5, 5), min_size=1, max_size=10))
    def test_bce_nonnegative_property(self, values):
        logits = Tensor(np.array(values))
        targets = (np.array(values) > 0).astype(float)
        loss = binary_cross_entropy_with_logits(logits, targets)
        assert float(loss.data) >= 0.0
