"""Tests for the shared refresh schedule and the IndexMaintainer.

The refresh cadence of the counterfactual index used to be spelled out
independently by the full-batch and the sampled fine-tune; these tests pin
the single shared predicate (:class:`~repro.training.RefreshSchedule`),
the engine-callback wrapper (:class:`~repro.training.IndexMaintainer`)
and — at the trainer level — that both fine-tune paths refresh on exactly
the same epochs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CounterfactualSearch, FairwosConfig, FairwosTrainer
from repro.datasets import BiasSpec, generate_biased_graph
from repro.training import IndexMaintainer, RefreshSchedule


class TestRefreshSchedule:
    def test_rejects_bad_period(self):
        with pytest.raises(ValueError, match="period"):
            RefreshSchedule(0)

    def test_period_one_is_always_due(self):
        schedule = RefreshSchedule(1)
        assert all(schedule.due(epoch) for epoch in range(5))

    def test_periodic_pattern(self):
        schedule = RefreshSchedule(3)
        assert [schedule.due(e) for e in range(7)] == [
            True, False, False, True, False, False, True,
        ]

    def test_uninitialized_always_due(self):
        """An index that has never been built refreshes regardless of the
        epoch — the `cf_index is None` arm both trainer paths relied on."""
        schedule = RefreshSchedule(4)
        assert schedule.due(epoch=1, initialized=False)
        assert not schedule.due(epoch=1, initialized=True)


class _FakeEngine:
    def __init__(self):
        self.invalidations = 0

    def invalidate_cache(self):
        self.invalidations += 1


class TestIndexMaintainer:
    def test_refreshes_on_schedule_and_invalidates_cache(self):
        refreshed = []
        engine = _FakeEngine()
        maintainer = IndexMaintainer(refreshed.append, 2, engine=engine)
        ran = [maintainer(epoch) for epoch in range(5)]
        assert refreshed == [0, 2, 4]
        assert ran == [True, False, True, False, True]
        assert engine.invalidations == 3
        assert maintainer.refreshes == 3

    def test_first_call_refreshes_even_off_cadence(self):
        refreshed = []
        maintainer = IndexMaintainer(refreshed.append, 4)
        assert not maintainer.initialized
        maintainer(3)  # not a multiple of 4, but nothing is built yet
        assert refreshed == [3] and maintainer.initialized

    def test_engine_optional(self):
        maintainer = IndexMaintainer(lambda epoch: None, 1)
        assert maintainer(0) is True  # no engine — nothing to invalidate


@pytest.fixture(scope="module")
def small_graph():
    return generate_biased_graph(
        num_nodes=200,
        num_features=8,
        average_degree=6,
        spec=BiasSpec(
            label_bias=0.2,
            proxy_strength=1.0,
            group_homophily=2.0,
            label_signal_strength=0.5,
        ),
        seed=11,
        name="maintenance",
    ).standardized()


class TestTrainerRefreshParity:
    """Both fine-tune paths must search the index on identical epochs."""

    @staticmethod
    def _count_searches(monkeypatch, config, graph):
        calls = []
        original = CounterfactualSearch.search

        def counting(self, *args, **kwargs):
            calls.append(1)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(CounterfactualSearch, "search", counting)
        FairwosTrainer(config).fit(graph, seed=0)
        return len(calls)

    @pytest.mark.parametrize("refresh,expected", [(1, 5), (2, 3), (5, 1)])
    def test_refresh_counts_match_across_paths(
        self, monkeypatch, small_graph, refresh, expected
    ):
        base = dict(
            encoder_epochs=30,
            classifier_epochs=30,
            finetune_epochs=5,
            patience=10,
            cf_refresh_epochs=refresh,
            finetune_val_tolerance=None,  # run every fine-tune epoch
        )
        full = self._count_searches(
            monkeypatch, FairwosConfig(**base), small_graph
        )
        mini = self._count_searches(
            monkeypatch,
            FairwosConfig(finetune_minibatch=True, batch_size=256, **base),
            small_graph,
        )
        assert full == expected
        assert mini == expected
