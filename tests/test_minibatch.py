"""Tests for the minibatch engine: NeighborSampler blocks, block-mode
backbones, fit_minibatch, and batched inference.

The full-batch-vs-minibatch agreement tests double as an end-to-end
correctness check of the sampler: with exhaustive fanout every block
operator must reproduce the full-graph operator exactly.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fairness.metrics import accuracy
from repro.graph import (
    Block,
    NeighborSampler,
    block_gcn_matrix,
    block_mean_matrix,
    block_sum_matrix,
    gcn_normalize,
    is_block_sequence,
)
from repro.gnnzoo import make_backbone
from repro.tensor import Tensor
from repro.training import (
    fit_binary_classifier,
    fit_minibatch,
    iter_minibatches,
    predict_logits,
    predict_logits_batched,
)

BACKBONES = ("gcn", "sage", "gin", "gat")


def random_adjacency(num_nodes: int, density: float, seed: int) -> sp.csr_matrix:
    rng = np.random.default_rng(seed)
    dense = (rng.random((num_nodes, num_nodes)) < density).astype(float)
    dense = np.triu(dense, 1)
    return sp.csr_matrix(dense + dense.T)


class _LexsortSampler(NeighborSampler):
    """Reference sampler: the pre-counting-sort full-lexsort selection.

    Kept verbatim as the parity oracle — both implementations consume the
    same ``rng.random(total)`` draw, so for any shared rng stream the
    bucketed two-pass selection must keep the identical edge set."""

    def _select_edges(self, dst, fanout, rng):
        starts = self._indptr[dst]
        counts = self._degrees[dst]
        if self.replace and fanout is not None:
            return super()._select_edges(dst, fanout, rng)
        total = int(counts.sum())
        rows = np.repeat(np.arange(dst.size), counts)
        row_starts = np.concatenate(([0], np.cumsum(counts)))[:-1]
        within = np.arange(total) - np.repeat(row_starts, counts)
        neighbors = self._indices[np.repeat(starts, counts) + within]
        if fanout is None or total == 0:
            return rows, neighbors
        keys = rng.random(total)
        order = np.lexsort((keys, rows))
        keep = order[within < fanout]
        return rows[keep], neighbors[keep]


class TestCountingSortSelectionParity:
    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 2000),
        fanout=st.integers(1, 8),
        num_layers=st.integers(1, 3),
    )
    def test_blocks_bit_identical_to_lexsort(self, seed, fanout, num_layers):
        adjacency = random_adjacency(60, 0.05 + 0.3 * (seed % 4) / 3, seed % 7)
        fanouts = (fanout,) * num_layers
        fast = NeighborSampler(adjacency, fanouts=fanouts)
        slow = _LexsortSampler(adjacency, fanouts=fanouts)
        seeds = np.random.default_rng(seed).choice(60, size=12, replace=False)
        blocks_fast = fast.sample_blocks(seeds, np.random.default_rng(seed))
        blocks_slow = slow.sample_blocks(seeds, np.random.default_rng(seed))
        assert len(blocks_fast) == len(blocks_slow)
        for a, b in zip(blocks_fast, blocks_slow):
            np.testing.assert_array_equal(a.src_nodes, b.src_nodes)
            np.testing.assert_array_equal(a.dst_nodes, b.dst_nodes)
            np.testing.assert_array_equal(a.adjacency.indptr, b.adjacency.indptr)
            np.testing.assert_array_equal(a.adjacency.indices, b.adjacency.indices)
            np.testing.assert_array_equal(a.adjacency.data, b.adjacency.data)

    def test_hub_graph_parity(self):
        """Skewed degrees exercise the threshold-bucket path hard: one hub
        adjacent to everything, plus a sparse background."""
        n = 300
        rng = np.random.default_rng(0)
        dense = (rng.random((n, n)) < 0.02).astype(float)
        dense[0, 1:] = 1.0  # hub row
        dense = np.triu(dense, 1)
        adjacency = sp.csr_matrix(dense + dense.T)
        for fanout in (1, 3, 7, 50, 299):
            fast = NeighborSampler(adjacency, fanouts=(fanout,))
            slow = _LexsortSampler(adjacency, fanouts=(fanout,))
            seeds = np.arange(0, n, 3)
            (a,) = fast.sample_blocks(seeds, np.random.default_rng(fanout))
            (b,) = slow.sample_blocks(seeds, np.random.default_rng(fanout))
            np.testing.assert_array_equal(a.src_nodes, b.src_nodes)
            np.testing.assert_array_equal(a.adjacency.indptr, b.adjacency.indptr)
            np.testing.assert_array_equal(a.adjacency.indices, b.adjacency.indices)


# --------------------------------------------------------------------- #
# Block / NeighborSampler properties
# --------------------------------------------------------------------- #
class TestNeighborSamplerProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 1000),
        fanout=st.integers(1, 6),
        num_layers=st.integers(1, 3),
    )
    def test_block_invariants(self, seed, fanout, num_layers):
        adjacency = random_adjacency(30, 0.2, seed % 7)
        sampler = NeighborSampler(adjacency, fanouts=(fanout,) * num_layers)
        rng = np.random.default_rng(seed)
        seeds = np.random.default_rng(seed + 1).choice(30, size=8, replace=False)
        blocks = sampler.sample_blocks(seeds, rng)

        assert len(blocks) == num_layers
        # Outermost block outputs exactly the seeds.
        np.testing.assert_array_equal(blocks[-1].dst_nodes, seeds)
        for block in blocks:
            # Shared prefix: every dst is src at the same local index.
            np.testing.assert_array_equal(
                block.src_nodes[: block.num_dst], block.dst_nodes
            )
            assert block.adjacency.shape == (block.num_dst, block.num_src)
            # All ids in range, all unique within src.
            assert block.src_nodes.min() >= 0
            assert block.src_nodes.max() < 30
            assert np.unique(block.src_nodes).size == block.num_src
            # No out-of-range local column indices.
            if block.adjacency.nnz:
                assert block.adjacency.indices.max() < block.num_src
            # Fanout respected per destination.
            assert block.sampled_in_degrees().max(initial=0) <= fanout
        # Chain invariant: each layer's outputs are the next layer's inputs.
        for earlier, later in zip(blocks[:-1], blocks[1:]):
            np.testing.assert_array_equal(earlier.dst_nodes, later.src_nodes)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 1000), fanout=st.integers(1, 5))
    def test_sampled_edges_are_real_edges(self, seed, fanout):
        adjacency = random_adjacency(25, 0.25, seed % 5)
        sampler = NeighborSampler(adjacency, fanouts=(fanout,))
        seeds = np.random.default_rng(seed).choice(25, size=6, replace=False)
        (block,) = sampler.sample_blocks(seeds, np.random.default_rng(seed))
        dense = adjacency.toarray()
        coo = block.adjacency.tocoo()
        for row, col in zip(coo.row, coo.col):
            assert dense[block.dst_nodes[row], block.src_nodes[col]] == 1

    def test_deterministic_under_fixed_seed(self):
        adjacency = random_adjacency(40, 0.2, 3)
        sampler = NeighborSampler(adjacency, fanouts=(3, 2))
        seeds = np.arange(0, 40, 5)
        first = sampler.sample_blocks(seeds, np.random.default_rng(99))
        second = sampler.sample_blocks(seeds, np.random.default_rng(99))
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a.src_nodes, b.src_nodes)
            assert (a.adjacency != b.adjacency).nnz == 0

    def test_full_fanout_keeps_every_neighbor(self, tiny_adjacency):
        sampler = NeighborSampler.full_neighborhood(tiny_adjacency, 1)
        (block,) = sampler.sample_blocks(np.arange(6), np.random.default_rng(0))
        np.testing.assert_array_equal(
            block.sampled_in_degrees(), np.diff(tiny_adjacency.indptr)
        )

    def test_with_replacement_multiplicity(self, tiny_adjacency):
        sampler = NeighborSampler(tiny_adjacency, fanouts=(5,), replace=True)
        (block,) = sampler.sample_blocks(np.array([0]), np.random.default_rng(0))
        # Node 0 has two neighbours; five draws with replacement must repeat.
        assert block.sampled_in_degrees()[0] == 5
        assert block.adjacency.data.max() > 1

    def test_isolated_seed_gets_empty_row(self):
        adjacency = sp.csr_matrix((4, 4))
        sampler = NeighborSampler(adjacency, fanouts=(3,))
        (block,) = sampler.sample_blocks(np.array([2]), np.random.default_rng(0))
        assert block.adjacency.nnz == 0
        assert block.num_src == 1  # just the seed itself

    def test_rejects_self_loop_adjacency(self, tiny_adjacency):
        # Stored diagonals would be double-counted against the block
        # operators' own self-loop handling (exactness contract).
        looped = tiny_adjacency.tolil(copy=True)
        looped.setdiag(1.0)
        with pytest.raises(ValueError, match="zero diagonal"):
            NeighborSampler(looped.tocsr(), fanouts=(2,))

    def test_rejects_bad_inputs(self, tiny_adjacency):
        with pytest.raises(ValueError):
            NeighborSampler(tiny_adjacency, fanouts=())
        with pytest.raises(ValueError):
            NeighborSampler(tiny_adjacency, fanouts=(0,))
        sampler = NeighborSampler(tiny_adjacency, fanouts=(2,))
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            sampler.sample_blocks(np.array([], dtype=np.int64), rng)
        with pytest.raises(ValueError):
            sampler.sample_blocks(np.array([0, 0]), rng)
        with pytest.raises(ValueError):
            sampler.sample_blocks(np.array([17]), rng)

    def test_block_validates_prefix(self):
        with pytest.raises(ValueError):
            Block(
                adjacency=sp.csr_matrix((2, 3)),
                src_nodes=np.array([5, 1, 2]),
                dst_nodes=np.array([0, 1]),
                src_degrees=np.ones(3),
                dst_degrees=np.ones(2),
            )

    def test_is_block_sequence(self, tiny_adjacency):
        sampler = NeighborSampler(tiny_adjacency, fanouts=(2,))
        blocks = sampler.sample_blocks(np.array([0, 3]), np.random.default_rng(0))
        assert is_block_sequence(blocks)
        assert not is_block_sequence(tiny_adjacency)
        assert not is_block_sequence([])


# --------------------------------------------------------------------- #
# block operators
# --------------------------------------------------------------------- #
class TestBlockOperators:
    def test_gcn_matrix_matches_full_normalisation(self):
        adjacency = random_adjacency(20, 0.3, 0)
        sampler = NeighborSampler.full_neighborhood(adjacency, 1)
        seeds = np.array([0, 7, 13])
        (block,) = sampler.sample_blocks(seeds, np.random.default_rng(0))
        full = gcn_normalize(adjacency).toarray()
        sliced = full[np.ix_(block.dst_nodes, block.src_nodes)]
        np.testing.assert_allclose(
            block_gcn_matrix(block).toarray(), sliced, atol=1e-12
        )

    def test_mean_matrix_rows_sum_to_one(self):
        adjacency = random_adjacency(20, 0.3, 1)
        sampler = NeighborSampler(adjacency, fanouts=(3,))
        (block,) = sampler.sample_blocks(
            np.arange(10), np.random.default_rng(0)
        )
        sums = np.asarray(block_mean_matrix(block).sum(axis=1)).reshape(-1)
        degrees = np.diff(adjacency.indptr)[:10]
        np.testing.assert_allclose(sums[degrees > 0], 1.0)
        np.testing.assert_allclose(sums[degrees == 0], 0.0)

    def test_integer_adjacency_block_is_coerced_to_float(self):
        # A user-built block from an int 0/1 adjacency must not truncate the
        # reciprocal/ratio scaling of the mean/sum operators to zero.
        block = Block(
            adjacency=sp.csr_matrix(np.array([[1, 1, 1]], dtype=np.int64)),
            src_nodes=np.array([0, 1, 2]),
            dst_nodes=np.array([0]),
            src_degrees=np.array([3.0, 1.0, 1.0]),
            dst_degrees=np.array([3.0]),
        )
        np.testing.assert_allclose(
            block_mean_matrix(block).toarray(), [[1 / 3, 1 / 3, 1 / 3]]
        )
        np.testing.assert_allclose(block_sum_matrix(block).toarray(), [[1, 1, 1]])

    def test_sum_matrix_unbiased_scaling(self):
        adjacency = random_adjacency(20, 0.5, 2)
        sampler = NeighborSampler(adjacency, fanouts=(2,))
        (block,) = sampler.sample_blocks(np.arange(8), np.random.default_rng(0))
        sums = np.asarray(block_sum_matrix(block).sum(axis=1)).reshape(-1)
        # Each row's scaled sampled-count equals the true degree.
        np.testing.assert_allclose(sums, np.diff(adjacency.indptr)[:8])


# --------------------------------------------------------------------- #
# full-batch vs minibatch agreement
# --------------------------------------------------------------------- #
class TestFullBatchAgreement:
    @pytest.mark.parametrize("backbone", BACKBONES)
    @pytest.mark.parametrize("num_layers", [1, 2])
    def test_exact_logits_under_full_fanout(self, backbone, num_layers):
        adjacency = random_adjacency(35, 0.15, 4)
        rng = np.random.default_rng(5)
        features = rng.normal(size=(35, 6))
        model = make_backbone(
            backbone, 6, 8, np.random.default_rng(8), num_layers=num_layers
        )
        model.eval()
        full = model(Tensor(features), adjacency).data
        sampler = NeighborSampler.full_neighborhood(adjacency, num_layers)
        seeds = np.array([0, 9, 17, 34])
        blocks = sampler.sample_blocks(seeds, np.random.default_rng(0))
        mini = model(Tensor(features[blocks[0].src_nodes]), blocks).data
        np.testing.assert_allclose(mini, full[seeds], atol=1e-10)

    def test_predict_logits_batched_matches_full(self, small_graph):
        model = make_backbone(
            "sage", small_graph.num_features, 16, np.random.default_rng(0)
        )
        full = predict_logits(model, Tensor(small_graph.features), small_graph.adjacency)
        batched = predict_logits_batched(
            model, small_graph.features, small_graph.adjacency, batch_size=37
        )
        np.testing.assert_allclose(batched, full, atol=1e-10)

    def test_gradients_flow_through_blocks(self):
        adjacency = random_adjacency(20, 0.3, 6)
        features = np.random.default_rng(0).normal(size=(20, 5))
        model = make_backbone("sage", 5, 8, np.random.default_rng(1))
        sampler = NeighborSampler(adjacency, fanouts=(4,))
        blocks = sampler.sample_blocks(np.arange(6), np.random.default_rng(2))
        logits = model(Tensor(features[blocks[0].src_nodes]), blocks)
        logits.sum().backward()
        grads = [p.grad for p in model.parameters()]
        assert all(g is not None for g in grads)
        assert any(np.abs(g).max() > 0 for g in grads)


# --------------------------------------------------------------------- #
# fit_minibatch
# --------------------------------------------------------------------- #
class TestFitMinibatch:
    def test_iter_minibatches_partitions(self):
        batches = list(iter_minibatches(np.arange(10), 4))
        assert [b.size for b in batches] == [4, 4, 2]
        np.testing.assert_array_equal(np.concatenate(batches), np.arange(10))

    def test_iter_minibatches_shuffles_with_rng(self):
        batches = list(iter_minibatches(np.arange(10), 10, np.random.default_rng(0)))
        assert sorted(batches[0].tolist()) == list(range(10))

    def test_history_contract(self, small_graph):
        model = make_backbone(
            "gcn", small_graph.num_features, 8, np.random.default_rng(0)
        )
        history = fit_minibatch(
            model,
            small_graph.features,
            small_graph.adjacency,
            small_graph.labels,
            small_graph.train_mask,
            small_graph.val_mask,
            epochs=5,
            fanouts=(5,),
            batch_size=64,
            rng=0,
        )
        assert history.epochs_run == 5
        assert len(history.val_accuracy) == 5
        assert 0 <= history.best_epoch < 5
        assert history.best_val_accuracy == max(history.val_accuracy)

    def test_early_stopping(self, small_graph):
        model = make_backbone(
            "gcn", small_graph.num_features, 8, np.random.default_rng(0)
        )
        history = fit_minibatch(
            model,
            small_graph.features,
            small_graph.adjacency,
            small_graph.labels,
            small_graph.train_mask,
            small_graph.val_mask,
            epochs=200,
            fanouts=(5,),
            batch_size=64,
            patience=3,
            rng=0,
        )
        assert history.stopped_early
        assert history.epochs_run < 200

    def test_rejects_mismatched_fanouts(self, small_graph):
        model = make_backbone(
            "gcn", small_graph.num_features, 8, np.random.default_rng(0)
        )
        with pytest.raises(ValueError):
            fit_minibatch(
                model,
                small_graph.features,
                small_graph.adjacency,
                small_graph.labels,
                small_graph.train_mask,
                small_graph.val_mask,
                epochs=1,
                fanouts=(5, 5),
            )

    @pytest.mark.parametrize("backbone", ["gcn", "sage"])
    def test_accuracy_within_two_points_of_full_batch(self, small_graph, backbone):
        """The ISSUE acceptance criterion, on the shared small graph."""
        test_labels = small_graph.labels[small_graph.test_mask]

        full_model = make_backbone(
            backbone, small_graph.num_features, 16, np.random.default_rng(0)
        )
        fit_binary_classifier(
            full_model,
            Tensor(small_graph.features),
            small_graph.adjacency,
            small_graph.labels,
            small_graph.train_mask,
            small_graph.val_mask,
            epochs=100,
            patience=30,
        )
        full_logits = predict_logits(
            full_model, Tensor(small_graph.features), small_graph.adjacency
        )
        full_acc = accuracy(
            (full_logits[small_graph.test_mask] > 0).astype(np.int64), test_labels
        )

        mini_model = make_backbone(
            backbone, small_graph.num_features, 16, np.random.default_rng(0)
        )
        fit_minibatch(
            mini_model,
            small_graph.features,
            small_graph.adjacency,
            small_graph.labels,
            small_graph.train_mask,
            small_graph.val_mask,
            epochs=100,
            fanouts=(10,),
            batch_size=64,
            patience=30,
            rng=0,
        )
        mini_logits = predict_logits_batched(
            mini_model, small_graph.features, small_graph.adjacency
        )
        mini_acc = accuracy(
            (mini_logits[small_graph.test_mask] > 0).astype(np.int64), test_labels
        )
        assert mini_acc >= full_acc - 0.02  # within 2 accuracy points


@pytest.mark.slow
def test_minibatch_sage_on_100k_node_graph():
    """Acceptance criterion: a full fit_minibatch run on a >=100k-node graph.

    Memory stays bounded by construction (only block-sized activations are
    created); this test checks the engine actually completes at scale.
    """
    from repro.datasets import generate_scale_free_graph

    graph = generate_scale_free_graph(
        100_000, num_features=12, average_degree=8, seed=0
    )
    model = make_backbone(
        "sage", graph.num_features, 16, np.random.default_rng(0), num_layers=2
    )
    history = fit_minibatch(
        model,
        graph.features,
        graph.adjacency,
        graph.labels,
        graph.train_mask,
        graph.val_mask,
        epochs=2,
        fanouts=(10, 5),
        batch_size=1024,
        rng=0,
    )
    assert history.epochs_run == 2
    assert history.best_val_accuracy > 0.5
