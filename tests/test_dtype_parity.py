"""float32-vs-float64 parity for the dtype-configurable training stack.

The float64 path is the oracle: running inside ``dtype_scope("float64")``
must be *bit-identical* to the historical hard-wired behaviour.  The
float32 path trades precision for half the resident memory, so its outputs
must stay within a bounded divergence of the oracle — every test here pins
that contract for the pieces the 1M-node tier relies on: the four GNN
backbones, the fused fair loss, batched inference and the full Fairwos
trainer.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import FairwosConfig, FairwosTrainer
from repro.core.counterfactual import CounterfactualSearch
from repro.core.fairloss import fair_representation_loss
from repro.gnnzoo import make_backbone
from repro.nn import binary_cross_entropy_with_logits
from repro.optim import Adam
from repro.tensor import (
    Tensor,
    dtype_scope,
    get_default_dtype,
    resolve_dtype,
    set_default_dtype,
)
from repro.training import predict_logits, predict_logits_batched

BACKBONES = ["gcn", "gin", "gat", "sage"]


def _ring_graph(n: int = 40, f: int = 6, seed: int = 0):
    """Small fixed graph: ring adjacency + gaussian features + labels."""
    rng = np.random.default_rng(seed)
    rows = np.arange(n)
    cols = (rows + 1) % n
    adjacency = sp.csr_matrix(
        (np.ones(2 * n), (np.concatenate([rows, cols]), np.concatenate([cols, rows]))),
        shape=(n, n),
    )
    features = rng.normal(size=(n, f))
    labels = (features[:, 0] + 0.3 * rng.normal(size=n) > 0).astype(np.int64)
    return adjacency, features, labels


def _train_steps(backbone: str, dtype: str, steps: int = 5) -> np.ndarray:
    """A short full-batch fit under ``dtype``; returns the final logits.

    The model init consumes an identically-seeded generator in both
    precisions, so the float32 run starts from the float64 weights cast
    down — any divergence is purely accumulated rounding.
    """
    adjacency, features, labels = _ring_graph()
    with dtype_scope(dtype):
        model = make_backbone(backbone, features.shape[1], 8, np.random.default_rng(3))
        optimizer = Adam(model.parameters(), lr=0.05)
        x = Tensor(features)
        targets = labels.astype(np.float64)
        for _ in range(steps):
            optimizer.zero_grad()
            logits = model(x, adjacency)
            loss = binary_cross_entropy_with_logits(logits, targets)
            loss.backward()
            optimizer.step()
        return predict_logits(model, x, adjacency)


class TestDtypeRegistry:
    def test_default_is_float64(self):
        assert get_default_dtype() == np.float64

    @pytest.mark.parametrize("bad", ["float16", "int64", np.int32, "half", object])
    def test_rejects_non_float_dtypes(self, bad):
        with pytest.raises(ValueError):
            resolve_dtype(bad)

    def test_scope_sets_and_restores(self):
        with dtype_scope("float32") as active:
            assert active == np.float32
            assert get_default_dtype() == np.float32
            assert Tensor(np.zeros(3)).data.dtype == np.float32
        assert get_default_dtype() == np.float64
        assert Tensor(np.zeros(3)).data.dtype == np.float64

    def test_scope_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with dtype_scope("float32"):
                raise RuntimeError("boom")
        assert get_default_dtype() == np.float64

    def test_set_default_returns_previous(self):
        previous = set_default_dtype("float32")
        try:
            assert previous == np.float64
            assert get_default_dtype() == np.float32
        finally:
            set_default_dtype(previous)

    def test_nested_scopes(self):
        with dtype_scope("float32"):
            with dtype_scope("float64"):
                assert get_default_dtype() == np.float64
            assert get_default_dtype() == np.float32


@pytest.mark.parametrize("backbone", BACKBONES)
class TestBackboneParity:
    def test_float64_scope_bit_identical(self, backbone):
        """An explicit float64 scope is a no-op vs the historical default."""
        plain = _train_steps(backbone, "float64")
        scoped = _train_steps(backbone, "float64")
        np.testing.assert_array_equal(plain, scoped)

    def test_float32_bounded_divergence(self, backbone):
        """float32 training tracks the float64 oracle to ~1e-2 over 5 steps."""
        ref = _train_steps(backbone, "float64")
        low = _train_steps(backbone, "float32")
        assert low.dtype == np.float32
        np.testing.assert_allclose(low, ref, atol=2e-2, rtol=2e-2)

    def test_float32_parameters_are_float32(self, backbone):
        with dtype_scope("float32"):
            model = make_backbone(backbone, 6, 8, np.random.default_rng(0))
        for param in model.parameters():
            assert param.data.dtype == np.float32


class TestFusedFairLossParity:
    def _loss(self, dtype: str):
        rng = np.random.default_rng(11)
        n, d, attrs = 60, 8, 3
        reps = rng.normal(size=(n, d))
        labels = rng.integers(0, 2, size=n)
        binary = rng.integers(0, 2, size=(n, attrs))
        weights = rng.dirichlet(np.ones(attrs))
        index = CounterfactualSearch(top_k=4).search(reps, labels, binary)
        with dtype_scope(dtype):
            loss, disparities = fair_representation_loss(
                Tensor(reps), index, weights
            )
        return float(loss.data), disparities

    def test_float64_scope_bit_identical(self):
        ref_loss, ref_disp = self._loss("float64")
        scoped_loss, scoped_disp = self._loss("float64")
        assert ref_loss == scoped_loss
        np.testing.assert_array_equal(ref_disp, scoped_disp)

    def test_float32_bounded_divergence(self):
        ref_loss, ref_disp = self._loss("float64")
        low_loss, low_disp = self._loss("float32")
        assert low_loss == pytest.approx(ref_loss, rel=1e-4, abs=1e-4)
        np.testing.assert_allclose(low_disp, ref_disp, atol=1e-4, rtol=1e-3)


class TestBatchedInferenceParity:
    def _logits(self, dtype: str, batch_size: int):
        adjacency, features, _ = _ring_graph(n=50)
        with dtype_scope(dtype):
            model = make_backbone("gcn", features.shape[1], 8, np.random.default_rng(5))
            return predict_logits_batched(
                model, features, adjacency, batch_size=batch_size
            )

    def test_float64_scope_bit_identical(self):
        np.testing.assert_array_equal(
            self._logits("float64", 16), self._logits("float64", 16)
        )

    def test_float32_bounded_divergence(self):
        ref = self._logits("float64", 16)
        low = self._logits("float32", 16)
        assert low.dtype == np.float32
        np.testing.assert_allclose(low, ref, atol=1e-4, rtol=1e-3)

    def test_float32_batch_size_invariant(self):
        """Batching must not change float32 results beyond summation noise."""
        np.testing.assert_allclose(
            self._logits("float32", 7), self._logits("float32", 50), atol=1e-5
        )


class TestTrainerParity:
    FAST = dict(
        encoder_epochs=20,
        classifier_epochs=20,
        finetune_epochs=3,
        patience=5,
        alpha=1.0,
        top_k=3,
    )

    def test_float64_dtype_config_bit_identical(self, small_graph):
        """dtype='float64' must reproduce the implicit-default run exactly."""
        ref = FairwosTrainer(FairwosConfig(**self.FAST)).fit(small_graph, seed=0)
        explicit = FairwosTrainer(
            FairwosConfig(dtype="float64", **self.FAST)
        ).fit(small_graph, seed=0)
        assert ref.test.accuracy == explicit.test.accuracy
        assert ref.test.delta_sp == explicit.test.delta_sp
        np.testing.assert_array_equal(ref.lambda_weights, explicit.lambda_weights)

    def test_float32_trainer_close_to_oracle(self, small_graph):
        ref = FairwosTrainer(FairwosConfig(**self.FAST)).fit(small_graph, seed=0)
        low = FairwosTrainer(
            FairwosConfig(dtype="float32", **self.FAST)
        ).fit(small_graph, seed=0)
        assert low.pseudo_attributes.dtype == np.float32
        assert abs(low.test.accuracy - ref.test.accuracy) <= 0.08
        assert abs(low.test.delta_sp - ref.test.delta_sp) <= 0.15

    def test_float32_leaves_global_default_untouched(self, small_graph):
        FairwosTrainer(
            FairwosConfig(dtype="float32", **self.FAST)
        ).fit(small_graph, seed=1)
        assert get_default_dtype() == np.float64

    def test_rejects_unsupported_dtype(self):
        with pytest.raises(ValueError, match="dtype"):
            FairwosConfig(dtype="float16").validate()
