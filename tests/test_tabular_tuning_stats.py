"""Tests for tabular graph construction, grid search and statistics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import FairwosConfig, grid_search_fairwos
from repro.datasets import graph_from_table, knn_adjacency
from repro.experiments import (
    Scale,
    bootstrap_mean_ci,
    dominates,
    paired_permutation_test,
)


class TestKnnAdjacency:
    def test_symmetric_binary_no_loops(self):
        rng = np.random.default_rng(0)
        adj = knn_adjacency(rng.normal(size=(30, 4)), num_neighbors=3)
        assert (adj != adj.T).nnz == 0
        assert adj.diagonal().sum() == 0
        assert set(np.unique(adj.data)) == {1.0}

    def test_minimum_degree(self):
        rng = np.random.default_rng(1)
        adj = knn_adjacency(rng.normal(size=(25, 3)), num_neighbors=4)
        degrees = np.asarray(adj.sum(axis=1)).reshape(-1)
        assert degrees.min() >= 4

    def test_nearest_points_connected(self):
        # Three tight pairs: each point's 1-NN is its partner.
        features = np.array(
            [[0.0, 0], [0.1, 0], [10, 0], [10.1, 0], [20, 0], [20.1, 0]]
        )
        adj = knn_adjacency(features, num_neighbors=1)
        assert adj[0, 1] == 1 and adj[2, 3] == 1 and adj[4, 5] == 1
        assert adj[0, 2] == 0

    def test_cosine_metric(self):
        # Same direction, different magnitude: cosine joins, euclidean may not.
        features = np.array([[1.0, 0], [100.0, 0], [0, 1.0], [0, 100.0]])
        adj = knn_adjacency(features, num_neighbors=1, metric="cosine")
        assert adj[0, 1] == 1
        assert adj[2, 3] == 1

    def test_rejects_bad_params(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            knn_adjacency(rng.normal(size=(10, 2)), num_neighbors=0)
        with pytest.raises(ValueError):
            knn_adjacency(rng.normal(size=(10, 2)), num_neighbors=10)
        with pytest.raises(ValueError):
            knn_adjacency(rng.normal(size=(10, 2)), 2, metric="manhattan")

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 100), k=st.integers(1, 5))
    def test_property_valid_graph(self, seed, k):
        rng = np.random.default_rng(seed)
        adj = knn_adjacency(rng.normal(size=(15, 3)), num_neighbors=k)
        assert (adj != adj.T).nnz == 0
        assert adj.diagonal().sum() == 0


class TestGraphFromTable:
    def _table(self, n=60, f=5, seed=0):
        rng = np.random.default_rng(seed)
        features = rng.normal(size=(n, f))
        sensitive = (rng.random(n) < 0.5).astype(np.int64)
        labels = (features[:, 0] + 0.3 * sensitive > 0).astype(np.int64)
        return features, labels, sensitive

    def test_basic_construction(self):
        features, labels, sensitive = self._table()
        graph = graph_from_table(features, labels, sensitive, num_neighbors=5)
        graph.validate()
        assert graph.num_nodes == 60
        assert graph.meta["construction"].startswith("knn")

    def test_sensitive_column_removed(self):
        features, labels, sensitive = self._table()
        table = np.hstack([features, sensitive[:, None].astype(float)])
        graph = graph_from_table(
            table, labels, sensitive, num_neighbors=5, sensitive_column=5
        )
        assert graph.num_features == 5
        # No column may equal the sensitive attribute.
        for j in range(graph.num_features):
            assert not np.array_equal(graph.features[:, j], sensitive.astype(float))

    def test_related_indices_passthrough(self):
        features, labels, sensitive = self._table()
        graph = graph_from_table(
            features, labels, sensitive,
            related_feature_indices=np.array([0, 1]),
        )
        np.testing.assert_array_equal(graph.related_feature_indices, [0, 1])

    def test_fairwos_runs_on_tabular_graph(self):
        from repro.core import FairwosTrainer

        features, labels, sensitive = self._table(n=120)
        graph = graph_from_table(features, labels, sensitive, num_neighbors=6)
        config = FairwosConfig(
            encoder_epochs=20, classifier_epochs=20, finetune_epochs=2,
            encoder_dim=4, patience=5,
        )
        result = FairwosTrainer(config).fit(graph, seed=0)
        assert 0.0 <= result.test.accuracy <= 1.0


class TestGridSearch:
    def test_small_grid_selects_best(self, small_graph):
        base = FairwosConfig(
            encoder_epochs=25, classifier_epochs=25, finetune_epochs=2,
            encoder_dim=6, patience=8,
        )
        result = grid_search_fairwos(
            small_graph, base, alphas=(0.05, 2.0), ks=(1, 2), seed=0
        )
        assert len(result.points) == 4
        assert result.best in result.points
        assert result.best_result is not None
        best_val = max(p.val_accuracy for p in result.points)
        assert result.best.val_accuracy >= best_val - 0.005 - 1e-12

    def test_tiebreak_prefers_lower_proxy(self, small_graph):
        base = FairwosConfig(
            encoder_epochs=25, classifier_epochs=25, finetune_epochs=2,
            encoder_dim=6, patience=8,
        )
        result = grid_search_fairwos(
            small_graph, base, alphas=(0.05, 2.0), ks=(1,), seed=0,
            accuracy_tolerance=1.0,  # everything tied → pure proxy selection
        )
        assert result.best.fair_proxy == min(p.fair_proxy for p in result.points)

    def test_render(self, small_graph):
        base = FairwosConfig(
            encoder_epochs=20, classifier_epochs=20, finetune_epochs=2,
            encoder_dim=4, patience=5,
        )
        result = grid_search_fairwos(small_graph, base, alphas=(1.0,), ks=(1,))
        text = result.render()
        assert "grid search" in text
        assert "◀" in text


class TestStats:
    def test_bootstrap_ci_contains_mean(self):
        rng = np.random.default_rng(0)
        values = rng.normal(loc=5.0, size=50)
        mean, low, high = bootstrap_mean_ci(values)
        assert low <= mean <= high
        assert mean == pytest.approx(5.0, abs=0.5)

    def test_bootstrap_ci_narrows_with_more_data(self):
        rng = np.random.default_rng(1)
        few = bootstrap_mean_ci(rng.normal(size=10), seed=1)
        many = bootstrap_mean_ci(rng.normal(size=1000), seed=1)
        assert (many[2] - many[1]) < (few[2] - few[1])

    def test_bootstrap_validation(self):
        with pytest.raises(ValueError):
            bootstrap_mean_ci(np.array([]))
        with pytest.raises(ValueError):
            bootstrap_mean_ci(np.ones(3), confidence=1.5)

    def test_permutation_detects_difference(self):
        a = np.array([1.0, 1.1, 0.9, 1.05, 0.95, 1.0, 1.02, 0.98])
        b = a + 2.0
        assert paired_permutation_test(a, b) < 0.05

    def test_permutation_accepts_identical(self):
        a = np.array([1.0, 2.0, 3.0, 4.0])
        assert paired_permutation_test(a, a) == pytest.approx(1.0)

    def test_permutation_monte_carlo_branch(self):
        rng = np.random.default_rng(2)
        a = rng.normal(size=30)
        b = a + 1.0
        assert paired_permutation_test(a, b) < 0.05

    def test_permutation_validation(self):
        with pytest.raises(ValueError):
            paired_permutation_test(np.ones(3), np.ones(4))

    def test_dominates_directions(self):
        better = np.array([1.0, 1.1, 0.9, 1.0, 1.05, 0.95])
        worse = better + 3.0
        assert dominates(better, worse, lower_is_better=True)
        assert not dominates(worse, better, lower_is_better=True)
        assert dominates(worse, better, lower_is_better=False)
