"""Tests for DeepWalk embeddings, LayerNorm and the consistency metric."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.analysis import deepwalk_embeddings, kmeans
from repro.fairness import consistency_score
from repro.nn import LayerNorm
from repro.tensor import Tensor, gradcheck
from repro.tensor import ops


def _two_block_graph(n=60, p_in=0.3, p_out=0.02, seed=0):
    rng = np.random.default_rng(seed)
    blocks = np.repeat([0, 1], n // 2)
    probs = np.where(blocks[:, None] == blocks[None, :], p_in, p_out)
    dense = rng.random((n, n)) < probs
    dense = np.triu(dense, 1)
    dense = dense + dense.T
    return sp.csr_matrix(dense.astype(float)), blocks


class TestDeepWalkEmbeddings:
    def test_shape(self):
        adj, _ = _two_block_graph()
        emb = deepwalk_embeddings(adj, dimensions=4)
        assert emb.shape == (60, 4)
        assert np.isfinite(emb).all()

    def test_recovers_communities(self):
        adj, blocks = _two_block_graph()
        emb = deepwalk_embeddings(adj, dimensions=4)
        assignments, _, _ = kmeans(emb, 2, np.random.default_rng(0))
        agreement = max(
            (assignments == blocks).mean(), (assignments != blocks).mean()
        )
        assert agreement > 0.9

    def test_empty_graph_embeds_at_origin(self):
        emb = deepwalk_embeddings(sp.csr_matrix((10, 10)), dimensions=3)
        np.testing.assert_allclose(emb, 0.0)

    def test_deterministic(self):
        adj, _ = _two_block_graph(seed=3)
        a = deepwalk_embeddings(adj, dimensions=4)
        b = deepwalk_embeddings(adj, dimensions=4)
        np.testing.assert_allclose(a, b)

    @pytest.mark.parametrize(
        "kwargs", [{"dimensions": 0}, {"window": 0}, {"negative": 0.0}]
    )
    def test_rejects_bad_params(self, kwargs):
        adj, _ = _two_block_graph()
        with pytest.raises(ValueError):
            deepwalk_embeddings(adj, **kwargs)

    def test_rejects_too_many_dimensions(self):
        adj, _ = _two_block_graph(n=10)
        with pytest.raises(ValueError):
            deepwalk_embeddings(adj, dimensions=100)


class TestLayerNorm:
    def test_normalises_rows(self):
        layer = LayerNorm(8)
        x = Tensor(np.random.default_rng(0).normal(loc=5.0, scale=3.0, size=(10, 8)))
        out = layer(x).data
        np.testing.assert_allclose(out.mean(axis=1), 0.0, atol=1e-9)
        np.testing.assert_allclose(out.std(axis=1), 1.0, atol=1e-3)

    def test_affine_parameters_learnable(self):
        layer = LayerNorm(4)
        assert len(layer.parameters()) == 2

    def test_gradcheck(self):
        layer = LayerNorm(5)
        x = Tensor(np.random.default_rng(1).normal(size=(3, 5)), requires_grad=True)
        assert gradcheck(
            lambda x: ops.sum(ops.power(layer(x), 2.0)), [x], atol=1e-3, rtol=1e-3
        )

    def test_rejects_bad_dim(self):
        with pytest.raises(ValueError):
            LayerNorm(0)


class TestConsistencyScore:
    def test_constant_predictions_fully_consistent(self):
        rng = np.random.default_rng(0)
        features = rng.normal(size=(30, 4))
        assert consistency_score(np.ones(30), features) == 1.0

    def test_feature_aligned_predictions_consistent(self):
        # Two far-apart feature clusters with cluster-constant predictions.
        rng = np.random.default_rng(1)
        features = np.vstack(
            [rng.normal(size=(20, 3)) + 50, rng.normal(size=(20, 3)) - 50]
        )
        logits = np.concatenate([np.ones(20), -np.ones(20)])
        assert consistency_score(logits, features, num_neighbors=3) == 1.0

    def test_random_predictions_inconsistent(self):
        rng = np.random.default_rng(2)
        features = rng.normal(size=(100, 3))
        logits = rng.choice([-1.0, 1.0], size=100)
        score = consistency_score(logits, features, num_neighbors=5)
        assert 0.3 < score < 0.7

    def test_validation(self):
        with pytest.raises(ValueError, match="row mismatch"):
            consistency_score(np.ones(3), np.ones((4, 2)))
        with pytest.raises(ValueError, match="num_neighbors"):
            consistency_score(np.ones(3), np.ones((3, 2)), num_neighbors=5)


class TestExtCfFairnessExperiment:
    def test_runs_and_formats(self):
        from repro.experiments import Scale, format_ext_cf_fairness, run_ext_cf_fairness

        result = run_ext_cf_fairness(dataset="nba", scale=Scale.smoke())
        text = format_ext_cf_fairness(result)
        assert "flip rate" in text
        assert 0.0 <= result.consistency_fairwos <= 1.0
