"""Tests for the encoder module, binarisation, and the fair loss."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    CounterfactualSearch,
    EncoderModule,
    binarize_attributes,
    fair_representation_loss,
)
from repro.tensor import Tensor


class TestBinarize:
    def test_median_split_balanced(self):
        values = np.arange(10.0).reshape(10, 1)
        binary = binarize_attributes(values)
        assert binary.sum() == 5  # strictly-above-median half

    def test_quantile_parameter(self):
        values = np.arange(100.0).reshape(100, 1)
        binary = binarize_attributes(values, quantile=0.9)
        assert binary.sum() == pytest.approx(10, abs=1)

    def test_constant_column_all_zero(self):
        binary = binarize_attributes(np.ones((5, 2)))
        assert binary.sum() == 0

    def test_output_dtype_and_shape(self):
        binary = binarize_attributes(np.random.default_rng(0).normal(size=(8, 3)))
        assert binary.dtype == np.int64
        assert binary.shape == (8, 3)
        assert set(np.unique(binary)) <= {0, 1}

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            binarize_attributes(np.ones(5))
        with pytest.raises(ValueError):
            binarize_attributes(np.ones((5, 2)), quantile=1.5)


class TestEncoderModule:
    def test_extract_before_pretrain_raises(self, tiny_graph):
        encoder = EncoderModule(4, 8, np.random.default_rng(0))
        with pytest.raises(RuntimeError):
            encoder.extract(Tensor(tiny_graph.features), tiny_graph.adjacency)

    def test_pretrain_then_extract_shape(self, small_graph):
        encoder = EncoderModule(small_graph.num_features, 8, np.random.default_rng(0))
        encoder.pretrain(
            Tensor(small_graph.features),
            small_graph.adjacency,
            small_graph.labels,
            small_graph.train_mask,
            small_graph.val_mask,
            epochs=20,
        )
        out = encoder.extract(Tensor(small_graph.features), small_graph.adjacency)
        assert out.shape == (small_graph.num_nodes, 8)

    def test_mlp_backbone_ignores_structure(self, small_graph):
        import scipy.sparse as sp

        encoder = EncoderModule(
            small_graph.num_features, 4, np.random.default_rng(0), backbone="mlp"
        )
        encoder.pretrain(
            Tensor(small_graph.features),
            small_graph.adjacency,
            small_graph.labels,
            small_graph.train_mask,
            small_graph.val_mask,
            epochs=10,
        )
        out1 = encoder.extract(Tensor(small_graph.features), small_graph.adjacency)
        empty = sp.csr_matrix((small_graph.num_nodes, small_graph.num_nodes))
        out2 = encoder.extract(Tensor(small_graph.features), empty)
        np.testing.assert_allclose(out1, out2)

    def test_gcn_backbone_uses_structure(self, small_graph):
        import scipy.sparse as sp

        encoder = EncoderModule(
            small_graph.num_features, 4, np.random.default_rng(0), backbone="gcn"
        )
        encoder.pretrain(
            Tensor(small_graph.features),
            small_graph.adjacency,
            small_graph.labels,
            small_graph.train_mask,
            small_graph.val_mask,
            epochs=10,
        )
        out1 = encoder.extract(Tensor(small_graph.features), small_graph.adjacency)
        empty = sp.csr_matrix((small_graph.num_nodes, small_graph.num_nodes))
        out2 = encoder.extract(Tensor(small_graph.features), empty)
        assert not np.allclose(out1, out2)

    def test_encoder_learns_the_task(self, small_graph):
        encoder = EncoderModule(small_graph.num_features, 16, np.random.default_rng(0))
        history = encoder.pretrain(
            Tensor(small_graph.features),
            small_graph.adjacency,
            small_graph.labels,
            small_graph.train_mask,
            small_graph.val_mask,
            epochs=80,
        )
        assert history.best_val_accuracy > 0.6


class TestFairRepresentationLoss:
    def _setup(self, seed=0, n=20, d=4, attrs=2, k=2):
        rng = np.random.default_rng(seed)
        reps = rng.normal(size=(n, d))
        labels = rng.integers(0, 2, size=n)
        binary = rng.integers(0, 2, size=(n, attrs))
        index = CounterfactualSearch(top_k=k).search(reps, labels, binary)
        return reps, index

    def test_matches_manual_computation(self):
        reps, index = self._setup()
        weights = np.array([0.3, 0.7])
        loss, disparities = fair_representation_loss(
            Tensor(reps, requires_grad=True), index, weights
        )
        manual = np.zeros(2)
        for attr in range(2):
            valid = index.valid[attr]
            if not valid.any():
                continue
            for k in range(index.top_k):
                cf = reps[index.indices[attr, :, k]]
                sq = ((reps - cf) ** 2).sum(axis=1)
                manual[attr] += (sq * valid).sum() / valid.sum()
        np.testing.assert_allclose(disparities, manual)
        assert float(loss.data) == pytest.approx(float(weights @ manual))

    def test_zero_when_representations_identical(self):
        reps = np.ones((10, 3))
        rng = np.random.default_rng(1)
        labels = rng.integers(0, 2, size=10)
        binary = rng.integers(0, 2, size=(10, 2))
        index = CounterfactualSearch(top_k=1).search(reps, labels, binary)
        loss, disparities = fair_representation_loss(
            Tensor(reps), index, np.array([0.5, 0.5])
        )
        assert float(loss.data) == pytest.approx(0.0)
        np.testing.assert_allclose(disparities, 0.0)

    def test_gradients_flow_to_representations(self):
        reps, index = self._setup(seed=2)
        tensor = Tensor(reps, requires_grad=True)
        loss, _ = fair_representation_loss(tensor, index, np.array([0.5, 0.5]))
        loss.backward()
        assert tensor.grad is not None
        assert np.abs(tensor.grad).sum() > 0

    def test_zero_weight_attribute_excluded_from_loss(self):
        reps, index = self._setup(seed=3)
        loss_full, disp = fair_representation_loss(
            Tensor(reps), index, np.array([1.0, 0.0])
        )
        assert float(loss_full.data) == pytest.approx(disp[0])

    def test_invalid_pairs_contribute_zero(self):
        reps = np.random.default_rng(4).normal(size=(8, 2))
        labels = np.zeros(8, dtype=int)
        binary = np.zeros((8, 1), dtype=int)  # no counterfactuals exist
        index = CounterfactualSearch(top_k=2).search(reps, labels, binary)
        loss, disparities = fair_representation_loss(
            Tensor(reps), index, np.array([1.0])
        )
        assert float(loss.data) == 0.0
        np.testing.assert_allclose(disparities, 0.0)

    def test_weight_length_mismatch(self):
        reps, index = self._setup(seed=5)
        with pytest.raises(ValueError):
            fair_representation_loss(Tensor(reps), index, np.array([1.0]))

    def test_representation_row_mismatch(self):
        reps, index = self._setup(seed=6)
        with pytest.raises(ValueError):
            fair_representation_loss(
                Tensor(reps[:-1]), index, np.array([0.5, 0.5])
            )
