"""Tests for the encoder module, binarisation, and the fair loss.

The fused fair loss (one batched gather-sum over all I·K counterfactual
pairs) is parity-tested against the original loop implementation — kept and
exported as ``fair_representation_loss_reference`` — with a hypothesis
harness drawing shapes (I, K, N, d), masks (including zero-valid attributes
and all-invalid indexes) and weights: value, per-attribute disparities and
gradient must agree to 1e-9.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CounterfactualIndex,
    CounterfactualSearch,
    EncoderModule,
    binarize_attributes,
    fair_representation_loss,
    fair_representation_loss_minibatch,
    fair_representation_loss_minibatch_reference,
    fair_representation_loss_reference,
)
from repro.tensor import Tensor


class TestBinarize:
    def test_median_split_balanced(self):
        values = np.arange(10.0).reshape(10, 1)
        binary = binarize_attributes(values)
        assert binary.sum() == 5  # strictly-above-median half

    def test_quantile_parameter(self):
        values = np.arange(100.0).reshape(100, 1)
        binary = binarize_attributes(values, quantile=0.9)
        assert binary.sum() == pytest.approx(10, abs=1)

    def test_constant_column_all_zero(self):
        binary = binarize_attributes(np.ones((5, 2)))
        assert binary.sum() == 0

    def test_output_dtype_and_shape(self):
        binary = binarize_attributes(np.random.default_rng(0).normal(size=(8, 3)))
        assert binary.dtype == np.int64
        assert binary.shape == (8, 3)
        assert set(np.unique(binary)) <= {0, 1}

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            binarize_attributes(np.ones(5))
        with pytest.raises(ValueError):
            binarize_attributes(np.ones((5, 2)), quantile=1.5)


class TestEncoderModule:
    def test_extract_before_pretrain_raises(self, tiny_graph):
        encoder = EncoderModule(4, 8, np.random.default_rng(0))
        with pytest.raises(RuntimeError):
            encoder.extract(Tensor(tiny_graph.features), tiny_graph.adjacency)

    def test_pretrain_then_extract_shape(self, small_graph):
        encoder = EncoderModule(small_graph.num_features, 8, np.random.default_rng(0))
        encoder.pretrain(
            Tensor(small_graph.features),
            small_graph.adjacency,
            small_graph.labels,
            small_graph.train_mask,
            small_graph.val_mask,
            epochs=20,
        )
        out = encoder.extract(Tensor(small_graph.features), small_graph.adjacency)
        assert out.shape == (small_graph.num_nodes, 8)

    def test_mlp_backbone_ignores_structure(self, small_graph):
        import scipy.sparse as sp

        encoder = EncoderModule(
            small_graph.num_features, 4, np.random.default_rng(0), backbone="mlp"
        )
        encoder.pretrain(
            Tensor(small_graph.features),
            small_graph.adjacency,
            small_graph.labels,
            small_graph.train_mask,
            small_graph.val_mask,
            epochs=10,
        )
        out1 = encoder.extract(Tensor(small_graph.features), small_graph.adjacency)
        empty = sp.csr_matrix((small_graph.num_nodes, small_graph.num_nodes))
        out2 = encoder.extract(Tensor(small_graph.features), empty)
        np.testing.assert_allclose(out1, out2)

    def test_gcn_backbone_uses_structure(self, small_graph):
        import scipy.sparse as sp

        encoder = EncoderModule(
            small_graph.num_features, 4, np.random.default_rng(0), backbone="gcn"
        )
        encoder.pretrain(
            Tensor(small_graph.features),
            small_graph.adjacency,
            small_graph.labels,
            small_graph.train_mask,
            small_graph.val_mask,
            epochs=10,
        )
        out1 = encoder.extract(Tensor(small_graph.features), small_graph.adjacency)
        empty = sp.csr_matrix((small_graph.num_nodes, small_graph.num_nodes))
        out2 = encoder.extract(Tensor(small_graph.features), empty)
        assert not np.allclose(out1, out2)

    def test_encoder_learns_the_task(self, small_graph):
        encoder = EncoderModule(small_graph.num_features, 16, np.random.default_rng(0))
        history = encoder.pretrain(
            Tensor(small_graph.features),
            small_graph.adjacency,
            small_graph.labels,
            small_graph.train_mask,
            small_graph.val_mask,
            epochs=80,
        )
        assert history.best_val_accuracy > 0.6


class TestFairRepresentationLoss:
    def _setup(self, seed=0, n=20, d=4, attrs=2, k=2):
        rng = np.random.default_rng(seed)
        reps = rng.normal(size=(n, d))
        labels = rng.integers(0, 2, size=n)
        binary = rng.integers(0, 2, size=(n, attrs))
        index = CounterfactualSearch(top_k=k).search(reps, labels, binary)
        return reps, index

    def test_matches_manual_computation(self):
        reps, index = self._setup()
        weights = np.array([0.3, 0.7])
        loss, disparities = fair_representation_loss(
            Tensor(reps, requires_grad=True), index, weights
        )
        manual = np.zeros(2)
        for attr in range(2):
            valid = index.valid[attr]
            if not valid.any():
                continue
            for k in range(index.top_k):
                cf = reps[index.indices[attr, :, k]]
                sq = ((reps - cf) ** 2).sum(axis=1)
                manual[attr] += (sq * valid).sum() / valid.sum()
        np.testing.assert_allclose(disparities, manual)
        assert float(loss.data) == pytest.approx(float(weights @ manual))

    def test_zero_when_representations_identical(self):
        reps = np.ones((10, 3))
        rng = np.random.default_rng(1)
        labels = rng.integers(0, 2, size=10)
        binary = rng.integers(0, 2, size=(10, 2))
        index = CounterfactualSearch(top_k=1).search(reps, labels, binary)
        loss, disparities = fair_representation_loss(
            Tensor(reps), index, np.array([0.5, 0.5])
        )
        assert float(loss.data) == pytest.approx(0.0)
        np.testing.assert_allclose(disparities, 0.0)

    def test_gradients_flow_to_representations(self):
        reps, index = self._setup(seed=2)
        tensor = Tensor(reps, requires_grad=True)
        loss, _ = fair_representation_loss(tensor, index, np.array([0.5, 0.5]))
        loss.backward()
        assert tensor.grad is not None
        assert np.abs(tensor.grad).sum() > 0

    def test_zero_weight_attribute_excluded_from_loss(self):
        reps, index = self._setup(seed=3)
        loss_full, disp = fair_representation_loss(
            Tensor(reps), index, np.array([1.0, 0.0])
        )
        assert float(loss_full.data) == pytest.approx(disp[0])

    def test_invalid_pairs_contribute_zero(self):
        reps = np.random.default_rng(4).normal(size=(8, 2))
        labels = np.zeros(8, dtype=int)
        binary = np.zeros((8, 1), dtype=int)  # no counterfactuals exist
        index = CounterfactualSearch(top_k=2).search(reps, labels, binary)
        loss, disparities = fair_representation_loss(
            Tensor(reps), index, np.array([1.0])
        )
        assert float(loss.data) == 0.0
        np.testing.assert_allclose(disparities, 0.0)

    def test_weight_length_mismatch(self):
        reps, index = self._setup(seed=5)
        with pytest.raises(ValueError):
            fair_representation_loss(Tensor(reps), index, np.array([1.0]))

    def test_representation_row_mismatch(self):
        reps, index = self._setup(seed=6)
        with pytest.raises(ValueError):
            fair_representation_loss(
                Tensor(reps[:-1]), index, np.array([0.5, 0.5])
            )


# --------------------------------------------------------------------- #
# hypothesis parity harness: fused loss vs loop oracle
# --------------------------------------------------------------------- #
def _draw_case(seed: int):
    """A random (representations, index, weights) triple with hard edges.

    The index mirrors the search contract: invalid (attribute, node) pairs
    self-point.  The draw deliberately covers zero-valid attributes, fully
    invalid indexes, zero weights and mixed feature scales.
    """
    rng = np.random.default_rng(seed)
    num_attrs = int(rng.integers(1, 6))
    num_nodes = int(rng.integers(4, 60))
    top_k = int(rng.integers(1, 5))
    dim = int(rng.integers(1, 8))
    scale = float(rng.choice([0.1, 1.0, 10.0]))
    reps = rng.normal(scale=scale, size=(num_nodes, dim))

    valid_rate = float(rng.choice([0.0, 0.3, 0.8, 1.0]))
    valid = rng.random((num_attrs, num_nodes)) < valid_rate
    if num_attrs > 1 and rng.random() < 0.5:
        valid[int(rng.integers(num_attrs))] = False  # zero-valid attribute
    indices = rng.integers(0, num_nodes, size=(num_attrs, num_nodes, top_k))
    self_idx = np.broadcast_to(
        np.arange(num_nodes)[None, :, None], indices.shape
    )
    indices = np.where(valid[:, :, None], indices, self_idx)
    index = CounterfactualIndex(indices=indices, valid=valid)

    weights = rng.random(num_attrs)
    weights[rng.random(num_attrs) < 0.3] = 0.0  # exercise zero weights
    total = weights.sum()
    if total > 0:
        weights = weights / total
    return reps, index, weights


def _grad_of(tensor: Tensor) -> np.ndarray:
    """Gradient with ``None`` (constant-loss path) read as zeros."""
    if tensor.grad is None:
        return np.zeros(tensor.shape)
    return tensor.grad


class TestFusedLossParityHarness:
    """Fused fair loss == loop oracle, value and gradient, to 1e-9."""

    @settings(deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_fullbatch_parity(self, seed):
        reps, index, weights = _draw_case(seed)
        fused_t = Tensor(reps, requires_grad=True)
        fused_loss, fused_disp = fair_representation_loss(fused_t, index, weights)
        fused_loss.backward()
        ref_t = Tensor(reps, requires_grad=True)
        ref_loss, ref_disp = fair_representation_loss_reference(
            ref_t, index, weights
        )
        ref_loss.backward()
        np.testing.assert_allclose(
            float(fused_loss.data), float(ref_loss.data), rtol=1e-9, atol=1e-9
        )
        np.testing.assert_allclose(fused_disp, ref_disp, rtol=1e-9, atol=1e-9)
        np.testing.assert_allclose(
            _grad_of(fused_t), _grad_of(ref_t), rtol=1e-9, atol=1e-9
        )

    @settings(deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_minibatch_parity(self, seed):
        reps, index, weights = _draw_case(seed)
        rng = np.random.default_rng(seed + 1)
        num_attrs, num_nodes, _ = index.indices.shape
        batch = np.sort(
            rng.choice(num_nodes, size=int(rng.integers(1, num_nodes + 1)), replace=False)
        )
        attrs = None
        if num_attrs > 1 and rng.random() < 0.5:
            attrs = np.sort(
                rng.choice(
                    num_attrs, size=int(rng.integers(1, num_attrs)), replace=False
                )
            )
        attr_slice = np.arange(num_attrs) if attrs is None else attrs
        targets = index.indices[np.ix_(attr_slice, batch)][
            index.valid[np.ix_(attr_slice, batch)]
        ]
        seeds = np.unique(np.concatenate([batch, targets.reshape(-1)]))

        fused_t = Tensor(reps[seeds], requires_grad=True)
        fused = fair_representation_loss_minibatch(
            fused_t, index, weights, batch, seeds, attrs=attrs
        )
        fused[0].backward()
        ref_t = Tensor(reps[seeds], requires_grad=True)
        ref = fair_representation_loss_minibatch_reference(
            ref_t, index, weights, batch, seeds, attrs=attrs
        )
        ref[0].backward()
        np.testing.assert_allclose(
            float(fused[0].data), float(ref[0].data), rtol=1e-9, atol=1e-9
        )
        np.testing.assert_allclose(fused[1], ref[1], rtol=1e-9, atol=1e-9)
        np.testing.assert_array_equal(fused[2], ref[2])
        np.testing.assert_allclose(
            _grad_of(fused_t), _grad_of(ref_t), rtol=1e-9, atol=1e-9
        )

    def test_all_invalid_pairs_zero_loss_and_gradient(self):
        rng = np.random.default_rng(3)
        reps = rng.normal(size=(10, 4))
        indices = np.tile(np.arange(10)[None, :, None], (2, 1, 3))
        index = CounterfactualIndex(
            indices=indices, valid=np.zeros((2, 10), dtype=bool)
        )
        t = Tensor(reps, requires_grad=True)
        loss, disp = fair_representation_loss(t, index, np.full(2, 0.5))
        loss.backward()
        assert float(loss.data) == 0.0
        np.testing.assert_array_equal(disp, np.zeros(2))
        np.testing.assert_array_equal(_grad_of(t), np.zeros((10, 4)))

    def test_searched_index_parity(self):
        # Parity on a *real* searched index, not just synthetic ones.
        rng = np.random.default_rng(11)
        reps = rng.normal(size=(50, 5))
        labels = rng.integers(0, 2, size=50)
        binary = rng.integers(0, 2, size=(50, 4))
        index = CounterfactualSearch(top_k=3).search(reps, labels, binary)
        weights = np.full(4, 0.25)
        fused_t = Tensor(reps, requires_grad=True)
        loss_f, disp_f = fair_representation_loss(fused_t, index, weights)
        loss_f.backward()
        ref_t = Tensor(reps, requires_grad=True)
        loss_r, disp_r = fair_representation_loss_reference(ref_t, index, weights)
        loss_r.backward()
        np.testing.assert_allclose(
            float(loss_f.data), float(loss_r.data), rtol=1e-9
        )
        np.testing.assert_allclose(disp_f, disp_r, rtol=1e-9, atol=1e-9)
        np.testing.assert_allclose(
            _grad_of(fused_t), _grad_of(ref_t), rtol=1e-9, atol=1e-9
        )
