"""Packaging for the Fairwos reproduction.

Metadata lives here (not in pyproject.toml) on purpose: the development
environment has no network access and no ``wheel`` package, so PEP 517
editable installs are unavailable.  A classic ``setup.py`` plus a
``pyproject.toml`` without a ``[build-system]`` table lets ``pip install
-e .`` fall back to the ``setup.py develop`` path, while plain
``PYTHONPATH=src`` usage keeps working too.
"""

from setuptools import find_packages, setup

setup(
    name="repro-fairwos",
    version="0.2.0",
    description=(
        "Reproduction of 'Fairness without Sensitive Attributes via "
        "Knowledge Sharing' (ICDE) on a from-scratch numpy GNN substrate, "
        "with a neighbour-sampled minibatch training engine for large graphs"
    ),
    author="paper-repo-growth",
    license="MIT",
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages("src"),
    install_requires=[
        "numpy>=1.24",
        "scipy>=1.10",
    ],
    extras_require={
        "dev": [
            "pytest>=8",
            "pytest-benchmark>=4",
            "hypothesis>=6",
            "ruff>=0.4",
        ],
    },
    entry_points={
        "console_scripts": [
            "repro=repro.cli:main",
        ],
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "License :: OSI Approved :: MIT License",
        "Topic :: Scientific/Engineering :: Artificial Intelligence",
    ],
)
