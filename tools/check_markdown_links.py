#!/usr/bin/env python
"""Check that relative links in the repo's markdown files resolve.

Stdlib-only so CI can run it before installing anything.  Scans every
tracked ``*.md`` file for inline links/images ``[text](target)`` and
reference definitions ``[label]: target``, and fails when a relative
target does not exist on disk.  External schemes (``http(s)://``,
``mailto:``) and in-page anchors (``#section``) are skipped — CI has no
network and anchor slugs are renderer-specific.

Usage::

    python tools/check_markdown_links.py [root]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

SKIP_DIRS = {".git", ".venv", "node_modules", "__pycache__", "output"}
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")

# [text](target "title") — target may not contain whitespace or ')'
_INLINE = re.compile(r"!?\[[^\]]*\]\(\s*<?([^)<>\s]+)>?(?:\s+\"[^\"]*\")?\s*\)")
# [label]: target
_REFERENCE = re.compile(r"^\s*\[[^\]]+\]:\s+<?(\S+?)>?\s*$", re.MULTILINE)


def markdown_files(root: Path) -> list[Path]:
    return sorted(
        path
        for path in root.rglob("*.md")
        if not (set(path.relative_to(root).parts[:-1]) & SKIP_DIRS)
    )


def strip_code(text: str) -> str:
    """Drop fenced code blocks and inline code spans (links there are prose)."""
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    return re.sub(r"`[^`\n]*`", "", text)


def check_file(path: Path, root: Path) -> list[str]:
    text = strip_code(path.read_text())
    problems = []
    targets = _INLINE.findall(text) + _REFERENCE.findall(text)
    for target in targets:
        if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            problems.append(
                f"{path.relative_to(root)}: broken link -> {target}"
            )
    return problems


def main(argv: list[str]) -> int:
    root = Path(argv[1]).resolve() if len(argv) > 1 else Path(__file__).resolve().parents[1]
    problems: list[str] = []
    files = markdown_files(root)
    for path in files:
        problems.extend(check_file(path, root))
    if problems:
        print("\n".join(problems))
        print(f"\n{len(problems)} broken link(s) across {len(files)} markdown files")
        return 1
    print(f"all relative links resolve across {len(files)} markdown files")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
