"""Inspecting graph counterfactuals and pseudo-sensitive attributes (RQ5).

Fairwos's key idea is to find counterfactuals *in the real data* rather than
synthesising them.  This example opens the hood on the NBA dataset:

1. train Fairwos and pull out the pseudo-sensitive attributes X(0);
2. measure how much each pseudo-sensitive dimension leaks the true
   sensitive attribute, and relate that to the learned λ weights;
3. show concrete counterfactual pairs: a node and its top-K "same profile,
   other group" twins, with their true sensitive attributes;
4. render the Fig. 7 t-SNE as an ASCII scatter plot.

Run with::

    python examples/counterfactual_inspection.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import correlation_with_vector, tsne
from repro.core import (
    CounterfactualSearch,
    FairwosConfig,
    FairwosTrainer,
    binarize_attributes,
)
from repro.datasets import load_dataset
from repro.tensor import Tensor, no_grad


def ascii_scatter(points: np.ndarray, groups: np.ndarray, width=60, height=20) -> str:
    """Render a 2-D embedding as text; '.' and 'o' are the two groups."""
    xs, ys = points[:, 0], points[:, 1]
    x_bins = np.clip(
        ((xs - xs.min()) / (np.ptp(xs) + 1e-12) * (width - 1)).astype(int), 0, width - 1
    )
    y_bins = np.clip(
        ((ys - ys.min()) / (np.ptp(ys) + 1e-12) * (height - 1)).astype(int),
        0,
        height - 1,
    )
    canvas = [[" "] * width for _ in range(height)]
    for x, y, group in zip(x_bins, y_bins, groups):
        canvas[y][x] = "o" if group == 1 else "."
    return "\n".join("".join(row) for row in canvas)


def main(seed: int = 0) -> None:
    graph = load_dataset("nba", seed=seed)
    print(f"Dataset: {graph.summary()}")
    print(f"Sensitive attribute: {graph.meta['sensitive_name']} (hidden)\n")

    config = FairwosConfig(encoder_epochs=150, classifier_epochs=150, patience=30,
                           alpha=5.0, finetune_learning_rate=0.01)
    trainer = FairwosTrainer(config)
    fit = trainer.fit(graph, seed=seed)
    print(f"Fairwos test metrics: {fit.test}\n")

    # -- pseudo-sensitive attribute leakage vs λ ------------------------- #
    pseudo = fit.pseudo_attributes
    leakage = np.abs(correlation_with_vector(pseudo, graph.sensitive))
    print("Pseudo-sensitive attributes: |corr with hidden sensitive| and λ")
    order = np.argsort(leakage)[::-1]
    for i in order[:8]:
        bar = "#" * int(30 * leakage[i])
        print(f"  x0_{i:<2d} leak {leakage[i]:.2f} {bar:<30s} λ={fit.lambda_weights[i]:.3f}")
    print()

    # -- concrete counterfactual pairs ----------------------------------- #
    with no_grad():
        reps = trainer.classifier.embed(
            Tensor(pseudo), graph.adjacency
        ).data
    binary = binarize_attributes(pseudo)
    most_leaky = int(order[0])
    index = CounterfactualSearch(top_k=3).search(
        reps, graph.labels, binary[:, [most_leaky]]
    )
    print(f"Counterfactual twins along the leakiest attribute x0_{most_leaky}:")
    shown = 0
    for node in range(graph.num_nodes):
        if not index.valid[0, node]:
            continue
        twins = index.indices[0, node]
        print(
            f"  node {node:3d} (s={graph.sensitive[node]}, y={graph.labels[node]}) "
            "→ twins "
            + ", ".join(
                f"{t} (s={graph.sensitive[t]}, y={graph.labels[t]})" for t in twins
            )
        )
        shown += 1
        if shown == 5:
            break
    cross_group = 0
    total = 0
    for node in range(graph.num_nodes):
        if index.valid[0, node]:
            total += 1
            if graph.sensitive[index.indices[0, node, 0]] != graph.sensitive[node]:
                cross_group += 1
    print(
        f"  fraction of twins crossing the TRUE sensitive group: "
        f"{cross_group / max(total, 1):.0%} "
        "(higher = the pseudo-attribute is a good stand-in for s)\n"
    )

    # -- Fig. 7 as ASCII -------------------------------------------------- #
    test = graph.test_mask
    embedding = tsne(pseudo[test], np.random.default_rng(seed), iterations=250)
    print("t-SNE of test-node pseudo-sensitive attributes "
          "('.' = group 0, 'o' = group 1):")
    print(ascii_scatter(embedding, graph.sensitive[test]))


if __name__ == "__main__":
    main()
