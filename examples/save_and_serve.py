"""Train once, serve forever: persist a model and score it elsewhere.

The serving story in four acts:

1. train Fairwos on a benchmark dataset;
2. save the whole method as a versioned artifact directory — weights,
   resolved config, preprocessing state and the standing counterfactual
   index;
3. reload it in a **fresh process** (via ``python -m repro score``) and
   check the logits are bit-identical to the in-memory model;
4. reload it in-process for counterfactual retrieval and the per-window
   fairness-drift audit a serving fleet would emit.

Run with::

    python examples/save_and_serve.py [dataset] [seed]
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile
from pathlib import Path

import numpy as np

from repro import ExecutionConfig, load_dataset
from repro.experiments.methods import run_method
from repro.io import load_artifact, save_artifact


def main(dataset: str = "nba", seed: int = 0) -> None:
    graph = load_dataset(dataset, seed=seed)
    print(f"Loaded {graph.summary()}\n")

    print("Act 1 — train Fairwos once...")
    result = run_method(
        "fairwos", graph, epochs=30, finetune_epochs=5, seed=seed,
        execution=ExecutionConfig(cf_backend="ann"), keep_model=True,
    )
    trainer = result.extra["model"]
    live_logits = trainer.predict(graph)
    print(f"  {result.test}\n")

    with tempfile.TemporaryDirectory() as tmp:
        path = save_artifact(trainer, graph, Path(tmp) / "artifact")
        members = sorted(path.iterdir())
        total = sum(member.stat().st_size for member in members)
        print(f"Act 2 — saved artifact to {path}")
        for member in members:
            print(f"  {member.name:<14} {member.stat().st_size:>9,} bytes")
        print(f"  {'total':<14} {total:>9,} bytes\n")

        print("Act 3 — score from a fresh process (python -m repro score)...")
        out = Path(tmp) / "logits.npy"
        env = dict(os.environ)
        src = Path(__file__).resolve().parent.parent / "src"
        env["PYTHONPATH"] = f"{src}{os.pathsep}{env.get('PYTHONPATH', '')}"
        subprocess.run(
            [
                sys.executable, "-m", "repro", "score",
                "--artifact", str(path), "--out", str(out),
            ],
            check=True,
            env=env,
        )
        reloaded_logits = np.load(out)
        diff = float(np.abs(reloaded_logits - live_logits).max())
        print(f"  max |reloaded - live| = {diff:.2e}")
        assert diff <= 1e-12, "round-trip broke bit-parity"
        print("  bit-identical round trip confirmed\n")

        print("Act 4 — counterfactuals + drift audit from the artifact...")
        artifact = load_artifact(path)
        twins = artifact.counterfactuals(nodes=np.array([0, 1, 2]), top_k=3)
        print(
            f"  retrieved top-3 twins for 3 users across "
            f"{twins.num_attributes} pseudo-attributes "
            f"(no index rebuild, coverage {twins.coverage():.2f})"
        )
        print(artifact.audit_windows(num_windows=4).render())


if __name__ == "__main__":
    main(
        sys.argv[1] if len(sys.argv) > 1 else "nba",
        int(sys.argv[2]) if len(sys.argv) > 2 else 0,
    )
