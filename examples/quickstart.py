"""Quickstart: train a fair GNN without sensitive attributes.

This is the 60-second tour of the library: load a benchmark dataset, train
the vanilla backbone to see its bias, then train Fairwos and compare.

Run with::

    python examples/quickstart.py [dataset] [seed]

Defaults to the NBA dataset — the paper's clearest demonstration of bias
amplification.
"""

from __future__ import annotations

import sys

from repro import FairwosConfig, FairwosTrainer, load_dataset
from repro.baselines import Vanilla
from repro.experiments.methods import FAIRWOS_OVERRIDES


def main(dataset: str = "nba", seed: int = 0) -> None:
    graph = load_dataset(dataset, seed=seed)
    print(f"Loaded {graph.summary()}")
    print(
        f"  sensitive attribute: {graph.meta['sensitive_name']} "
        "(hidden during training, used only for evaluation)"
    )
    print(f"  task: {graph.meta['label_name']}\n")

    print("Training the vanilla GCN backbone (no fairness)...")
    vanilla = Vanilla(epochs=150, patience=30).fit(graph, seed=seed)
    print(f"  vanilla : {vanilla.test}\n")

    print("Training Fairwos (encoder -> counterfactual search -> fair loss)...")
    overrides = FAIRWOS_OVERRIDES.get(dataset, FAIRWOS_OVERRIDES["default"])
    config = FairwosConfig(
        encoder_epochs=150, classifier_epochs=150, patience=30, **overrides
    )
    fairwos = FairwosTrainer(config).fit(graph, seed=seed)
    print(f"  fairwos : {fairwos.test}\n")

    dsp_drop = 100 * (vanilla.test.delta_sp - fairwos.test.delta_sp)
    deo_drop = 100 * (vanilla.test.delta_eo - fairwos.test.delta_eo)
    acc_change = 100 * (fairwos.test.accuracy - vanilla.test.accuracy)
    print("Summary")
    print(f"  ΔSP reduced by {dsp_drop:+.1f} pp")
    print(f"  ΔEO reduced by {deo_drop:+.1f} pp")
    print(f"  accuracy change {acc_change:+.1f} pp")
    print(
        f"  counterfactual coverage {fairwos.counterfactual_coverage:.0%}, "
        f"λ concentrated on {int((fairwos.lambda_weights > 1e-6).sum())} "
        f"of {fairwos.lambda_weights.size} pseudo-sensitive attributes"
    )


if __name__ == "__main__":
    name = sys.argv[1] if len(sys.argv) > 1 else "nba"
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 0
    main(name, seed)
