"""Regional fairness on a social network (Pokec scenario, RQ1 in miniature).

The Pokec datasets classify users' working field; the sensitive attribute is
the user's *region*, which is invisible at training time but strongly shapes
friendships (homophily).  This example runs the full Table II method roster
on pokec_z and prints a leaderboard, demonstrating the library's uniform
method registry.

Run with::

    python examples/social_network_regions.py [dataset] [n_seeds]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.datasets import load_dataset
from repro.experiments.methods import available_methods, display_name, run_method


def main(dataset: str = "pokec_z", n_seeds: int = 2) -> None:
    print(f"Method comparison on {dataset} ({n_seeds} seeds)\n")
    rows = []
    for method in available_methods():
        accs, dsps, deos, secs = [], [], [], []
        for seed in range(n_seeds):
            graph = load_dataset(dataset, seed=seed)
            result = run_method(
                method, graph, backbone="gcn", seed=seed, epochs=150, patience=30
            )
            accs.append(100 * result.test.accuracy)
            dsps.append(100 * result.test.delta_sp)
            deos.append(100 * result.test.delta_eo)
            secs.append(result.seconds)
        rows.append(
            (
                display_name(method),
                np.mean(accs),
                np.mean(dsps),
                np.mean(deos),
                np.mean(secs),
            )
        )
        print(
            f"  {display_name(method):12s} ACC {np.mean(accs):5.1f}  "
            f"ΔSP {np.mean(dsps):5.1f}  ΔEO {np.mean(deos):5.1f}  "
            f"({np.mean(secs):4.1f}s)"
        )

    print("\nLeaderboards")
    by_fairness = sorted(rows, key=lambda r: r[2])
    print("  fairest (ΔSP):       " + " > ".join(r[0] for r in by_fairness[:3]))
    by_utility = sorted(rows, key=lambda r: -r[1])
    print("  most accurate (ACC): " + " > ".join(r[0] for r in by_utility[:3]))
    # Balance score: utility minus unfairness, the paper's qualitative
    # "balancing utility and fairness" criterion.
    by_balance = sorted(rows, key=lambda r: -(r[1] - r[2] - r[3]))
    print("  best balance:        " + " > ".join(r[0] for r in by_balance[:3]))


if __name__ == "__main__":
    name = sys.argv[1] if len(sys.argv) > 1 else "pokec_z"
    seeds = int(sys.argv[2]) if len(sys.argv) > 2 else 2
    main(name, seeds)
