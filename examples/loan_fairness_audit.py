"""Loan-approval fairness audit (the paper's Fig. 1 running example).

Scenario: a lender predicts loan approval from applicant features and their
social/financial network.  Race is legally off-limits at training time, but
postal-code-like proxies remain in the data.  This example:

1. builds a loan graph with the causal generator (race → proxies, edges),
2. audits the data: which features leak the sensitive attribute, how
   homophilous is the network, what are the group base rates;
3. trains vanilla vs Fairwos and produces a per-group decision report.

Run with::

    python examples/loan_fairness_audit.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import correlation_with_vector
from repro.baselines import Vanilla
from repro.core import FairwosConfig, FairwosTrainer
from repro.datasets import BiasSpec, generate_biased_graph
from repro.fairness import group_confusion
from repro.graph.utils import edge_homophily


def build_loan_graph(seed: int = 0):
    """A mid-size loan network: strong proxies, mild true base-rate gap."""
    return generate_biased_graph(
        num_nodes=1200,
        num_features=20,
        average_degree=18,
        spec=BiasSpec(
            group_balance=0.35,       # protected group is the minority
            label_bias=0.1,           # small real gap in repayment odds
            proxy_fraction=0.25,      # zip-code-like columns
            proxy_strength=1.2,
            group_homophily=2.5,      # applicants cluster by neighbourhood
            label_signal_strength=0.4,
            feature_noise=1.2,
        ),
        seed=seed,
        name="loan",
    ).standardized()


def audit_data(graph) -> None:
    print("=== Data audit (uses the held-out sensitive attribute) ===")
    rate1 = graph.labels[graph.sensitive == 1].mean()
    rate0 = graph.labels[graph.sensitive == 0].mean()
    print(f"  approval base rates: group0 {rate0:.2f}, group1 {rate1:.2f} "
          f"(gap {abs(rate1 - rate0):.2f})")
    homophily = edge_homophily(graph.adjacency, graph.sensitive)
    print(f"  edge homophily w.r.t. race: {homophily:.2f} "
          "(0.5 ≈ mixed, 1.0 = fully segregated)")
    corr = np.abs(correlation_with_vector(graph.features, graph.sensitive))
    worst = np.argsort(corr)[::-1][:5]
    print("  top-5 proxy features by |corr with race|: "
          + ", ".join(f"f{j}({corr[j]:.2f})" for j in worst))
    print(f"  ground-truth proxy columns: {graph.related_feature_indices.tolist()}\n")


def report_decisions(name: str, test_result, logits, graph) -> None:
    """Print headline metrics plus the per-group confusion breakdown."""
    print(f"--- {name}: {test_result}")
    rate0, rate1 = test_result.positive_rate_s0, test_result.positive_rate_s1
    print(f"    approval rates on test: group0 {rate0:.2f}, group1 {rate1:.2f}")
    test = graph.test_mask
    confusion = group_confusion(
        (logits[test] > 0).astype(int), graph.labels[test], graph.sensitive[test]
    )
    for group, counts in confusion.items():
        denied_ok = counts["fn"]
        print(
            f"    group{group}: approved {counts['tp'] + counts['fp']}, "
            f"denied {counts['tn'] + counts['fn']} "
            f"(creditworthy-but-denied: {denied_ok})"
        )


def main(seed: int = 0) -> None:
    graph = build_loan_graph(seed)
    print(f"Loan network: {graph.summary()}\n")
    audit_data(graph)

    print("=== Model comparison (race hidden from both models) ===")
    from repro.gnnzoo import make_backbone
    from repro.tensor import Tensor
    from repro.training import fit_binary_classifier, predict_logits

    model = make_backbone("gcn", graph.num_features, 16, np.random.default_rng(seed))
    features = Tensor(graph.features)
    fit_binary_classifier(
        model, features, graph.adjacency, graph.labels,
        graph.train_mask, graph.val_mask, epochs=150, patience=30,
    )
    vanilla_logits = predict_logits(model, features, graph.adjacency)
    vanilla = Vanilla(epochs=150, patience=30).fit(graph, seed=seed)
    report_decisions("Vanilla GCN", vanilla.test, vanilla_logits, graph)

    config = FairwosConfig(
        encoder_epochs=150, classifier_epochs=150, patience=30,
        alpha=2.0, finetune_learning_rate=0.005,
    )
    trainer = FairwosTrainer(config)
    fit = trainer.fit(graph, seed=seed)
    report_decisions("Fairwos", fit.test, trainer.predict(graph), graph)

    print("\n=== Verdict ===")
    gap_before = abs(vanilla.test.positive_rate_s0 - vanilla.test.positive_rate_s1)
    gap_after = abs(fit.test.positive_rate_s0 - fit.test.positive_rate_s1)
    print(f"  approval-rate gap: {gap_before:.2f} → {gap_after:.2f}")
    print(f"  accuracy: {vanilla.test.accuracy:.2f} → {fit.test.accuracy:.2f}")


if __name__ == "__main__":
    main()
