"""End-to-end pipeline on your own tabular data.

Scenario: a hiring dataset arrives as a plain table (candidate features +
hire/no-hire outcome).  Gender was collected for compliance audits but is
legally unusable for training.  The pipeline:

1. build a similarity (kNN) graph over candidates — exactly how the paper's
   Bail and Credit benchmarks were constructed from tables;
2. audit the data's bias channels;
3. select Fairwos hyper-parameters on validation accuracy only (the paper's
   protocol — fairness cannot be validated without the sensitive attribute);
4. report final fairness with the held-out sensitive attribute.

Run with::

    python examples/custom_tabular_data.py
"""

from __future__ import annotations

import numpy as np

from repro import FairwosConfig, grid_search_fairwos
from repro.baselines import Vanilla
from repro.datasets import graph_from_table
from repro.fairness import audit_graph


def make_hiring_table(n: int = 900, seed: int = 0):
    """Synthetic hiring records with a gender-biased referral channel."""
    rng = np.random.default_rng(seed)
    gender = (rng.random(n) < 0.4).astype(np.int64)
    skill = rng.normal(size=n)
    # Referral networks favour the majority group; referrals boost hiring.
    referral = (rng.random(n) < 0.25 + 0.35 * (1 - gender)).astype(float)
    years_experience = np.clip(rng.normal(6, 3, size=n) + skill, 0, None)
    # Proxy features: hobby/keyword signals correlated with gender.
    keyword_a = 0.8 * (2 * gender - 1) + rng.normal(scale=1.0, size=n)
    keyword_b = -0.7 * (2 * gender - 1) + rng.normal(scale=1.0, size=n)
    interview_score = skill + 0.5 * referral + rng.normal(scale=0.8, size=n)
    hired = (
        skill + 0.8 * referral + rng.normal(scale=1.0, size=n) > 0.4
    ).astype(np.int64)
    features = np.stack(
        [skill, referral, years_experience, keyword_a, keyword_b, interview_score],
        axis=1,
    )
    feature_names = [
        "skill", "referral", "years_experience",
        "keyword_a", "keyword_b", "interview_score",
    ]
    return features, hired, gender, feature_names


def main(seed: int = 0) -> None:
    features, hired, gender, names = make_hiring_table(seed=seed)
    print(f"Hiring table: {features.shape[0]} candidates, features {names}")
    print(f"  hire rate {hired.mean():.2f}; group-1 share {gender.mean():.2f}\n")

    graph = graph_from_table(
        features, hired, gender,
        num_neighbors=8,
        related_feature_indices=np.array([1, 3, 4]),  # suspected proxies
        seed=seed,
        name="hiring",
    ).standardized()
    print(f"Similarity graph: {graph.summary()}\n")

    print(audit_graph(graph).render(top_k=4))
    print()

    vanilla = Vanilla(epochs=150, patience=30).fit(graph, seed=seed)
    print(f"Vanilla GCN : {vanilla.test}\n")

    print("Grid-searching Fairwos (validation accuracy only — no s!)...")
    base = FairwosConfig(
        encoder_epochs=120, classifier_epochs=120, finetune_epochs=10,
        encoder_dim=8, patience=25, finetune_learning_rate=0.005,
    )
    search = grid_search_fairwos(
        graph, base, alphas=(0.05, 1.0, 5.0), ks=(1, 5), seed=seed
    )
    print(search.render())
    best = search.best_result
    print(f"\nSelected Fairwos : {best.test}")
    print(
        f"ΔSP {100 * vanilla.test.delta_sp:.1f} → {100 * best.test.delta_sp:.1f}, "
        f"ΔEO {100 * vanilla.test.delta_eo:.1f} → {100 * best.test.delta_eo:.1f}, "
        f"ACC {100 * vanilla.test.accuracy:.1f} → {100 * best.test.accuracy:.1f}"
    )
    print(
        "\nNote: selection sees ONLY validation accuracy (the sensitive\n"
        "attribute is unavailable before deployment), so the picked point is\n"
        "not guaranteed to be the fairest in the grid — the table above shows\n"
        "the full utility/fairness landscape an auditor would review."
    )


if __name__ == "__main__":
    main()
