"""Fairwos reproduction — fair GNNs via graph counterfactuals without
sensitive attributes (Wang et al., ICDE 2025).

Quickstart
----------
>>> from repro import load_dataset, FairwosTrainer, FairwosConfig
>>> graph = load_dataset("nba", seed=0)
>>> result = FairwosTrainer(FairwosConfig()).fit(graph, seed=0)
>>> print(result.test)                                    # doctest: +SKIP

Package map
-----------
* :mod:`repro.tensor` — numpy autograd engine (the PyTorch substitute)
* :mod:`repro.nn`, :mod:`repro.optim` — layers and optimisers
* :mod:`repro.graph`, :mod:`repro.gnnzoo` — graph container and GNN backbones
* :mod:`repro.datasets` — synthetic equivalents of the six paper datasets
* :mod:`repro.core` — **Fairwos**, the paper's contribution
* :mod:`repro.baselines` — Vanilla, RemoveR, KSMOTE, FairRF, FairGKD
* :mod:`repro.fairness` — ACC / ΔSP / ΔEO metrics and evaluation
* :mod:`repro.analysis` — PCA, k-means, t-SNE, correlations
* :mod:`repro.experiments` — harness regenerating every table and figure
"""

from repro.core import ExecutionConfig, FairwosConfig, FairwosResult, FairwosTrainer
from repro.datasets import available_datasets, load_dataset
from repro.fairness import EvalResult, evaluate_predictions
from repro.graph import Graph
from repro.tuning import GridSearchResult, grid_search_fairwos

__version__ = "1.0.0"

__all__ = [
    "ExecutionConfig",
    "FairwosConfig",
    "FairwosResult",
    "FairwosTrainer",
    "available_datasets",
    "load_dataset",
    "EvalResult",
    "evaluate_predictions",
    "Graph",
    "GridSearchResult",
    "grid_search_fairwos",
    "__version__",
]
