"""Counterfactual data augmentation (Section III-D).

For every node ``v`` and every pseudo-sensitive attribute ``i``, find the
top-K nodes that

* share ``v``'s (pseudo-)label — counterfactuals must be label-consistent,
* differ from ``v`` in the binarized attribute ``i`` — they describe "the
  same kind of node, other group", and
* are nearest to ``v`` in the GNN representation space (Eq. 12, L2).

Searching *real* nodes instead of perturbing features sidesteps the
non-realistic counterfactual problem the paper raises against NIFTY/GEAR:
every counterfactual returned here is an observed, plausible configuration.

The nearest-neighbour ranking is delegated to a pluggable backend
(:mod:`repro.core.ann`): ``backend="exact"`` is the original O(N²) scan and
stays the oracle; ``backend="ann"`` queries a random-projection forest with
per-bucket candidate masks, dropping the search to roughly O(N log N) so the
fine-tune phase scales past ~10k nodes.  An approximate backend may miss a
node's counterfactuals entirely; such nodes are reported as invalid (they
self-point and contribute nothing to the fair loss), which the recall
property tests bound.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.ann import make_backend

__all__ = ["CounterfactualIndex", "CounterfactualSearch"]


@dataclass
class CounterfactualIndex:
    """Result of one search.

    Attributes
    ----------
    indices:
        ``(I, N, K)`` int array; ``indices[i, v, k]`` is the node id of the
        k-th counterfactual of node ``v`` for pseudo-sensitive attribute
        ``i``.  Nodes with no valid counterfactual point at themselves.
    valid:
        ``(I, N)`` boolean; False where no counterfactual exists (the node's
        label/attribute combination has no opposite-attribute peers, or an
        approximate backend found none).
    """

    indices: np.ndarray
    valid: np.ndarray

    @property
    def num_attributes(self) -> int:
        """Number of pseudo-sensitive attributes I."""
        return self.indices.shape[0]

    @property
    def top_k(self) -> int:
        """Counterfactuals per node K."""
        return self.indices.shape[2]

    def coverage(self) -> float:
        """Fraction of (attribute, node) pairs with a valid counterfactual."""
        return float(self.valid.mean())


class CounterfactualSearch:
    """Top-K nearest-neighbour counterfactual finder (Eq. 12).

    Parameters
    ----------
    top_k:
        Number of counterfactuals per (node, attribute) pair — the paper's K.
    candidate_pool:
        Optional cap on the candidate set per (label, attribute-side) bucket;
        buckets larger than this are subsampled for speed.  None = exact.
    rng:
        Only used when ``candidate_pool`` triggers subsampling.
    backend:
        ``"exact"`` (default, the brute-force oracle), ``"ann"`` (random-
        projection forest, approximate) or any object exposing
        ``prepare(points)`` / ``topk(query_ids, candidate_ids, k)``.
    backend_options:
        Keyword options forwarded to the backend constructor (e.g.
        ``{"num_trees": 12, "probes": 4, "seed": 0}`` for ``"ann"``).
        The ANN backend also accepts the maintenance policy here —
        ``{"update": "incremental", "drift_threshold": ..., "rebuild_frac":
        ...}`` makes every :meth:`search` *maintain* the standing forest
        (re-routing only drifted points) instead of rebuilding it; see
        :class:`repro.core.ann.AnnBackend` and
        :meth:`repro.core.ann.RPForestIndex.update`.
    """

    def __init__(
        self,
        top_k: int,
        candidate_pool: int | None = None,
        rng: np.random.Generator | None = None,
        backend="exact",
        backend_options: dict | None = None,
    ) -> None:
        if top_k < 1:
            raise ValueError(f"top_k must be >= 1, got {top_k}")
        if candidate_pool is not None and candidate_pool < top_k:
            raise ValueError("candidate_pool must be >= top_k")
        self.top_k = top_k
        self.candidate_pool = candidate_pool
        self.rng = rng or np.random.default_rng(0)
        self.backend = make_backend(backend, **(backend_options or {}))

    def search(
        self,
        representations: np.ndarray,
        pseudo_labels: np.ndarray,
        binary_attributes: np.ndarray,
        nodes: np.ndarray | None = None,
    ) -> CounterfactualIndex:
        """Find counterfactuals for every node and attribute.

        Parameters
        ----------
        representations:
            ``(N, d)`` node representations ``h`` from the GNN classifier.
        pseudo_labels:
            ``(N,)`` integer labels (model predictions for unlabelled nodes).
        binary_attributes:
            ``(N, I)`` 0/1 pseudo-sensitive attribute matrix.
        nodes:
            Optional subset of node ids to act as *queries*.  Candidates
            still come from the full node set, so restricting queries
            changes nothing about which counterfactuals a node gets — it
            only skips work for nodes outside the subset (their rows stay
            self-pointing and invalid).  The serving path uses this to
            retrieve counterfactuals for a scored batch without ranking
            every node.
        """
        representations = np.asarray(representations, dtype=np.float64)
        pseudo_labels = np.asarray(pseudo_labels).astype(np.int64)
        binary_attributes = np.asarray(binary_attributes).astype(np.int64)
        n, _ = representations.shape
        if pseudo_labels.shape != (n,):
            raise ValueError("pseudo_labels shape mismatch")
        if binary_attributes.shape[0] != n:
            raise ValueError("binary_attributes row mismatch")
        num_attrs = binary_attributes.shape[1]
        query_mask = None
        if nodes is not None:
            nodes = np.unique(np.asarray(nodes, dtype=np.int64))
            if nodes.size and (nodes[0] < 0 or nodes[-1] >= n):
                raise ValueError("nodes ids out of range")
            query_mask = np.zeros(n, dtype=bool)
            query_mask[nodes] = True

        indices = np.tile(np.arange(n, dtype=np.int64)[:, None], (num_attrs, 1, 1))
        indices = indices.reshape(num_attrs, n, 1).repeat(self.top_k, axis=2)
        valid = np.zeros((num_attrs, n), dtype=bool)

        self.backend.prepare(representations)
        for label in np.unique(pseudo_labels):
            class_members = np.where(pseudo_labels == label)[0]
            if class_members.size < 2:
                continue
            class_attrs = binary_attributes[class_members]
            for attr in range(num_attrs):
                side1 = class_attrs[:, attr] == 1
                group_a = class_members[~side1]
                group_b = class_members[side1]
                if group_a.size == 0 or group_b.size == 0:
                    continue
                queries_a, queries_b = group_a, group_b
                if query_mask is not None:
                    queries_a = group_a[query_mask[group_a]]
                    queries_b = group_b[query_mask[group_b]]
                if queries_a.size:
                    self._fill_topk(queries_a, group_b, indices, valid, attr)
                if queries_b.size:
                    self._fill_topk(queries_b, group_a, indices, valid, attr)
        return CounterfactualIndex(indices=indices, valid=valid)

    # ------------------------------------------------------------------ #
    def _fill_topk(
        self,
        queries: np.ndarray,
        candidates: np.ndarray,
        indices: np.ndarray,
        valid: np.ndarray,
        attr: int,
    ) -> None:
        """Write top-K nearest ``candidates`` for each node in ``queries``.

        The backend returns up to ``top_k`` candidate ids per query (the
        approximate backend right-pads misses with ``-1``).  Rows with at
        least one hit cycle their hits to fill all K slots (fewer real
        candidates than K means repeating the available ones, as in the
        paper's K > bucket-size corner); rows with no hit stay self-pointing
        and invalid.
        """
        if (
            self.candidate_pool is not None
            and candidates.size > self.candidate_pool
        ):
            candidates = self.rng.choice(
                candidates, size=self.candidate_pool, replace=False
            )
        found = np.asarray(self.backend.topk(queries, candidates, self.top_k))
        counts = (found >= 0).sum(axis=1)
        rows = np.flatnonzero(counts)
        if rows.size == 0:
            return
        cols = np.arange(self.top_k)[None, :] % counts[rows][:, None]
        indices[attr, queries[rows], :] = found[rows[:, None], cols]
        valid[attr, queries[rows]] = True
