"""Encoder module — pseudo-sensitive attribute generation (Section III-B).

The encoder is pre-trained for node classification (Eq. 4–5) and then used
as a frozen feature extractor (Eq. 6): its low-dimensional output ``X(0)``
becomes the pseudo-sensitive attributes.  Because sensitive attributes shape
both the graph structure and the non-sensitive features (Fig. 3), the
default encoder is a 1-layer GCN so ``X(0)`` captures *both* sources; an MLP
variant ("features only") is provided for comparison.

``binarize_attributes`` turns each continuous pseudo-sensitive dimension into
a two-valued attribute (above/below its quantile) so the counterfactual
search's requirement ``x0_i ≠ x0_j`` is well defined.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.gnnzoo import make_backbone
from repro.nn import MLP, Linear, Module
from repro.tensor import Tensor, no_grad
from repro.training import DEFAULT_FANOUT, fit_binary_classifier, fit_minibatch

__all__ = ["EncoderModule", "binarize_attributes"]


def binarize_attributes(values: np.ndarray, quantile: float = 0.5) -> np.ndarray:
    """Binarize each column at its quantile (default: median).

    Returns an int64 0/1 matrix of the same shape.  Constant columns come
    out all-zero (no counterfactual exists for them, and the search reports
    them as uncovered).
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {values.shape}")
    if not 0.0 < quantile < 1.0:
        raise ValueError(f"quantile must be in (0, 1), got {quantile}")
    thresholds = np.quantile(values, quantile, axis=0, keepdims=True)
    return (values > thresholds).astype(np.int64)


class _MLPEncoderNet(Module):
    """MLP encoder ignoring the adjacency (features-only variant)."""

    def __init__(self, in_dim: int, encoder_dim: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.body = MLP([in_dim, encoder_dim, encoder_dim], rng)
        self.head = Linear(encoder_dim, 1, rng)

    def embed(self, features: Tensor, adjacency: sp.spmatrix) -> Tensor:
        return self.body(features)

    def forward(self, features: Tensor, adjacency: sp.spmatrix) -> Tensor:
        return self.head(self.embed(features, adjacency)).reshape(-1)


class EncoderModule:
    """Pre-trainable encoder producing pseudo-sensitive attributes.

    Parameters
    ----------
    in_dim:
        Input feature dimensionality.
    encoder_dim:
        Output (pseudo-sensitive attribute) dimensionality — the paper sweeps
        {2, 8, 16, 32} in Fig. 5.
    rng:
        Weight-init generator.
    backbone:
        "gcn" (default; sees structure + features, per Fig. 3), "mlp"
        (features only) or any other :func:`repro.gnnzoo.make_backbone` name.
    """

    def __init__(
        self,
        in_dim: int,
        encoder_dim: int,
        rng: np.random.Generator,
        backbone: str = "gcn",
    ) -> None:
        self.encoder_dim = encoder_dim
        self.backbone_name = backbone.lower()
        if self.backbone_name == "mlp":
            self.network: Module = _MLPEncoderNet(in_dim, encoder_dim, rng)
        else:
            self.network = make_backbone(
                self.backbone_name, in_dim, encoder_dim, rng, num_layers=1
            )
        self.pretrained = False

    def pretrain(
        self,
        features: Tensor,
        adjacency: sp.spmatrix,
        labels: np.ndarray,
        train_mask: np.ndarray,
        val_mask: np.ndarray,
        epochs: int,
        lr: float = 1e-3,
        patience: int | None = 40,
        minibatch: bool = False,
        fanout: int | None = DEFAULT_FANOUT,
        batch_size: int = 512,
        cache_epochs: int = 1,
        rng: np.random.Generator | None = None,
        num_workers: int = 0,
        prefetch_epochs: int = 1,
        worker_pool=None,
    ):
        """Optimise Eq. (5): classification loss over the labelled nodes.

        With ``minibatch=True`` (and a graph backbone) training runs through
        :func:`repro.training.fit_minibatch` with a single-hop ``fanout`` —
        the encoder is always a one-layer network.  The MLP encoder ignores
        the graph, so it always trains full-batch (its memory is already
        linear in N).  ``num_workers``/``prefetch_epochs``/``worker_pool``
        pass straight through to the sampled path (see
        :mod:`repro.training.parallel`).
        """
        if minibatch and self.backbone_name != "mlp":
            history = fit_minibatch(
                self.network,
                features,
                adjacency,
                labels,
                train_mask,
                val_mask,
                epochs=epochs,
                fanouts=(fanout,),
                batch_size=batch_size,
                lr=lr,
                patience=patience,
                rng=rng,
                cache_epochs=cache_epochs,
                num_workers=num_workers,
                prefetch_epochs=prefetch_epochs,
                worker_pool=worker_pool,
            )
        else:
            history = fit_binary_classifier(
                self.network,
                features,
                adjacency,
                labels,
                train_mask,
                val_mask,
                epochs=epochs,
                lr=lr,
                patience=patience,
            )
        self.pretrained = True
        return history

    def extract(self, features: Tensor, adjacency: sp.spmatrix) -> np.ndarray:
        """Eq. (6): frozen forward pass returning ``X(0)`` as numpy."""
        if not self.pretrained:
            raise RuntimeError("call pretrain() before extract()")
        was_training = self.network.training
        self.network.eval()
        with no_grad():
            output = self.network.embed(features, adjacency).data.copy()
        self.network.train(was_training)
        return output
