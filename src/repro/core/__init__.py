"""Fairwos — the paper's primary contribution.

The five components of Fig. 2:

1. :class:`EncoderModule` — pre-trained encoder whose low-dimensional output
   becomes the pseudo-sensitive attributes ``X(0)`` (Section III-B);
2. the GNN classifier — any backbone from :mod:`repro.gnnzoo`
   (Section III-C);
3. :class:`CounterfactualSearch` — top-K graph counterfactuals found in the
   *real* data, same (pseudo-)label but different pseudo-sensitive attribute,
   nearest in representation space (Section III-D, Eq. 12);
4. :func:`fair_representation_loss` — embedding-consistency regulariser
   (Section III-E, Eq. 13–14);
5. :class:`WeightUpdater` — closed-form KKT update of the per-attribute
   simplex weights λ (Eq. 17–24).

:class:`FairwosTrainer` wires them together per Algorithm 1.
"""

from repro.core.ann import AnnBackend, ExactBackend, RPForestIndex, exact_topk
from repro.core.config import ExecutionConfig, FairwosConfig
from repro.core.encoder import EncoderModule, binarize_attributes
from repro.core.counterfactual import CounterfactualSearch, CounterfactualIndex
from repro.core.fairloss import (
    fair_representation_loss,
    fair_representation_loss_minibatch,
    fair_representation_loss_minibatch_reference,
    fair_representation_loss_reference,
)
from repro.core.weights import WeightUpdater, project_to_simplex, solve_kkt_eq24
from repro.core.trainer import FairwosTrainer, FairwosResult
from repro.core.cf_evaluation import (
    CounterfactualFairnessReport,
    evaluate_counterfactual_fairness,
)

__all__ = [
    "AnnBackend",
    "ExactBackend",
    "RPForestIndex",
    "exact_topk",
    "ExecutionConfig",
    "FairwosConfig",
    "EncoderModule",
    "binarize_attributes",
    "CounterfactualSearch",
    "CounterfactualIndex",
    "fair_representation_loss",
    "fair_representation_loss_minibatch",
    "fair_representation_loss_minibatch_reference",
    "fair_representation_loss_reference",
    "WeightUpdater",
    "project_to_simplex",
    "solve_kkt_eq24",
    "FairwosTrainer",
    "FairwosResult",
    "CounterfactualFairnessReport",
    "evaluate_counterfactual_fairness",
]
