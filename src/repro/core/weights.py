"""Weight-update module: λ optimisation on the simplex (Eq. 17–24).

Fixing the GNN parameters, the λ subproblem is

.. math::

    \\min_λ \\; α·Σ_i λ_i D_i + ||λ||_2^2
    \\quad \\text{s.t.} \\quad λ_i ≥ 0, \\; Σ_i λ_i = 1,

whose KKT conditions give the closed form
``λ_i = max(0, (−b − α·D_i) / 2)`` with ``b`` chosen so the weights sum to 1
(Eq. 22–24).  That is exactly the Euclidean projection of the vector
``−α·D/2`` onto the probability simplex, so we implement both the paper's
sorting procedure (:func:`solve_kkt_eq24`) and the standard simplex
projection (:func:`project_to_simplex`); a property test asserts they agree.

**Documented paper inconsistency.** The text around Eq. (14) argues large
disparities ``D_i`` should receive *large* weights, but the optimisation
above provably assigns them *small* weights (it is a minimisation of
``λ·D``).  We follow the math by default and expose the text's intent as
``WeightUpdater(prefer_high_disparity=True)`` (projection of ``+α·D/2``),
which the ablation benchmark compares.
"""

from __future__ import annotations

import numpy as np

__all__ = ["project_to_simplex", "solve_kkt_eq24", "WeightUpdater"]


def project_to_simplex(values: np.ndarray) -> np.ndarray:
    """Euclidean projection of a vector onto the probability simplex.

    Uses the sorting algorithm of Held, Wolfe & Crowder (1974): find the
    largest ``ρ`` with ``v_(ρ) − (Σ_{j≤ρ} v_(j) − 1)/ρ > 0`` and subtract
    that threshold.
    """
    values = np.asarray(values, dtype=np.float64).reshape(-1)
    if values.size == 0:
        raise ValueError("cannot project an empty vector")
    sorted_desc = np.sort(values)[::-1]
    cumulative = np.cumsum(sorted_desc) - 1.0
    rho_candidates = sorted_desc - cumulative / np.arange(1, values.size + 1)
    rho = int(np.nonzero(rho_candidates > 0)[0][-1]) + 1
    threshold = cumulative[rho - 1] / rho
    return np.maximum(values - threshold, 0.0)


def solve_kkt_eq24(disparities: np.ndarray, alpha: float = 1.0) -> np.ndarray:
    """The paper's Eq. (22)–(24) procedure, transcribed.

    Rank the (scaled) disparities in descending order, locate the bracket
    containing the multiplier ``b`` via ``Σ max(0, −b − D'_i) = 2`` and
    evaluate Eq. (24).  ``alpha`` restores the α factor that Eq. (21) drops.
    """
    scaled = alpha * np.asarray(disparities, dtype=np.float64).reshape(-1)
    size = scaled.size
    if size == 0:
        raise ValueError("need at least one disparity value")
    if size == 1:
        return np.ones(1)
    order = np.argsort(scaled)[::-1]
    descending = scaled[order]  # {D'_1 >= D'_2 >= ... >= D'_I}
    lambdas = np.zeros(size)
    # Try each hypothesis "b ∈ (−D'_{j−1}, −D'_j]": the active set is then
    # the suffix {j, ..., I} of the descending ranking.
    for j in range(size):
        suffix_sum = descending[j:].sum()
        active = size - j
        b = -(2.0 + suffix_sum) / active
        upper = -descending[j]
        lower = -descending[j - 1] if j > 0 else -np.inf
        if lower < b <= upper or j == size - 1:
            raw = (-b - descending) / 2.0
            lambdas[order] = np.maximum(raw, 0.0)
            break
    total = lambdas.sum()
    if total <= 0:
        raise RuntimeError("KKT solve failed to find a feasible bracket")
    return lambdas / total


class WeightUpdater:
    """Stateful λ manager used by the Fairwos trainer.

    Parameters
    ----------
    num_attributes:
        Number of pseudo-sensitive attributes I; λ starts uniform (Algorithm
        1, line 2).
    alpha:
        Regularisation strength α of Eq. (15).
    prefer_high_disparity:
        False (default) follows the paper's math — small weight on large
        disparities; True follows the paper's *text* — large weight on large
        disparities.  See the module docstring.
    """

    def __init__(
        self,
        num_attributes: int,
        alpha: float,
        prefer_high_disparity: bool = False,
    ) -> None:
        if num_attributes < 1:
            raise ValueError(f"num_attributes must be >= 1, got {num_attributes}")
        if alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {alpha}")
        self.alpha = alpha
        self.prefer_high_disparity = prefer_high_disparity
        self.weights = np.full(num_attributes, 1.0 / num_attributes)

    def update(self, disparities: np.ndarray) -> np.ndarray:
        """Recompute λ from the current per-attribute disparities ``D_i``.

        Equivalent to :func:`solve_kkt_eq24` (verified by tests) but uses the
        simplex projection directly: the minimiser of
        ``α·λ·D + ||λ||²`` on the simplex is ``proj_simplex(−α·D/2)``.
        """
        disparities = np.asarray(disparities, dtype=np.float64).reshape(-1)
        if disparities.shape != self.weights.shape:
            raise ValueError(
                f"expected {self.weights.size} disparities, got {disparities.size}"
            )
        sign = 1.0 if self.prefer_high_disparity else -1.0
        self.weights = project_to_simplex(sign * self.alpha * disparities / 2.0)
        return self.weights
