"""Approximate nearest-neighbour search for the counterfactual index.

The exact counterfactual search (Eq. 12) is an O(N²·I) distance scan — fine
up to ~10k nodes, prohibitive beyond.  This module provides the pluggable
replacement:

* :func:`exact_topk` — the brute-force oracle, shared verbatim by the exact
  backend and by exhaustive-probe ANN queries so the two are bit-identical;
* :class:`RPForestIndex` — a numpy random-projection-tree forest with
  ``build(X)`` / ``query(Q, k, mask=...)``.  The boolean ``mask`` restricts
  candidates, which is exactly what the counterfactual search needs: the
  label-consistent, opposite-attribute bucket becomes a mask over all N
  points, so one index per refresh serves every (label, attribute, side)
  bucket;
* :class:`ExactBackend` / :class:`AnnBackend` — the strategy objects
  :class:`~repro.core.counterfactual.CounterfactualSearch` dispatches to.

Design notes
------------
Each tree splits its points on a random unit direction at the projection
median (split by rank, so trees are exactly balanced and build is
O(N log N) per tree).  A query descends to one leaf per tree; ``probes > 1``
additionally flips the lowest-margin split decisions along the root path
(multi-probe, as in Annoy/LSH multi-probe) and descends the alternative
subtrees, trading work for recall.  Candidates from all (tree, probe)
leaves are deduplicated and ranked by true L2 distance, with ties broken by
ascending point id for determinism.

``probes="exhaustive"`` bypasses the trees and ranks *every* masked
candidate through :func:`exact_topk` — the property-test harness uses this
to prove the ANN plumbing (masking, padding, cycling) exactly reproduces
the oracle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "EXHAUSTIVE",
    "RPForestIndex",
    "exact_topk",
    "ExactBackend",
    "AnnBackend",
    "make_backend",
]

#: Sentinel for :meth:`RPForestIndex.query`'s ``probes`` — rank every masked
#: candidate by brute force (bit-identical to :class:`ExactBackend`).
EXHAUSTIVE = "exhaustive"


def exact_topk(
    points: np.ndarray,
    queries: np.ndarray,
    candidate_ids: np.ndarray,
    k: int,
) -> np.ndarray:
    """Brute-force top-``k`` of ``candidate_ids`` for each query row.

    Parameters
    ----------
    points:
        ``(N, d)`` base point matrix.
    queries:
        ``(Q, d)`` query vectors (rows need not be base points).
    candidate_ids:
        Ids into ``points`` eligible as neighbours (any order; the order is
        the tie-break when ``k`` cuts through equal distances).
    k:
        Neighbours requested.

    Returns
    -------
    ``(Q, min(k, len(candidate_ids)))`` int64 array of candidate ids, each
    row ordered by ascending squared L2 distance.
    """
    queries = np.asarray(queries, dtype=np.float64)
    candidate_ids = np.asarray(candidate_ids, dtype=np.int64).reshape(-1)
    candidate_reprs = points[candidate_ids]
    # Squared L2 distances; monotone in L2 so the ranking matches Eq. 12.
    distances = (
        (queries**2).sum(axis=1)[:, None]
        - 2.0 * queries @ candidate_reprs.T
        + (candidate_reprs**2).sum(axis=1)[None, :]
    )
    k_eff = min(k, candidate_ids.size)
    if k_eff < candidate_ids.size:
        top = np.argpartition(distances, k_eff - 1, axis=1)[:, :k_eff]
        # Order the selected k by distance for determinism.
        row_order = np.take_along_axis(distances, top, axis=1).argsort(axis=1)
        top = np.take_along_axis(top, row_order, axis=1)
    else:
        top = distances.argsort(axis=1)
    return candidate_ids[top]


@dataclass
class _Tree:
    """One random-projection tree in array form.

    ``children`` entries ``>= 0`` are internal-node indices; negative entries
    encode leaves as ``-(leaf_id + 1)``.  ``root`` follows the same encoding
    (a tree small enough to be a single leaf has no internal nodes).
    """

    directions: np.ndarray  # (num_internal, d)
    thresholds: np.ndarray  # (num_internal,)
    children: np.ndarray  # (num_internal, 2)
    leaf_indptr: np.ndarray  # (num_leaves + 1,)
    leaf_items: np.ndarray  # (N,)
    root: int
    depth: int
    max_leaf: int


class RPForestIndex:
    """Random-projection-tree forest over a fixed point set.

    Parameters
    ----------
    num_trees:
        Independent trees; recall grows with the union of their leaves.
    leaf_size:
        Stop splitting below this many points.
    probes:
        Default leaves visited per tree per query (>= 1).  Probe ``p`` flips
        the ``p``-th smallest-margin split decision of the original descent.
    seed:
        Forest construction seed; two builds with the same seed over the
        same data are identical.
    chunk_size:
        Queries processed per vectorized block (bounds peak memory at
        ``chunk_size × num_trees × probes × leaf_size × d`` floats).
    """

    def __init__(
        self,
        num_trees: int = 8,
        leaf_size: int = 32,
        probes: int = 2,
        seed: int = 0,
        chunk_size: int = 512,
    ) -> None:
        if num_trees < 1:
            raise ValueError(f"num_trees must be >= 1, got {num_trees}")
        if leaf_size < 1:
            raise ValueError(f"leaf_size must be >= 1, got {leaf_size}")
        if probes != EXHAUSTIVE and probes < 1:
            raise ValueError(f"probes must be >= 1 or 'exhaustive', got {probes}")
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.num_trees = num_trees
        self.leaf_size = leaf_size
        self.probes = probes
        self.seed = seed
        self.chunk_size = chunk_size
        self._points: np.ndarray | None = None
        self._norms: np.ndarray | None = None
        self._trees: list[_Tree] = []

    # ------------------------------------------------------------------ #
    @property
    def num_points(self) -> int:
        """Number of indexed points (0 before :meth:`build`)."""
        return 0 if self._points is None else self._points.shape[0]

    @property
    def points(self) -> np.ndarray:
        """The indexed point matrix (raises before :meth:`build`)."""
        if self._points is None:
            raise RuntimeError("call build() before reading points")
        return self._points

    def build(self, X: np.ndarray) -> "RPForestIndex":
        """(Re)build the forest over ``X``; returns ``self``."""
        X = np.array(X, dtype=np.float64, copy=True)
        if X.ndim != 2 or X.shape[0] == 0:
            raise ValueError(f"expected a non-empty (N, d) matrix, got {X.shape}")
        self._points = X
        self._norms = (X**2).sum(axis=1)
        rng = np.random.default_rng(self.seed)
        self._trees = [self._build_tree(X, rng) for _ in range(self.num_trees)]
        return self

    # ------------------------------------------------------------------ #
    def _build_tree(self, X: np.ndarray, rng: np.random.Generator) -> _Tree:
        n, dim = X.shape
        directions: list[np.ndarray] = []
        thresholds: list[float] = []
        children: list[list[int]] = []
        leaves: list[np.ndarray] = []
        depth = 0
        # Stack entries: (members, parent node, side, level).  LIFO order is
        # deterministic, so rng consumption (one direction per split) is too.
        stack: list[tuple[np.ndarray, int, int, int]] = [
            (np.arange(n, dtype=np.int64), -1, 0, 0)
        ]
        root = 0
        while stack:
            members, parent, side, level = stack.pop()
            depth = max(depth, level)
            if members.size <= self.leaf_size:
                leaves.append(members)
                ref = -len(leaves)  # leaf_id = len(leaves) - 1 → -(leaf_id + 1)
            else:
                direction = rng.normal(size=dim)
                norm = float(np.linalg.norm(direction))
                if norm == 0.0:  # pragma: no cover - probability zero
                    direction[0] = 1.0
                    norm = 1.0
                direction /= norm
                proj = X[members] @ direction
                order = np.argsort(proj, kind="stable")
                half = members.size // 2
                threshold = 0.5 * (proj[order[half - 1]] + proj[order[half]])
                ref = len(directions)
                directions.append(direction)
                thresholds.append(float(threshold))
                children.append([0, 0])
                stack.append((members[order[half:]], ref, 1, level + 1))
                stack.append((members[order[:half]], ref, 0, level + 1))
            if parent >= 0:
                children[parent][side] = ref
            else:
                root = ref
        leaf_sizes = np.array([leaf.size for leaf in leaves], dtype=np.int64)
        return _Tree(
            directions=(
                np.array(directions) if directions else np.empty((0, dim))
            ),
            thresholds=np.array(thresholds, dtype=np.float64),
            children=(
                np.array(children, dtype=np.int64)
                if children
                else np.empty((0, 2), dtype=np.int64)
            ),
            leaf_indptr=np.concatenate(([0], np.cumsum(leaf_sizes))),
            leaf_items=(
                np.concatenate(leaves) if leaves else np.empty(0, dtype=np.int64)
            ),
            root=root,
            depth=depth,
            max_leaf=int(leaf_sizes.max()),
        )

    # ------------------------------------------------------------------ #
    def _greedy_descent(self, tree: _Tree, Q: np.ndarray, start: np.ndarray) -> np.ndarray:
        """Follow splits greedily from ``start`` nodes; returns leaf ids (-1 for inactive)."""
        cur = start.copy()
        active = cur >= 0
        while active.any():
            nodes = cur[active]
            proj = np.einsum("qd,qd->q", Q[active], tree.directions[nodes])
            side = (proj >= tree.thresholds[nodes]).astype(np.int64)
            cur[active] = tree.children[nodes, side]
            active = cur >= 0
        leaves = -(cur + 1)
        leaves[start == _INACTIVE] = -1
        return leaves

    def _tree_leaves(self, tree: _Tree, Q: np.ndarray, probes: int) -> np.ndarray:
        """Leaf id per (query, probe); -1 where a probe is unavailable."""
        m = Q.shape[0]
        out = np.full((m, probes), -1, dtype=np.int64)
        if tree.root < 0:  # single-leaf tree
            out[:, 0] = -(tree.root + 1)
            return out
        # Recorded descent: path nodes, margins and the side taken per level.
        path_nodes = np.full((m, tree.depth), -1, dtype=np.int64)
        margins = np.full((m, tree.depth), np.inf)
        sides = np.zeros((m, tree.depth), dtype=np.int64)
        cur = np.full(m, tree.root, dtype=np.int64)
        level = 0
        active = cur >= 0
        while active.any():
            nodes = cur[active]
            proj = np.einsum("qd,qd->q", Q[active], tree.directions[nodes])
            thr = tree.thresholds[nodes]
            side = (proj >= thr).astype(np.int64)
            path_nodes[active, level] = nodes
            margins[active, level] = np.abs(proj - thr)
            sides[active, level] = side
            cur[active] = tree.children[nodes, side]
            active = cur >= 0
            level += 1
        out[:, 0] = -(cur + 1)
        if probes == 1:
            return out
        # Probe p flips the p-th smallest-margin decision of the root path
        # and descends greedily below the flip.
        margin_order = np.argsort(margins, axis=1, kind="stable")
        rows = np.arange(m)
        for probe in range(1, probes):
            if probe - 1 >= tree.depth:
                break
            pos = margin_order[:, probe - 1]
            nodes = path_nodes[rows, pos]
            usable = nodes >= 0
            start = np.full(m, _INACTIVE, dtype=np.int64)
            start[usable] = tree.children[
                nodes[usable], 1 - sides[rows[usable], pos[usable]]
            ]
            out[:, probe] = self._greedy_descent(tree, Q, start)
        return out

    # ------------------------------------------------------------------ #
    def query(
        self,
        Q: np.ndarray,
        k: int,
        mask: np.ndarray | None = None,
        probes: int | str | None = None,
    ) -> np.ndarray:
        """Top-``k`` indexed neighbours of each query row.

        Parameters
        ----------
        Q:
            ``(Q, d)`` query vectors (``(d,)`` is promoted to one row).
        k:
            Neighbours requested per query.
        mask:
            Optional ``(N,)`` boolean; only points with ``mask[id]`` True may
            be returned.  This is how the counterfactual search expresses
            its label-consistent, opposite-attribute candidate buckets.
        probes:
            Override the index default; ``"exhaustive"`` ranks every masked
            candidate by brute force (bit-identical to the exact backend).

        Returns
        -------
        ``(Q, k)`` int64 ids into the built matrix, ordered by ascending
        distance (ties → ascending id), right-padded with ``-1`` when fewer
        than ``k`` candidates were found.
        """
        if self._points is None:
            raise RuntimeError("call build() before query()")
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        Q = np.asarray(Q, dtype=np.float64)
        if Q.ndim == 1:
            Q = Q[None, :]
        if Q.ndim != 2 or Q.shape[1] != self._points.shape[1]:
            raise ValueError(
                f"queries must be (Q, {self._points.shape[1]}), got {Q.shape}"
            )
        if mask is not None:
            mask = np.asarray(mask, dtype=bool).reshape(-1)
            if mask.shape[0] != self.num_points:
                raise ValueError(
                    f"mask must have {self.num_points} entries, got {mask.shape[0]}"
                )
        if probes is None:
            probes = self.probes
        if probes == EXHAUSTIVE:
            return self._query_exhaustive(Q, k, mask)
        probes = int(probes)
        if probes < 1:
            raise ValueError(f"probes must be >= 1 or 'exhaustive', got {probes}")

        out = np.full((Q.shape[0], k), -1, dtype=np.int64)
        for start in range(0, Q.shape[0], self.chunk_size):
            chunk = slice(start, start + self.chunk_size)
            out[chunk] = self._query_chunk(Q[chunk], k, mask, probes)
        return out

    def _query_exhaustive(
        self, Q: np.ndarray, k: int, mask: np.ndarray | None
    ) -> np.ndarray:
        candidate_ids = (
            np.flatnonzero(mask) if mask is not None
            else np.arange(self.num_points, dtype=np.int64)
        )
        out = np.full((Q.shape[0], k), -1, dtype=np.int64)
        if candidate_ids.size == 0:
            return out
        found = exact_topk(self._points, Q, candidate_ids, k)
        out[:, : found.shape[1]] = found
        return out

    def _query_chunk(
        self, Q: np.ndarray, k: int, mask: np.ndarray | None, probes: int
    ) -> np.ndarray:
        m = Q.shape[0]
        width = sum(tree.max_leaf for tree in self._trees) * probes
        cands = np.full((m, width), -1, dtype=np.int64)
        col = 0
        rows_all = np.arange(m)
        for tree in self._trees:
            leaves = self._tree_leaves(tree, Q, probes)
            for probe in range(probes):
                leaf = leaves[:, probe]
                ok = leaf >= 0
                lengths = np.zeros(m, dtype=np.int64)
                lengths[ok] = (
                    tree.leaf_indptr[leaf[ok] + 1] - tree.leaf_indptr[leaf[ok]]
                )
                total = int(lengths.sum())
                if total:
                    rows = np.repeat(rows_all, lengths)
                    row_starts = np.concatenate(([0], np.cumsum(lengths)))[:-1]
                    within = np.arange(total) - np.repeat(row_starts, lengths)
                    starts = np.repeat(tree.leaf_indptr[np.maximum(leaf, 0)], lengths)
                    cands[rows, col + within] = tree.leaf_items[starts + within]
                col += tree.max_leaf
        # Dedupe across trees/probes: sort ids per row (pads sort first) and
        # blank repeats so a point can enter the ranking only once.
        cands.sort(axis=1)
        cands[:, 1:][cands[:, 1:] == cands[:, :-1]] = -1

        safe = np.maximum(cands, 0)
        dots = np.einsum("qd,qwd->qw", Q, self._points[safe])
        dist = (Q**2).sum(axis=1)[:, None] - 2.0 * dots + self._norms[safe]
        invalid = cands < 0
        if mask is not None:
            invalid |= ~mask[safe]
        dist[invalid] = np.inf
        # Stable sort on distance after the ascending-id sort above breaks
        # distance ties by ascending id — deterministic output.
        order = np.argsort(dist, axis=1, kind="stable")[:, :k]
        picked = np.take_along_axis(cands, order, axis=1)
        picked[~np.isfinite(np.take_along_axis(dist, order, axis=1))] = -1
        if picked.shape[1] < k:
            picked = np.concatenate(
                [picked, np.full((m, k - picked.shape[1]), -1, dtype=np.int64)],
                axis=1,
            )
        return picked


_INACTIVE = np.iinfo(np.int64).min  # "no start node" marker for greedy descent


# --------------------------------------------------------------------- #
# Counterfactual-search backends
# --------------------------------------------------------------------- #
class ExactBackend:
    """Brute-force oracle backend (the original O(N²) scan)."""

    name = "exact"

    def __init__(self) -> None:
        self._points: np.ndarray | None = None

    def prepare(self, points: np.ndarray) -> None:
        """Stash the representation matrix for this search pass."""
        self._points = np.asarray(points, dtype=np.float64)

    def topk(
        self, query_ids: np.ndarray, candidate_ids: np.ndarray, k: int
    ) -> np.ndarray:
        """Exact top-``k`` candidate ids per query node (no padding)."""
        if self._points is None:
            raise RuntimeError("call prepare() before topk()")
        return exact_topk(
            self._points, self._points[query_ids], candidate_ids, k
        )


class AnnBackend:
    """Approximate backend over a :class:`RPForestIndex`.

    ``exhaustive=True`` keeps the index but routes every query through
    brute-force ranking — the bridge used to prove the ANN plumbing exact.
    """

    name = "ann"

    def __init__(
        self,
        num_trees: int = 8,
        leaf_size: int = 32,
        probes: int = 2,
        seed: int = 0,
        chunk_size: int = 512,
        exhaustive: bool = False,
    ) -> None:
        self._index = RPForestIndex(
            num_trees=num_trees,
            leaf_size=leaf_size,
            probes=probes,
            seed=seed,
            chunk_size=chunk_size,
        )
        self.exhaustive = exhaustive

    @property
    def index(self) -> RPForestIndex:
        """The underlying forest (rebuilt on every :meth:`prepare`)."""
        return self._index

    def prepare(self, points: np.ndarray) -> None:
        """Rebuild the forest over the current representations."""
        self._index.build(points)

    def topk(
        self, query_ids: np.ndarray, candidate_ids: np.ndarray, k: int
    ) -> np.ndarray:
        """Approximate top-``k`` (``-1``-padded) candidate ids per query node."""
        mask = np.zeros(self._index.num_points, dtype=bool)
        mask[candidate_ids] = True
        return self._index.query(
            self._index.points[query_ids],
            k,
            mask=mask,
            probes=EXHAUSTIVE if self.exhaustive else None,
        )


def make_backend(spec, **options):
    """Resolve a backend spec: ``"exact"``, ``"ann"`` or a strategy object."""
    if isinstance(spec, str):
        key = spec.lower()
        if key == "exact":
            if options:
                raise ValueError(
                    f"the exact backend takes no options, got {sorted(options)}"
                )
            return ExactBackend()
        if key == "ann":
            return AnnBackend(**options)
        raise ValueError(f"unknown backend {spec!r}; choose 'exact' or 'ann'")
    if hasattr(spec, "prepare") and hasattr(spec, "topk"):
        if options:
            raise ValueError("backend options only apply to string specs")
        return spec
    raise TypeError(
        f"backend must be 'exact', 'ann' or a prepare/topk object, got {spec!r}"
    )
