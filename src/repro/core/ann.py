"""Approximate nearest-neighbour search for the counterfactual index.

The exact counterfactual search (Eq. 12) is an O(N²·I) distance scan — fine
up to ~10k nodes, prohibitive beyond.  This module provides the pluggable
replacement:

* :func:`exact_topk` — the brute-force oracle, shared verbatim by the exact
  backend and by exhaustive-probe ANN queries so the two are bit-identical;
* :class:`RPForestIndex` — a numpy random-projection-tree forest with
  ``build(X)`` / ``query(Q, k, mask=...)``.  The boolean ``mask`` restricts
  candidates, which is exactly what the counterfactual search needs: the
  label-consistent, opposite-attribute bucket becomes a mask over all N
  points, so one index per refresh serves every (label, attribute, side)
  bucket;
* :class:`ExactBackend` / :class:`AnnBackend` — the strategy objects
  :class:`~repro.core.counterfactual.CounterfactualSearch` dispatches to.

Design notes
------------
Each tree splits its points on a random unit direction at the projection
median (split by rank, so trees are exactly balanced and build is
O(N log N) per tree).  A query descends to one leaf per tree; ``probes > 1``
additionally flips the lowest-margin split decisions along the root path
(multi-probe, as in Annoy/LSH multi-probe) and descends the alternative
subtrees, trading work for recall.  Candidates from all (tree, probe)
leaves are deduplicated and ranked by true L2 distance, with ties broken by
ascending point id for determinism.

``probes="exhaustive"`` bypasses the trees and ranks *every* masked
candidate through :func:`exact_topk` — the property-test harness uses this
to prove the ANN plumbing (masking, padding, cycling) exactly reproduces
the oracle.

Incremental maintenance
-----------------------
Fine-tune embeddings drift slowly between adjacent refreshes, so rebuilding
the whole forest every ``cf_refresh_epochs`` wastes most of its work.
:meth:`RPForestIndex.update` amortises it: *every* point's coordinates are
refreshed (distance ranking — and therefore exhaustive probing — is always
exact over the new matrix), but only points whose embedding moved more than
``drift_threshold`` are re-routed through the existing split planes
(leaf-level removal + greedy re-descent).  A leaf that collects more than
``leaf_size * overflow_factor`` points is lazily rebuilt as a local subtree
spliced into the tree arrays, keeping per-query candidate counts bounded.
When the drifted fraction exceeds ``rebuild_frac`` the update escapes to a
full :meth:`~RPForestIndex.build` — re-routing most of the index through
stale split planes would cost nearly as much and erode recall.
:class:`AnnBackend` exposes the policy as ``update="rebuild"|"incremental"``;
each :meth:`~AnnBackend.prepare` then either rebuilds the forest or applies
an in-place update (falling back to a build when the point-set shape
changed).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "EXHAUSTIVE",
    "RPForestIndex",
    "UpdateReport",
    "exact_topk",
    "execute_tree_task",
    "ExactBackend",
    "AnnBackend",
    "make_backend",
]

#: Sentinel for :meth:`RPForestIndex.query`'s ``probes`` — rank every masked
#: candidate by brute force (bit-identical to :class:`ExactBackend`).
EXHAUSTIVE = "exhaustive"


def exact_topk(
    points: np.ndarray,
    queries: np.ndarray,
    candidate_ids: np.ndarray,
    k: int,
) -> np.ndarray:
    """Brute-force top-``k`` of ``candidate_ids`` for each query row.

    Parameters
    ----------
    points:
        ``(N, d)`` base point matrix.
    queries:
        ``(Q, d)`` query vectors (rows need not be base points).
    candidate_ids:
        Ids into ``points`` eligible as neighbours (any order; the order is
        the tie-break when ``k`` cuts through equal distances).
    k:
        Neighbours requested.

    Returns
    -------
    ``(Q, min(k, len(candidate_ids)))`` int64 array of candidate ids, each
    row ordered by ascending squared L2 distance.
    """
    queries = np.asarray(queries, dtype=np.float64)
    candidate_ids = np.asarray(candidate_ids, dtype=np.int64).reshape(-1)
    candidate_reprs = points[candidate_ids]
    # Squared L2 distances; monotone in L2 so the ranking matches Eq. 12.
    distances = (
        (queries**2).sum(axis=1)[:, None]
        - 2.0 * queries @ candidate_reprs.T
        + (candidate_reprs**2).sum(axis=1)[None, :]
    )
    k_eff = min(k, candidate_ids.size)
    if k_eff < candidate_ids.size:
        top = np.argpartition(distances, k_eff - 1, axis=1)[:, :k_eff]
        # Order the selected k by distance for determinism.
        row_order = np.take_along_axis(distances, top, axis=1).argsort(axis=1)
        top = np.take_along_axis(top, row_order, axis=1)
    else:
        # Stable, like every other ranking path: duplicate distances break
        # ties by candidate position (ascending id for sorted candidates).
        top = distances.argsort(axis=1, kind="stable")
    return candidate_ids[top]


@dataclass(frozen=True)
class UpdateReport:
    """What one :meth:`RPForestIndex.update` call did.

    ``num_moved`` counts points whose drift exceeded the threshold;
    ``rebuilt`` is True when the drifted fraction tripped the
    ``rebuild_frac`` escape hatch and the whole forest was rebuilt instead;
    ``splits`` counts overflowing leaves lazily rebuilt as subtrees.

    ``orphaned`` is the number of unreachable leaf slots left standing
    across all trees *after* this call (each ``_split_leaf`` orphans the
    slot it replaced), and ``compacted`` the number of slots reclaimed by
    the compaction pass this call triggered — together they make the
    ``compact_frac`` trigger observable.  A rebuild (escape hatch or
    fresh ``build``) starts from zero orphans by construction.
    """

    num_points: int
    num_moved: int
    moved_fraction: float
    rebuilt: bool
    splits: int = 0
    orphaned: int = 0
    compacted: int = 0


@dataclass
class _Tree:
    """One random-projection tree in array form.

    ``children`` entries ``>= 0`` are internal-node indices; negative entries
    encode leaves as ``-(leaf_id + 1)``.  ``root`` follows the same encoding
    (a tree small enough to be a single leaf has no internal nodes).

    ``point_leaf`` maps each indexed point to its current leaf id — the
    routing table incremental updates edit in place; ``leaf_indptr`` /
    ``leaf_items`` are its CSR view, repacked after every update.  ``depth``
    is an upper bound on the root-to-leaf path length (exact after a build,
    conservatively widened by subtree splices) sizing the recorded-descent
    arrays of multi-probe queries.
    """

    directions: np.ndarray  # (num_internal, d)
    thresholds: np.ndarray  # (num_internal,)
    children: np.ndarray  # (num_internal, 2)
    leaf_indptr: np.ndarray  # (num_leaves + 1,)
    leaf_items: np.ndarray  # (N,)
    point_leaf: np.ndarray  # (N,)
    root: int
    depth: int
    max_leaf: int

    @property
    def num_leaves(self) -> int:
        return self.leaf_indptr.shape[0] - 1


class RPForestIndex:
    """Random-projection-tree forest over a fixed point set.

    Parameters
    ----------
    num_trees:
        Independent trees; recall grows with the union of their leaves.
    leaf_size:
        Stop splitting below this many points.
    probes:
        Default leaves visited per tree per query (>= 1).  Probe ``p`` flips
        the ``p``-th smallest-margin split decision of the original descent.
    seed:
        Forest construction seed; two builds with the same seed over the
        same data are identical.
    chunk_size:
        Queries processed per vectorized block (bounds peak memory at
        ``chunk_size × num_trees × probes × leaf_size × d`` floats).
    drift_threshold:
        Default drift detector of :meth:`update`: a point is re-routed when
        its embedding moved more than this L2 distance since the last
        build/update (0 = any movement counts).
    rebuild_frac:
        Default escape hatch of :meth:`update`: when more than this fraction
        of points drifted, fall back to a full rebuild.
    overflow_factor:
        A leaf collecting more than ``leaf_size * overflow_factor`` points
        during updates is lazily rebuilt as a local subtree.
    compact_frac:
        Every ``_split_leaf`` orphans one leaf slot; when orphaned slots
        exceed this fraction of a tree's leaf count the tree is compacted
        (slots renumbered away).  ``1.0`` disables compaction — orphans can
        never reach 100% because the root path keeps at least one leaf
        reachable.
    """

    def __init__(
        self,
        num_trees: int = 8,
        leaf_size: int = 32,
        probes: int = 2,
        seed: int = 0,
        chunk_size: int = 512,
        drift_threshold: float = 0.0,
        rebuild_frac: float = 0.5,
        overflow_factor: float = 4.0,
        compact_frac: float = 0.25,
    ) -> None:
        if num_trees < 1:
            raise ValueError(f"num_trees must be >= 1, got {num_trees}")
        if leaf_size < 1:
            raise ValueError(f"leaf_size must be >= 1, got {leaf_size}")
        if probes != EXHAUSTIVE and probes < 1:
            raise ValueError(f"probes must be >= 1 or 'exhaustive', got {probes}")
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if drift_threshold < 0:
            raise ValueError(
                f"drift_threshold must be non-negative, got {drift_threshold}"
            )
        if not 0.0 < rebuild_frac <= 1.0:
            raise ValueError(f"rebuild_frac must be in (0, 1], got {rebuild_frac}")
        if overflow_factor < 1.0:
            raise ValueError(
                f"overflow_factor must be >= 1, got {overflow_factor}"
            )
        if not 0.0 < compact_frac <= 1.0:
            raise ValueError(
                f"compact_frac must be in (0, 1], got {compact_frac}"
            )
        self.num_trees = num_trees
        self.leaf_size = leaf_size
        self.probes = probes
        self.seed = seed
        self.chunk_size = chunk_size
        self.drift_threshold = drift_threshold
        self.rebuild_frac = rebuild_frac
        self.overflow_factor = overflow_factor
        self.compact_frac = compact_frac
        self._points: np.ndarray | None = None
        self._norms: np.ndarray | None = None
        self._trees: list[_Tree] = []
        self._update_count = 0

    # ------------------------------------------------------------------ #
    @property
    def num_points(self) -> int:
        """Number of indexed points (0 before :meth:`build`)."""
        return 0 if self._points is None else self._points.shape[0]

    @property
    def update_count(self) -> int:
        """Incremental updates applied since the last :meth:`build`.

        Part of the index's deterministic state: subtree splits seed their
        generator from ``(seed, update_count, tree, leaf)``, so a restored
        index must carry the counter to stay bit-identical under further
        updates.
        """
        return self._update_count

    @property
    def points(self) -> np.ndarray:
        """The indexed point matrix (raises before :meth:`build`)."""
        if self._points is None:
            raise RuntimeError("call build() before reading points")
        return self._points

    def build(self, X: np.ndarray, pool=None) -> "RPForestIndex":
        """(Re)build the forest over ``X``; returns ``self``.

        Trees are independent and each seeds its own generator from
        ``(seed, tree_id)``, so a build sharded across a
        :class:`~repro.training.parallel.WorkerPool` (one task per tree) is
        bit-identical to the serial build.
        """
        X = np.array(X, dtype=np.float64, copy=True)
        if X.ndim != 2 or X.shape[0] == 0:
            raise ValueError(f"expected a non-empty (N, d) matrix, got {X.shape}")
        self._points = X
        self._norms = (X**2).sum(axis=1)
        self._update_count = 0
        if pool is not None and self.num_trees > 1:
            spec = {"leaf_size": self.leaf_size, "seed": self.seed}
            x_spec = pool.publish(X)
            try:
                self._trees = pool.run_jobs(
                    [
                        ("tree_build", spec, x_spec, tree_id)
                        for tree_id in range(self.num_trees)
                    ]
                )
            finally:
                pool.release(x_spec)
        else:
            self._trees = [
                self._build_tree(X, np.random.default_rng([self.seed, t]))
                for t in range(self.num_trees)
            ]
        return self

    # ------------------------------------------------------------------ #
    def to_arrays(self) -> dict[str, np.ndarray]:
        """Flatten the whole forest into named numpy arrays.

        The mapping is ``np.savez``-compatible and captures *all* state
        needed to answer queries and continue incremental maintenance:
        constructor parameters, the point matrix, the per-tree split planes
        and routing tables, and the update counter that seeds future
        subtree splits.  :meth:`from_arrays` inverts it bit-identically —
        a restored forest answers every ``query`` (including
        ``probes="exhaustive"``) exactly like the live one.
        """
        if self._points is None:
            raise RuntimeError("call build() before to_arrays()")
        out: dict[str, np.ndarray] = {
            "params": np.array(
                [
                    self.num_trees,
                    self.leaf_size,
                    -1 if self.probes == EXHAUSTIVE else int(self.probes),
                    self.seed,
                    self.chunk_size,
                    self._update_count,
                ],
                dtype=np.int64,
            ),
            "float_params": np.array(
                [
                    self.drift_threshold,
                    self.rebuild_frac,
                    self.overflow_factor,
                    self.compact_frac,
                ],
                dtype=np.float64,
            ),
            "points": self._points,
        }
        for t, tree in enumerate(self._trees):
            prefix = f"tree{t}_"
            out[prefix + "directions"] = tree.directions
            out[prefix + "thresholds"] = tree.thresholds
            out[prefix + "children"] = tree.children
            out[prefix + "leaf_indptr"] = tree.leaf_indptr
            out[prefix + "leaf_items"] = tree.leaf_items
            out[prefix + "point_leaf"] = tree.point_leaf
            out[prefix + "meta"] = np.array(
                [tree.root, tree.depth, tree.max_leaf], dtype=np.int64
            )
        return out

    @classmethod
    def from_arrays(cls, arrays) -> "RPForestIndex":
        """Reconstruct a forest from a :meth:`to_arrays` mapping.

        Accepts any mapping of name → array (a dict or an open
        ``np.load`` handle).  The restored index is bit-identical to the
        saved one: same points, same split planes, same routing tables and
        the same ``update_count``, so both queries and subsequent
        :meth:`update` calls reproduce the live index exactly.
        """
        try:
            params = np.asarray(arrays["params"], dtype=np.int64)
            floats = np.asarray(arrays["float_params"], dtype=np.float64)
            points_raw = arrays["points"]
        except KeyError as exc:
            raise ValueError(
                f"serialized forest is missing required array {exc}"
            ) from exc
        probes_raw = int(params[2])
        index = cls(
            num_trees=int(params[0]),
            leaf_size=int(params[1]),
            probes=EXHAUSTIVE if probes_raw < 0 else probes_raw,
            seed=int(params[3]),
            chunk_size=int(params[4]),
            drift_threshold=float(floats[0]),
            rebuild_frac=float(floats[1]),
            overflow_factor=float(floats[2]),
            # Forests serialized before compaction existed carry 3 floats;
            # restore them with compaction off so behaviour is unchanged.
            compact_frac=float(floats[3]) if floats.size > 3 else 1.0,
        )
        points = np.array(points_raw, dtype=np.float64, copy=True)
        if points.ndim != 2 or points.shape[0] == 0:
            raise ValueError(
                f"serialized points must be a non-empty (N, d) matrix, "
                f"got {points.shape}"
            )
        index._points = points
        index._norms = (points**2).sum(axis=1)
        index._update_count = int(params[5])
        trees: list[_Tree] = []
        for t in range(index.num_trees):
            prefix = f"tree{t}_"
            try:
                meta = np.asarray(arrays[prefix + "meta"], dtype=np.int64)
                trees.append(
                    _Tree(
                        directions=np.array(
                            arrays[prefix + "directions"], dtype=np.float64
                        ),
                        thresholds=np.array(
                            arrays[prefix + "thresholds"], dtype=np.float64
                        ),
                        children=np.array(
                            arrays[prefix + "children"], dtype=np.int64
                        ),
                        leaf_indptr=np.array(
                            arrays[prefix + "leaf_indptr"], dtype=np.int64
                        ),
                        leaf_items=np.array(
                            arrays[prefix + "leaf_items"], dtype=np.int64
                        ),
                        point_leaf=np.array(
                            arrays[prefix + "point_leaf"], dtype=np.int64
                        ),
                        root=int(meta[0]),
                        depth=int(meta[1]),
                        max_leaf=int(meta[2]),
                    )
                )
            except KeyError as exc:
                raise ValueError(
                    f"serialized forest is missing arrays for tree {t} "
                    f"(expected {index.num_trees} trees)"
                ) from exc
        index._trees = trees
        return index

    # ------------------------------------------------------------------ #
    def _build_tree(
        self,
        X: np.ndarray,
        rng: np.random.Generator,
        members: np.ndarray | None = None,
    ) -> _Tree:
        """Build one tree over ``members`` (default: every row of ``X``).

        ``point_leaf`` is sized for the whole point set regardless, so a
        subtree built over a leaf's members (the lazy-split path) can be
        spliced into a full tree without reindexing.
        """
        n, dim = X.shape
        if members is None:
            members = np.arange(n, dtype=np.int64)
        directions: list[np.ndarray] = []
        thresholds: list[float] = []
        children: list[list[int]] = []
        leaves: list[np.ndarray] = []
        depth = 0
        # Stack entries: (members, parent node, side, level).  LIFO order is
        # deterministic, so rng consumption (one direction per split) is too.
        stack: list[tuple[np.ndarray, int, int, int]] = [
            (members, -1, 0, 0)
        ]
        root = 0
        while stack:
            members, parent, side, level = stack.pop()
            depth = max(depth, level)
            if members.size <= self.leaf_size:
                leaves.append(members)
                ref = -len(leaves)  # leaf_id = len(leaves) - 1 → -(leaf_id + 1)
            else:
                direction = rng.normal(size=dim)
                norm = float(np.linalg.norm(direction))
                if norm == 0.0:  # pragma: no cover - probability zero
                    direction[0] = 1.0
                    norm = 1.0
                direction /= norm
                proj = X[members] @ direction
                order = np.argsort(proj, kind="stable")
                half = members.size // 2
                threshold = 0.5 * (proj[order[half - 1]] + proj[order[half]])
                ref = len(directions)
                directions.append(direction)
                thresholds.append(float(threshold))
                children.append([0, 0])
                stack.append((members[order[half:]], ref, 1, level + 1))
                stack.append((members[order[:half]], ref, 0, level + 1))
            if parent >= 0:
                children[parent][side] = ref
            else:
                root = ref
        leaf_sizes = np.array([leaf.size for leaf in leaves], dtype=np.int64)
        leaf_items = (
            np.concatenate(leaves) if leaves else np.empty(0, dtype=np.int64)
        )
        point_leaf = np.full(n, -1, dtype=np.int64)
        point_leaf[leaf_items] = np.repeat(
            np.arange(leaf_sizes.size, dtype=np.int64), leaf_sizes
        )
        return _Tree(
            directions=(
                np.array(directions) if directions else np.empty((0, dim))
            ),
            thresholds=np.array(thresholds, dtype=np.float64),
            children=(
                np.array(children, dtype=np.int64)
                if children
                else np.empty((0, 2), dtype=np.int64)
            ),
            leaf_indptr=np.concatenate(([0], np.cumsum(leaf_sizes))),
            leaf_items=leaf_items,
            point_leaf=point_leaf,
            root=root,
            depth=depth,
            max_leaf=int(leaf_sizes.max()),
        )

    # ------------------------------------------------------------------ #
    def update(
        self,
        X: np.ndarray,
        moved: np.ndarray | None = None,
        drift_threshold: float | None = None,
        rebuild_frac: float | None = None,
        pool=None,
    ) -> UpdateReport:
        """In-place maintenance over a drifted point matrix; returns a report.

        Every point's coordinates (and norms) are refreshed, so distance
        ranking — and therefore ``probes="exhaustive"`` — is always exact
        over the new matrix.  Only points that *drifted* are re-routed:
        removed from their current leaf and greedily re-descended through
        the existing split planes of every tree.  Leaves that collect more
        than ``leaf_size * overflow_factor`` points are lazily rebuilt as
        local subtrees.  When the drifted fraction exceeds ``rebuild_frac``
        the whole forest is rebuilt instead (``report.rebuilt``), identical
        to a fresh :meth:`build` over ``X``.  Each subtree split orphans
        one leaf slot; a tree whose orphaned slots exceed ``compact_frac``
        of its leaf count is compacted in place (query results unchanged),
        and the report carries the remaining/reclaimed slot counts.

        Parameters
        ----------
        X:
            ``(N, d)`` new point matrix; must match the built shape (a
            changed point *set* needs a rebuild, not an update).
        moved:
            Optional explicit drifted set — int ids or an ``(N,)`` boolean
            mask.  Default: detect via per-point L2 deltas against the
            stored matrix, using ``drift_threshold``.  Mutually exclusive
            with ``drift_threshold``: an explicit set is re-routed as
            given, never re-filtered by the detector.
        drift_threshold, rebuild_frac:
            Per-call overrides of the constructor defaults.
        pool:
            Optional :class:`~repro.training.parallel.WorkerPool`; per-tree
            re-routing is sharded across it, bit-identically (subtree-split
            generators already seed from per-tree state).

        Updates are deterministic: the same index state and the same
        arguments always produce the same forest (subtree splits draw from
        a generator seeded by ``(seed, update counter, tree, leaf)``).
        """
        if self._points is None:
            raise RuntimeError("call build() before update()")
        X = np.asarray(X, dtype=np.float64)
        if X.shape != self._points.shape:
            raise ValueError(
                f"update() requires the built shape {self._points.shape}, got "
                f"{X.shape}; use build() when the point set changes"
            )
        if moved is None:
            threshold = (
                self.drift_threshold if drift_threshold is None else drift_threshold
            )
            if threshold < 0:
                raise ValueError(
                    f"drift_threshold must be non-negative, got {threshold}"
                )
            deltas = np.sqrt(((X - self._points) ** 2).sum(axis=1))
            moved = np.flatnonzero(deltas > threshold)
        else:
            if drift_threshold is not None:
                raise ValueError(
                    "pass either moved or drift_threshold, not both — an "
                    "explicit moved set is re-routed as given, never "
                    "re-filtered by the drift detector"
                )
            moved = np.asarray(moved)
            if moved.dtype == bool:
                if moved.shape != (self.num_points,):
                    raise ValueError(
                        f"boolean moved mask must have {self.num_points} "
                        f"entries, got {moved.shape}"
                    )
                moved = np.flatnonzero(moved)
            else:
                moved = np.unique(moved.astype(np.int64))
                if moved.size and (
                    moved[0] < 0 or moved[-1] >= self.num_points
                ):
                    raise ValueError("moved ids out of range")
        fraction = moved.size / self.num_points
        limit = self.rebuild_frac if rebuild_frac is None else rebuild_frac
        if not 0.0 < limit <= 1.0:
            raise ValueError(f"rebuild_frac must be in (0, 1], got {limit}")
        if fraction > limit:
            self.build(X, pool=pool)
            return UpdateReport(
                num_points=self.num_points,
                num_moved=int(moved.size),
                moved_fraction=fraction,
                rebuilt=True,
            )

        self._update_count += 1
        self._points = np.array(X, copy=True)
        self._norms = (self._points**2).sum(axis=1)
        splits = 0
        if moved.size:
            if pool is not None and self.num_trees > 1:
                spec = {
                    "leaf_size": self.leaf_size,
                    "seed": self.seed,
                    "overflow_factor": self.overflow_factor,
                    "update_count": self._update_count,
                }
                x_spec = pool.publish(self._points)
                try:
                    rerouted = pool.run_jobs(
                        [
                            ("tree_reroute", spec, x_spec, tree_id, tree, moved)
                            for tree_id, tree in enumerate(self._trees)
                        ]
                    )
                finally:
                    pool.release(x_spec)
                self._trees = [tree for tree, _ in rerouted]
                splits = sum(tree_splits for _, tree_splits in rerouted)
            else:
                queries = self._points[moved]
                for tree_id, tree in enumerate(self._trees):
                    splits += self._reroute(tree, tree_id, moved, queries)
        orphaned = 0
        compacted = 0
        for tree in self._trees:
            orphans = int(tree.num_leaves - self._reachable_leaves(tree).sum())
            if orphans > self.compact_frac * tree.num_leaves:
                compacted += self._compact_leaves(tree)
                orphans = 0
            orphaned += orphans
        return UpdateReport(
            num_points=self.num_points,
            num_moved=int(moved.size),
            moved_fraction=fraction,
            rebuilt=False,
            splits=splits,
            orphaned=orphaned,
            compacted=compacted,
        )

    def _reroute(
        self,
        tree: _Tree,
        tree_id: int,
        moved: np.ndarray,
        queries: np.ndarray,
    ) -> int:
        """Re-descend ``moved`` points in one tree; returns leaves split."""
        start = np.full(moved.size, tree.root, dtype=np.int64)
        new_leaf = self._greedy_descent(tree, queries, start)
        changed = new_leaf != tree.point_leaf[moved]
        if not changed.any():
            return 0
        old_point_leaf = tree.point_leaf.copy()
        tree.point_leaf[moved[changed]] = new_leaf[changed]
        # Lazy subtree rebuild of overflowing leaves: only leaves that just
        # gained points can newly overflow.
        overflow = int(self.leaf_size * self.overflow_factor)
        counts = np.bincount(tree.point_leaf, minlength=tree.num_leaves)
        splits = 0
        for leaf_id in np.unique(new_leaf[changed]):
            if counts[leaf_id] > overflow:
                self._split_leaf(tree, tree_id, int(leaf_id))
                splits += 1
        self._repack_leaves_delta(tree, old_point_leaf)
        return splits

    def _split_leaf(self, tree: _Tree, tree_id: int, leaf_id: int) -> None:
        """Rebuild an overflowing leaf as a subtree spliced into ``tree``.

        The old leaf id is left orphaned (no path reaches it after the
        splice); new leaves are appended, so leaf ids stay stable for every
        other point.
        """
        members = np.flatnonzero(tree.point_leaf == leaf_id)
        rng = np.random.default_rng(
            [self.seed, self._update_count, tree_id, leaf_id]
        )
        sub = self._build_tree(self._points, rng, members=members)
        num_internal = tree.directions.shape[0]
        num_leaves = tree.num_leaves
        # Remap subtree refs into the host arrays: internal nodes shift by
        # the host's internal count, leaves by its leaf count (the negative
        # encoding -(leaf_id + 1) shifts by subtracting).
        children = sub.children.copy()
        children[children >= 0] += num_internal
        children[children < 0] -= num_leaves
        sub_root = (
            sub.root + num_internal if sub.root >= 0 else sub.root - num_leaves
        )
        tree.directions = np.concatenate([tree.directions, sub.directions])
        tree.thresholds = np.concatenate([tree.thresholds, sub.thresholds])
        tree.children = np.concatenate([tree.children, children])
        old_ref = -(leaf_id + 1)
        if tree.root == old_ref:
            tree.root = sub_root
        else:
            where = np.argwhere(tree.children[:num_internal] == old_ref)
            tree.children[where[0, 0], where[0, 1]] = sub_root
        sub_sizes = np.diff(sub.leaf_indptr)
        tree.point_leaf[sub.leaf_items] = num_leaves + np.repeat(
            np.arange(sub_sizes.size, dtype=np.int64), sub_sizes
        )
        # Extend the CSR leaf view with empty slots for the new leaf ids
        # (the caller repacks from point_leaf right after).
        tree.leaf_indptr = np.concatenate(
            [tree.leaf_indptr,
             np.full(sub_sizes.size, tree.leaf_indptr[-1], dtype=np.int64)]
        )
        self._recompute_depth(tree)

    @staticmethod
    def _recompute_depth(tree: _Tree) -> None:
        """Exact max root-to-leaf decision count after a splice.

        Node indices are topologically ordered — a child's index always
        exceeds its parent's, both in the original build (stack order) and
        after splices (subtree nodes are appended) — so one forward pass
        yields every internal node's level.  Keeping the bound exact
        matters: multi-probe queries allocate their recorded-descent
        arrays at ``(chunk, depth)``, so a merely conservative bound would
        inflate every query's work a little more with each split.
        """
        num_internal = tree.directions.shape[0]
        if tree.root < 0 or num_internal == 0:
            tree.depth = 0
            return
        levels = np.zeros(num_internal, dtype=np.int64)
        for node in range(num_internal):
            for child in tree.children[node]:
                if child >= 0:
                    levels[child] = levels[node] + 1
        # The deepest internal node's children are leaves, one level down.
        tree.depth = int(levels.max()) + 1

    @staticmethod
    def _repack_leaves_delta(tree: _Tree, old_point_leaf: np.ndarray) -> None:
        """Delta-edit the CSR leaf view after re-routing (no full sort).

        ``tree.point_leaf`` holds the new assignment; ``old_point_leaf`` is
        the one the standing ``leaf_indptr``/``leaf_items`` packing reflects
        (``_split_leaf`` already extended ``leaf_indptr`` with empty slots
        for appended leaves).  Surviving points keep their relative order —
        their segments shift as a whole — while the ``M`` re-routed points
        are deleted from their old segment and appended to their new one in
        ascending-id order.  O(N + M log M) total, replacing the previous
        full ``argsort(point_leaf)`` repack whose O(N log N) dominated every
        incremental refresh at the 1M tier.
        """
        num_leaves = tree.num_leaves
        changed = np.flatnonzero(tree.point_leaf != old_point_leaf)
        old_counts = np.diff(tree.leaf_indptr)
        removed = np.bincount(old_point_leaf[changed], minlength=num_leaves)
        added_leaves = tree.point_leaf[changed]
        added = np.bincount(added_leaves, minlength=num_leaves)
        kept = old_counts - removed
        new_counts = kept + added
        new_indptr = np.concatenate(([0], np.cumsum(new_counts))).astype(np.int64)
        new_items = np.empty(tree.leaf_items.shape[0], dtype=np.int64)
        stale = np.zeros(tree.point_leaf.shape[0], dtype=bool)
        stale[changed] = True
        kept_items = tree.leaf_items[~stale[tree.leaf_items]]
        kept_starts = np.concatenate(([0], np.cumsum(kept)))[:-1]
        within = np.arange(kept_items.size) - np.repeat(kept_starts, kept)
        new_items[np.repeat(new_indptr[:-1], kept) + within] = kept_items
        order = np.argsort(added_leaves, kind="stable")
        grouped = changed[order]
        add_base = np.concatenate(([0], np.cumsum(added)))
        leaf_of = added_leaves[order]
        new_items[
            new_indptr[leaf_of]
            + kept[leaf_of]
            + (np.arange(grouped.size) - add_base[leaf_of])
        ] = grouped
        tree.leaf_items = new_items
        tree.leaf_indptr = new_indptr
        tree.max_leaf = int(new_counts.max())

    @staticmethod
    def _reachable_leaves(tree: _Tree) -> np.ndarray:
        """Boolean mask of leaf slots some root path still reaches.

        Splices only ever replace a *leaf* ref with a subtree root, so every
        internal node stays reachable and the reachable leaves are exactly
        the negative refs in ``children`` (plus a single-leaf root).
        """
        reachable = np.zeros(tree.num_leaves, dtype=bool)
        refs = tree.children[tree.children < 0]
        reachable[-(refs + 1)] = True
        if tree.root < 0:
            reachable[-(tree.root + 1)] = True
        return reachable

    @staticmethod
    def _compact_leaves(tree: _Tree) -> int:
        """Renumber away orphaned leaf slots; returns slots reclaimed.

        Orphaned slots are always empty: ``_split_leaf`` reassigns every
        member of the leaf it orphans, and re-routing can only reach leaves
        through the split planes.  Dropping their zero-width CSR segments
        therefore leaves ``leaf_items`` (and every query) untouched — only
        ids shift.
        """
        reachable = RPForestIndex._reachable_leaves(tree)
        orphans = int(reachable.size - reachable.sum())
        if orphans == 0:
            return 0
        new_id = np.cumsum(reachable) - 1
        neg = tree.children < 0
        tree.children[neg] = -(new_id[-(tree.children[neg] + 1)] + 1)
        if tree.root < 0:
            tree.root = -(new_id[-(tree.root + 1)] + 1)
        tree.point_leaf = new_id[tree.point_leaf]
        counts = np.diff(tree.leaf_indptr)[reachable]
        tree.leaf_indptr = np.concatenate(
            ([0], np.cumsum(counts))
        ).astype(np.int64)
        return orphans

    # ------------------------------------------------------------------ #
    def _greedy_descent(self, tree: _Tree, Q: np.ndarray, start: np.ndarray) -> np.ndarray:
        """Follow splits greedily from ``start`` nodes; returns leaf ids (-1 for inactive)."""
        cur = start.copy()
        active = cur >= 0
        while active.any():
            nodes = cur[active]
            proj = np.einsum("qd,qd->q", Q[active], tree.directions[nodes])
            side = (proj >= tree.thresholds[nodes]).astype(np.int64)
            cur[active] = tree.children[nodes, side]
            active = cur >= 0
        leaves = -(cur + 1)
        leaves[start == _INACTIVE] = -1
        return leaves

    def _tree_leaves(self, tree: _Tree, Q: np.ndarray, probes: int) -> np.ndarray:
        """Leaf id per (query, probe); -1 where a probe is unavailable."""
        m = Q.shape[0]
        out = np.full((m, probes), -1, dtype=np.int64)
        if tree.root < 0:  # single-leaf tree
            out[:, 0] = -(tree.root + 1)
            return out
        # Recorded descent: path nodes, margins and the side taken per level.
        path_nodes = np.full((m, tree.depth), -1, dtype=np.int64)
        margins = np.full((m, tree.depth), np.inf)
        sides = np.zeros((m, tree.depth), dtype=np.int64)
        cur = np.full(m, tree.root, dtype=np.int64)
        level = 0
        active = cur >= 0
        while active.any():
            nodes = cur[active]
            proj = np.einsum("qd,qd->q", Q[active], tree.directions[nodes])
            thr = tree.thresholds[nodes]
            side = (proj >= thr).astype(np.int64)
            path_nodes[active, level] = nodes
            margins[active, level] = np.abs(proj - thr)
            sides[active, level] = side
            cur[active] = tree.children[nodes, side]
            active = cur >= 0
            level += 1
        out[:, 0] = -(cur + 1)
        if probes == 1:
            return out
        # Probe p flips the p-th smallest-margin decision of the root path
        # and descends greedily below the flip.
        margin_order = np.argsort(margins, axis=1, kind="stable")
        rows = np.arange(m)
        for probe in range(1, probes):
            if probe - 1 >= tree.depth:
                break
            pos = margin_order[:, probe - 1]
            nodes = path_nodes[rows, pos]
            usable = nodes >= 0
            start = np.full(m, _INACTIVE, dtype=np.int64)
            start[usable] = tree.children[
                nodes[usable], 1 - sides[rows[usable], pos[usable]]
            ]
            out[:, probe] = self._greedy_descent(tree, Q, start)
        return out

    # ------------------------------------------------------------------ #
    def query(
        self,
        Q: np.ndarray,
        k: int,
        mask: np.ndarray | None = None,
        probes: int | str | None = None,
    ) -> np.ndarray:
        """Top-``k`` indexed neighbours of each query row.

        Parameters
        ----------
        Q:
            ``(Q, d)`` query vectors (``(d,)`` is promoted to one row).
        k:
            Neighbours requested per query.
        mask:
            Optional ``(N,)`` boolean; only points with ``mask[id]`` True may
            be returned.  This is how the counterfactual search expresses
            its label-consistent, opposite-attribute candidate buckets.
        probes:
            Override the index default; ``"exhaustive"`` ranks every masked
            candidate by brute force (bit-identical to the exact backend).

        Returns
        -------
        ``(Q, k)`` int64 ids into the built matrix, ordered by ascending
        distance (ties → ascending id), right-padded with ``-1`` when fewer
        than ``k`` candidates were found.
        """
        if self._points is None:
            raise RuntimeError("call build() before query()")
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        Q = np.asarray(Q, dtype=np.float64)
        if Q.ndim == 1:
            Q = Q[None, :]
        if Q.ndim != 2 or Q.shape[1] != self._points.shape[1]:
            raise ValueError(
                f"queries must be (Q, {self._points.shape[1]}), got {Q.shape}"
            )
        if mask is not None:
            mask = np.asarray(mask, dtype=bool).reshape(-1)
            if mask.shape[0] != self.num_points:
                raise ValueError(
                    f"mask must have {self.num_points} entries, got {mask.shape[0]}"
                )
        if probes is None:
            probes = self.probes
        if probes == EXHAUSTIVE:
            return self._query_exhaustive(Q, k, mask)
        probes = int(probes)
        if probes < 1:
            raise ValueError(f"probes must be >= 1 or 'exhaustive', got {probes}")

        out = np.full((Q.shape[0], k), -1, dtype=np.int64)
        for start in range(0, Q.shape[0], self.chunk_size):
            chunk = slice(start, start + self.chunk_size)
            out[chunk] = self._query_chunk(Q[chunk], k, mask, probes)
        return out

    def _query_exhaustive(
        self, Q: np.ndarray, k: int, mask: np.ndarray | None
    ) -> np.ndarray:
        candidate_ids = (
            np.flatnonzero(mask) if mask is not None
            else np.arange(self.num_points, dtype=np.int64)
        )
        out = np.full((Q.shape[0], k), -1, dtype=np.int64)
        if candidate_ids.size == 0:
            return out
        found = exact_topk(self._points, Q, candidate_ids, k)
        out[:, : found.shape[1]] = found
        return out

    def _query_chunk(
        self, Q: np.ndarray, k: int, mask: np.ndarray | None, probes: int
    ) -> np.ndarray:
        m = Q.shape[0]
        width = sum(tree.max_leaf for tree in self._trees) * probes
        cands = np.full((m, width), -1, dtype=np.int64)
        col = 0
        rows_all = np.arange(m)
        for tree in self._trees:
            leaves = self._tree_leaves(tree, Q, probes)
            for probe in range(probes):
                leaf = leaves[:, probe]
                ok = leaf >= 0
                lengths = np.zeros(m, dtype=np.int64)
                lengths[ok] = (
                    tree.leaf_indptr[leaf[ok] + 1] - tree.leaf_indptr[leaf[ok]]
                )
                total = int(lengths.sum())
                if total:
                    rows = np.repeat(rows_all, lengths)
                    row_starts = np.concatenate(([0], np.cumsum(lengths)))[:-1]
                    within = np.arange(total) - np.repeat(row_starts, lengths)
                    starts = np.repeat(tree.leaf_indptr[np.maximum(leaf, 0)], lengths)
                    cands[rows, col + within] = tree.leaf_items[starts + within]
                col += tree.max_leaf
        # Dedupe across trees/probes: sort ids per row (pads sort first) and
        # blank repeats so a point can enter the ranking only once.
        cands.sort(axis=1)
        cands[:, 1:][cands[:, 1:] == cands[:, :-1]] = -1

        safe = np.maximum(cands, 0)
        dots = np.einsum("qd,qwd->qw", Q, self._points[safe])
        dist = (Q**2).sum(axis=1)[:, None] - 2.0 * dots + self._norms[safe]
        invalid = cands < 0
        if mask is not None:
            invalid |= ~mask[safe]
        dist[invalid] = np.inf
        # Stable sort on distance after the ascending-id sort above breaks
        # distance ties by ascending id — deterministic output.
        order = np.argsort(dist, axis=1, kind="stable")[:, :k]
        picked = np.take_along_axis(cands, order, axis=1)
        picked[~np.isfinite(np.take_along_axis(dist, order, axis=1))] = -1
        if picked.shape[1] < k:
            picked = np.concatenate(
                [picked, np.full((m, k - picked.shape[1]), -1, dtype=np.int64)],
                axis=1,
            )
        return picked


_INACTIVE = np.iinfo(np.int64).min  # "no start node" marker for greedy descent


# --------------------------------------------------------------------- #
# Counterfactual-search backends
# --------------------------------------------------------------------- #
def execute_tree_task(task, X: np.ndarray):
    """Run one forest pool task against an attached point matrix.

    Called by :mod:`repro.training.parallel` workers (and by the
    in-process crash fallback, where ``X`` is the main-process view and
    ``tree`` the live object — the in-place mutation then matches the
    worker path's mutate-a-pickled-copy result exactly).

    ``"tree_build"`` returns one :class:`_Tree` built with the per-tree
    generator ``default_rng([seed, tree_id])`` — exactly the serial
    :meth:`RPForestIndex.build` draw.  ``"tree_reroute"`` re-descends the
    moved points through one tree and returns ``(tree, splits)``; subtree
    splits seed from ``(seed, update_count, tree_id, leaf_id)`` exactly as
    the serial :meth:`RPForestIndex.update` does.
    """
    kind = task[0]
    if kind == "tree_build":
        _, spec, _x_spec, tree_id = task
        index = RPForestIndex(leaf_size=spec["leaf_size"], seed=spec["seed"])
        return index._build_tree(
            X, np.random.default_rng([spec["seed"], tree_id])
        )
    if kind == "tree_reroute":
        _, spec, _x_spec, tree_id, tree, moved = task
        index = RPForestIndex(
            leaf_size=spec["leaf_size"],
            seed=spec["seed"],
            overflow_factor=spec["overflow_factor"],
        )
        index._points = np.asarray(X, dtype=np.float64)
        index._update_count = spec["update_count"]
        splits = index._reroute(tree, tree_id, moved, index._points[moved])
        return tree, splits
    raise ValueError(f"unknown forest task kind {kind!r}")


class ExactBackend:
    """Brute-force oracle backend (the original O(N²) scan)."""

    name = "exact"

    def __init__(self) -> None:
        self._points: np.ndarray | None = None

    def prepare(self, points: np.ndarray) -> None:
        """Stash the representation matrix for this search pass."""
        self._points = np.asarray(points, dtype=np.float64)

    def topk(
        self, query_ids: np.ndarray, candidate_ids: np.ndarray, k: int
    ) -> np.ndarray:
        """Exact top-``k`` candidate ids per query node (no padding)."""
        if self._points is None:
            raise RuntimeError("call prepare() before topk()")
        return exact_topk(
            self._points, self._points[query_ids], candidate_ids, k
        )


class AnnBackend:
    """Approximate backend over a :class:`RPForestIndex`.

    ``exhaustive=True`` keeps the index but routes every query through
    brute-force ranking — the bridge used to prove the ANN plumbing exact.

    ``update`` selects the refresh policy of :meth:`prepare`:
    ``"rebuild"`` (default) reconstructs the forest from scratch every
    call; ``"incremental"`` applies :meth:`RPForestIndex.update` instead —
    re-routing only drifted points per ``drift_threshold``, escaping to a
    full rebuild past ``rebuild_frac`` — whenever a forest over the same
    point-set shape is already standing.  ``last_report`` carries the most
    recent :class:`UpdateReport` (None after a from-scratch build).
    """

    name = "ann"

    def __init__(
        self,
        num_trees: int = 8,
        leaf_size: int = 32,
        probes: int = 2,
        seed: int = 0,
        chunk_size: int = 512,
        exhaustive: bool = False,
        update: str = "rebuild",
        drift_threshold: float = 0.0,
        rebuild_frac: float = 0.5,
        overflow_factor: float = 4.0,
        compact_frac: float = 0.25,
    ) -> None:
        if update not in ("rebuild", "incremental"):
            raise ValueError(
                f"update must be 'rebuild' or 'incremental', got {update!r}"
            )
        self._index = RPForestIndex(
            num_trees=num_trees,
            leaf_size=leaf_size,
            probes=probes,
            seed=seed,
            chunk_size=chunk_size,
            drift_threshold=drift_threshold,
            rebuild_frac=rebuild_frac,
            overflow_factor=overflow_factor,
            compact_frac=compact_frac,
        )
        self.exhaustive = exhaustive
        self.update_mode = update
        self.last_report: UpdateReport | None = None
        # Runtime-only attachment (never part of backend options, which
        # must stay JSON-serializable for artifact manifests): a
        # WorkerPool set by the trainer shards build/update by tree.
        self.pool = None

    @property
    def index(self) -> RPForestIndex:
        """The underlying forest (refreshed on every :meth:`prepare`)."""
        return self._index

    def prepare(self, points: np.ndarray) -> None:
        """Refresh the forest over the current representations."""
        points = np.asarray(points, dtype=np.float64)
        if (
            self.update_mode == "incremental"
            and self._index.num_points
            and self._index.points.shape == points.shape
        ):
            self.last_report = self._index.update(points, pool=self.pool)
        else:
            self._index.build(points, pool=self.pool)
            self.last_report = None

    def topk(
        self, query_ids: np.ndarray, candidate_ids: np.ndarray, k: int
    ) -> np.ndarray:
        """Approximate top-``k`` (``-1``-padded) candidate ids per query node."""
        mask = np.zeros(self._index.num_points, dtype=bool)
        mask[candidate_ids] = True
        return self._index.query(
            self._index.points[query_ids],
            k,
            mask=mask,
            probes=EXHAUSTIVE if self.exhaustive else None,
        )


def make_backend(spec, **options):
    """Resolve a backend spec: ``"exact"``, ``"ann"`` or a strategy object."""
    if isinstance(spec, str):
        key = spec.lower()
        if key == "exact":
            if options:
                raise ValueError(
                    f"the exact backend takes no options, got {sorted(options)}"
                )
            return ExactBackend()
        if key == "ann":
            return AnnBackend(**options)
        raise ValueError(f"unknown backend {spec!r}; choose 'exact' or 'ann'")
    if hasattr(spec, "prepare") and hasattr(spec, "topk"):
        if options:
            raise ValueError("backend options only apply to string specs")
        return spec
    raise TypeError(
        f"backend must be 'exact', 'ann' or a prepare/topk object, got {spec!r}"
    )
