"""Counterfactual-fairness evaluation of a trained model.

Group metrics (ΔSP/ΔEO) measure statistical fairness; this module measures
the *counterfactual* notion the paper optimises: does a node receive the
same prediction as its graph-counterfactual twins — real nodes with the same
label but the opposite value of a pseudo-sensitive attribute?

For each pseudo-sensitive attribute ``i`` the **flip rate** is the fraction
of nodes whose hard prediction differs from their nearest counterfactual's.
A perfectly counterfactually-fair model has flip rate 0 everywhere; the
per-attribute profile shows which attributes still causally influence the
decision (compare with the learned λ).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.counterfactual import CounterfactualSearch
from repro.core.encoder import binarize_attributes
from repro.fairness.metrics import counterfactual_flip_rate

__all__ = ["CounterfactualFairnessReport", "evaluate_counterfactual_fairness"]


@dataclass
class CounterfactualFairnessReport:
    """Per-attribute and aggregate counterfactual flip rates.

    Attributes
    ----------
    flip_rates:
        ``(I,)`` flip rate per pseudo-sensitive attribute (NaN where the
        attribute had no valid counterfactuals).
    coverage:
        Fraction of (attribute, node) pairs with a valid counterfactual.
    overall:
        Mean flip rate over covered attributes.
    """

    flip_rates: np.ndarray
    coverage: float
    overall: float

    def render(self) -> str:
        """Human-readable report."""
        lines = [
            "Counterfactual fairness (flip rate vs nearest real counterfactual)",
            f"  coverage {self.coverage:.0%}, overall flip rate {self.overall:.3f}",
        ]
        for i, rate in enumerate(self.flip_rates):
            if np.isnan(rate):
                lines.append(f"  x0_{i:<3d} no counterfactuals")
            else:
                bar = "#" * int(round(30 * rate))
                lines.append(f"  x0_{i:<3d} {rate:.3f} {bar}")
        return "\n".join(lines)


def evaluate_counterfactual_fairness(
    logits: np.ndarray,
    representations: np.ndarray,
    pseudo_attributes: np.ndarray,
    labels: np.ndarray,
    top_k: int = 1,
    binarize_quantile: float = 0.5,
    mask: np.ndarray | None = None,
) -> CounterfactualFairnessReport:
    """Measure prediction flips against top-1 real counterfactual twins.

    Parameters
    ----------
    logits:
        ``(N,)`` model scores; hard prediction is ``logit > 0``.
    representations:
        ``(N, d)`` embeddings used for the nearest-twin search.
    pseudo_attributes:
        ``(N, I)`` continuous pseudo-sensitive attributes (binarised here).
    labels:
        ``(N,)`` labels used to constrain the search (predictions may be
        passed for unlabelled nodes, mirroring the trainer).
    top_k:
        Twins per node to compare against (flip if *any* twin disagrees).
    binarize_quantile:
        Threshold quantile for the attribute binarisation.
    mask:
        Optional node subset on which flips are counted (e.g. test mask);
        the search itself always uses all nodes.
    """
    logits = np.asarray(logits, dtype=np.float64)
    predictions = (logits > 0).astype(np.int64)
    binary = binarize_attributes(pseudo_attributes, binarize_quantile)
    index = CounterfactualSearch(top_k=top_k).search(
        representations, labels, binary
    )
    node_filter = (
        np.asarray(mask, dtype=bool)
        if mask is not None
        else np.ones(len(logits), dtype=bool)
    )

    num_attrs = index.num_attributes
    flip_rates = np.full(num_attrs, np.nan)
    for attr in range(num_attrs):
        valid = index.valid[attr] & node_filter
        if not valid.any():
            continue
        flipped = np.zeros(int(valid.sum()), dtype=np.int64)
        base = predictions[valid]
        for k in range(index.top_k):
            twin_preds = predictions[index.indices[attr, valid, k]]
            flipped |= (twin_preds != base).astype(np.int64)
        flip_rates[attr] = counterfactual_flip_rate(
            np.zeros_like(flipped), flipped
        )
    covered = ~np.isnan(flip_rates)
    overall = float(flip_rates[covered].mean()) if covered.any() else float("nan")
    return CounterfactualFairnessReport(
        flip_rates=flip_rates,
        coverage=index.coverage(),
        overall=overall,
    )
