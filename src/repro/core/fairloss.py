"""Fair representation learning loss (Section III-E).

Given representations ``h`` and a counterfactual index, the regulariser pulls
every node's embedding towards the embeddings of its top-K counterfactuals:

.. math::

    D_i = \\frac{1}{N} Σ_v Σ_{k=1}^{K} ||h_v − h^k_{i,v}||_2^2
    \\qquad
    L_F = Σ_i λ_i · D_i

(Eq. 13–14; distances are squared L2, matching Eq. 33 of the convergence
analysis).  The per-attribute disparities ``D_i`` are also returned as
detached numpy values — they feed the λ update (Eq. 24).

Two implementations coexist:

* :func:`fair_representation_loss` / :func:`fair_representation_loss_minibatch`
  are **fused**: one constant CSR gather-sum over all ``(I·K, N)``
  counterfactual pairs, one squared-distance expansion
  (``n_v + n_cf − 2 h_v·h_cf``) and one masked per-attribute mean — a fixed
  handful of tensor ops regardless of I and K, which is what the fine-tune
  phase's wall-time scales with (≥5x over the loop at I=8, K=10, N=5000;
  see ``benchmarks/bench_fairloss.py``).
* :func:`fair_representation_loss_reference` /
  :func:`fair_representation_loss_minibatch_reference` are the original
  ``I × K`` python loops, kept as the oracle the hypothesis parity harness
  checks the fused path against (value and gradient to 1e-9).
"""

from __future__ import annotations

import weakref

import numpy as np
import scipy.sparse as sp

from repro.core.counterfactual import CounterfactualIndex
from repro.tensor import Tensor
from repro.tensor import ops
from repro.tensor.backend import get_backend
from repro.tensor.dtype import get_default_dtype

__all__ = [
    "fair_representation_loss",
    "fair_representation_loss_minibatch",
    "fair_representation_loss_reference",
    "fair_representation_loss_minibatch_reference",
]


def _check_weights(weights, num_attrs: int) -> np.ndarray:
    weights = np.asarray(weights, dtype=np.float64).reshape(-1)
    if weights.shape != (num_attrs,):
        raise ValueError(f"expected {num_attrs} weights, got shape {weights.shape}")
    return weights


def _masked_mean_scale(valid: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-attribute valid counts and the zero-safe ``valid / count`` scale.

    Attributes without a single valid (node, counterfactual) pair get an
    all-zero scale row, so they contribute exactly zero value *and* zero
    gradient — matching the reference loop's ``continue``.
    """
    counts = valid.sum(axis=1)
    inverse = np.divide(
        1.0, counts, out=np.zeros_like(counts), where=counts > 0
    )
    return counts, valid * inverse[:, None]


# Selection-CSR cache for the fused pair-disparity kernel.  Keyed by the
# identity of the ``indices`` array (validated through a weakref — ids are
# recycled after GC): the full-batch fine-tune passes the same
# ``CounterfactualIndex.indices`` array every epoch between refreshes, so the
# O(M·B·K) CSR construction and its per-dtype backend preparation happen once
# per refresh instead of once per step.  Refreshes build a fresh index object
# (fresh arrays), which simply misses the cache.  Bounded FIFO.
_GATHER_CSR_CACHE: dict[int, tuple] = {}
_GATHER_CSR_CACHE_MAX = 8


def _gather_csr_handle(indices: np.ndarray, num_rows: int, dtype) -> object:
    """Backend spmm handle for the ``(M·B, N)`` gather-sum selection CSR."""
    backend = get_backend()
    variant = (backend.name, np.dtype(dtype).name, num_rows)
    key = id(indices)
    entry = _GATHER_CSR_CACHE.get(key)
    if entry is not None and entry[0]() is indices:
        base, variants = entry[1], entry[2]
    else:
        if entry is not None:
            del _GATHER_CSR_CACHE[key]
        for stale_key in [k for k, e in _GATHER_CSR_CACHE.items() if e[0]() is None]:
            del _GATHER_CSR_CACHE[stale_key]
        while len(_GATHER_CSR_CACHE) >= _GATHER_CSR_CACHE_MAX:
            del _GATHER_CSR_CACHE[next(iter(_GATHER_CSR_CACHE))]
        top_k = indices.shape[-1]
        base = sp.csr_matrix(
            (
                np.ones(indices.size),
                indices.reshape(-1),
                np.arange(0, indices.size + 1, top_k),
            ),
            shape=(indices.size // top_k, num_rows),
        )
        variants = {}
        _GATHER_CSR_CACHE[key] = (weakref.ref(indices), base, variants)
    handle = variants.get(variant)
    if handle is None:
        handle = backend.prepare_spmm(base, np.dtype(dtype))
        variants[variant] = handle
    return handle


def _fused_pair_disparities(
    representations: Tensor,
    indices: np.ndarray,
    anchor_rows: np.ndarray,
    scale: np.ndarray,
) -> Tensor:
    """Per-attribute masked sums of top-K squared distances, fused.

    ``indices`` is an ``(M, B, K)`` array of *local* rows into
    ``representations``; ``anchor_rows`` the ``(B,)`` local rows of the
    anchors; ``scale`` the constant ``(M, B)`` mask (``valid / count``).
    Returns the ``(M,)`` tensor ``D_m = Σ_v scale[m, v] Σ_k ||h_v − h_cf||²``.

    Instead of materialising the ``(M, B, K, d)`` difference tensor, the
    squared distances are expanded as ``n_v + n_cf − 2 h_v·h_cf`` with
    ``n = ||h||²`` row norms, and the over-K sums ``Σ_k n_cf`` /
    ``Σ_k h_cf`` are taken by one constant CSR gather-sum matrix (cached
    across steps, see :func:`_gather_csr_handle`) — every intermediate is
    O(M·B·K + M·B·d) and the whole loss is a fixed handful of array kernels
    regardless of M and K.

    The entire chain is ONE graph node with an analytic adjoint: the
    previous composed form built 13 op nodes per call, whose backward
    round-tripped a ``gather`` → ``_scatter_rows`` pair and materialised a
    gradient buffer per edge (including full reductions for constant
    parents).  Value and gradient are bit-identical to the composed graph
    (same float ops, same accumulation association; pinned by the
    test-suite against :func:`_composed_pair_disparities`).
    """
    backend = get_backend()
    xp = backend.xp
    h = representations.data
    num_pairs, batch, top_k = indices.shape
    handle = _gather_csr_handle(
        indices, representations.shape[0], backend.np_dtype(h)
    )
    tiled_anchor = np.tile(anchor_rows, num_pairs)

    default = get_default_dtype()
    k_arr = backend.asarray(float(top_k), dtype=default)
    two_arr = backend.asarray(2.0, dtype=default)
    sc_arr = backend.asarray(scale.reshape(-1), dtype=default)

    norms = xp.sum(h * h, axis=1)  # (N,)
    cf_sum = backend.spmm_apply(handle, h)  # (M·B, d) = Σ_k h_cf
    cf_norm_sum = backend.spmm_apply(handle, norms.reshape(-1, 1)).reshape(-1)
    anchor_h = h[tiled_anchor]
    anchor_n = norms[tiled_anchor]
    cross = xp.sum(cf_sum * anchor_h, axis=1)  # Σ_k h_v·h_cf
    sq_sums = (anchor_n * k_arr - cross * two_arr) + cf_norm_sum
    value = xp.sum((sq_sums * sc_arr).reshape(num_pairs, batch), axis=1)

    def backward(grad):
        # Mirrors the composed graph's reverse-topological order exactly —
        # contribution and association order are pinned bit-identical.
        g = xp.expand_dims(xp.asarray(grad), (1,))
        gsq = backend.copy(xp.broadcast_to(g, (num_pairs, batch)))
        gsq = gsq.reshape(num_pairs * batch) * sc_arr
        # norms ← anchor gather, rep ← spmm + anchor gather.
        g_norms = backend.scatter_rows(tiled_anchor, gsq * k_arr, norms.shape)
        gs1 = xp.expand_dims(xp.asarray((-gsq) * two_arr), (1,))
        gm2 = backend.copy(xp.broadcast_to(gs1, cf_sum.shape))
        g_rep = backend.spmm_adjoint(handle, gm2 * anchor_h)
        g_rep = g_rep + backend.scatter_rows(
            tiled_anchor, gm2 * cf_sum, h.shape
        )
        # norms ← cf_norm_sum spmm; rep ← the two h·h product terms.
        g_norms = g_norms + backend.spmm_adjoint(
            handle, gsq.reshape(-1, 1)
        ).reshape(norms.shape)
        gm1 = backend.copy(
            xp.broadcast_to(xp.expand_dims(xp.asarray(g_norms), (1,)), h.shape)
        )
        term = gm1 * h
        g_rep = (g_rep + term) + term
        return (g_rep,)

    return Tensor.from_op(value, (representations,), backward)


def _composed_pair_disparities(
    representations: Tensor,
    indices: np.ndarray,
    anchor_rows: np.ndarray,
    scale: np.ndarray,
) -> Tensor:
    """Composed-op form of :func:`_fused_pair_disparities` — the oracle the
    fused kernel is pinned bit-identical to (value and gradient)."""
    num_pairs, batch, top_k = indices.shape
    gather_sum = sp.csr_matrix(
        (
            np.ones(indices.size),
            indices.reshape(-1),
            np.arange(0, indices.size + 1, top_k),
        ),
        shape=(num_pairs * batch, representations.shape[0]),
    )
    tiled_anchor = np.tile(anchor_rows, num_pairs)
    norms = ops.sum(ops.mul(representations, representations), axis=1)
    cf_sum = ops.spmm(gather_sum, representations)  # (M·B, d) = Σ_k h_cf
    cf_norm_sum = ops.reshape(
        ops.spmm(gather_sum, ops.reshape(norms, (-1, 1))), (-1,)
    )  # (M·B,) = Σ_k n_cf
    anchor_h = ops.gather(representations, tiled_anchor)
    anchor_n = ops.gather(norms, tiled_anchor)
    cross = ops.sum(ops.mul(cf_sum, anchor_h), axis=1)  # Σ_k h_v·h_cf
    sq_sums = ops.add(
        ops.sub(ops.mul(anchor_n, float(top_k)), ops.mul(cross, 2.0)),
        cf_norm_sum,
    )
    masked = ops.mul(sq_sums, Tensor(scale.reshape(-1)))
    return ops.sum(ops.reshape(masked, (num_pairs, batch)), axis=1)


def fair_representation_loss(
    representations: Tensor,
    counterfactuals: CounterfactualIndex,
    weights: np.ndarray,
) -> tuple[Tensor, np.ndarray]:
    """Compute the weighted counterfactual-consistency loss (fused).

    Parameters
    ----------
    representations:
        ``(N, d)`` tensor ``h`` from the GNN classifier (gradients flow).
    counterfactuals:
        Index from :class:`~repro.core.counterfactual.CounterfactualSearch`.
    weights:
        ``(I,)`` simplex weights λ.

    Returns
    -------
    (loss, disparities):
        Scalar loss tensor ``Σ_i λ_i D_i`` and the detached ``(I,)`` array of
        per-attribute disparities ``D_i`` (sum over K of the masked mean
        squared distance).  Invalid (node, attribute) pairs — those without a
        real counterfactual — contribute zero.
    """
    num_attrs, num_nodes, top_k = counterfactuals.indices.shape
    weights = _check_weights(weights, num_attrs)
    if representations.shape[0] != num_nodes:
        raise ValueError(
            f"representations rows {representations.shape[0]} != index nodes {num_nodes}"
        )
    if num_attrs == 0:
        return Tensor(np.zeros(())), np.zeros(0)

    valid = counterfactuals.valid.astype(np.float64)
    _, scale = _masked_mean_scale(valid)
    disparity_t = _fused_pair_disparities(
        representations,
        counterfactuals.indices,
        np.arange(num_nodes, dtype=np.int64),
        scale,
    )
    loss = ops.sum(ops.mul(disparity_t, Tensor(weights)))
    return loss, get_backend().to_numpy(disparity_t.data).copy()


def fair_representation_loss_minibatch(
    representations: Tensor,
    counterfactuals: CounterfactualIndex,
    weights: np.ndarray,
    batch_nodes: np.ndarray,
    seed_nodes: np.ndarray,
    attrs: np.ndarray | None = None,
) -> tuple[Tensor, np.ndarray, np.ndarray]:
    """Batch estimate of :func:`fair_representation_loss` (fused).

    The sampled fine-tune phase computes representations only for the union
    of a seed batch and its counterfactual targets; this function evaluates
    the same masked, per-attribute disparity on that local slice.  With
    ``batch_nodes`` covering every node (and ``seed_nodes`` likewise) it is
    numerically identical to the full-batch loss.

    Parameters
    ----------
    representations:
        ``(S, d)`` tensor; row ``j`` is the representation of node
        ``seed_nodes[j]`` (gradients flow into both sides of every pair).
    counterfactuals:
        Full-graph index; only the ``batch_nodes`` rows are read.
    weights:
        ``(I,)`` simplex weights λ.
    batch_nodes:
        Global ids of the seed batch (must be a subset of ``seed_nodes``).
    seed_nodes:
        Sorted unique global ids the representation rows correspond to.
        Must contain every valid counterfactual target of ``batch_nodes``
        (for the attributes actually evaluated).
    attrs:
        Optional subset of attribute indices to evaluate (the trainer's
        ``cf_attrs_per_step`` subsampling); unevaluated attributes report
        zero disparity and zero valid count.  ``None`` evaluates all.

    Returns
    -------
    (loss, disparities, valid_counts):
        Scalar loss ``Σ_i λ_i D̂_i``; the detached ``(I,)`` batch disparities
        ``D̂_i`` (mean over the batch's *valid* nodes of the summed top-K
        squared distances — invalid pairs contribute zero value and zero
        gradient); and the ``(I,)`` count of valid batch nodes per attribute
        so callers can aggregate batch disparities into the epoch-level
        ``D_i`` with the correct weighting.
    """
    num_attrs, _, top_k = counterfactuals.indices.shape
    weights = _check_weights(weights, num_attrs)
    seed_nodes = np.asarray(seed_nodes, dtype=np.int64).reshape(-1)
    batch_nodes = np.asarray(batch_nodes, dtype=np.int64).reshape(-1)
    if representations.shape[0] != seed_nodes.shape[0]:
        raise ValueError(
            f"representations rows {representations.shape[0]} != "
            f"seed nodes {seed_nodes.shape[0]}"
        )

    def local(ids: np.ndarray) -> np.ndarray:
        pos = np.searchsorted(seed_nodes, ids)
        pos = np.minimum(pos, seed_nodes.size - 1)
        if not np.array_equal(seed_nodes[pos], ids):
            raise ValueError("node ids missing from seed_nodes")
        return pos

    disparities = np.zeros(num_attrs)
    valid_counts = np.zeros(num_attrs)
    attr_list = (
        np.arange(num_attrs)
        if attrs is None
        else np.asarray(attrs, dtype=np.int64).reshape(-1)
    )
    if attr_list.size == 0 or batch_nodes.size == 0:
        return Tensor(np.zeros(())), disparities, valid_counts

    sub = np.ix_(attr_list, batch_nodes)
    valid = counterfactuals.valid[sub].astype(np.float64)  # (M, B)
    counts, scale = _masked_mean_scale(valid)
    # Invalid rows self-point, so their target is the batch node itself
    # (always present in seed_nodes); the scale then zeroes both their value
    # and their gradient.  One vectorized id translation covers every
    # (attribute, node, k) pair at once.
    local_idx = local(counterfactuals.indices[sub].reshape(-1)).reshape(
        (attr_list.size, batch_nodes.size, top_k)
    )
    disparity_t = _fused_pair_disparities(
        representations, local_idx, local(batch_nodes), scale
    )
    loss = ops.sum(ops.mul(disparity_t, Tensor(weights[attr_list])))
    disparities[attr_list] = get_backend().to_numpy(disparity_t.data)
    valid_counts[attr_list] = counts
    return loss, disparities, valid_counts


# --------------------------------------------------------------------- #
# reference (loop) oracles
# --------------------------------------------------------------------- #
def fair_representation_loss_reference(
    representations: Tensor,
    counterfactuals: CounterfactualIndex,
    weights: np.ndarray,
) -> tuple[Tensor, np.ndarray]:
    """Original ``I × K`` loop implementation of
    :func:`fair_representation_loss` — the parity harness's oracle."""
    num_attrs, num_nodes, top_k = counterfactuals.indices.shape
    weights = _check_weights(weights, num_attrs)
    if representations.shape[0] != num_nodes:
        raise ValueError(
            f"representations rows {representations.shape[0]} != index nodes {num_nodes}"
        )

    disparities = np.zeros(num_attrs)
    loss: Tensor | None = None
    for attr in range(num_attrs):
        valid_mask = counterfactuals.valid[attr].astype(np.float64)
        valid_count = float(valid_mask.sum())
        if valid_count == 0:
            continue
        attr_term: Tensor | None = None
        for k in range(top_k):
            cf_rows = ops.gather(representations, counterfactuals.indices[attr, :, k])
            sq_dist = ops.sum(
                ops.power(ops.sub(representations, cf_rows), 2.0), axis=1
            )
            masked = ops.mul(sq_dist, Tensor(valid_mask))
            term = ops.div(ops.sum(masked), valid_count)
            attr_term = term if attr_term is None else ops.add(attr_term, term)
        disparities[attr] = float(attr_term.data)
        if weights[attr] != 0.0:
            weighted = ops.mul(attr_term, float(weights[attr]))
            loss = weighted if loss is None else ops.add(loss, weighted)
    if loss is None:
        loss = Tensor(np.zeros(()))
    return loss, disparities


def fair_representation_loss_minibatch_reference(
    representations: Tensor,
    counterfactuals: CounterfactualIndex,
    weights: np.ndarray,
    batch_nodes: np.ndarray,
    seed_nodes: np.ndarray,
    attrs: np.ndarray | None = None,
) -> tuple[Tensor, np.ndarray, np.ndarray]:
    """Original loop implementation of
    :func:`fair_representation_loss_minibatch` — the parity oracle."""
    num_attrs, _, top_k = counterfactuals.indices.shape
    weights = _check_weights(weights, num_attrs)
    seed_nodes = np.asarray(seed_nodes, dtype=np.int64).reshape(-1)
    batch_nodes = np.asarray(batch_nodes, dtype=np.int64).reshape(-1)
    if representations.shape[0] != seed_nodes.shape[0]:
        raise ValueError(
            f"representations rows {representations.shape[0]} != "
            f"seed nodes {seed_nodes.shape[0]}"
        )

    def local(ids: np.ndarray) -> np.ndarray:
        pos = np.searchsorted(seed_nodes, ids)
        pos = np.minimum(pos, seed_nodes.size - 1)
        if not np.array_equal(seed_nodes[pos], ids):
            raise ValueError("node ids missing from seed_nodes")
        return pos

    batch_local = local(batch_nodes)
    h_batch = ops.gather(representations, batch_local)
    disparities = np.zeros(num_attrs)
    valid_counts = np.zeros(num_attrs)
    loss: Tensor | None = None
    attr_list = (
        range(num_attrs)
        if attrs is None
        else np.asarray(attrs, dtype=np.int64).reshape(-1)
    )
    for attr in attr_list:
        valid_mask = counterfactuals.valid[attr, batch_nodes].astype(np.float64)
        valid_count = float(valid_mask.sum())
        valid_counts[attr] = valid_count
        if valid_count == 0:
            continue
        attr_term: Tensor | None = None
        for k in range(top_k):
            cf_rows = ops.gather(
                representations, local(counterfactuals.indices[attr, batch_nodes, k])
            )
            sq_dist = ops.sum(ops.power(ops.sub(h_batch, cf_rows), 2.0), axis=1)
            masked = ops.mul(sq_dist, Tensor(valid_mask))
            term = ops.div(ops.sum(masked), valid_count)
            attr_term = term if attr_term is None else ops.add(attr_term, term)
        disparities[attr] = float(attr_term.data)
        if weights[attr] != 0.0:
            weighted = ops.mul(attr_term, float(weights[attr]))
            loss = weighted if loss is None else ops.add(loss, weighted)
    if loss is None:
        loss = Tensor(np.zeros(()))
    return loss, disparities, valid_counts
