"""Fair representation learning loss (Section III-E).

Given representations ``h`` and a counterfactual index, the regulariser pulls
every node's embedding towards the embeddings of its top-K counterfactuals:

.. math::

    D_i = \\frac{1}{N} Σ_v Σ_{k=1}^{K} ||h_v − h^k_{i,v}||_2^2
    \\qquad
    L_F = Σ_i λ_i · D_i

(Eq. 13–14; distances are squared L2, matching Eq. 33 of the convergence
analysis).  The per-attribute disparities ``D_i`` are also returned as
detached numpy values — they feed the λ update (Eq. 24).
"""

from __future__ import annotations

import numpy as np

from repro.core.counterfactual import CounterfactualIndex
from repro.tensor import Tensor
from repro.tensor import ops

__all__ = ["fair_representation_loss", "fair_representation_loss_minibatch"]


def fair_representation_loss(
    representations: Tensor,
    counterfactuals: CounterfactualIndex,
    weights: np.ndarray,
) -> tuple[Tensor, np.ndarray]:
    """Compute the weighted counterfactual-consistency loss.

    Parameters
    ----------
    representations:
        ``(N, d)`` tensor ``h`` from the GNN classifier (gradients flow).
    counterfactuals:
        Index from :class:`~repro.core.counterfactual.CounterfactualSearch`.
    weights:
        ``(I,)`` simplex weights λ.

    Returns
    -------
    (loss, disparities):
        Scalar loss tensor ``Σ_i λ_i D_i`` and the detached ``(I,)`` array of
        per-attribute disparities ``D_i`` (sum over K of the masked mean
        squared distance).  Invalid (node, attribute) pairs — those without a
        real counterfactual — contribute zero.
    """
    weights = np.asarray(weights, dtype=np.float64).reshape(-1)
    num_attrs, num_nodes, top_k = counterfactuals.indices.shape
    if weights.shape != (num_attrs,):
        raise ValueError(
            f"expected {num_attrs} weights, got shape {weights.shape}"
        )
    if representations.shape[0] != num_nodes:
        raise ValueError(
            f"representations rows {representations.shape[0]} != index nodes {num_nodes}"
        )

    disparities = np.zeros(num_attrs)
    loss: Tensor | None = None
    for attr in range(num_attrs):
        valid_mask = counterfactuals.valid[attr].astype(np.float64)
        valid_count = float(valid_mask.sum())
        if valid_count == 0:
            continue
        attr_term: Tensor | None = None
        for k in range(top_k):
            cf_rows = ops.gather(representations, counterfactuals.indices[attr, :, k])
            sq_dist = ops.sum(
                ops.power(ops.sub(representations, cf_rows), 2.0), axis=1
            )
            masked = ops.mul(sq_dist, Tensor(valid_mask))
            term = ops.div(ops.sum(masked), valid_count)
            attr_term = term if attr_term is None else ops.add(attr_term, term)
        disparities[attr] = float(attr_term.data)
        if weights[attr] != 0.0:
            weighted = ops.mul(attr_term, float(weights[attr]))
            loss = weighted if loss is None else ops.add(loss, weighted)
    if loss is None:
        loss = Tensor(np.zeros(()))
    return loss, disparities


def fair_representation_loss_minibatch(
    representations: Tensor,
    counterfactuals: CounterfactualIndex,
    weights: np.ndarray,
    batch_nodes: np.ndarray,
    seed_nodes: np.ndarray,
    attrs: np.ndarray | None = None,
) -> tuple[Tensor, np.ndarray, np.ndarray]:
    """Batch estimate of :func:`fair_representation_loss`.

    The sampled fine-tune phase computes representations only for the union
    of a seed batch and its counterfactual targets; this function evaluates
    the same masked, per-attribute disparity on that local slice.  With
    ``batch_nodes`` covering every node (and ``seed_nodes`` likewise) it is
    numerically identical to the full-batch loss.

    Parameters
    ----------
    representations:
        ``(S, d)`` tensor; row ``j`` is the representation of node
        ``seed_nodes[j]`` (gradients flow into both sides of every pair).
    counterfactuals:
        Full-graph index; only the ``batch_nodes`` rows are read.
    weights:
        ``(I,)`` simplex weights λ.
    batch_nodes:
        Global ids of the seed batch (must be a subset of ``seed_nodes``).
    seed_nodes:
        Sorted unique global ids the representation rows correspond to.
        Must contain every valid counterfactual target of ``batch_nodes``
        (for the attributes actually evaluated).
    attrs:
        Optional subset of attribute indices to evaluate (the trainer's
        ``cf_attrs_per_step`` subsampling); unevaluated attributes report
        zero disparity and zero valid count.  ``None`` evaluates all.

    Returns
    -------
    (loss, disparities, valid_counts):
        Scalar loss ``Σ_i λ_i D̂_i``; the detached ``(I,)`` batch disparities
        ``D̂_i`` (mean over the batch's *valid* nodes of the summed top-K
        squared distances — invalid pairs contribute zero value and zero
        gradient); and the ``(I,)`` count of valid batch nodes per attribute
        so callers can aggregate batch disparities into the epoch-level
        ``D_i`` with the correct weighting.
    """
    weights = np.asarray(weights, dtype=np.float64).reshape(-1)
    num_attrs, _, top_k = counterfactuals.indices.shape
    if weights.shape != (num_attrs,):
        raise ValueError(f"expected {num_attrs} weights, got shape {weights.shape}")
    seed_nodes = np.asarray(seed_nodes, dtype=np.int64).reshape(-1)
    batch_nodes = np.asarray(batch_nodes, dtype=np.int64).reshape(-1)
    if representations.shape[0] != seed_nodes.shape[0]:
        raise ValueError(
            f"representations rows {representations.shape[0]} != "
            f"seed nodes {seed_nodes.shape[0]}"
        )

    def local(ids: np.ndarray) -> np.ndarray:
        pos = np.searchsorted(seed_nodes, ids)
        pos = np.minimum(pos, seed_nodes.size - 1)
        if not np.array_equal(seed_nodes[pos], ids):
            raise ValueError("node ids missing from seed_nodes")
        return pos

    batch_local = local(batch_nodes)
    h_batch = ops.gather(representations, batch_local)
    disparities = np.zeros(num_attrs)
    valid_counts = np.zeros(num_attrs)
    loss: Tensor | None = None
    attr_list = (
        range(num_attrs)
        if attrs is None
        else np.asarray(attrs, dtype=np.int64).reshape(-1)
    )
    for attr in attr_list:
        valid_mask = counterfactuals.valid[attr, batch_nodes].astype(np.float64)
        valid_count = float(valid_mask.sum())
        valid_counts[attr] = valid_count
        if valid_count == 0:
            continue
        attr_term: Tensor | None = None
        for k in range(top_k):
            # Invalid rows self-point, so their target is the batch node
            # itself (always present in seed_nodes); the mask then zeroes
            # both their value and their gradient.
            cf_rows = ops.gather(
                representations, local(counterfactuals.indices[attr, batch_nodes, k])
            )
            sq_dist = ops.sum(ops.power(ops.sub(h_batch, cf_rows), 2.0), axis=1)
            masked = ops.mul(sq_dist, Tensor(valid_mask))
            term = ops.div(ops.sum(masked), valid_count)
            attr_term = term if attr_term is None else ops.add(attr_term, term)
        disparities[attr] = float(attr_term.data)
        if weights[attr] != 0.0:
            weighted = ops.mul(attr_term, float(weights[attr]))
            loss = weighted if loss is None else ops.add(loss, weighted)
    if loss is None:
        loss = Tensor(np.zeros(()))
    return loss, disparities, valid_counts
