"""Fair representation learning loss (Section III-E).

Given representations ``h`` and a counterfactual index, the regulariser pulls
every node's embedding towards the embeddings of its top-K counterfactuals:

.. math::

    D_i = \\frac{1}{N} Σ_v Σ_{k=1}^{K} ||h_v − h^k_{i,v}||_2^2
    \\qquad
    L_F = Σ_i λ_i · D_i

(Eq. 13–14; distances are squared L2, matching Eq. 33 of the convergence
analysis).  The per-attribute disparities ``D_i`` are also returned as
detached numpy values — they feed the λ update (Eq. 24).
"""

from __future__ import annotations

import numpy as np

from repro.core.counterfactual import CounterfactualIndex
from repro.tensor import Tensor
from repro.tensor import ops

__all__ = ["fair_representation_loss"]


def fair_representation_loss(
    representations: Tensor,
    counterfactuals: CounterfactualIndex,
    weights: np.ndarray,
) -> tuple[Tensor, np.ndarray]:
    """Compute the weighted counterfactual-consistency loss.

    Parameters
    ----------
    representations:
        ``(N, d)`` tensor ``h`` from the GNN classifier (gradients flow).
    counterfactuals:
        Index from :class:`~repro.core.counterfactual.CounterfactualSearch`.
    weights:
        ``(I,)`` simplex weights λ.

    Returns
    -------
    (loss, disparities):
        Scalar loss tensor ``Σ_i λ_i D_i`` and the detached ``(I,)`` array of
        per-attribute disparities ``D_i`` (sum over K of the masked mean
        squared distance).  Invalid (node, attribute) pairs — those without a
        real counterfactual — contribute zero.
    """
    weights = np.asarray(weights, dtype=np.float64).reshape(-1)
    num_attrs, num_nodes, top_k = counterfactuals.indices.shape
    if weights.shape != (num_attrs,):
        raise ValueError(
            f"expected {num_attrs} weights, got shape {weights.shape}"
        )
    if representations.shape[0] != num_nodes:
        raise ValueError(
            f"representations rows {representations.shape[0]} != index nodes {num_nodes}"
        )

    disparities = np.zeros(num_attrs)
    loss: Tensor | None = None
    for attr in range(num_attrs):
        valid_mask = counterfactuals.valid[attr].astype(np.float64)
        valid_count = float(valid_mask.sum())
        if valid_count == 0:
            continue
        attr_term: Tensor | None = None
        for k in range(top_k):
            cf_rows = ops.gather(representations, counterfactuals.indices[attr, :, k])
            sq_dist = ops.sum(
                ops.power(ops.sub(representations, cf_rows), 2.0), axis=1
            )
            masked = ops.mul(sq_dist, Tensor(valid_mask))
            term = ops.div(ops.sum(masked), valid_count)
            attr_term = term if attr_term is None else ops.add(attr_term, term)
        disparities[attr] = float(attr_term.data)
        if weights[attr] != 0.0:
            weighted = ops.mul(attr_term, float(weights[attr]))
            loss = weighted if loss is None else ops.add(loss, weighted)
    if loss is None:
        loss = Tensor(np.zeros(()))
    return loss, disparities
