"""Fairwos training algorithm (Algorithm 1 of the paper).

Phases:

1. pre-train the encoder on node classification and extract the
   pseudo-sensitive attributes ``X(0)`` (lines 1–3);
2. pre-train the GNN classifier on ``X(0)`` (line 4) — this model also
   provides pseudo-labels for unlabelled nodes;
3. fine-tune: alternate gradient steps on θ (Eq. 16) with closed-form KKT
   updates of λ (Eq. 24), re-searching graph counterfactuals as the
   representation space moves (lines 5–13).

The ablation flags of :class:`~repro.core.config.FairwosConfig` disable
individual modules to produce the paper's Fig. 4 variants.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import FairwosConfig
from repro.core.counterfactual import CounterfactualIndex, CounterfactualSearch
from repro.core.encoder import EncoderModule, binarize_attributes
from repro.core.fairloss import fair_representation_loss
from repro.core.weights import WeightUpdater
from repro.fairness import EvalResult, evaluate_predictions
from repro.fairness.metrics import accuracy
from repro.gnnzoo import make_backbone
from repro.graph import Graph
from repro.nn import binary_cross_entropy_with_logits
from repro.optim import Adam
from repro.tensor import Tensor, no_grad
from repro.training import (
    fit_binary_classifier,
    fit_minibatch,
    predict_logits,
    predict_logits_batched,
)

__all__ = ["FairwosTrainer", "FairwosResult"]


@dataclass
class FairwosResult:
    """Everything a Fairwos run produces.

    ``pseudo_attributes`` holds the continuous ``X(0)`` matrix (used by the
    Fig. 7 t-SNE); ``timings`` holds per-phase wall-clock seconds (Fig. 8).
    """

    test: EvalResult
    validation: EvalResult
    lambda_weights: np.ndarray
    pseudo_attributes: np.ndarray
    counterfactual_coverage: float
    history: dict[str, list[float]] = field(default_factory=dict)
    timings: dict[str, float] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        """Total wall-clock time across phases."""
        return float(sum(self.timings.values()))


class FairwosTrainer:
    """End-to-end Fairwos runner.

    Example
    -------
    >>> from repro.datasets import load_dataset
    >>> from repro.core import FairwosTrainer, FairwosConfig
    >>> graph = load_dataset("nba", seed=0)
    >>> result = FairwosTrainer(FairwosConfig(alpha=0.05, top_k=5)).fit(graph, seed=0)
    >>> print(result.test)            # doctest: +SKIP
    """

    def __init__(self, config: FairwosConfig | None = None) -> None:
        self.config = config or FairwosConfig()
        self.config.validate()
        self.classifier = None
        self.encoder: EncoderModule | None = None
        self._pseudo_features: Tensor | None = None

    # ------------------------------------------------------------------ #
    def fit(self, graph: Graph, seed: int = 0) -> FairwosResult:
        """Run Algorithm 1 on ``graph`` and evaluate on its test split."""
        config = self.config
        rng = np.random.default_rng(seed)
        features = Tensor(graph.features)
        adjacency = graph.adjacency
        labels = graph.labels
        timings: dict[str, float] = {}
        history: dict[str, list[float]] = {
            "finetune_loss": [],
            "finetune_utility_loss": [],
            "finetune_fair_loss": [],
            "finetune_val_accuracy": [],
        }

        # -- Phase 1: encoder → pseudo-sensitive attributes ------------- #
        start = time.perf_counter()
        if config.use_encoder:
            self.encoder = EncoderModule(
                graph.num_features,
                config.encoder_dim,
                rng,
                backbone=config.encoder_backbone,
            )
            self.encoder.pretrain(
                features,
                adjacency,
                labels,
                graph.train_mask,
                graph.val_mask,
                epochs=config.encoder_epochs,
                lr=config.learning_rate,
                patience=config.patience,
                minibatch=config.minibatch,
                fanout=config.resolved_fanouts()[0],
                batch_size=config.batch_size,
                rng=rng,
            )
            pseudo_raw = self.encoder.extract(features, adjacency)
        else:
            # "Fwos w/o E": fairness is promoted on every raw non-sensitive
            # attribute individually.
            pseudo_raw = graph.features.copy()
        pseudo = _standardize(pseudo_raw)
        if (
            config.max_pseudo_attributes is not None
            and pseudo.shape[1] > config.max_pseudo_attributes
        ):
            variances = pseudo.var(axis=0)
            keep = np.sort(np.argsort(variances)[::-1][: config.max_pseudo_attributes])
            pseudo = pseudo[:, keep]
        binary_attrs = binarize_attributes(pseudo, config.binarize_quantile)
        timings["encoder"] = time.perf_counter() - start

        # -- Phase 2: pre-train the GNN classifier on X(0) --------------- #
        start = time.perf_counter()
        self.classifier = make_backbone(
            config.backbone,
            pseudo.shape[1],
            config.hidden_dim,
            rng,
            num_layers=config.num_layers,
            dropout=config.dropout,
        )
        pseudo_tensor = Tensor(pseudo)
        self._pseudo_features = pseudo_tensor
        if config.minibatch:
            fit_minibatch(
                self.classifier,
                pseudo_tensor,
                adjacency,
                labels,
                graph.train_mask,
                graph.val_mask,
                epochs=config.classifier_epochs,
                fanouts=config.resolved_fanouts(),
                batch_size=config.batch_size,
                lr=config.learning_rate,
                weight_decay=config.weight_decay,
                patience=config.patience,
                rng=rng,
            )
        else:
            fit_binary_classifier(
                self.classifier,
                pseudo_tensor,
                adjacency,
                labels,
                graph.train_mask,
                graph.val_mask,
                epochs=config.classifier_epochs,
                lr=config.learning_rate,
                weight_decay=config.weight_decay,
                patience=config.patience,
            )
        # Pseudo-labels: ground truth on the labelled (train) nodes, model
        # predictions elsewhere (Section III-D).
        logits = self._predict_logits(pseudo_tensor, adjacency)
        pseudo_labels = (logits > 0).astype(np.int64)
        pseudo_labels[graph.train_mask] = labels[graph.train_mask]
        timings["classifier_pretrain"] = time.perf_counter() - start

        # -- Phase 3: fairness fine-tuning ------------------------------- #
        start = time.perf_counter()
        updater = WeightUpdater(
            binary_attrs.shape[1],
            alpha=config.alpha,
            prefer_high_disparity=config.prefer_high_disparity,
        )
        coverage = 0.0
        if config.use_fairness:
            coverage = self._finetune(
                graph, pseudo_tensor, binary_attrs, pseudo_labels, updater, history
            )
        timings["finetune"] = time.perf_counter() - start

        test_logits = self._predict_logits(pseudo_tensor, adjacency)
        return FairwosResult(
            test=evaluate_predictions(
                test_logits, labels, graph.sensitive, graph.test_mask
            ),
            validation=evaluate_predictions(
                test_logits, labels, graph.sensitive, graph.val_mask
            ),
            lambda_weights=updater.weights.copy(),
            pseudo_attributes=pseudo,
            counterfactual_coverage=coverage,
            history=history,
            timings=timings,
        )

    # ------------------------------------------------------------------ #
    def _finetune(
        self,
        graph: Graph,
        pseudo_tensor: Tensor,
        binary_attrs: np.ndarray,
        pseudo_labels: np.ndarray,
        updater: WeightUpdater,
        history: dict[str, list[float]],
    ) -> float:
        """Lines 5–13 of Algorithm 1. Returns final counterfactual coverage."""
        config = self.config
        classifier = self.classifier
        adjacency = graph.adjacency
        train_indices = np.where(graph.train_mask)[0]
        train_labels = graph.labels[train_indices].astype(np.float64)
        optimizer = Adam(
            classifier.parameters(),
            lr=config.finetune_learning_rate or config.learning_rate,
            weight_decay=config.weight_decay,
        )
        search = CounterfactualSearch(config.top_k)
        cf_index: CounterfactualIndex | None = None
        coverage = 0.0
        # "Early stop operation to preserve competitive utility": abort the
        # fairness fine-tuning if validation accuracy falls more than
        # ``finetune_val_tolerance`` below its pre-finetune level, keeping
        # the last state above the floor.
        floor_logits = predict_logits(classifier, pseudo_tensor, adjacency)[
            graph.val_mask
        ]
        floor = accuracy(
            (floor_logits > 0).astype(np.int64), graph.labels[graph.val_mask]
        ) - (config.finetune_val_tolerance or np.inf)
        last_good_state = classifier.state_dict()

        for epoch in range(config.finetune_epochs):
            if cf_index is None or epoch % config.refresh_counterfactuals_every == 0:
                with no_grad():
                    reps = classifier.embed(pseudo_tensor, adjacency).data
                cf_index = search.search(reps, pseudo_labels, binary_attrs)
                coverage = cf_index.coverage()

            classifier.train()
            optimizer.zero_grad()
            h = classifier.embed(pseudo_tensor, adjacency)
            logits = classifier.head(h).reshape(-1)
            utility = binary_cross_entropy_with_logits(
                logits[train_indices], train_labels
            )
            fair, disparities = fair_representation_loss(
                h, cf_index, updater.weights
            )
            total = utility + config.alpha * fair
            total.backward()
            optimizer.step()

            if config.use_weight_update:
                updater.update(disparities)

            val_logits = predict_logits(classifier, pseudo_tensor, adjacency)[
                graph.val_mask
            ]
            val_acc = accuracy(
                (val_logits > 0).astype(np.int64), graph.labels[graph.val_mask]
            )
            history["finetune_loss"].append(float(total.data))
            history["finetune_utility_loss"].append(float(utility.data))
            history["finetune_fair_loss"].append(float(fair.data))
            history["finetune_val_accuracy"].append(val_acc)
            if val_acc >= floor:
                last_good_state = classifier.state_dict()
            elif config.finetune_val_tolerance is not None:
                classifier.load_state_dict(last_good_state)
                break
        return coverage

    # ------------------------------------------------------------------ #
    def _predict_logits(self, pseudo_tensor: Tensor, adjacency) -> np.ndarray:
        """Full-graph logits, batched when the config asks for minibatching."""
        if self.config.minibatch:
            return predict_logits_batched(
                self.classifier,
                pseudo_tensor,
                adjacency,
                batch_size=self.config.batch_size,
            )
        return predict_logits(self.classifier, pseudo_tensor, adjacency)

    def predict(self, graph: Graph) -> np.ndarray:
        """Logits of the fitted model on ``graph`` (requires ``fit`` first)."""
        if self.classifier is None or self._pseudo_features is None:
            raise RuntimeError("call fit() before predict()")
        return self._predict_logits(self._pseudo_features, graph.adjacency)


def _standardize(matrix: np.ndarray) -> np.ndarray:
    """Z-score columns; constant columns become zero."""
    mean = matrix.mean(axis=0, keepdims=True)
    std = matrix.std(axis=0, keepdims=True)
    std[std == 0] = 1.0
    return (matrix - mean) / std
