"""Fairwos training algorithm (Algorithm 1 of the paper).

Phases:

1. pre-train the encoder on node classification and extract the
   pseudo-sensitive attributes ``X(0)`` (lines 1–3);
2. pre-train the GNN classifier on ``X(0)`` (line 4) — this model also
   provides pseudo-labels for unlabelled nodes;
3. fine-tune: alternate gradient steps on θ (Eq. 16) with closed-form KKT
   updates of λ (Eq. 24), re-searching graph counterfactuals as the
   representation space moves (lines 5–13).

The ablation flags of :class:`~repro.core.config.FairwosConfig` disable
individual modules to produce the paper's Fig. 4 variants.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import FairwosConfig
from repro.core.counterfactual import CounterfactualIndex, CounterfactualSearch
from repro.core.encoder import EncoderModule, binarize_attributes
from repro.core.fairloss import (
    fair_representation_loss,
    fair_representation_loss_minibatch,
)
from repro.core.weights import WeightUpdater
from repro.fairness import EvalResult, evaluate_predictions
from repro.fairness.metrics import accuracy
from repro.gnnzoo import make_backbone
from repro.graph import Graph
from repro.nn import binary_cross_entropy_with_logits
from repro.optim import Adam
from repro.tensor import Tensor, backend_scope, dtype_scope, no_grad
from repro.training import (
    IndexMaintainer,
    MinibatchEngine,
    RefreshSchedule,
    TrainStep,
    embed_batched,
    fit_binary_classifier,
    fit_minibatch,
    predict_logits,
    predict_logits_batched,
)

__all__ = ["FairwosTrainer", "FairwosResult"]


@dataclass
class FairwosResult:
    """Everything a Fairwos run produces.

    ``pseudo_attributes`` holds the continuous ``X(0)`` matrix (used by the
    Fig. 7 t-SNE); ``timings`` holds per-phase wall-clock seconds (Fig. 8).
    """

    test: EvalResult
    validation: EvalResult
    lambda_weights: np.ndarray
    pseudo_attributes: np.ndarray
    counterfactual_coverage: float
    history: dict[str, list[float]] = field(default_factory=dict)
    timings: dict[str, float] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        """Total wall-clock time across phases."""
        return float(sum(self.timings.values()))


class FairwosTrainer:
    """End-to-end Fairwos runner.

    Example
    -------
    >>> from repro.datasets import load_dataset
    >>> from repro.core import FairwosTrainer, FairwosConfig
    >>> graph = load_dataset("nba", seed=0)
    >>> result = FairwosTrainer(FairwosConfig(alpha=0.05, top_k=5)).fit(graph, seed=0)
    >>> print(result.test)            # doctest: +SKIP
    """

    def __init__(self, config: FairwosConfig | None = None) -> None:
        self.config = config or FairwosConfig()
        self.config.validate()
        self.classifier = None
        self.encoder: EncoderModule | None = None
        self._pseudo_features: Tensor | None = None
        # Serving state stashed by fit() so a finished trainer can be
        # persisted (repro.io.artifact) and score without refitting:
        # binarized pseudo-attributes, pseudo-labels, the standardization
        # stats + column selection behind X(0), and the counterfactual
        # search whose standing index answers retrieval queries.
        self._binary_attrs: np.ndarray | None = None
        self._pseudo_labels: np.ndarray | None = None
        self._pseudo_stats: dict | None = None
        self._search: CounterfactualSearch | None = None
        # One shared worker pool per fit() when config.num_workers > 0:
        # every sampled phase and the ANN forest draw from the same
        # processes (the CSR is published to shared memory exactly once).
        self._worker_pool = None

    # ------------------------------------------------------------------ #
    def fit(self, graph: Graph, seed: int = 0) -> FairwosResult:
        """Run Algorithm 1 on ``graph`` and evaluate on its test split.

        The whole run executes under the configured ``dtype`` scope, so
        parameters, activations, gradients and optimiser state share one
        precision (``float64`` by default; ``float32`` for the
        memory-bounded large-graph tier).
        """
        with backend_scope(self.config.backend):
            with dtype_scope(self.config.dtype):
                return self._fit(graph, seed)

    def _fit(self, graph: Graph, seed: int) -> FairwosResult:
        config = self.config
        pool = None
        if config.num_workers > 0 and (
            config.minibatch
            or config.resolved_finetune_minibatch()
            or (
                isinstance(config.cf_backend, str)
                and config.cf_backend.lower() == "ann"
            )
        ):
            from repro.training.parallel import WorkerPool

            pool = WorkerPool(config.num_workers, adjacency=graph.adjacency)
        self._worker_pool = pool
        try:
            return self._fit_phases(graph, seed)
        finally:
            self._worker_pool = None
            if pool is not None:
                pool.shutdown()

    def _fit_phases(self, graph: Graph, seed: int) -> FairwosResult:
        config = self.config
        pool = self._worker_pool
        rng = np.random.default_rng(seed)
        features = Tensor(graph.features)
        adjacency = graph.adjacency
        labels = graph.labels
        timings: dict[str, float] = {}
        history: dict[str, list[float]] = {
            "finetune_loss": [],
            "finetune_utility_loss": [],
            "finetune_fair_loss": [],
            "finetune_val_accuracy": [],
        }

        # -- Phase 1: encoder → pseudo-sensitive attributes ------------- #
        start = time.perf_counter()
        if config.use_encoder:
            self.encoder = EncoderModule(
                graph.num_features,
                config.encoder_dim,
                rng,
                backbone=config.encoder_backbone,
            )
            self.encoder.pretrain(
                features,
                adjacency,
                labels,
                graph.train_mask,
                graph.val_mask,
                epochs=config.encoder_epochs,
                lr=config.learning_rate,
                patience=config.patience,
                minibatch=config.minibatch,
                fanout=config.resolved_fanouts()[0],
                batch_size=config.batch_size,
                cache_epochs=config.cache_epochs,
                rng=rng,
                num_workers=config.num_workers,
                prefetch_epochs=config.prefetch_epochs,
                worker_pool=pool,
            )
            pseudo_raw = self.encoder.extract(features, adjacency)
        else:
            # "Fwos w/o E": fairness is promoted on every raw non-sensitive
            # attribute individually.
            pseudo_raw = graph.features.copy()
        pseudo, pseudo_mean, pseudo_std = _standardize(pseudo_raw)
        keep = None
        if (
            config.max_pseudo_attributes is not None
            and pseudo.shape[1] > config.max_pseudo_attributes
        ):
            variances = pseudo.var(axis=0)
            keep = np.sort(np.argsort(variances)[::-1][: config.max_pseudo_attributes])
            pseudo = pseudo[:, keep]
        binary_attrs = binarize_attributes(pseudo, config.binarize_quantile)
        self._pseudo_stats = {
            "mean": pseudo_mean,
            "std": pseudo_std,
            "keep": None if keep is None else keep.astype(np.int64),
        }
        self._binary_attrs = binary_attrs
        timings["encoder"] = time.perf_counter() - start

        # -- Phase 2: pre-train the GNN classifier on X(0) --------------- #
        start = time.perf_counter()
        self.classifier = make_backbone(
            config.backbone,
            pseudo.shape[1],
            config.hidden_dim,
            rng,
            num_layers=config.num_layers,
            dropout=config.dropout,
        )
        pseudo_tensor = Tensor(pseudo)
        self._pseudo_features = pseudo_tensor
        if config.minibatch:
            fit_minibatch(
                self.classifier,
                pseudo_tensor,
                adjacency,
                labels,
                graph.train_mask,
                graph.val_mask,
                epochs=config.classifier_epochs,
                fanouts=config.resolved_fanouts(),
                batch_size=config.batch_size,
                lr=config.learning_rate,
                weight_decay=config.weight_decay,
                patience=config.patience,
                rng=rng,
                cache_epochs=config.cache_epochs,
                num_workers=config.num_workers,
                prefetch_epochs=config.prefetch_epochs,
                worker_pool=pool,
            )
        else:
            fit_binary_classifier(
                self.classifier,
                pseudo_tensor,
                adjacency,
                labels,
                graph.train_mask,
                graph.val_mask,
                epochs=config.classifier_epochs,
                lr=config.learning_rate,
                weight_decay=config.weight_decay,
                patience=config.patience,
            )
        # Pseudo-labels: ground truth on the labelled (train) nodes, model
        # predictions elsewhere (Section III-D).
        logits = self._predict_logits(pseudo_tensor, adjacency)
        pseudo_labels = (logits > 0).astype(np.int64)
        pseudo_labels[graph.train_mask] = labels[graph.train_mask]
        self._pseudo_labels = pseudo_labels
        timings["classifier_pretrain"] = time.perf_counter() - start

        # -- Phase 3: fairness fine-tuning ------------------------------- #
        start = time.perf_counter()
        updater = WeightUpdater(
            binary_attrs.shape[1],
            alpha=config.alpha,
            prefer_high_disparity=config.prefer_high_disparity,
        )
        coverage = 0.0
        if config.use_fairness:
            finetune = (
                self._finetune_minibatch
                if config.resolved_finetune_minibatch()
                else self._finetune
            )
            coverage = finetune(
                graph, pseudo_tensor, binary_attrs, pseudo_labels, updater,
                history, rng,
            )
        timings["finetune"] = time.perf_counter() - start

        test_logits = self._predict_logits(pseudo_tensor, adjacency)
        return FairwosResult(
            test=evaluate_predictions(
                test_logits, labels, graph.sensitive, graph.test_mask
            ),
            validation=evaluate_predictions(
                test_logits, labels, graph.sensitive, graph.val_mask
            ),
            lambda_weights=updater.weights.copy(),
            pseudo_attributes=pseudo,
            counterfactual_coverage=coverage,
            history=history,
            timings=timings,
        )

    # ------------------------------------------------------------------ #
    def _make_search(self, rng: np.random.Generator) -> CounterfactualSearch:
        """Counterfactual search with the configured backend.

        The ANN forest's construction seed is drawn from ``rng`` so runs stay
        reproducible per trainer seed (unless the caller pinned one in
        ``cf_backend_options``).  ``cf_update="incremental"`` threads the
        maintenance policy (drift threshold, rebuild escape hatch) into the
        backend, whose ``prepare`` then updates the standing forest in place
        instead of rebuilding it at every refresh.
        """
        config = self.config
        options = dict(config.cf_backend_options or {})
        if isinstance(config.cf_backend, str) and config.cf_backend.lower() == "ann":
            options.setdefault("seed", int(rng.integers(2**31)))
            if config.cf_update != "rebuild":
                options.setdefault("update", config.cf_update)
                options.setdefault("drift_threshold", config.cf_drift_threshold)
                options.setdefault("rebuild_frac", config.cf_rebuild_frac)
        search = CounterfactualSearch(
            config.top_k, backend=config.cf_backend, backend_options=options
        )
        if self._worker_pool is not None and hasattr(search.backend, "pool"):
            # Shard forest build/update by tree across the fit's pool
            # (bit-identical to serial: trees are independently seeded).
            search.backend.pool = self._worker_pool
        return search

    def _finetune(
        self,
        graph: Graph,
        pseudo_tensor: Tensor,
        binary_attrs: np.ndarray,
        pseudo_labels: np.ndarray,
        updater: WeightUpdater,
        history: dict[str, list[float]],
        rng: np.random.Generator,
    ) -> float:
        """Lines 5–13 of Algorithm 1. Returns final counterfactual coverage."""
        config = self.config
        classifier = self.classifier
        adjacency = graph.adjacency
        train_indices = np.where(graph.train_mask)[0]
        train_labels = graph.labels[train_indices].astype(np.float64)
        optimizer = Adam(
            classifier.parameters(),
            lr=config.resolved_finetune_lr(),
            weight_decay=config.weight_decay,
        )
        search = self._make_search(rng)
        self._search = search
        # The refresh cadence is hoisted into the schedule shared with the
        # sampled path (and the IndexMaintainer), so the two cannot drift.
        schedule = RefreshSchedule(config.resolved_cf_refresh())
        cf_index: CounterfactualIndex | None = None
        coverage = 0.0
        # "Early stop operation to preserve competitive utility": abort the
        # fairness fine-tuning if validation accuracy falls more than
        # ``finetune_val_tolerance`` below its pre-finetune level, keeping
        # the last state above the floor.
        floor_logits = predict_logits(classifier, pseudo_tensor, adjacency)[
            graph.val_mask
        ]
        floor = accuracy(
            (floor_logits > 0).astype(np.int64), graph.labels[graph.val_mask]
        ) - (
            np.inf
            if config.finetune_val_tolerance is None
            else config.finetune_val_tolerance
        )
        last_good_state = classifier.state_dict()

        for epoch in range(config.finetune_epochs):
            if schedule.due(epoch, initialized=cf_index is not None):
                with no_grad():
                    reps = classifier.embed(pseudo_tensor, adjacency).data
                cf_index = search.search(reps, pseudo_labels, binary_attrs)
                coverage = cf_index.coverage()

            classifier.train()
            optimizer.zero_grad()
            h = classifier.embed(pseudo_tensor, adjacency)
            logits = classifier.head(h).reshape(-1)
            utility = binary_cross_entropy_with_logits(
                logits[train_indices], train_labels
            )
            fair, disparities = fair_representation_loss(
                h, cf_index, updater.weights
            )
            total = utility + config.alpha * fair
            total.backward()
            optimizer.step()

            if config.use_weight_update:
                updater.update(disparities)

            val_logits = predict_logits(classifier, pseudo_tensor, adjacency)[
                graph.val_mask
            ]
            val_acc = accuracy(
                (val_logits > 0).astype(np.int64), graph.labels[graph.val_mask]
            )
            history["finetune_loss"].append(float(total.data))
            history["finetune_utility_loss"].append(float(utility.data))
            history["finetune_fair_loss"].append(float(fair.data))
            history["finetune_val_accuracy"].append(val_acc)
            if val_acc >= floor:
                last_good_state = classifier.state_dict()
            elif config.finetune_val_tolerance is not None:
                classifier.load_state_dict(last_good_state)
                break
        return coverage

    # ------------------------------------------------------------------ #
    def _finetune_minibatch(
        self,
        graph: Graph,
        pseudo_tensor: Tensor,
        binary_attrs: np.ndarray,
        pseudo_labels: np.ndarray,
        updater: WeightUpdater,
        history: dict[str, list[float]],
        rng: np.random.Generator,
    ) -> float:
        """Neighbour-sampled fine-tune: lines 5–13 on seed batches.

        Runs on :class:`~repro.training.MinibatchEngine`: every step draws a
        seed batch over *all* nodes, extends it with the batch's
        counterfactual targets (the engine's ``seed_fn`` hook), folds the
        union's sampled blocks, and optimises the utility loss on the
        batch's labelled members plus the weighted fair loss on the batch's
        counterfactual pairs.  Peak memory is bounded by the batch receptive
        field; the counterfactual index is refreshed every
        ``resolved_cf_refresh()`` epochs from exact batched embeddings by an
        :class:`~repro.training.IndexMaintainer` registered as the engine's
        ``on_epoch_start`` callback (it also invalidates the engine's
        sampling cache, so cached seed sets never point at stale targets;
        with ``cf_update="incremental"`` each refresh maintains the ANN
        forest in place instead of rebuilding it).
        The validation floor / checkpoint contract is the engine's
        ``"floor"`` policy, mirroring the full-batch :meth:`_finetune`.

        With ``cache_epochs > 1`` a replayed epoch reuses the refresh
        epoch's recorded structure *including* its ``cf_attrs_per_step``
        attribute draws (they determine the seed sets the blocks were
        sampled for); the cache-vs-refresh interaction and its bounds are
        documented on :class:`~repro.core.config.FairwosConfig`.
        """
        config = self.config
        classifier = self.classifier
        feature_array = pseudo_tensor.data
        num_nodes = feature_array.shape[0]
        train_mask = np.asarray(graph.train_mask, dtype=bool)
        labels = graph.labels
        val_indices = np.where(graph.val_mask)[0]
        num_attrs = binary_attrs.shape[1]
        engine = MinibatchEngine(
            classifier,
            feature_array,
            graph.adjacency,
            fanouts=config.resolved_fanouts(),
            batch_size=config.batch_size,
            cache_epochs=config.cache_epochs,
            optimizer=Adam(
                classifier.parameters(),
                lr=config.resolved_finetune_lr(),
                weight_decay=config.weight_decay,
            ),
            num_workers=config.num_workers,
            prefetch_epochs=config.prefetch_epochs,
            worker_pool=self._worker_pool,
        )
        search = self._make_search(rng)
        self._search = search
        cf_index: CounterfactualIndex | None = None
        coverage = 0.0
        running_disparities = np.zeros(num_attrs)
        epoch_utility = epoch_fair = 0.0
        train_seen = 0
        disparity_sums = np.zeros(num_attrs)
        disparity_counts = np.zeros(num_attrs)

        def refresh_index(epoch: int) -> None:
            nonlocal cf_index, coverage, running_disparities
            reps = embed_batched(
                classifier,
                feature_array,
                graph.adjacency,
                batch_size=config.batch_size,
            )
            cf_index = search.search(reps, pseudo_labels, binary_attrs)
            coverage = cf_index.coverage()
            # Snapshot disparities for every attribute so the λ update
            # has a current estimate even for attributes a subsampling
            # epoch never draws (they must not read as "perfectly fair").
            running_disparities = _snapshot_disparities(reps, cf_index)

        # Refreshes on the shared schedule; every refresh also invalidates
        # the engine's sampling cache so cached batch structure built on
        # the old index is resampled.
        maintainer = IndexMaintainer(
            refresh_index, config.resolved_cf_refresh(), engine=engine
        )

        def on_epoch_start(epoch: int) -> None:
            nonlocal epoch_utility, epoch_fair, train_seen
            nonlocal disparity_sums, disparity_counts
            maintainer(epoch)
            epoch_utility = epoch_fair = 0.0
            train_seen = 0
            disparity_sums = np.zeros(num_attrs)
            disparity_counts = np.zeros(num_attrs)

        def seed_fn(batch: np.ndarray, step_rng: np.random.Generator):
            # Attribute subsampling (cf_attrs_per_step): each step only
            # materialises M of the I attributes' counterfactual pairs;
            # the I/M rescale keeps the fair-loss gradient unbiased.
            if (
                config.cf_attrs_per_step is not None
                and config.cf_attrs_per_step < num_attrs
            ):
                attrs_step = np.sort(
                    step_rng.choice(
                        num_attrs, size=config.cf_attrs_per_step, replace=False
                    )
                )
                fair_scale = num_attrs / attrs_step.size
            else:
                attrs_step = np.arange(num_attrs)
                fair_scale = 1.0
            # Seed set: the batch plus its valid counterfactual targets,
            # so the fair loss's gradient reaches both sides of each pair.
            # np.ix_ slices both axes at once — no O(I·N·K) intermediate.
            sub = np.ix_(attrs_step, batch)
            targets = cf_index.indices[sub][cf_index.valid[sub]]
            seeds = np.unique(np.concatenate([batch, targets.reshape(-1)]))
            return seeds, (attrs_step, fair_scale)

        def loss_fn(step: TrainStep) -> Tensor:
            nonlocal epoch_utility, epoch_fair, train_seen
            nonlocal disparity_sums, disparity_counts
            attrs_step, fair_scale = step.payload
            h = step.output
            batch = step.batch
            batch_train = batch[train_mask[batch]]
            if batch_train.size:
                logits = classifier.head(h).reshape(-1)
                utility = binary_cross_entropy_with_logits(
                    logits[step.local_index(batch_train)],
                    labels[batch_train].astype(np.float64),
                )
            else:
                utility = Tensor(np.zeros(()))
            fair, disparities, valid_counts = fair_representation_loss_minibatch(
                h, cf_index, updater.weights, batch, step.seeds, attrs=attrs_step
            )
            disparity_sums += disparities * valid_counts
            disparity_counts += valid_counts
            # Each mean is re-weighted by the count it was taken over so
            # the logged epoch values match the full-batch statistics.
            epoch_utility += float(utility.data) * batch_train.size
            train_seen += batch_train.size
            epoch_fair += float(fair.data) * fair_scale * batch.size
            return utility + (config.alpha * fair_scale) * fair

        def on_epoch_end(epoch: int) -> None:
            if config.use_weight_update:
                # Weighted mean of the batch disparities == the full-graph
                # D_i (mean over valid nodes), so the λ update sees the same
                # statistic as the full-batch path.  Attributes this epoch
                # never evaluated (cf_attrs_per_step subsampling) keep their
                # latest estimate instead of collapsing to zero.
                seen = disparity_counts > 0
                running_disparities[seen] = (
                    disparity_sums[seen] / disparity_counts[seen]
                )
                updater.update(running_disparities)
            utility_epoch = epoch_utility / max(train_seen, 1)
            fair_epoch = epoch_fair / num_nodes
            history["finetune_loss"].append(
                utility_epoch + config.alpha * fair_epoch
            )
            history["finetune_utility_loss"].append(utility_epoch)
            history["finetune_fair_loss"].append(fair_epoch)

        fit = engine.run(
            np.arange(num_nodes, dtype=np.int64),
            config.finetune_epochs,
            loss_fn,
            rng,
            val_nodes=val_indices,
            val_labels=labels[val_indices],
            checkpoint="floor",
            val_tolerance=config.finetune_val_tolerance,
            forward="embed",
            seed_fn=seed_fn,
            on_epoch_start=on_epoch_start,
            on_epoch_end=on_epoch_end,
        )
        history["finetune_val_accuracy"].extend(fit.val_accuracy)
        return coverage

    # ------------------------------------------------------------------ #
    def _predict_logits(self, pseudo_tensor: Tensor, adjacency) -> np.ndarray:
        """Full-graph logits, batched when the config asks for minibatching."""
        if self.config.minibatch:
            return predict_logits_batched(
                self.classifier,
                pseudo_tensor,
                adjacency,
                batch_size=self.config.batch_size,
            )
        return predict_logits(self.classifier, pseudo_tensor, adjacency)

    def predict(self, graph: Graph) -> np.ndarray:
        """Logits of the fitted model on ``graph`` (requires ``fit`` first)."""
        if self.classifier is None or self._pseudo_features is None:
            raise RuntimeError("call fit() before predict()")
        with backend_scope(self.config.backend):
            with dtype_scope(self.config.dtype):
                return self._predict_logits(
                    self._pseudo_features, graph.adjacency
                )

    def transform_features(self, features, adjacency) -> np.ndarray:
        """Map a raw feature matrix to the classifier's X(0) input space.

        Applies the fitted preprocessing pipeline to *new* data: the
        pre-trained encoder's representation (when ``use_encoder``), the
        training-time standardization moments, and the training-time
        variance-based column selection.  The result feeds
        :meth:`~repro.training.engine.predict_logits_batched` directly, so
        a persisted artifact can score feature matrices it never trained
        on.  Requires :meth:`fit` (or an artifact load) first.
        """
        if self.classifier is None or self._pseudo_stats is None:
            raise RuntimeError("call fit() before transform_features()")
        with backend_scope(self.config.backend), dtype_scope(self.config.dtype):
            features = Tensor(features)
            if self.config.use_encoder:
                if self.encoder is None:
                    raise RuntimeError("encoder missing from fitted trainer")
                raw = self.encoder.extract(features, adjacency)
            else:
                raw = features.data.copy()
            stats = self._pseudo_stats
            pseudo = (raw - stats["mean"][None, :]) / stats["std"][None, :]
            if stats["keep"] is not None:
                pseudo = pseudo[:, stats["keep"]]
            return pseudo


def _snapshot_disparities(
    representations: np.ndarray, cf_index: CounterfactualIndex
) -> np.ndarray:
    """Per-attribute disparities ``D_i`` from a detached representation
    snapshot — the sampled fine-tune's λ-update baseline for attributes its
    subsampled epochs have not yet measured.  Delegates to
    :func:`fair_representation_loss` (zero weights, gradients disabled) so
    the Eq. 12 formula lives in exactly one place."""
    with no_grad():
        _, disparities = fair_representation_loss(
            Tensor(representations), cf_index, np.zeros(cf_index.num_attributes)
        )
    return disparities


def _standardize(
    matrix: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Z-score columns; constant columns become zero.

    Returns ``(standardized, mean, std)`` — the fit-time statistics are part
    of the model (a scored feature matrix must be shifted and scaled by the
    *training* moments), so the trainer stashes them for persistence.
    """
    mean = matrix.mean(axis=0, keepdims=True)
    std = matrix.std(axis=0, keepdims=True)
    std[std == 0] = 1.0
    return (matrix - mean) / std, mean.reshape(-1), std.reshape(-1)
