"""Configuration for the Fairwos trainer and the shared execution knobs."""

from __future__ import annotations

from dataclasses import dataclass, fields

__all__ = ["ExecutionConfig", "FairwosConfig"]


@dataclass
class FairwosConfig:
    """All Fairwos hyper-parameters with the paper's defaults.

    Paper settings (Section V-A-4): backbone layer count 1, hidden units 16,
    Adam lr 0.001, pre-training phase of 1000 epochs, fine-tuning phase of
    15 epochs, α swept over {0.01, 0.05, 1, 2, 5} and K over
    {1, 2, 5, 10, 20}.  Defaults here: α = 5 and K = 5 (the strong end of
    the paper's grid — the severe-bias datasets' operating point; see
    ``repro.experiments.methods.FAIRWOS_OVERRIDES`` for per-dataset values),
    a faster fine-tune learning rate (0.01 — at the paper's 0.001 the
    15-epoch fine-tune barely moves this substrate's parameters), and
    shorter pre-training (the synthetic graphs converge far earlier; early
    stopping makes longer budgets equivalent).

    Ablation flags map to the Fig. 4 variants: ``use_encoder=False`` is
    "Fwos w/o E", ``use_fairness=False`` is "Fwos w/o F" and
    ``use_weight_update=False`` is "Fwos w/o W".

    ``minibatch=True`` switches the encoder and classifier pre-training
    phases (and every inference pass) to the neighbour-sampled engine of
    :mod:`repro.training.minibatch`, bounding memory by ``batch_size`` and
    ``fanouts`` instead of the graph size.  ``fanouts`` has one entry per
    backbone layer (default: 10 per layer).  ``cache_epochs`` sets the
    engine's epoch-level sampling cache window: batch composition and
    sampled blocks are refreshed every that many epochs and replayed in
    between (1 = fresh sampling every epoch; see
    :class:`~repro.graph.sampling.EpochBlockCache`).  The sampled
    fine-tune additionally invalidates the cache whenever the
    counterfactual index refreshes, so cached seed sets never reference a
    stale index.  Note that the cached structure includes everything the
    seed sets were built from — with ``cf_attrs_per_step`` subsampling,
    the attribute draw is part of it, so replayed epochs revisit the same
    attribute subset: the ``I/M`` rescale stays unbiased per *window*
    rather than per epoch, and attributes outside a window's draw get no
    fair-loss gradient until the next refresh.  The window is bounded by
    ``min(cache_epochs, resolved_cf_refresh())`` because every index
    refresh invalidates the cache; keep ``cache_epochs`` at or below the
    refresh cadence when combining both knobs.

    The fine-tuning phase scales through three further knobs:
    ``finetune_minibatch`` runs the fairness fine-tune itself on sampled
    seed batches (utility loss on the batch's labelled members, fair loss on
    the batch's counterfactual pairs); ``None`` (the default) follows
    ``minibatch`` so ``minibatch=True`` makes all three phases sampled.
    ``cf_backend`` selects the counterfactual search backend — ``"exact"``
    (the O(N²) oracle) or ``"ann"`` (random-projection forest; options via
    ``cf_backend_options``).  ``cf_refresh_epochs`` refreshes the
    counterfactual index (and the ANN forest) every R fine-tune epochs;
    ``None`` falls back to ``refresh_counterfactuals_every``.

    ``cf_update`` selects how an ANN refresh maintains the forest:
    ``"rebuild"`` (default) reconstructs it from scratch every refresh;
    ``"incremental"`` re-routes only points whose embedding moved more than
    ``cf_drift_threshold`` (L2) since the last refresh, escaping to a full
    rebuild when the drifted fraction exceeds ``cf_rebuild_frac`` — the
    distance ranking always uses the fresh embeddings either way, only the
    tree routing is maintained lazily (see
    :meth:`repro.core.ann.RPForestIndex.update`).  Requires the ``"ann"``
    backend.  Every refresh still invalidates the sampling cache, so the
    ``cache_epochs`` interaction above is unchanged.
    ``cf_attrs_per_step`` bounds the sampled fine-tune's per-step receptive
    field: each optimizer step draws that many pseudo-sensitive attributes
    uniformly and rescales the fair loss by I/M (an unbiased estimator of
    ``Σ_i λ_i D_i``), so the batch's counterfactual-target union stays
    O(batch · M · K) instead of O(batch · I · K).  ``None`` keeps every
    attribute every step (the full-batch semantics).

    ``dtype`` selects the floating precision of the whole training stack —
    model parameters, activations, gradients and optimiser state.  The
    default ``"float64"`` is bit-identical to the historical behaviour;
    ``"float32"`` halves resident memory (the 1M-node operating point) at
    the cost of bounded numerical divergence from the float64 oracle.  The
    trainer applies it via :func:`repro.tensor.dtype_scope` around every
    phase, so concurrent float64 work outside the fit is unaffected.

    ``backend`` selects the array library the tensor stack executes on.
    The default ``"numpy"`` is the historical bit-identical CPU path;
    ``"torch"`` routes dense math through PyTorch when it is importable
    (activation fails with ``BackendUnavailableError`` otherwise).  The
    trainer applies it via :func:`repro.tensor.backend_scope` around
    every phase, exactly like ``dtype``.  Validation only checks the
    name is registered — the library itself is imported lazily at fit
    time, so configs naming an uninstalled backend remain constructible.

    ``num_workers`` moves fresh-epoch neighbour sampling (and ANN-forest
    build/update with ``cf_backend='ann'``) to that many worker
    processes over shared-memory CSR, with ``prefetch_epochs`` epochs of
    double-buffered lookahead — bit-identical to serial training (see
    :mod:`repro.training.parallel`).  ``0`` (the default) keeps the
    historical in-process path.
    """

    backbone: str = "gcn"
    hidden_dim: int = 16
    num_layers: int = 1
    encoder_backbone: str = "gcn"
    encoder_dim: int = 16
    alpha: float = 5.0
    top_k: int = 5
    learning_rate: float = 1e-3
    finetune_learning_rate: float | None = 0.01
    weight_decay: float = 0.0
    finetune_val_tolerance: float | None = 0.05
    dropout: float = 0.0
    encoder_epochs: int = 200
    classifier_epochs: int = 200
    finetune_epochs: int = 15
    patience: int | None = 40
    refresh_counterfactuals_every: int = 1
    binarize_quantile: float = 0.5
    prefer_high_disparity: bool = True
    use_encoder: bool = True
    use_fairness: bool = True
    use_weight_update: bool = True
    max_pseudo_attributes: int | None = None
    minibatch: bool = False
    fanouts: tuple[int, ...] | None = None
    batch_size: int = 512
    cache_epochs: int = 1
    finetune_minibatch: bool | None = None
    cf_backend: str = "exact"
    cf_backend_options: dict | None = None
    cf_refresh_epochs: int | None = None
    cf_attrs_per_step: int | None = None
    cf_update: str = "rebuild"
    cf_drift_threshold: float = 1e-2
    cf_rebuild_frac: float = 0.5
    dtype: str = "float64"
    backend: str = "numpy"
    num_workers: int = 0
    prefetch_epochs: int = 1

    def validate(self) -> None:
        """Raise ``ValueError`` for inconsistent settings."""
        from repro.tensor.backend import resolve_backend
        from repro.tensor.dtype import resolve_dtype

        resolve_dtype(self.dtype)  # raises on anything but float32/float64
        resolve_backend(self.backend)  # raises on unregistered names
        if self.hidden_dim < 1 or self.encoder_dim < 1:
            raise ValueError("hidden_dim and encoder_dim must be positive")
        if self.alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {self.alpha}")
        if self.learning_rate <= 0:
            raise ValueError(
                f"learning_rate must be positive, got {self.learning_rate}"
            )
        if (
            self.finetune_learning_rate is not None
            and self.finetune_learning_rate <= 0
        ):
            # An explicit 0.0 must be rejected, not silently collapsed into
            # "follow learning_rate" (the falsy-zero bug class).
            raise ValueError(
                "finetune_learning_rate must be positive or None, got "
                f"{self.finetune_learning_rate}"
            )
        if self.top_k < 1:
            raise ValueError(f"top_k must be >= 1, got {self.top_k}")
        if not 0.0 < self.binarize_quantile < 1.0:
            raise ValueError(
                f"binarize_quantile must be in (0, 1), got {self.binarize_quantile}"
            )
        for name in ("encoder_epochs", "classifier_epochs", "finetune_epochs"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        if self.refresh_counterfactuals_every < 1:
            raise ValueError("refresh_counterfactuals_every must be >= 1")
        if self.max_pseudo_attributes is not None and self.max_pseudo_attributes < 1:
            raise ValueError("max_pseudo_attributes must be >= 1 or None")
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.cache_epochs < 1:
            raise ValueError(f"cache_epochs must be >= 1, got {self.cache_epochs}")
        if isinstance(self.cf_backend, str) and self.cf_backend.lower() not in (
            "exact",
            "ann",
        ):
            raise ValueError(
                f"cf_backend must be 'exact' or 'ann', got {self.cf_backend!r}"
            )
        if self.cf_refresh_epochs is not None and self.cf_refresh_epochs < 1:
            raise ValueError("cf_refresh_epochs must be >= 1 or None")
        if self.cf_attrs_per_step is not None and self.cf_attrs_per_step < 1:
            raise ValueError("cf_attrs_per_step must be >= 1 or None")
        if self.cf_update not in ("rebuild", "incremental"):
            raise ValueError(
                f"cf_update must be 'rebuild' or 'incremental', got "
                f"{self.cf_update!r}"
            )
        if self.cf_drift_threshold < 0:
            raise ValueError(
                f"cf_drift_threshold must be non-negative, got "
                f"{self.cf_drift_threshold}"
            )
        if not 0.0 < self.cf_rebuild_frac <= 1.0:
            raise ValueError(
                f"cf_rebuild_frac must be in (0, 1], got {self.cf_rebuild_frac}"
            )
        if self.cf_update == "incremental" and not (
            isinstance(self.cf_backend, str)
            and self.cf_backend.lower() == "ann"
        ):
            raise ValueError(
                "cf_update='incremental' maintains the ANN forest in place; "
                "it requires cf_backend='ann' (the exact backend has no "
                "index to maintain, and a custom backend instance must "
                "carry its own update policy — e.g. AnnBackend("
                "update='incremental'))"
            )
        if self.num_workers < 0:
            raise ValueError(
                f"num_workers must be >= 0, got {self.num_workers}"
            )
        if self.prefetch_epochs < 0:
            raise ValueError(
                f"prefetch_epochs must be >= 0, got {self.prefetch_epochs}"
            )
        if self.fanouts is not None:
            if len(self.fanouts) == 0:
                raise ValueError("fanouts must be non-empty or None")
            if any(f is not None and f < 1 for f in self.fanouts):
                raise ValueError(f"fanouts entries must be >= 1, got {self.fanouts}")
            if len(self.fanouts) != self.num_layers:
                raise ValueError(
                    f"fanouts has {len(self.fanouts)} entries but the backbone "
                    f"has {self.num_layers} layers"
                )

    def resolved_fanouts(self) -> tuple[int, ...]:
        """Per-layer fanouts for minibatch phases (engine default per layer)."""
        from repro.training.minibatch import DEFAULT_FANOUT

        if self.fanouts is not None:
            return tuple(self.fanouts)
        return (DEFAULT_FANOUT,) * self.num_layers

    def resolved_finetune_minibatch(self) -> bool:
        """Whether the fine-tune phase runs sampled (None → follow ``minibatch``)."""
        if self.finetune_minibatch is None:
            return self.minibatch
        return self.finetune_minibatch

    def resolved_cf_refresh(self) -> int:
        """Counterfactual-index refresh cadence in fine-tune epochs."""
        if self.cf_refresh_epochs is not None:
            return self.cf_refresh_epochs
        return self.refresh_counterfactuals_every

    def resolved_finetune_lr(self) -> float:
        """Fine-tune learning rate (``None`` → follow ``learning_rate``).

        An explicit ``is None`` check, not an ``or`` fallback: a (rejected
        by :meth:`validate`, but still) zero fine-tune rate must never
        silently fall back to the pre-training rate.
        """
        if self.finetune_learning_rate is None:
            return self.learning_rate
        return self.finetune_learning_rate


# ``repro run`` flag table: (field name, argparse kwargs).  One declarative
# row per CLI-exposed ExecutionConfig field instead of hand-kept
# ``add_argument`` calls — the CLI derives flags, ``run_method`` receives
# the same names, and adding an execution knob means adding a row here.
# ``"type": "fanouts"`` is a sentinel the CLI replaces with its
# comma-separated-fanout parser.  ``finetune_minibatch`` has no row: it is
# a tri-state resolved at fit time (``None`` → follow ``minibatch``) with
# no natural boolean flag.
_EXECUTION_CLI_FLAGS: tuple = (
    (
        "minibatch",
        {
            "flag": "--minibatch",
            "action": "store_true",
            "help": "train with neighbour-sampled minibatches (large graphs)",
        },
    ),
    (
        "fanouts",
        {
            "flag": "--fanout",
            "type": "fanouts",
            "metavar": "F1,F2,...",
            "help": "per-layer neighbour fanouts, e.g. '10,5' "
            "(sets backbone depth)",
        },
    ),
    ("batch_size", {"flag": "--batch-size", "type": int}),
    (
        "cache_epochs",
        {
            "flag": "--cache-epochs",
            "type": int,
            "metavar": "R",
            "help": "reuse sampled minibatch structure for R epochs before "
            "resampling (1 = fresh sampling every epoch)",
        },
    ),
    (
        "cf_backend",
        {
            "flag": "--cf-backend",
            "choices": ("exact", "ann"),
            "help": "fairwos counterfactual search backend "
            "(ann = random-projection forest for large graphs)",
        },
    ),
    (
        "cf_refresh_epochs",
        {
            "flag": "--cf-refresh",
            "type": int,
            "metavar": "R",
            "help": "refresh the counterfactual index every R fine-tune "
            "epochs",
        },
    ),
    (
        "cf_update",
        {
            "flag": "--cf-update",
            "choices": ("rebuild", "incremental"),
            "help": "how an ANN refresh maintains the forest: rebuild from "
            "scratch or incrementally re-route only drifted points",
        },
    ),
    (
        "dtype",
        {
            "flag": "--dtype",
            "choices": ("float64", "float32"),
            "help": "floating precision of the training stack (float32 "
            "halves resident memory on large graphs; float64 is the exact "
            "baseline)",
        },
    ),
    (
        "backend",
        {
            "flag": "--backend",
            "help": "array backend of the training stack (numpy is the "
            "exact baseline; torch requires PyTorch to be importable)",
        },
    ),
    (
        "num_workers",
        {
            "flag": "--num-workers",
            "type": int,
            "metavar": "W",
            "help": "sample fresh minibatch epochs in W worker processes "
            "over shared-memory CSR (0 = in-process; results are "
            "bit-identical either way)",
        },
    ),
    (
        "prefetch_epochs",
        {
            "flag": "--prefetch-epochs",
            "type": int,
            "metavar": "P",
            "help": "with --num-workers: double-buffer up to P sampled "
            "epochs ahead of the training loop (0 = sample synchronously)",
        },
    ),
)


@dataclass(frozen=True)
class ExecutionConfig:
    """How a method executes — sampling, precision, parallelism — as one value.

    Every field here is a *how*, not a *what*: none of them changes the
    optimisation problem, only the substrate it runs on (sampled vs
    full-batch epochs, exact vs ANN counterfactual search, float64 vs
    float32, in-process vs multiprocess sampling).  The same value can be
    handed to every method via
    :func:`repro.experiments.methods.run_method`'s ``execution=`` keyword,
    which forwards the Fairwos-only fields (``finetune_minibatch``,
    ``cf_*``) to :class:`FairwosConfig` and the shared fields to the
    baselines.

    Field semantics match the FairwosConfig fields of the same name; see
    that class for the long-form documentation.  ``num_workers`` and
    ``prefetch_epochs`` control the multiprocess sampler of
    :mod:`repro.training.parallel` and are *only* reachable through this
    config (they have no legacy flat-kwarg spelling).

    Frozen: a value can be shared across ``run_method`` calls, threads and
    result manifests without defensive copying.
    """

    minibatch: bool = False
    fanouts: tuple[int, ...] | None = None
    batch_size: int = 512
    cache_epochs: int = 1
    finetune_minibatch: bool | None = None
    cf_backend: str = "exact"
    cf_refresh_epochs: int | None = None
    cf_update: str = "rebuild"
    dtype: str = "float64"
    backend: str = "numpy"
    num_workers: int = 0
    prefetch_epochs: int = 1

    def validate(self) -> None:
        """Raise ``ValueError`` for inconsistent settings.

        Mirrors the matching :meth:`FairwosConfig.validate` checks except
        the fanouts-vs-layer-count coupling, which needs the backbone
        depth and is re-checked at fit time.
        """
        from repro.tensor.backend import resolve_backend
        from repro.tensor.dtype import resolve_dtype

        resolve_dtype(self.dtype)
        resolve_backend(self.backend)
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.cache_epochs < 1:
            raise ValueError(
                f"cache_epochs must be >= 1, got {self.cache_epochs}"
            )
        if isinstance(self.cf_backend, str) and self.cf_backend.lower() not in (
            "exact",
            "ann",
        ):
            raise ValueError(
                f"cf_backend must be 'exact' or 'ann', got {self.cf_backend!r}"
            )
        if self.cf_refresh_epochs is not None and self.cf_refresh_epochs < 1:
            raise ValueError("cf_refresh_epochs must be >= 1 or None")
        if self.cf_update not in ("rebuild", "incremental"):
            raise ValueError(
                f"cf_update must be 'rebuild' or 'incremental', got "
                f"{self.cf_update!r}"
            )
        if self.cf_update == "incremental" and not (
            isinstance(self.cf_backend, str)
            and self.cf_backend.lower() == "ann"
        ):
            raise ValueError(
                "cf_update='incremental' requires cf_backend='ann'"
            )
        if self.num_workers < 0:
            raise ValueError(
                f"num_workers must be >= 0, got {self.num_workers}"
            )
        if self.prefetch_epochs < 0:
            raise ValueError(
                f"prefetch_epochs must be >= 0, got {self.prefetch_epochs}"
            )
        if self.fanouts is not None:
            if len(self.fanouts) == 0:
                raise ValueError("fanouts must be non-empty or None")
            if any(f is not None and f < 1 for f in self.fanouts):
                raise ValueError(
                    f"fanouts entries must be >= 1, got {self.fanouts}"
                )

    @classmethod
    def field_names(cls) -> tuple[str, ...]:
        """Every execution field name, in declaration order."""
        return tuple(f.name for f in fields(cls))

    @classmethod
    def cli_flags(cls) -> tuple:
        """The ``(field, argparse spec)`` table behind ``repro run``."""
        return _EXECUTION_CLI_FLAGS

    def non_default_items(self) -> dict:
        """Fields whose value differs from the class default."""
        out = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if value != f.default:
                out[f.name] = value
        return out
