"""KSMOTE — fair class balancing with clustered pseudo-groups.

Re-implementation of Yan, Kao & Ferrara, "Fair Class Balancing: Enhancing
Model Fairness without Observing Sensitive Attributes" (CIKM 2020), applied
to a GNN backbone as the paper does:

1. k-means clusters the node features into pseudo-groups (stand-ins for the
   unobserved demographic groups);
2. inside each pseudo-group the minority class is oversampled SMOTE-style —
   synthetic nodes interpolate two same-class, same-cluster parents and are
   wired to a parent's neighbours, so training sees balanced classes in
   every pseudo-group;
3. optionally a pseudo-group statistical-parity regulariser penalises
   differences in mean predicted probability across clusters.

Evaluation uses the original nodes only; synthetic nodes are appended after
them and never enter any mask.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.analysis import kmeans
from repro.baselines.base import BaselineMethod
from repro.graph import Graph
from repro.gnnzoo import make_backbone
from repro.tensor import Tensor
from repro.tensor import ops
from repro.training import fit_binary_classifier, predict_logits

__all__ = ["KSMOTE"]


class KSMOTE(BaselineMethod):
    """k-means pseudo-groups + SMOTE balancing + parity regulariser.

    Parameters
    ----------
    num_clusters:
        Number of pseudo-groups k.
    parity_weight:
        Strength of the pseudo-group parity regulariser (0 disables it).
    oversample:
        Whether to add SMOTE-interpolated synthetic minority nodes.
    max_synthetic_fraction:
        Cap on synthetic nodes as a fraction of N (guards degenerate
        clusterings from exploding the graph).
    """

    name = "KSMOTE"

    def __init__(
        self,
        num_clusters: int = 4,
        parity_weight: float = 1.0,
        oversample: bool = True,
        max_synthetic_fraction: float = 0.5,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        if num_clusters < 2:
            raise ValueError(f"need at least 2 clusters, got {num_clusters}")
        self.num_clusters = num_clusters
        self.parity_weight = parity_weight
        self.oversample = oversample
        self.max_synthetic_fraction = max_synthetic_fraction

    # ------------------------------------------------------------------ #
    def _train_logits(self, graph: Graph, rng: np.random.Generator):
        clusters, _, _ = kmeans(graph.features, self.num_clusters, rng)
        if self.oversample:
            features, adjacency, labels, train_mask, n_synth = self._balance(
                graph, clusters, rng
            )
        else:
            features, adjacency = graph.features, graph.adjacency
            labels, train_mask, n_synth = graph.labels, graph.train_mask, 0
        num_total = features.shape[0]
        val_mask = np.zeros(num_total, dtype=bool)
        val_mask[: graph.num_nodes] = graph.val_mask

        model = make_backbone(
            self.backbone, graph.num_features, self.hidden_dim, rng,
            num_layers=self.num_layers,
        )
        features_tensor = Tensor(features)
        extra_loss = None
        if self.parity_weight > 0:
            extra_loss = self._parity_regulariser(clusters, graph.num_nodes, num_total)
        fit_binary_classifier(
            model,
            features_tensor,
            adjacency,
            labels,
            train_mask,
            val_mask,
            epochs=self.epochs,
            lr=self.lr,
            patience=self.patience,
            extra_loss=extra_loss,
        )
        logits = predict_logits(model, features_tensor, adjacency)[: graph.num_nodes]
        return logits, {
            "num_clusters": self.num_clusters,
            "synthetic_nodes": int(n_synth),
        }

    # ------------------------------------------------------------------ #
    def _parity_regulariser(
        self, clusters: np.ndarray, num_real: int, num_total: int
    ):
        """Penalise squared deviation of per-cluster positive rates."""
        masks = []
        for cluster in range(self.num_clusters):
            mask = np.zeros(num_total)
            members = np.where(clusters == cluster)[0]
            if members.size:
                mask[members] = 1.0 / members.size
            masks.append(mask)
        overall = np.zeros(num_total)
        overall[:num_real] = 1.0 / num_real
        weight = self.parity_weight

        def regulariser(logits):
            probs = ops.sigmoid(logits)
            mean_all = ops.sum(ops.mul(probs, Tensor(overall)))
            penalty = None
            for mask in masks:
                if mask.sum() == 0:
                    continue
                gap = ops.sub(ops.sum(ops.mul(probs, Tensor(mask))), mean_all)
                term = ops.power(gap, 2.0)
                penalty = term if penalty is None else ops.add(penalty, term)
            return ops.mul(penalty, weight)

        return regulariser

    # ------------------------------------------------------------------ #
    def _balance(self, graph: Graph, clusters: np.ndarray, rng: np.random.Generator):
        """SMOTE oversampling of minority classes inside each pseudo-group."""
        synth_features: list[np.ndarray] = []
        synth_labels: list[int] = []
        synth_parents: list[int] = []
        train = graph.train_mask
        budget = int(self.max_synthetic_fraction * graph.num_nodes)

        for cluster in range(self.num_clusters):
            members = np.where((clusters == cluster) & train)[0]
            if members.size < 4:
                continue
            member_labels = graph.labels[members]
            counts = np.bincount(member_labels, minlength=2)
            if counts.min() < 2 or counts[0] == counts[1]:
                continue
            minority = int(counts.argmin())
            pool = members[member_labels == minority]
            deficit = int(counts.max() - counts.min())
            for _ in range(deficit):
                if len(synth_features) >= budget:
                    break
                a, b = rng.choice(pool, size=2, replace=pool.size < 2)
                mix = rng.random()
                synth_features.append(
                    mix * graph.features[a] + (1.0 - mix) * graph.features[b]
                )
                synth_labels.append(minority)
                synth_parents.append(int(a))

        n_synth = len(synth_features)
        if n_synth == 0:
            return (
                graph.features,
                graph.adjacency,
                graph.labels,
                graph.train_mask,
                0,
            )
        features = np.vstack([graph.features, np.array(synth_features)])
        labels = np.concatenate([graph.labels, np.array(synth_labels, dtype=np.int64)])
        train_mask = np.concatenate([graph.train_mask, np.ones(n_synth, dtype=bool)])
        adjacency = self._extend_adjacency(graph.adjacency, synth_parents)
        return features, adjacency, labels, train_mask, n_synth

    @staticmethod
    def _extend_adjacency(
        adjacency: sp.csr_matrix, parents: list[int]
    ) -> sp.csr_matrix:
        """Wire each synthetic node to its parent's neighbourhood + parent."""
        num_real = adjacency.shape[0]
        num_total = num_real + len(parents)
        rows, cols = [], []
        for offset, parent in enumerate(parents):
            new_id = num_real + offset
            start, stop = adjacency.indptr[parent], adjacency.indptr[parent + 1]
            neighbors = adjacency.indices[start:stop]
            for neighbor in neighbors:
                rows.extend((new_id, int(neighbor)))
                cols.extend((int(neighbor), new_id))
            rows.extend((new_id, parent))
            cols.extend((parent, new_id))
        coo = sp.coo_matrix(adjacency)
        all_rows = np.concatenate([coo.row, np.array(rows, dtype=np.int64)])
        all_cols = np.concatenate([coo.col, np.array(cols, dtype=np.int64)])
        data = np.ones(all_rows.size)
        out = sp.csr_matrix((data, (all_rows, all_cols)), shape=(num_total, num_total))
        out.sum_duplicates()
        out.data = np.ones_like(out.data)
        return out
