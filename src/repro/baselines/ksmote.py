"""KSMOTE — fair class balancing with clustered pseudo-groups.

Re-implementation of Yan, Kao & Ferrara, "Fair Class Balancing: Enhancing
Model Fairness without Observing Sensitive Attributes" (CIKM 2020), applied
to a GNN backbone as the paper does:

1. k-means clusters the node features into pseudo-groups (stand-ins for the
   unobserved demographic groups);
2. inside each pseudo-group the minority class is oversampled SMOTE-style —
   synthetic nodes interpolate two same-class, same-cluster parents and are
   wired to a parent's neighbours, so training sees balanced classes in
   every pseudo-group;
3. optionally a pseudo-group statistical-parity regulariser penalises
   differences in mean predicted probability across clusters.

Evaluation uses the original nodes only; synthetic nodes are appended after
them and never enter any mask.

``minibatch=True`` is the large-graph formulation: the cluster step runs
:func:`~repro.analysis.minibatch_kmeans` (sampled centroid updates — no
``(N, k)`` distance matrix), training runs neighbour-sampled through
:func:`~repro.training.fit_minibatch` on the oversampled graph, and the
parity regulariser is evaluated per batch (mean predicted probability of the
batch's cluster members vs the batch mean — a sampled estimate of the
full-graph penalty).  A covering batch with exhaustive fanout and
``parity_weight=0`` reproduces the full-batch result to float precision
(the cluster step delegates to exact k-means when the batch covers the
data); the differential tests pin both contracts.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.analysis import kmeans, minibatch_kmeans
from repro.baselines.base import BaselineMethod
from repro.graph import Graph
from repro.gnnzoo import make_backbone
from repro.tensor import Tensor
from repro.tensor import ops

__all__ = ["KSMOTE"]


class KSMOTE(BaselineMethod):
    """k-means pseudo-groups + SMOTE balancing + parity regulariser.

    Parameters
    ----------
    num_clusters:
        Number of pseudo-groups k.
    parity_weight:
        Strength of the pseudo-group parity regulariser (0 disables it).
    oversample:
        Whether to add SMOTE-interpolated synthetic minority nodes.
    max_synthetic_fraction:
        Cap on synthetic nodes as a fraction of N (guards degenerate
        clusterings from exploding the graph).
    minibatch, fanouts, batch_size:
        Neighbour-sampled training on the oversampled graph plus a
        minibatch-k-means cluster step (see the module docstring).
    kmeans_batch_size:
        Batch size of the sampled cluster step (``None`` follows
        ``batch_size``).  Cluster fidelity and training memory are separate
        budgets: a larger k-means batch sharpens the pseudo-groups at
        O(batch · k · F) cost per iteration without touching the training
        engine's receptive field.
    """

    name = "KSMOTE"

    def __init__(
        self,
        num_clusters: int = 4,
        parity_weight: float = 1.0,
        oversample: bool = True,
        max_synthetic_fraction: float = 0.5,
        minibatch: bool = False,
        fanouts: tuple[int, ...] | None = None,
        batch_size: int = 512,
        cache_epochs: int = 1,
        num_workers: int = 0,
        prefetch_epochs: int = 1,
        kmeans_batch_size: int | None = None,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        if num_clusters < 2:
            raise ValueError(f"need at least 2 clusters, got {num_clusters}")
        if kmeans_batch_size is not None and kmeans_batch_size < 1:
            # Reject rather than letting a falsy 0 fall back to batch_size.
            raise ValueError(
                f"kmeans_batch_size must be >= 1 or None, got {kmeans_batch_size}"
            )
        self.num_clusters = num_clusters
        self.parity_weight = parity_weight
        self.oversample = oversample
        self.max_synthetic_fraction = max_synthetic_fraction
        self.minibatch = minibatch
        self.fanouts = fanouts
        self.batch_size = batch_size
        self.cache_epochs = cache_epochs
        self.num_workers = num_workers
        self.prefetch_epochs = prefetch_epochs
        self.kmeans_batch_size = kmeans_batch_size

    # ------------------------------------------------------------------ #
    def _train_logits(self, graph: Graph, rng: np.random.Generator):
        if self.minibatch:
            self._sampling_config()  # validate before any work
            clusters, _, _ = minibatch_kmeans(
                graph.features,
                self.num_clusters,
                rng,
                batch_size=(
                    self.batch_size
                    if self.kmeans_batch_size is None
                    else self.kmeans_batch_size
                ),
            )
        else:
            clusters, _, _ = kmeans(graph.features, self.num_clusters, rng)
        if self.oversample:
            features, adjacency, labels, train_mask, n_synth = self._balance(
                graph, clusters, rng
            )
        else:
            features, adjacency = graph.features, graph.adjacency
            labels, train_mask, n_synth = graph.labels, graph.train_mask, 0
        num_total = features.shape[0]
        val_mask = np.zeros(num_total, dtype=bool)
        val_mask[: graph.num_nodes] = graph.val_mask

        model = make_backbone(
            self.backbone, graph.num_features, self.hidden_dim, rng,
            num_layers=self.num_layers,
        )
        features_tensor = Tensor(features)
        extra_loss = None
        if self.parity_weight > 0:
            extra_loss = (
                self._batch_parity_regulariser(clusters, graph.num_nodes)
                if self.minibatch
                else self._parity_regulariser(clusters, graph.num_nodes, num_total)
            )
        _, logits = self._fit_and_predict_arrays(
            model,
            features_tensor,
            adjacency,
            labels,
            train_mask,
            val_mask,
            rng,
            extra_loss=extra_loss,
        )
        return logits[: graph.num_nodes], {
            "num_clusters": self.num_clusters,
            "synthetic_nodes": int(n_synth),
        }

    # ------------------------------------------------------------------ #
    def _parity_regulariser(
        self, clusters: np.ndarray, num_real: int, num_total: int
    ):
        """Penalise squared deviation of per-cluster positive rates."""
        masks = []
        for cluster in range(self.num_clusters):
            mask = np.zeros(num_total)
            members = np.where(clusters == cluster)[0]
            if members.size:
                mask[members] = 1.0 / members.size
            masks.append(mask)
        overall = np.zeros(num_total)
        overall[:num_real] = 1.0 / num_real
        weight = self.parity_weight

        def regulariser(logits):
            probs = ops.sigmoid(logits)
            mean_all = ops.sum(ops.mul(probs, Tensor(overall)))
            penalty = None
            for mask in masks:
                if mask.sum() == 0:
                    continue
                gap = ops.sub(ops.sum(ops.mul(probs, Tensor(mask))), mean_all)
                term = ops.power(gap, 2.0)
                penalty = term if penalty is None else ops.add(penalty, term)
            return ops.mul(penalty, weight)

        return regulariser

    def _batch_parity_regulariser(self, clusters: np.ndarray, num_real: int):
        """Sampled parity penalty for minibatch training.

        Per batch: squared deviation of each cluster's mean predicted
        probability (over the cluster's *batch* members) from the batch mean
        — the batch-local estimate of :meth:`_parity_regulariser`.  Synthetic
        nodes (ids >= ``num_real``) carry no cluster and are excluded, as in
        the full-batch penalty.
        """
        weight = self.parity_weight
        num_clusters = self.num_clusters

        def regulariser(logits, batch):
            batch = np.asarray(batch)
            real = batch < num_real
            real_count = int(real.sum())
            if real_count == 0:
                return Tensor(np.zeros(()))
            batch_clusters = np.where(real, clusters[np.minimum(batch, num_real - 1)], -1)
            probs = ops.sigmoid(logits)
            overall = np.where(real, 1.0 / real_count, 0.0)
            mean_all = ops.sum(ops.mul(probs, Tensor(overall)))
            penalty = None
            for cluster in range(num_clusters):
                members = batch_clusters == cluster
                member_count = int(members.sum())
                if member_count == 0:
                    continue
                mask = np.where(members, 1.0 / member_count, 0.0)
                gap = ops.sub(ops.sum(ops.mul(probs, Tensor(mask))), mean_all)
                term = ops.power(gap, 2.0)
                penalty = term if penalty is None else ops.add(penalty, term)
            if penalty is None:
                return Tensor(np.zeros(()))
            return ops.mul(penalty, weight)

        return regulariser

    # ------------------------------------------------------------------ #
    def _balance(self, graph: Graph, clusters: np.ndarray, rng: np.random.Generator):
        """SMOTE oversampling of minority classes inside each pseudo-group.

        Vectorized per cluster: all of a cluster's synthetic parents and
        interpolation weights are drawn in one batch, so balancing a
        100k-node graph is a handful of numpy calls per pseudo-group.
        """
        synth_features: list[np.ndarray] = []
        synth_labels: list[np.ndarray] = []
        synth_parents: list[np.ndarray] = []
        train = graph.train_mask
        budget = int(self.max_synthetic_fraction * graph.num_nodes)
        drawn = 0

        for cluster in range(self.num_clusters):
            members = np.where((clusters == cluster) & train)[0]
            if members.size < 4:
                continue
            member_labels = graph.labels[members]
            counts = np.bincount(member_labels, minlength=2)
            if counts.min() < 2 or counts[0] == counts[1]:
                continue
            minority = int(counts.argmin())
            pool = members[member_labels == minority]
            deficit = min(int(counts.max() - counts.min()), budget - drawn)
            if deficit <= 0:
                continue
            first = rng.integers(0, pool.size, size=deficit)
            # Offset by a nonzero amount mod pool size: a uniform same-class
            # partner distinct from the first parent (pool.size >= 2 here).
            second = (first + rng.integers(1, pool.size, size=deficit)) % pool.size
            mix = rng.random(size=(deficit, 1))
            parents_a, parents_b = pool[first], pool[second]
            synth_features.append(
                mix * graph.features[parents_a]
                + (1.0 - mix) * graph.features[parents_b]
            )
            synth_labels.append(np.full(deficit, minority, dtype=np.int64))
            synth_parents.append(parents_a.astype(np.int64))
            drawn += deficit

        if drawn == 0:
            return (
                graph.features,
                graph.adjacency,
                graph.labels,
                graph.train_mask,
                0,
            )
        features = np.vstack([graph.features, *synth_features])
        labels = np.concatenate([graph.labels, *synth_labels])
        train_mask = np.concatenate([graph.train_mask, np.ones(drawn, dtype=bool)])
        adjacency = self._extend_adjacency(
            graph.adjacency, np.concatenate(synth_parents)
        )
        return features, adjacency, labels, train_mask, drawn

    @staticmethod
    def _extend_adjacency(
        adjacency: sp.csr_matrix, parents: np.ndarray
    ) -> sp.csr_matrix:
        """Wire each synthetic node to its parent's neighbourhood + parent.

        Fully vectorized over the parent array (one ``np.repeat`` edge
        expansion), so extending a large graph is O(new edges) numpy work.
        """
        parents = np.asarray(parents, dtype=np.int64)
        num_real = adjacency.shape[0]
        num_synth = parents.size
        num_total = num_real + num_synth
        degrees = np.diff(adjacency.indptr)[parents]
        total = int(degrees.sum())
        # Every parent's neighbour list, expanded in one shot.
        row_starts = np.concatenate(([0], np.cumsum(degrees)))[:-1]
        within = np.arange(total) - np.repeat(row_starts, degrees)
        neighbors = adjacency.indices[np.repeat(adjacency.indptr[parents], degrees) + within]
        # Append-only: the (N, N) block is the standing CSR, untouched; only
        # the synthetic rows/columns are materialised as COO.  The previous
        # implementation round-tripped the whole (N+S)² matrix through COO —
        # an O(nnz) re-sort and triple-array allocation per oversampling
        # call that dominated covering-mode setup at the 1M tier.
        synth_ids = np.arange(num_synth, dtype=np.int64)
        synth_of_edge = np.repeat(synth_ids, degrees)
        new_rows = np.concatenate([synth_of_edge, synth_ids])
        new_cols = np.concatenate([neighbors, parents])
        ones = np.ones(new_rows.size)
        bottom = sp.csr_matrix(
            (ones, (new_rows, new_cols)), shape=(num_synth, num_total)
        )
        bottom.sum_duplicates()
        bottom.data = np.ones_like(bottom.data)
        top_right = sp.csr_matrix(
            (ones, (new_cols, new_rows)), shape=(num_real, num_synth)
        )
        top_right.sum_duplicates()
        top_right.data = np.ones_like(top_right.data)
        base = adjacency.tocsr().copy()
        base.sum_duplicates()
        base.data = np.ones_like(base.data)
        out = sp.vstack(
            [sp.hstack([base, top_right], format="csr"), bottom], format="csr"
        )
        out.sort_indices()
        return out
