"""Vanilla\\S — the plain backbone trained without sensitive attributes."""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineMethod
from repro.graph import Graph
from repro.gnnzoo import make_backbone
from repro.tensor import Tensor
from repro.training import (
    fit_binary_classifier,
    fit_minibatch,
    predict_logits,
    predict_logits_batched,
)

__all__ = ["Vanilla"]


class Vanilla(BaselineMethod):
    """Backbone GNN with plain cross-entropy training (no fairness).

    ``minibatch=True`` trains with neighbour-sampled batches
    (:func:`repro.training.fit_minibatch`), which is the recommended path on
    graphs beyond a few thousand nodes; evaluation then uses exact batched
    inference, so the reported metrics are sampling-free.
    """

    name = "Vanilla\\S"

    def __init__(
        self,
        minibatch: bool = False,
        fanouts: tuple[int, ...] | None = None,
        batch_size: int = 512,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        self.minibatch = minibatch
        self.fanouts = fanouts
        self.batch_size = batch_size

    def _train_logits(self, graph: Graph, rng: np.random.Generator):
        model = make_backbone(
            self.backbone, graph.num_features, self.hidden_dim, rng,
            num_layers=self.num_layers,
        )
        features = Tensor(graph.features)
        if self.minibatch:
            history = fit_minibatch(
                model,
                features,
                graph.adjacency,
                graph.labels,
                graph.train_mask,
                graph.val_mask,
                epochs=self.epochs,
                fanouts=self.fanouts,
                batch_size=self.batch_size,
                lr=self.lr,
                patience=self.patience,
                rng=rng,
            )
            logits = predict_logits_batched(
                model, features, graph.adjacency, batch_size=self.batch_size
            )
        else:
            history = fit_binary_classifier(
                model,
                features,
                graph.adjacency,
                graph.labels,
                graph.train_mask,
                graph.val_mask,
                epochs=self.epochs,
                lr=self.lr,
                patience=self.patience,
            )
            logits = predict_logits(model, features, graph.adjacency)
        return logits, {"best_epoch": history.best_epoch}
