"""Vanilla\\S — the plain backbone trained without sensitive attributes."""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineMethod
from repro.graph import Graph
from repro.gnnzoo import make_backbone
from repro.tensor import Tensor

__all__ = ["Vanilla"]


class Vanilla(BaselineMethod):
    """Backbone GNN with plain cross-entropy training (no fairness).

    ``minibatch=True`` trains with neighbour-sampled batches
    (:func:`repro.training.fit_minibatch`), which is the recommended path on
    graphs beyond a few thousand nodes; evaluation then uses exact batched
    inference, so the reported metrics are sampling-free.
    """

    name = "Vanilla\\S"

    def __init__(
        self,
        minibatch: bool = False,
        fanouts: tuple[int, ...] | None = None,
        batch_size: int = 512,
        cache_epochs: int = 1,
        num_workers: int = 0,
        prefetch_epochs: int = 1,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        self.minibatch = minibatch
        self.fanouts = fanouts
        self.batch_size = batch_size
        self.cache_epochs = cache_epochs
        self.num_workers = num_workers
        self.prefetch_epochs = prefetch_epochs

    def _train_logits(self, graph: Graph, rng: np.random.Generator):
        model = make_backbone(
            self.backbone, graph.num_features, self.hidden_dim, rng,
            num_layers=self.num_layers,
        )
        history, logits = self._fit_and_predict(
            model, Tensor(graph.features), graph, rng
        )
        return logits, {"best_epoch": history.best_epoch}
