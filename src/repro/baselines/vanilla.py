"""Vanilla\\S — the plain backbone trained without sensitive attributes."""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineMethod
from repro.graph import Graph
from repro.gnnzoo import make_backbone
from repro.tensor import Tensor
from repro.training import fit_binary_classifier, predict_logits

__all__ = ["Vanilla"]


class Vanilla(BaselineMethod):
    """Backbone GNN with plain cross-entropy training (no fairness)."""

    name = "Vanilla\\S"

    def _train_logits(self, graph: Graph, rng: np.random.Generator):
        model = make_backbone(
            self.backbone, graph.num_features, self.hidden_dim, rng,
            num_layers=self.num_layers,
        )
        features = Tensor(graph.features)
        history = fit_binary_classifier(
            model,
            features,
            graph.adjacency,
            graph.labels,
            graph.train_mask,
            graph.val_mask,
            epochs=self.epochs,
            lr=self.lr,
            patience=self.patience,
        )
        logits = predict_logits(model, features, graph.adjacency)
        return logits, {"best_epoch": history.best_epoch}
