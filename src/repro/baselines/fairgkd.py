"""FairGKD\\S — partial knowledge distillation (Zhu et al., WSDM 2024).

"The Devil is in the Data" trains *two teachers on partial data* — one sees
only node features (an MLP), one sees only the graph structure (a GNN on
constant features) — and distils their averaged representation into a
student GNN that sees everything.  The intuition: each teacher alone cannot
exploit feature×structure interactions, which is where much of the sensitive
leakage lives, so matching their fused representation debiases the student.

Following the paper's setup, we use the variant without sensitive attributes
(FairGKD\\S): teachers are trained with plain cross-entropy.

``minibatch=True`` scales every stage: both teachers train through
:func:`~repro.training.fit_minibatch` (the MLP teacher is block-capable —
it simply reads the seed rows of the input block), the fused teacher target
is extracted with exact batched inference, and the student's distillation
epochs run on neighbour-sampled batches over all nodes (cross-entropy on the
batch's labelled members, representation matching on the whole batch).  A
covering batch with exhaustive fanout reproduces the full-batch run to float
precision; sampled runs stay within the usual two points.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineMethod
from repro.graph import Graph
from repro.graph.sampling import is_block_sequence
from repro.graph.utils import degree_vector
from repro.gnnzoo import make_backbone
from repro.nn import MLP, Linear, Module, binary_cross_entropy_with_logits
from repro.optim import Adam
from repro.tensor import Tensor, no_grad
from repro.tensor import ops
from repro.training import (
    DEFAULT_FANOUT,
    MinibatchEngine,
    TrainStep,
    embed_batched,
    fit_binary_classifier,
    fit_minibatch,
    predict_logits,
)
from repro.fairness.metrics import accuracy

__all__ = ["FairGKD"]


class _FeatureTeacher(Module):
    """MLP teacher that ignores the graph structure.

    Block-capable so :func:`~repro.training.fit_minibatch` and the batched
    inference helpers can drive it: with blocks, the "message passing" is a
    no-op and the teacher just reads the seed rows (the first ``num_dst``
    rows of the input block, per the block convention).
    """

    # Tells the sampled training path that no neighbour is ever read, so it
    # can skip neighbour sampling entirely instead of gathering rows that
    # embed_blocks would discard.
    graph_free = True

    def __init__(self, in_dim: int, hidden_dim: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.body = MLP([in_dim, hidden_dim, hidden_dim], rng)
        self.head = Linear(hidden_dim, 1, rng)
        self.num_layers = 1

    def embed(self, features, adjacency):
        return self.body(features)

    def embed_blocks(self, features, blocks):
        seed_rows = np.arange(blocks[-1].num_dst)
        return self.body(ops.gather(features, seed_rows))

    def forward(self, features, support):
        if is_block_sequence(support):
            h = self.embed_blocks(features, list(support))
        else:
            h = self.embed(features, support)
        return self.head(h).reshape(-1)


class FairGKD(BaselineMethod):
    """Distil a student GNN from feature-only and structure-only teachers.

    Parameters
    ----------
    distill_weight:
        Weight γ of the representation-matching loss.
    teacher_epochs:
        Training epochs per teacher (the expensive part — Fig. 8 shows
        FairGKD as the slowest baseline because of its two extra models).
    minibatch, fanouts, batch_size:
        Neighbour-sampled training of teachers and student (see the module
        docstring).
    """

    name = "FairGKD\\S"

    def __init__(
        self,
        distill_weight: float = 0.5,
        teacher_epochs: int | None = None,
        minibatch: bool = False,
        fanouts: tuple[int, ...] | None = None,
        batch_size: int = 512,
        cache_epochs: int = 1,
        num_workers: int = 0,
        prefetch_epochs: int = 1,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        if distill_weight < 0:
            raise ValueError(f"distill_weight must be non-negative, got {distill_weight}")
        if teacher_epochs is not None and teacher_epochs < 1:
            # Reject rather than letting a falsy 0 fall back to self.epochs.
            raise ValueError(
                f"teacher_epochs must be >= 1 or None, got {teacher_epochs}"
            )
        self.distill_weight = distill_weight
        self.teacher_epochs = teacher_epochs
        self.minibatch = minibatch
        self.fanouts = fanouts
        self.batch_size = batch_size
        self.cache_epochs = cache_epochs
        self.num_workers = num_workers
        self.prefetch_epochs = prefetch_epochs

    # ------------------------------------------------------------------ #
    def _train_logits(self, graph: Graph, rng: np.random.Generator):
        teacher_epochs = (
            self.epochs if self.teacher_epochs is None else self.teacher_epochs
        )
        features = Tensor(graph.features)
        if self.minibatch:
            # Validate the whole sampling configuration before any work:
            # teacher training is the dominant cost, so a fanouts/num_layers
            # mismatch must not surface only when the student starts.
            fanouts, _ = self._sampling_config()
            if fanouts is not None and len(fanouts) != self.num_layers:
                raise ValueError(
                    f"fanouts has {len(fanouts)} entries but the backbone "
                    f"has {self.num_layers} layers"
                )
        # Drawn in *both* modes so weight initialisation consumes the same
        # stream regardless of `minibatch` — a covering sampled run then
        # starts from identical teacher/student weights.
        train_rng = np.random.default_rng(int(rng.integers(2**63)))

        # Teacher A: features only.
        teacher_a = _FeatureTeacher(graph.num_features, self.hidden_dim, rng)
        self._fit_teacher(teacher_a, features, graph, teacher_epochs, train_rng)

        # Teacher B: structure only — constant + normalised-degree features.
        degrees = degree_vector(graph.adjacency)
        scale = degrees.max() if degrees.max() > 0 else 1.0
        structure_feats = Tensor(
            np.stack([np.ones(graph.num_nodes), degrees / scale], axis=1)
        )
        teacher_b = make_backbone(
            self.backbone, 2, self.hidden_dim, rng, num_layers=self.num_layers
        )
        self._fit_teacher(teacher_b, structure_feats, graph, teacher_epochs, train_rng)

        # Fused teacher target: average of the two representations.
        with no_grad():
            rep_a = teacher_a.embed(features, graph.adjacency).data
            if self.minibatch:
                rep_b = embed_batched(
                    teacher_b,
                    structure_feats,
                    graph.adjacency,
                    batch_size=self.batch_size,
                )
            else:
                rep_b = teacher_b.embed(structure_feats, graph.adjacency).data
        target = 0.5 * (rep_a + rep_b)

        # Student: full-input GNN with CE + representation distillation
        # through a learnable projection (aligns the student's and teachers'
        # representation spaces, as in the original method).
        student = make_backbone(
            self.backbone, graph.num_features, self.hidden_dim, rng,
            num_layers=self.num_layers,
        )
        projection = Linear(self.hidden_dim, self.hidden_dim, rng)
        if self.minibatch:
            logits = self._fit_student_minibatch(
                student, projection, graph, target, train_rng
            )
        else:
            logits = self._fit_student_fullbatch(
                student, projection, graph, features, target
            )
        return logits, {"teacher_epochs": teacher_epochs}

    # ------------------------------------------------------------------ #
    def _fit_teacher(
        self, teacher, teacher_features, graph: Graph, epochs: int,
        train_rng: np.random.Generator,
    ) -> None:
        if self.minibatch:
            fanouts, batch_size = self._sampling_config()
            if fanouts is None:
                fanouts = (DEFAULT_FANOUT,) * teacher.num_layers
            if getattr(teacher, "graph_free", False):
                # The MLP teacher never reads a neighbour row: a fanout of 1
                # keeps the block machinery happy at near-zero sampling cost
                # (and its output is neighbour-independent either way).
                fanouts = (1,) * teacher.num_layers
            fit_minibatch(
                teacher, teacher_features, graph.adjacency, graph.labels,
                graph.train_mask, graph.val_mask,
                epochs=epochs, fanouts=fanouts[: teacher.num_layers],
                batch_size=batch_size, lr=self.lr, patience=self.patience,
                rng=train_rng, cache_epochs=self.cache_epochs,
                num_workers=self.num_workers,
                prefetch_epochs=self.prefetch_epochs,
            )
        else:
            fit_binary_classifier(
                teacher, teacher_features, graph.adjacency, graph.labels,
                graph.train_mask, graph.val_mask,
                epochs=epochs, lr=self.lr, patience=self.patience,
            )

    # ------------------------------------------------------------------ #
    def _fit_student_fullbatch(
        self, student, projection, graph: Graph, features, target: np.ndarray
    ) -> np.ndarray:
        target_tensor = Tensor(target)
        optimizer = Adam(student.parameters() + projection.parameters(), lr=self.lr)
        train_idx = np.where(graph.train_mask)[0]
        train_labels = graph.labels[train_idx].astype(np.float64)
        best_val, best_state, since_best = -1.0, student.state_dict(), 0
        for _ in range(self.epochs):
            student.train()
            optimizer.zero_grad()
            h = student.embed(features, graph.adjacency)
            logits = student.head(h).reshape(-1)
            ce = binary_cross_entropy_with_logits(logits[train_idx], train_labels)
            distill = ops.mean(ops.squared_distance(projection(h), target_tensor))
            loss = ops.add(ce, ops.mul(distill, self.distill_weight))
            loss.backward()
            optimizer.step()

            val_logits = predict_logits(student, features, graph.adjacency)[
                graph.val_mask
            ]
            val_acc = accuracy(
                (val_logits > 0).astype(np.int64), graph.labels[graph.val_mask]
            )
            if val_acc > best_val:
                best_val, best_state, since_best = val_acc, student.state_dict(), 0
            else:
                since_best += 1
                if self.patience is not None and since_best > self.patience:
                    break
        student.load_state_dict(best_state)
        return predict_logits(student, features, graph.adjacency)

    # ------------------------------------------------------------------ #
    def _fit_student_minibatch(
        self, student, projection, graph: Graph, target: np.ndarray,
        train_rng: np.random.Generator,
    ) -> np.ndarray:
        """Sampled distillation epochs (see the module docstring)."""
        fanouts, batch_size = self._sampling_config()
        engine = MinibatchEngine(
            student,
            graph.features,
            graph.adjacency,
            fanouts=fanouts,
            batch_size=batch_size,
            cache_epochs=self.cache_epochs,
            optimizer=Adam(
                student.parameters() + projection.parameters(), lr=self.lr
            ),
            num_workers=self.num_workers,
            prefetch_epochs=self.prefetch_epochs,
        )
        train_mask = np.asarray(graph.train_mask, dtype=bool)
        val_indices = np.where(graph.val_mask)[0]

        def loss_fn(step: TrainStep) -> Tensor:
            batch, h = step.batch, step.output
            logits = student.head(h).reshape(-1)
            batch_train = train_mask[batch]
            if batch_train.any():
                ce = binary_cross_entropy_with_logits(
                    logits[batch_train],
                    graph.labels[batch[batch_train]].astype(np.float64),
                )
            else:
                ce = Tensor(np.zeros(()))
            distill = ops.mean(
                ops.squared_distance(projection(h), Tensor(target[batch]))
            )
            return ops.add(ce, ops.mul(distill, self.distill_weight))

        engine.run(
            np.arange(graph.num_nodes, dtype=np.int64),
            self.epochs,
            loss_fn,
            train_rng,
            val_nodes=val_indices,
            val_labels=graph.labels[val_indices],
            checkpoint="best",
            patience=self.patience,
            forward="embed",
            # Sorted batches keep the within-batch summation order
            # deterministic; epoch randomness lives in the composition.
            sort_batches=True,
        )
        return engine.predict()
