"""FairGKD\\S — partial knowledge distillation (Zhu et al., WSDM 2024).

"The Devil is in the Data" trains *two teachers on partial data* — one sees
only node features (an MLP), one sees only the graph structure (a GNN on
constant features) — and distils their averaged representation into a
student GNN that sees everything.  The intuition: each teacher alone cannot
exploit feature×structure interactions, which is where much of the sensitive
leakage lives, so matching their fused representation debiases the student.

Following the paper's setup, we use the variant without sensitive attributes
(FairGKD\\S): teachers are trained with plain cross-entropy.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineMethod
from repro.graph import Graph
from repro.graph.utils import degree_vector
from repro.gnnzoo import make_backbone
from repro.nn import MLP, Linear, Module, binary_cross_entropy_with_logits
from repro.optim import Adam
from repro.tensor import Tensor, no_grad
from repro.tensor import ops
from repro.training import fit_binary_classifier, predict_logits
from repro.fairness.metrics import accuracy

__all__ = ["FairGKD"]


class _FeatureTeacher(Module):
    """MLP teacher that ignores the graph structure."""

    def __init__(self, in_dim: int, hidden_dim: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.body = MLP([in_dim, hidden_dim, hidden_dim], rng)
        self.head = Linear(hidden_dim, 1, rng)

    def embed(self, features, adjacency):
        return self.body(features)

    def forward(self, features, adjacency):
        return self.head(self.embed(features, adjacency)).reshape(-1)


class FairGKD(BaselineMethod):
    """Distil a student GNN from feature-only and structure-only teachers.

    Parameters
    ----------
    distill_weight:
        Weight γ of the representation-matching loss.
    teacher_epochs:
        Training epochs per teacher (the expensive part — Fig. 8 shows
        FairGKD as the slowest baseline because of its two extra models).
    """

    name = "FairGKD\\S"

    def __init__(
        self, distill_weight: float = 0.5, teacher_epochs: int | None = None, **kwargs
    ) -> None:
        super().__init__(**kwargs)
        if distill_weight < 0:
            raise ValueError(f"distill_weight must be non-negative, got {distill_weight}")
        self.distill_weight = distill_weight
        self.teacher_epochs = teacher_epochs

    # ------------------------------------------------------------------ #
    def _train_logits(self, graph: Graph, rng: np.random.Generator):
        teacher_epochs = self.teacher_epochs or self.epochs
        features = Tensor(graph.features)

        # Teacher A: features only.
        teacher_a = _FeatureTeacher(graph.num_features, self.hidden_dim, rng)
        fit_binary_classifier(
            teacher_a, features, graph.adjacency, graph.labels,
            graph.train_mask, graph.val_mask,
            epochs=teacher_epochs, lr=self.lr, patience=self.patience,
        )

        # Teacher B: structure only — constant + normalised-degree features.
        degrees = degree_vector(graph.adjacency)
        scale = degrees.max() if degrees.max() > 0 else 1.0
        structure_feats = Tensor(
            np.stack([np.ones(graph.num_nodes), degrees / scale], axis=1)
        )
        teacher_b = make_backbone(
            self.backbone, 2, self.hidden_dim, rng, num_layers=self.num_layers
        )
        fit_binary_classifier(
            teacher_b, structure_feats, graph.adjacency, graph.labels,
            graph.train_mask, graph.val_mask,
            epochs=teacher_epochs, lr=self.lr, patience=self.patience,
        )

        # Fused teacher target: average of the two representations.
        with no_grad():
            rep_a = teacher_a.embed(features, graph.adjacency).data
            rep_b = teacher_b.embed(structure_feats, graph.adjacency).data
        target = Tensor(0.5 * (rep_a + rep_b))

        # Student: full-input GNN with CE + representation distillation
        # through a learnable projection (aligns the student's and teachers'
        # representation spaces, as in the original method).
        student = make_backbone(
            self.backbone, graph.num_features, self.hidden_dim, rng,
            num_layers=self.num_layers,
        )
        projection = Linear(self.hidden_dim, self.hidden_dim, rng)
        optimizer = Adam(student.parameters() + projection.parameters(), lr=self.lr)
        train_idx = np.where(graph.train_mask)[0]
        train_labels = graph.labels[train_idx].astype(np.float64)
        best_val, best_state, since_best = -1.0, student.state_dict(), 0
        for _ in range(self.epochs):
            student.train()
            optimizer.zero_grad()
            h = student.embed(features, graph.adjacency)
            logits = student.head(h).reshape(-1)
            ce = binary_cross_entropy_with_logits(logits[train_idx], train_labels)
            distill = ops.mean(
                ops.sum(ops.power(ops.sub(projection(h), target), 2.0), axis=1)
            )
            loss = ops.add(ce, ops.mul(distill, self.distill_weight))
            loss.backward()
            optimizer.step()

            val_logits = predict_logits(student, features, graph.adjacency)[
                graph.val_mask
            ]
            val_acc = accuracy(
                (val_logits > 0).astype(np.int64), graph.labels[graph.val_mask]
            )
            if val_acc > best_val:
                best_val, best_state, since_best = val_acc, student.state_dict(), 0
            else:
                since_best += 1
                if self.patience is not None and since_best > self.patience:
                    break
        student.load_state_dict(best_state)
        logits = predict_logits(student, features, graph.adjacency)
        return logits, {"teacher_epochs": teacher_epochs}
