"""Baselines for fairness *without* sensitive attributes (Section V-A-3).

All methods train the same backbone GNNs as Fairwos and never read
``graph.sensitive``:

* :class:`Vanilla` — the plain backbone ("Vanilla\\S");
* :class:`RemoveR` — drop all candidate related (proxy) attributes before
  training;
* :class:`KSMOTE` — pseudo-groups from k-means + fair class balancing
  (Yan et al., CIKM 2020);
* :class:`FairRF` — penalise correlation between the prediction and each
  related feature, with learned per-feature weights (Zhao et al., WSDM 2022);
* :class:`FairGKD` — partial-knowledge distillation from a feature-only and
  a structure-only teacher ("FairGKD\\S", Zhu et al., WSDM 2024).
"""

from repro.baselines.base import BaselineMethod, MethodResult
from repro.baselines.vanilla import Vanilla
from repro.baselines.remover import RemoveR
from repro.baselines.ksmote import KSMOTE
from repro.baselines.fairrf import FairRF
from repro.baselines.fairgkd import FairGKD

__all__ = [
    "BaselineMethod",
    "MethodResult",
    "Vanilla",
    "RemoveR",
    "KSMOTE",
    "FairRF",
    "FairGKD",
]
