"""RemoveR — drop the candidate related attributes, then train vanilla.

The pre-processing baseline of Section V-A-3: all features suspected of
proxying the sensitive attribute are deleted before training.  Which columns
count as "candidate related" is supplied by ``graph.related_feature_indices``
(the synthetic generators expose the ground-truth proxy columns; on real
data a practitioner would provide the list, as in the FairRF setting).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineMethod
from repro.graph import Graph
from repro.gnnzoo import make_backbone
from repro.tensor import Tensor
from repro.training import fit_binary_classifier, predict_logits

__all__ = ["RemoveR"]


class RemoveR(BaselineMethod):
    """Pre-processing baseline: train on the graph minus proxy columns."""

    name = "RemoveR"

    def _train_logits(self, graph: Graph, rng: np.random.Generator):
        if graph.related_feature_indices.size == 0:
            raise ValueError(
                "RemoveR needs graph.related_feature_indices (candidate proxy "
                "columns) to know what to remove"
            )
        if graph.related_feature_indices.size >= graph.num_features:
            raise ValueError("cannot remove every feature column")
        reduced = graph.without_columns(graph.related_feature_indices)
        model = make_backbone(
            self.backbone, reduced.num_features, self.hidden_dim, rng,
            num_layers=self.num_layers,
        )
        features = Tensor(reduced.features)
        fit_binary_classifier(
            model,
            features,
            reduced.adjacency,
            reduced.labels,
            reduced.train_mask,
            reduced.val_mask,
            epochs=self.epochs,
            lr=self.lr,
            patience=self.patience,
        )
        logits = predict_logits(model, features, reduced.adjacency)
        return logits, {"removed_columns": int(graph.related_feature_indices.size)}
