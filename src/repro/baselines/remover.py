"""RemoveR — drop the candidate related attributes, then train vanilla.

The pre-processing baseline of Section V-A-3: all features suspected of
proxying the sensitive attribute are deleted before training.  Which columns
count as "candidate related" is supplied by ``graph.related_feature_indices``
(the synthetic generators expose the ground-truth proxy columns; on real
data a practitioner would provide the list, as in the FairRF setting).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineMethod
from repro.graph import Graph
from repro.gnnzoo import make_backbone
from repro.tensor import Tensor

__all__ = ["RemoveR"]


class RemoveR(BaselineMethod):
    """Pre-processing baseline: train on the graph minus proxy columns.

    ``minibatch=True`` trains on the reduced graph with neighbour-sampled
    batches (:func:`repro.training.fit_minibatch`) — column removal is a
    pre-processing step, so it composes with sampled training exactly like
    Vanilla; evaluation uses exact batched inference.
    """

    name = "RemoveR"

    def __init__(
        self,
        minibatch: bool = False,
        fanouts: tuple[int, ...] | None = None,
        batch_size: int = 512,
        cache_epochs: int = 1,
        num_workers: int = 0,
        prefetch_epochs: int = 1,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        self.minibatch = minibatch
        self.fanouts = fanouts
        self.batch_size = batch_size
        self.cache_epochs = cache_epochs
        self.num_workers = num_workers
        self.prefetch_epochs = prefetch_epochs

    def _train_logits(self, graph: Graph, rng: np.random.Generator):
        if graph.related_feature_indices.size == 0:
            raise ValueError(
                "RemoveR needs graph.related_feature_indices (candidate proxy "
                "columns) to know what to remove"
            )
        if graph.related_feature_indices.size >= graph.num_features:
            raise ValueError("cannot remove every feature column")
        reduced = graph.without_columns(graph.related_feature_indices)
        model = make_backbone(
            self.backbone, reduced.num_features, self.hidden_dim, rng,
            num_layers=self.num_layers,
        )
        _, logits = self._fit_and_predict(
            model, Tensor(reduced.features), reduced, rng
        )
        self.feature_columns_ = np.setdiff1d(
            np.arange(graph.num_features), graph.related_feature_indices
        ).astype(np.int64)
        return logits, {"removed_columns": int(graph.related_feature_indices.size)}
