"""FairRF — fairness via related features (Zhao et al., WSDM 2022).

The method assumes a set of *related features* — non-sensitive columns known
to correlate with the hidden sensitive attribute — and minimises the squared
Pearson correlation between the model's predicted probability and each
related feature.  Per-feature weights live on a simplex and are re-solved in
closed form each epoch, emphasising the currently most-correlated features
(the same machinery as Fairwos's λ update, with the "prefer high" sign).

The related features come from ``graph.related_feature_indices``.

``minibatch=True`` evaluates both the utility and the correlation terms on
neighbour-sampled batches drawn over *all* nodes (cross-entropy on the
batch's labelled members, correlations on the whole batch), running on the
shared :class:`~repro.training.MinibatchEngine`.  The per-epoch
feature-weight update uses a streaming running-moment (Welford/Chan)
estimator pooled across the epoch's batches
(:class:`~repro.analysis.StreamingCorrelation`) rather than the mean of
per-batch squared correlations — the latter is biased upward at small
batches (``E[corr²_batch] > corr²_full``), which made the weight update
chase sampling noise.  A single covering batch with exhaustive fanout
computes exactly the full-batch objective, which the differential tests pin
to float precision; genuinely sampled runs stay within the usual two points
of the full-batch metrics.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import StreamingCorrelation
from repro.baselines.base import BaselineMethod
from repro.core.weights import WeightUpdater
from repro.graph import Graph
from repro.gnnzoo import make_backbone
from repro.nn import binary_cross_entropy_with_logits
from repro.optim import Adam
from repro.tensor import Tensor
from repro.tensor import ops
from repro.training import MinibatchEngine, TrainStep, predict_logits
from repro.fairness.metrics import accuracy

__all__ = ["FairRF"]


def _differentiable_correlation(prediction, feature_column: np.ndarray):
    """Squared Pearson correlation between a prediction tensor and a column."""
    column = feature_column - feature_column.mean()
    denom_col = float(np.sqrt((column**2).sum()))
    if denom_col == 0:
        return None
    centered = ops.sub(prediction, ops.mean(prediction))
    cov = ops.sum(ops.mul(centered, Tensor(column)))
    var = ops.add(ops.sum(ops.power(centered, 2.0)), 1e-12)
    corr = ops.div(cov, ops.mul(ops.sqrt(var), denom_col))
    return ops.power(corr, 2.0)


class FairRF(BaselineMethod):
    """Correlation-to-related-features regularisation with learned weights.

    Parameters
    ----------
    beta:
        Regularisation strength on the weighted correlation term.
    minibatch, fanouts, batch_size:
        Neighbour-sampled training (see the module docstring).
    """

    name = "FairRF"

    def __init__(
        self,
        beta: float = 1.0,
        minibatch: bool = False,
        fanouts: tuple[int, ...] | None = None,
        batch_size: int = 512,
        cache_epochs: int = 1,
        num_workers: int = 0,
        prefetch_epochs: int = 1,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        if beta < 0:
            raise ValueError(f"beta must be non-negative, got {beta}")
        self.beta = beta
        self.minibatch = minibatch
        self.fanouts = fanouts
        self.batch_size = batch_size
        self.cache_epochs = cache_epochs
        self.num_workers = num_workers
        self.prefetch_epochs = prefetch_epochs

    def _train_logits(self, graph: Graph, rng: np.random.Generator):
        related = graph.related_feature_indices
        if related.size == 0:
            raise ValueError(
                "FairRF needs graph.related_feature_indices (candidate "
                "related features)"
            )
        model = make_backbone(
            self.backbone, graph.num_features, self.hidden_dim, rng,
            num_layers=self.num_layers,
        )
        columns = [graph.features[:, j].copy() for j in related]
        updater = WeightUpdater(
            len(columns), alpha=self.beta, prefer_high_disparity=True
        )
        if self.minibatch:
            logits = self._train_minibatch(graph, model, columns, updater, rng)
        else:
            logits = self._train_fullbatch(graph, model, columns, updater)
        return logits, {
            "related_features": int(related.size),
            "final_weights": updater.weights.copy(),
        }

    # ------------------------------------------------------------------ #
    def _train_fullbatch(
        self, graph: Graph, model, columns, updater: WeightUpdater
    ) -> np.ndarray:
        features = Tensor(graph.features)
        optimizer = Adam(model.parameters(), lr=self.lr)
        train_idx = np.where(graph.train_mask)[0]
        train_labels = graph.labels[train_idx].astype(np.float64)
        best_val, best_state, since_best = -1.0, model.state_dict(), 0

        for _ in range(self.epochs):
            model.train()
            optimizer.zero_grad()
            logits = model(features, graph.adjacency)
            loss = binary_cross_entropy_with_logits(logits[train_idx], train_labels)
            probs = ops.sigmoid(logits)
            correlations = np.zeros(len(columns))
            reg = None
            for j, column in enumerate(columns):
                corr_sq = _differentiable_correlation(probs, column)
                if corr_sq is None:
                    continue
                correlations[j] = float(corr_sq.data)
                term = ops.mul(corr_sq, float(updater.weights[j]))
                reg = term if reg is None else ops.add(reg, term)
            if reg is not None:
                loss = ops.add(loss, ops.mul(reg, self.beta))
            loss.backward()
            optimizer.step()
            updater.update(correlations)

            val_logits = predict_logits(model, features, graph.adjacency)[
                graph.val_mask
            ]
            val_acc = accuracy(
                (val_logits > 0).astype(np.int64), graph.labels[graph.val_mask]
            )
            if val_acc > best_val:
                best_val, best_state, since_best = val_acc, model.state_dict(), 0
            else:
                since_best += 1
                if self.patience is not None and since_best > self.patience:
                    break

        model.load_state_dict(best_state)
        return predict_logits(model, features, graph.adjacency)

    # ------------------------------------------------------------------ #
    def _train_minibatch(
        self,
        graph: Graph,
        model,
        columns,
        updater: WeightUpdater,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Neighbour-sampled FairRF epochs (see the module docstring)."""
        fanouts, batch_size = self._sampling_config()
        engine = MinibatchEngine(
            model,
            graph.features,
            graph.adjacency,
            fanouts=fanouts,
            batch_size=batch_size,
            cache_epochs=self.cache_epochs,
            lr=self.lr,
            num_workers=self.num_workers,
            prefetch_epochs=self.prefetch_epochs,
        )
        train_mask = np.asarray(graph.train_mask, dtype=bool)
        val_indices = np.where(graph.val_mask)[0]
        column_matrix = np.stack(columns, axis=1)
        moments = StreamingCorrelation(len(columns))

        def on_epoch_start(epoch: int) -> None:
            nonlocal moments
            moments = StreamingCorrelation(len(columns))

        def loss_fn(step: TrainStep) -> Tensor:
            batch, logits = step.batch, step.output
            batch_train = train_mask[batch]
            if batch_train.any():
                loss = binary_cross_entropy_with_logits(
                    logits[batch_train],
                    graph.labels[batch[batch_train]].astype(np.float64),
                )
            else:
                loss = Tensor(np.zeros(()))
            probs = ops.sigmoid(logits)
            reg = None
            for j, column in enumerate(columns):
                corr_sq = _differentiable_correlation(probs, column[batch])
                if corr_sq is None:
                    continue
                term = ops.mul(corr_sq, float(updater.weights[j]))
                reg = term if reg is None else ops.add(reg, term)
            if reg is not None:
                loss = ops.add(loss, ops.mul(reg, self.beta))
            moments.update(probs.data, column_matrix[batch])
            return loss

        def on_epoch_end(epoch: int) -> None:
            updater.update(moments.squared_correlations())

        engine.run(
            np.arange(graph.num_nodes, dtype=np.int64),
            self.epochs,
            loss_fn,
            rng,
            val_nodes=val_indices,
            val_labels=graph.labels[val_indices],
            checkpoint="best",
            patience=self.patience,
            # Sorted batches give a deterministic within-batch summation
            # order (epoch randomness lives in the batch composition), so
            # a covering batch reproduces the full-batch epoch exactly.
            sort_batches=True,
            on_epoch_start=on_epoch_start,
            on_epoch_end=on_epoch_end,
        )
        return engine.predict()
