"""FairGNN — adversarial debiasing with sensitive attributes (oracle).

Dai & Wang (TKDE 2023): alternate between

1. an **adversary** (linear probe) trained to predict the sensitive
   attribute from the classifier's representation, and
2. the **classifier**, trained to both classify well and *fool* the
   adversary (maximise the adversary's loss), plus a covariance penalty
   between the adversary's score and the prediction.

The original also handles *limited* sensitive labels with an estimator; this
oracle variant uses the full sensitive vector directly.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineMethod
from repro.fairness.metrics import accuracy
from repro.graph import Graph
from repro.gnnzoo import make_backbone
from repro.nn import Linear, binary_cross_entropy_with_logits
from repro.optim import Adam
from repro.tensor import Tensor, no_grad
from repro.tensor import ops
from repro.training import predict_logits

__all__ = ["FairGNN"]


class FairGNN(BaselineMethod):
    """Alternating adversarial training against a sensitive-attribute probe.

    Parameters
    ----------
    adversary_weight:
        Weight of the fooling term in the classifier objective.
    covariance_weight:
        Weight of the |cov(adversary score, prediction)| penalty.
    adversary_steps:
        Adversary updates per classifier update.
    """

    name = "FairGNN (oracle)"

    def __init__(
        self,
        adversary_weight: float = 0.5,
        covariance_weight: float = 2.0,
        adversary_steps: int = 2,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        if adversary_weight < 0 or covariance_weight < 0:
            raise ValueError("adversarial weights must be non-negative")
        if adversary_steps < 1:
            raise ValueError(f"adversary_steps must be >= 1, got {adversary_steps}")
        self.adversary_weight = adversary_weight
        self.covariance_weight = covariance_weight
        self.adversary_steps = adversary_steps

    # ------------------------------------------------------------------ #
    def _train_logits(self, graph: Graph, rng: np.random.Generator):
        model = make_backbone(
            self.backbone, graph.num_features, self.hidden_dim, rng,
            num_layers=self.num_layers,
        )
        adversary = Linear(self.hidden_dim, 1, rng)
        features = Tensor(graph.features)
        sensitive = graph.sensitive.astype(np.float64)
        model_opt = Adam(model.parameters(), lr=self.lr)
        adv_opt = Adam(adversary.parameters(), lr=self.lr * 3)
        train_idx = np.where(graph.train_mask)[0]
        train_labels = graph.labels[train_idx].astype(np.float64)
        best_val, best_state, since_best = -1.0, model.state_dict(), 0

        for _ in range(self.epochs):
            # -- adversary step(s): predict s from detached embeddings ---- #
            with no_grad():
                h_detached = model.embed(features, graph.adjacency).data
            for _ in range(self.adversary_steps):
                adv_opt.zero_grad()
                adv_logits = adversary(Tensor(h_detached)).reshape(-1)
                adv_loss = binary_cross_entropy_with_logits(adv_logits, sensitive)
                adv_loss.backward()
                adv_opt.step()

            # -- classifier step: classify well + fool the adversary ------ #
            model.train()
            model_opt.zero_grad()
            h = model.embed(features, graph.adjacency)
            logits = model.head(h).reshape(-1)
            ce = binary_cross_entropy_with_logits(logits[train_idx], train_labels)
            adv_logits = adversary(h).reshape(-1)
            # Confusion loss: drive the adversary's posterior to 0.5 —
            # bounded, unlike naively maximising the adversary's BCE.
            fool = binary_cross_entropy_with_logits(
                adv_logits, np.full_like(sensitive, 0.5)
            )
            # Covariance penalty |cov(σ(adv), σ(ŷ))|.
            adv_score = ops.sigmoid(adv_logits)
            prediction = ops.sigmoid(logits)
            cov = ops.mean(
                ops.mul(
                    ops.sub(adv_score, ops.mean(adv_score)),
                    ops.sub(prediction, ops.mean(prediction)),
                )
            )
            loss = ops.add(
                ops.add(ce, ops.mul(fool, self.adversary_weight)),
                ops.mul(ops.absolute(cov), self.covariance_weight),
            )
            loss.backward()
            # Only the classifier moves here; the adversary has its own step.
            model_opt.step()

            val_logits = predict_logits(model, features, graph.adjacency)[
                graph.val_mask
            ]
            val_acc = accuracy(
                (val_logits > 0).astype(np.int64), graph.labels[graph.val_mask]
            )
            if val_acc > best_val:
                best_val, best_state, since_best = val_acc, model.state_dict(), 0
            else:
                since_best += 1
                if self.patience is not None and since_best > self.patience:
                    break

        model.load_state_dict(best_state)
        logits = predict_logits(model, features, graph.adjacency)
        return logits, {"uses_sensitive": True}
