"""NIFTY — unified fair and stable representation learning (oracle).

Agarwal, Lakkaraju & Zitnik (UAI 2021): augment each node with

* a **counterfactual view** — flip the sensitive attribute column, and
* a **noisy/stability view** — feature noise plus random edge dropping,

then maximise the agreement (cosine similarity) between the anchor
representation and both views alongside the classification loss.  This is
the style of method the paper critiques for producing *non-realistic*
counterfactuals (a flipped sensitive bit with all proxies unchanged) — kept
here as the classic sensitive-attribute-using reference point.

Because the benchmark graphs exclude the sensitive attribute from ``X`` by
construction, this oracle appends it as an extra feature column first.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.baselines.base import BaselineMethod
from repro.fairness.metrics import accuracy
from repro.graph import Graph
from repro.graph.utils import adjacency_from_edges, edges_from_adjacency
from repro.gnnzoo import make_backbone
from repro.nn import binary_cross_entropy_with_logits
from repro.optim import Adam
from repro.tensor import Tensor
from repro.tensor import ops
from repro.training import predict_logits

__all__ = ["NIFTY"]


def _cosine_disagreement(a, b):
    """Mean ``1 − cos(a_i, b_i)`` over rows (differentiable)."""
    dot = ops.sum(ops.mul(a, b), axis=1)
    norm_a = ops.sqrt(ops.add(ops.sum(ops.power(a, 2.0), axis=1), 1e-12))
    norm_b = ops.sqrt(ops.add(ops.sum(ops.power(b, 2.0), axis=1), 1e-12))
    cosine = ops.div(dot, ops.mul(norm_a, norm_b))
    return ops.mean(ops.sub(1.0, cosine))


class NIFTY(BaselineMethod):
    """Counterfactual + stability regularisation using the true sensitive attr.

    Parameters
    ----------
    sim_weight:
        Weight of the two agreement terms.
    edge_drop_rate:
        Fraction of edges removed in the stability view.
    noise_scale:
        Std of the feature noise in the stability view.
    """

    name = "NIFTY (oracle)"

    def __init__(
        self,
        sim_weight: float = 0.5,
        edge_drop_rate: float = 0.1,
        noise_scale: float = 0.1,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        if not 0.0 <= edge_drop_rate < 1.0:
            raise ValueError(f"edge_drop_rate must be in [0, 1), got {edge_drop_rate}")
        if sim_weight < 0 or noise_scale < 0:
            raise ValueError("sim_weight and noise_scale must be non-negative")
        self.sim_weight = sim_weight
        self.edge_drop_rate = edge_drop_rate
        self.noise_scale = noise_scale

    # ------------------------------------------------------------------ #
    def _train_logits(self, graph: Graph, rng: np.random.Generator):
        # Oracle access: the sensitive attribute becomes a feature column.
        sens_column = graph.sensitive.astype(np.float64).reshape(-1, 1)
        base = np.hstack([graph.features, sens_column])
        counterfactual = base.copy()
        counterfactual[:, -1] = 1.0 - counterfactual[:, -1]

        model = make_backbone(
            self.backbone, base.shape[1], self.hidden_dim, rng,
            num_layers=self.num_layers,
        )
        anchor = Tensor(base)
        cf_view = Tensor(counterfactual)
        optimizer = Adam(model.parameters(), lr=self.lr)
        train_idx = np.where(graph.train_mask)[0]
        train_labels = graph.labels[train_idx].astype(np.float64)
        best_val, best_state, since_best = -1.0, model.state_dict(), 0

        for _ in range(self.epochs):
            model.train()
            optimizer.zero_grad()
            h_anchor = model.embed(anchor, graph.adjacency)
            logits = model.head(h_anchor).reshape(-1)
            loss = binary_cross_entropy_with_logits(logits[train_idx], train_labels)

            h_cf = model.embed(cf_view, graph.adjacency)
            noisy = Tensor(
                base + rng.normal(scale=self.noise_scale, size=base.shape)
            )
            dropped = self._drop_edges(graph.adjacency, rng)
            h_noisy = model.embed(noisy, dropped)
            agreement = ops.add(
                _cosine_disagreement(h_anchor, h_cf),
                _cosine_disagreement(h_anchor, h_noisy),
            )
            loss = ops.add(loss, ops.mul(agreement, self.sim_weight))
            loss.backward()
            optimizer.step()

            val_logits = predict_logits(model, anchor, graph.adjacency)[
                graph.val_mask
            ]
            val_acc = accuracy(
                (val_logits > 0).astype(np.int64), graph.labels[graph.val_mask]
            )
            if val_acc > best_val:
                best_val, best_state, since_best = val_acc, model.state_dict(), 0
            else:
                since_best += 1
                if self.patience is not None and since_best > self.patience:
                    break

        model.load_state_dict(best_state)
        logits = predict_logits(model, anchor, graph.adjacency)
        return logits, {"uses_sensitive": True}

    def _drop_edges(
        self, adjacency: sp.csr_matrix, rng: np.random.Generator
    ) -> sp.csr_matrix:
        """Randomly remove a fraction of undirected edges."""
        if self.edge_drop_rate == 0.0:
            return adjacency
        edges = edges_from_adjacency(adjacency)
        keep = rng.random(len(edges)) >= self.edge_drop_rate
        return adjacency_from_edges(edges[keep], adjacency.shape[0])
