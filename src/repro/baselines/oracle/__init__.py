"""Oracle baselines — methods that *do* see the sensitive attribute.

The paper's related work (Section VI-B) motivates Fairwos against
counterfactual-fairness methods that require the sensitive attribute at
training time.  These re-implementations serve as **upper-bound references**
for the no-sensitive-attribute setting:

* :class:`NIFTY` (Agarwal et al., UAI 2021) — counterfactual + stability
  regularisation by perturbing the sensitive feature and dropping edges;
* :class:`FairGNN` (Dai & Wang, TKDE 2023) — adversarial debiasing with an
  adversary that tries to recover the sensitive attribute from the
  representation.

They are intentionally *excluded* from the Table II roster (which is the
paper's no-sensitive-attribute comparison) but appear in the extension
benchmarks and tests.
"""

from repro.baselines.oracle.nifty import NIFTY
from repro.baselines.oracle.fairgnn import FairGNN

__all__ = ["NIFTY", "FairGNN"]
