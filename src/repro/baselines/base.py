"""Common interface and result type for all comparison methods."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.fairness import EvalResult, evaluate_predictions
from repro.graph import Graph
from repro.training import (
    fit_binary_classifier,
    fit_minibatch,
    predict_logits,
    predict_logits_batched,
)

__all__ = ["MethodResult", "BaselineMethod"]


@dataclass
class MethodResult:
    """Outcome of one method run on one graph/seed.

    ``seconds`` is total wall-clock training time (the quantity plotted in
    the paper's Fig. 8); ``extra`` carries method-specific diagnostics.
    """

    method: str
    test: EvalResult
    validation: EvalResult
    seconds: float
    extra: dict = field(default_factory=dict)


class BaselineMethod:
    """Base class: subclasses implement :meth:`_train_logits`.

    Parameters
    ----------
    backbone:
        GNN backbone name ("gcn", "gin", "gat", "sage").
    hidden_dim, num_layers, epochs, lr, patience:
        Shared training recipe (paper defaults: 16 hidden units, 1 layer,
        Adam lr 0.001, early stopping on validation accuracy).
    """

    name = "baseline"

    def __init__(
        self,
        backbone: str = "gcn",
        hidden_dim: int = 16,
        num_layers: int = 1,
        epochs: int = 200,
        lr: float = 1e-3,
        patience: int | None = 40,
    ) -> None:
        self.backbone = backbone
        self.hidden_dim = hidden_dim
        self.num_layers = num_layers
        self.epochs = epochs
        self.lr = lr
        self.patience = patience

    # ------------------------------------------------------------------ #
    def fit(self, graph: Graph, seed: int = 0) -> MethodResult:
        """Train on ``graph`` and evaluate on its validation/test splits."""
        start = time.perf_counter()
        logits, extra = self._train_logits(graph, np.random.default_rng(seed))
        seconds = time.perf_counter() - start
        return MethodResult(
            method=self.name,
            test=evaluate_predictions(
                logits, graph.labels, graph.sensitive, graph.test_mask
            ),
            validation=evaluate_predictions(
                logits, graph.labels, graph.sensitive, graph.val_mask
            ),
            seconds=seconds,
            extra=extra,
        )

    def _train_logits(
        self, graph: Graph, rng: np.random.Generator
    ) -> tuple[np.ndarray, dict]:
        """Train and return full-graph logits plus diagnostics."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    def _fit_and_predict(
        self, model, features, graph: Graph, rng: np.random.Generator
    ):
        """Shared full-batch / minibatch dispatch for plain supervised
        baselines.

        Subclasses that support neighbour-sampled training (Vanilla,
        RemoveR) set ``minibatch`` / ``fanouts`` / ``batch_size`` in their
        constructors; training then runs through
        :func:`~repro.training.fit_minibatch` and evaluation through exact
        batched inference, so reported metrics are sampling-free.  Returns
        ``(history, logits)``.
        """
        if getattr(self, "minibatch", False):
            history = fit_minibatch(
                model,
                features,
                graph.adjacency,
                graph.labels,
                graph.train_mask,
                graph.val_mask,
                epochs=self.epochs,
                fanouts=self.fanouts,
                batch_size=self.batch_size,
                lr=self.lr,
                patience=self.patience,
                rng=rng,
            )
            logits = predict_logits_batched(
                model, features, graph.adjacency, batch_size=self.batch_size
            )
        else:
            history = fit_binary_classifier(
                model,
                features,
                graph.adjacency,
                graph.labels,
                graph.train_mask,
                graph.val_mask,
                epochs=self.epochs,
                lr=self.lr,
                patience=self.patience,
            )
            logits = predict_logits(model, features, graph.adjacency)
        return history, logits
