"""Common interface and result type for all comparison methods."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.fairness import EvalResult, evaluate_predictions
from repro.graph import Graph
from repro.training import (
    fit_binary_classifier,
    fit_minibatch,
    predict_logits,
    predict_logits_batched,
)

__all__ = ["MethodResult", "BaselineMethod"]


@dataclass
class MethodResult:
    """Outcome of one method run on one graph/seed.

    ``seconds`` is total wall-clock training time (the quantity plotted in
    the paper's Fig. 8); ``extra`` carries method-specific diagnostics.
    """

    method: str
    test: EvalResult
    validation: EvalResult
    seconds: float
    extra: dict = field(default_factory=dict)


class BaselineMethod:
    """Base class: subclasses implement :meth:`_train_logits`.

    Parameters
    ----------
    backbone:
        GNN backbone name ("gcn", "gin", "gat", "sage").
    hidden_dim, num_layers, epochs, lr, patience:
        Shared training recipe (paper defaults: 16 hidden units, 1 layer,
        Adam lr 0.001, early stopping on validation accuracy).
    """

    name = "baseline"
    # Epoch-level sampling-cache window of the minibatch engine.  Owned here
    # (class default: fresh sampling every epoch) so every subclass resolves
    # it explicitly; minibatch-capable subclasses override it from their
    # constructors alongside the fanouts/batch_size knobs they declare.
    cache_epochs = 1
    # Multiprocess sampling knobs (see repro.training.parallel); the engine
    # owns the pool lifecycle per fit, so KSMOTE-style modified adjacencies
    # publish their own shared-memory CSR automatically.
    num_workers = 0
    prefetch_epochs = 1

    def __init__(
        self,
        backbone: str = "gcn",
        hidden_dim: int = 16,
        num_layers: int = 1,
        epochs: int = 200,
        lr: float = 1e-3,
        patience: int | None = 40,
    ) -> None:
        self.backbone = backbone
        self.hidden_dim = hidden_dim
        self.num_layers = num_layers
        self.epochs = epochs
        self.lr = lr
        self.patience = patience
        # Trained model retained by _fit_and_predict_arrays (None until
        # fit).  repro.io.artifact persists it; methods with bespoke
        # training paths that bypass the shared dispatch simply leave it
        # unset and are reported as non-persistable.
        self.model_ = None
        # Column subset the model was trained on (None = all columns);
        # RemoveR sets this so scoring new features drops the same columns.
        self.feature_columns_: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    def fit(
        self, graph: Graph, seed: int = 0, keep_logits: bool = False
    ) -> MethodResult:
        """Train on ``graph`` and evaluate on its validation/test splits.

        ``keep_logits=True`` attaches the full-graph logits as
        ``extra["logits"]`` — consumers like the intersectional audit slice
        them per joint subgroup.  Off by default so sweep-style callers do
        not pin an ``(N,)`` array per retained result.
        """
        start = time.perf_counter()
        logits, extra = self._train_logits(graph, np.random.default_rng(seed))
        seconds = time.perf_counter() - start
        if keep_logits:
            extra["logits"] = logits
        return MethodResult(
            method=self.name,
            test=evaluate_predictions(
                logits, graph.labels, graph.sensitive, graph.test_mask
            ),
            validation=evaluate_predictions(
                logits, graph.labels, graph.sensitive, graph.val_mask
            ),
            seconds=seconds,
            extra=extra,
        )

    def _train_logits(
        self, graph: Graph, rng: np.random.Generator
    ) -> tuple[np.ndarray, dict]:
        """Train and return full-graph logits plus diagnostics."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    def _sampling_config(self) -> tuple[tuple[int, ...] | None, int]:
        """Validated ``(fanouts, batch_size)`` for neighbour-sampled training.

        Raises ``ValueError`` when ``minibatch=True`` was requested on a
        subclass that never declared the sampling knobs — the dispatch must
        not silently fall back to (or crash inside) a configuration the
        method does not actually support.
        """
        missing = [
            name for name in ("fanouts", "batch_size") if not hasattr(self, name)
        ]
        if missing:
            raise ValueError(
                f"{type(self).__name__} requested minibatch training but does "
                f"not declare {', '.join(missing)}; subclasses supporting "
                f"neighbour sampling must set fanouts and batch_size in their "
                f"constructor (see Vanilla)"
            )
        return self.fanouts, self.batch_size

    def _fit_and_predict(
        self, model, features, graph: Graph, rng: np.random.Generator,
        extra_loss=None,
    ):
        """Shared full-batch / minibatch dispatch for plain supervised
        baselines.

        Subclasses that support neighbour-sampled training (Vanilla,
        RemoveR, KSMOTE, ...) set ``minibatch`` / ``fanouts`` /
        ``batch_size`` in their constructors; training then runs through
        :func:`~repro.training.fit_minibatch` and evaluation through exact
        batched inference, so reported metrics are sampling-free.  Returns
        ``(history, logits)``.
        """
        return self._fit_and_predict_arrays(
            model,
            features,
            graph.adjacency,
            graph.labels,
            graph.train_mask,
            graph.val_mask,
            rng,
            extra_loss=extra_loss,
        )

    def _fit_and_predict_arrays(
        self,
        model,
        features,
        adjacency,
        labels: np.ndarray,
        train_mask: np.ndarray,
        val_mask: np.ndarray,
        rng: np.random.Generator,
        extra_loss=None,
    ):
        """:meth:`_fit_and_predict` on explicit arrays — for baselines that
        train on a modified graph (KSMOTE's oversampled one).

        ``extra_loss`` follows the active engine's signature:
        ``(logits) -> Tensor`` full-batch,
        ``(logits, batch_indices) -> Tensor`` minibatched.
        """
        if getattr(self, "minibatch", False):
            fanouts, batch_size = self._sampling_config()
            history = fit_minibatch(
                model,
                features,
                adjacency,
                labels,
                train_mask,
                val_mask,
                epochs=self.epochs,
                fanouts=fanouts,
                batch_size=batch_size,
                lr=self.lr,
                patience=self.patience,
                rng=rng,
                extra_loss=extra_loss,
                cache_epochs=self.cache_epochs,
                num_workers=self.num_workers,
                prefetch_epochs=self.prefetch_epochs,
            )
            logits = predict_logits_batched(
                model, features, adjacency, batch_size=batch_size
            )
        else:
            history = fit_binary_classifier(
                model,
                features,
                adjacency,
                labels,
                train_mask,
                val_mask,
                epochs=self.epochs,
                lr=self.lr,
                patience=self.patience,
                extra_loss=extra_loss,
            )
            logits = predict_logits(model, features, adjacency)
        self.model_ = model
        return history, logits
