"""Shared node-level bias mechanism for the synthetic graph families.

Every generator in this package tells the same causal story — a sensitive
group ``s`` shifts proxy feature columns, biases the label logit and (at the
edge level, which stays family-specific) boosts same-group edge formation.
This module owns the *node-level* part of that story once, so the scale-free,
Erdős–Rényi and SBM generators plant identical bias given identical
parameters and differ only in their edge structure.

The draw order inside :func:`plant_node_bias` is frozen: it reproduces the
historical inline sequence of ``generate_scale_free_graph`` bit-for-bit
(sensitive → merit → label weights → labels → readout → column permutation →
feature noise), so extracting it changed no generated dataset.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PlantedNodes", "plant_node_bias", "sigmoid", "sample_rejection_edges"]


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically clipped logistic function."""
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30, 30)))


@dataclass
class PlantedNodes:
    """Node-level quantities produced by :func:`plant_node_bias`.

    ``merit`` is the latent confounder; generators may reuse it to plant
    additional feature-correlated attributes (e.g. a second sensitive
    attribute for intersectional audits) *after* all shared draws.
    """

    sensitive: np.ndarray
    labels: np.ndarray
    features: np.ndarray
    merit: np.ndarray
    proxy_columns: np.ndarray
    signal_columns: np.ndarray


def plant_node_bias(
    rng: np.random.Generator,
    num_nodes: int,
    num_features: int,
    *,
    group_balance: float,
    label_bias: float,
    proxy_fraction: float,
    proxy_strength: float,
    label_signal_strength: float,
    latent_dim: int,
    feature_noise: float,
    sensitive: np.ndarray | None = None,
    merit_offset: np.ndarray | None = None,
) -> PlantedNodes:
    """Draw sensitive groups, labels and biased features for one graph.

    Parameters
    ----------
    rng:
        Generator consumed in the frozen draw order documented above.
    num_nodes, num_features:
        Output dimensions.
    group_balance, label_bias, proxy_fraction, proxy_strength,
    label_signal_strength, latent_dim, feature_noise:
        Bias mechanism, as in :class:`repro.datasets.causal.BiasSpec`.
    sensitive:
        Pre-assigned group memberships (the SBM derives them from community
        structure).  ``None`` draws them i.i.d. from ``group_balance``; note
        a provided array skips that draw, shifting the stream for all later
        draws — only new generators may pass it.
    merit_offset:
        Optional ``(num_nodes, latent_dim)`` shift added to the latent merit
        before labels/features are derived (community signal in the SBM).
    """
    if sensitive is None:
        sensitive = (rng.random(num_nodes) < group_balance).astype(np.int64)
    else:
        sensitive = np.asarray(sensitive, dtype=np.int64)
    merit = rng.normal(size=(num_nodes, latent_dim))
    if merit_offset is not None:
        merit = merit + merit_offset
    label_weights = rng.normal(size=latent_dim) / np.sqrt(latent_dim)
    logits = merit @ label_weights + label_bias * (2.0 * sensitive - 1.0)
    labels = (rng.random(num_nodes) < sigmoid(logits)).astype(np.int64)

    readout = rng.normal(size=(latent_dim, num_features)) / np.sqrt(latent_dim)
    features = merit @ readout
    columns = rng.permutation(num_features)
    n_proxy = min(max(1, int(round(proxy_fraction * num_features))), num_features - 1)
    proxy_columns = np.sort(columns[:n_proxy])
    n_signal = max(1, (num_features - n_proxy) // 2)
    signal_columns = np.sort(columns[n_proxy : n_proxy + n_signal])
    features[:, proxy_columns] += proxy_strength * (2.0 * sensitive - 1.0)[:, None]
    features[:, signal_columns] += (
        label_signal_strength * (2.0 * labels - 1.0)[:, None]
    )
    features += rng.normal(scale=feature_noise, size=features.shape)
    return PlantedNodes(
        sensitive=sensitive,
        labels=labels,
        features=features,
        merit=merit,
        proxy_columns=proxy_columns,
        signal_columns=signal_columns,
    )


def sample_rejection_edges(
    src: np.ndarray,
    dst: np.ndarray,
    sensitive: np.ndarray,
    group_homophily: float,
    num_nodes: int,
    target_edges: int,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Homophilous rejection + dedup shared by the ER and SBM samplers.

    Candidate edges ``(src, dst)`` are filtered in O(E): self-loops dropped,
    cross-group candidates accepted with probability
    ``1 / (1 + group_homophily)``, duplicates removed after canonicalising
    endpoint order, and the survivors shuffled and truncated to
    ``target_edges``.  Returns the ``(lo, hi)`` endpoint arrays.
    """
    keep = src != dst
    same_group = sensitive[src] == sensitive[dst]
    acceptance_floor = 1.0 / (1.0 + group_homophily)
    accept_prob = np.where(same_group, 1.0, acceptance_floor)
    keep &= rng.random(src.size) < accept_prob
    src, dst = src[keep], dst[keep]
    lo, hi = np.minimum(src, dst), np.maximum(src, dst)
    pairs = np.unique(lo.astype(np.int64) * num_nodes + hi)
    pairs = pairs[rng.permutation(pairs.size)][:target_edges]
    return pairs // num_nodes, pairs % num_nodes
