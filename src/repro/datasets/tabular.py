"""Build graphs from tabular data via feature-similarity kNN.

The paper's semi-synthetic benchmarks were constructed exactly this way:
Bail "connects defendants based on similarity of past criminal records and
demographics", Credit "connects clients with similar spending and payment
patterns".  This module provides that constructor for user-supplied tables,
so the library can be applied to plain tabular fairness problems: build the
similarity graph, hide the sensitive column, run Fairwos.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.datasets.splits import random_split_masks
from repro.graph import Graph

__all__ = ["knn_adjacency", "graph_from_table"]


def knn_adjacency(
    features: np.ndarray, num_neighbors: int, metric: str = "euclidean"
) -> sp.csr_matrix:
    """Symmetric kNN graph over feature rows.

    An undirected edge joins ``u`` and ``v`` when either is among the
    other's ``num_neighbors`` nearest rows (union symmetrisation), so every
    node has degree ≥ ``num_neighbors``.

    Parameters
    ----------
    features:
        ``(N, F)`` matrix.
    num_neighbors:
        Neighbours per node (k).
    metric:
        "euclidean" or "cosine".
    """
    features = np.asarray(features, dtype=np.float64)
    n = features.shape[0]
    if not 1 <= num_neighbors < n:
        raise ValueError(f"num_neighbors must be in [1, {n - 1}], got {num_neighbors}")
    if metric == "euclidean":
        norms = (features**2).sum(axis=1)
        distances = norms[:, None] + norms[None, :] - 2.0 * features @ features.T
    elif metric == "cosine":
        row_norms = np.sqrt((features**2).sum(axis=1, keepdims=True))
        row_norms[row_norms == 0] = 1.0
        unit = features / row_norms
        distances = 1.0 - unit @ unit.T
    else:
        raise ValueError(f"metric must be 'euclidean' or 'cosine', got {metric!r}")
    np.fill_diagonal(distances, np.inf)
    neighbor_ids = np.argpartition(distances, num_neighbors - 1, axis=1)[
        :, :num_neighbors
    ]
    rows = np.repeat(np.arange(n), num_neighbors)
    cols = neighbor_ids.reshape(-1)
    data = np.ones(rows.size)
    directed = sp.csr_matrix((data, (rows, cols)), shape=(n, n))
    symmetric = directed.maximum(directed.T)
    symmetric.setdiag(0)
    symmetric.eliminate_zeros()
    symmetric.data = np.ones_like(symmetric.data)
    return symmetric.tocsr()


def graph_from_table(
    features: np.ndarray,
    labels: np.ndarray,
    sensitive: np.ndarray,
    num_neighbors: int = 10,
    metric: str = "euclidean",
    sensitive_column: int | None = None,
    related_feature_indices: np.ndarray | None = None,
    seed: int = 0,
    name: str = "tabular",
    train_fraction: float = 0.5,
    val_fraction: float = 0.25,
) -> Graph:
    """Turn a fairness-annotated table into a :class:`~repro.graph.Graph`.

    Parameters
    ----------
    features:
        ``(N, F)`` table.  If ``sensitive_column`` is given, that column is
        **removed** from the features (the paper's ``S ∉ F`` requirement) —
        but note the kNN construction still uses the remaining columns only.
    labels, sensitive:
        ``(N,)`` binary outcome and protected-group arrays.
    num_neighbors, metric:
        kNN-graph parameters (Bail/Credit use similarity graphs like this).
    related_feature_indices:
        Optional candidate-proxy columns (indices *after* sensitive-column
        removal) for the RemoveR / FairRF baselines.
    seed, train_fraction, val_fraction:
        Random 50/25/25-style split (paper protocol).
    """
    features = np.asarray(features, dtype=np.float64)
    if sensitive_column is not None:
        keep = np.setdiff1d(np.arange(features.shape[1]), [sensitive_column])
        features = features[:, keep]
    adjacency = knn_adjacency(features, num_neighbors, metric)
    rng = np.random.default_rng(seed)
    train_mask, val_mask, test_mask = random_split_masks(
        features.shape[0], rng, train_fraction, val_fraction
    )
    return Graph(
        adjacency=adjacency,
        features=features,
        labels=np.asarray(labels),
        sensitive=np.asarray(sensitive),
        train_mask=train_mask,
        val_mask=val_mask,
        test_mask=test_mask,
        related_feature_indices=(
            related_feature_indices
            if related_feature_indices is not None
            else np.array([], dtype=np.int64)
        ),
        name=name,
        meta={"construction": f"knn(k={num_neighbors}, metric={metric})"},
    )
