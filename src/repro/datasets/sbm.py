"""Stochastic-block-model graphs with controlled homophily and mixing.

The community-structured member of the graph-family matrix: nodes belong to
``num_communities`` balanced blocks, edges form mostly within blocks
(``community_mixing`` controls the cross-block fraction), and the sensitive
attribute is *derived from* community membership with a controlled flip rate
(``sensitive_mixing``), so the graph interpolates between perfectly
segregated (mixing 0) and community-independent (mixing 0.5) sensitive
structure.  On top of the block structure the shared planted-bias mechanism
(:mod:`repro.datasets._planted`) applies, and the community id itself is
exposed under ``meta["extra_sensitive"]["community"]`` — the natural second
axis for intersectional audits.  Every step is O(nodes + edges).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.datasets._planted import plant_node_bias, sample_rejection_edges
from repro.datasets.splits import random_split_masks
from repro.graph import Graph

__all__ = ["generate_sbm_graph"]


def generate_sbm_graph(
    num_nodes: int,
    num_features: int = 16,
    average_degree: float = 10.0,
    num_communities: int = 4,
    community_mixing: float = 0.2,
    sensitive_mixing: float = 0.2,
    community_signal: float = 0.5,
    label_bias: float = 0.8,
    proxy_fraction: float = 0.25,
    proxy_strength: float = 1.0,
    label_signal_strength: float = 0.8,
    group_homophily: float = 0.5,
    latent_dim: int = 8,
    feature_noise: float = 0.5,
    seed: int = 0,
    name: str = "sbm",
    train_fraction: float = 0.5,
    val_fraction: float = 0.25,
    extra_sensitive_attrs: int = 0,
) -> Graph:
    """Generate a community :class:`~repro.graph.Graph` with planted bias.

    Parameters
    ----------
    num_nodes, num_features, average_degree:
        Graph dimensions; memory and time are O(nodes + edges).
    num_communities:
        Number of balanced blocks (>= 2).
    community_mixing:
        Fraction of candidate edges drawn across blocks instead of within
        one (0 = pure block-diagonal structure, 1 = no block structure).
    sensitive_mixing:
        Probability that a node's sensitive group deviates from its
        community's majority group (communities alternate majority group by
        parity).  0 segregates the groups perfectly along communities; 0.5
        makes the sensitive attribute community-independent.
    community_signal:
        Scale of the per-community latent-merit offset — how strongly
        community membership shows up in features and labels.
    label_bias, proxy_fraction, proxy_strength, label_signal_strength,
    latent_dim, feature_noise:
        Bias mechanism, as in :class:`repro.datasets.causal.BiasSpec`.
    group_homophily:
        Extra same-*group* acceptance boost applied on top of the block
        structure (the block structure already induces group homophily when
        ``sensitive_mixing`` is small).
    seed, name, train_fraction, val_fraction:
        Reproducibility / bookkeeping, as in the other generators.
    extra_sensitive_attrs:
        Additional planted binary attributes beyond the always-present
        ``community`` entry of ``meta["extra_sensitive"]``.
    """
    if num_nodes < 10:
        raise ValueError(f"need at least 10 nodes, got {num_nodes}")
    if num_features < 2:
        raise ValueError(f"need at least 2 features, got {num_features}")
    if num_communities < 2:
        raise ValueError(f"need at least 2 communities, got {num_communities}")
    if not 0.0 <= community_mixing <= 1.0:
        raise ValueError(f"community_mixing must be in [0, 1], got {community_mixing}")
    if not 0.0 <= sensitive_mixing <= 1.0:
        raise ValueError(f"sensitive_mixing must be in [0, 1], got {sensitive_mixing}")
    if average_degree <= 0:
        raise ValueError(f"average_degree must be positive, got {average_degree}")
    if group_homophily < 0:
        raise ValueError("group_homophily must be non-negative")
    if extra_sensitive_attrs < 0:
        raise ValueError("extra_sensitive_attrs must be non-negative")
    rng = np.random.default_rng(seed)

    # -- balanced communities; sensitive derived with controlled mixing --- #
    community = rng.permutation(num_nodes) % num_communities
    flips = rng.random(num_nodes) < sensitive_mixing
    sensitive = ((community % 2) ^ flips.astype(np.int64)).astype(np.int64)
    centers = rng.normal(size=(num_communities, latent_dim)) * community_signal

    nodes = plant_node_bias(
        rng,
        num_nodes,
        num_features,
        group_balance=0.5,  # unused: sensitive is pre-assigned
        label_bias=label_bias,
        proxy_fraction=proxy_fraction,
        proxy_strength=proxy_strength,
        label_signal_strength=label_signal_strength,
        latent_dim=latent_dim,
        feature_noise=feature_noise,
        sensitive=sensitive,
        merit_offset=centers[community],
    )
    labels, features = nodes.labels, nodes.features

    # -- block-structured candidate edges with homophilous rejection ------ #
    order = np.argsort(community, kind="stable")
    sizes = np.bincount(community, minlength=num_communities)
    starts = np.concatenate([[0], np.cumsum(sizes)[:-1]])

    target_edges = int(round(average_degree * num_nodes / 2.0))
    acceptance_floor = 1.0 / (1.0 + group_homophily)
    num_candidates = int(target_edges / max(acceptance_floor, 0.25) * 1.5) + 16
    src = rng.integers(num_nodes, size=num_candidates)
    intra = rng.random(num_candidates) >= community_mixing
    dst = rng.integers(num_nodes, size=num_candidates)
    # Intra candidates re-draw their destination uniformly inside the
    # source node's community via the sorted-by-community index.
    c = community[src[intra]]
    offsets = (rng.random(int(intra.sum())) * sizes[c]).astype(np.int64)
    dst[intra] = order[starts[c] + offsets]
    lo, hi = sample_rejection_edges(
        src, dst, sensitive, group_homophily, num_nodes, target_edges, rng
    )
    rows = np.concatenate([lo, hi])
    cols = np.concatenate([hi, lo])
    adjacency = sp.csr_matrix(
        (np.ones(rows.size), (rows, cols)), shape=(num_nodes, num_nodes)
    )

    train_mask, val_mask, test_mask = random_split_masks(
        num_nodes, rng, train_fraction=train_fraction, val_fraction=val_fraction
    )
    extra_sensitive: dict[str, np.ndarray] = {"community": community.astype(np.int64)}
    for i in range(extra_sensitive_attrs):
        direction = rng.normal(size=latent_dim) / np.sqrt(latent_dim)
        noise = rng.normal(scale=0.5, size=num_nodes)
        extra_sensitive[f"attr{i + 1}"] = (
            nodes.merit @ direction + noise > 0.0
        ).astype(np.int64)
    return Graph(
        adjacency=adjacency,
        features=features,
        labels=labels,
        sensitive=sensitive,
        train_mask=train_mask,
        val_mask=val_mask,
        test_mask=test_mask,
        related_feature_indices=nodes.proxy_columns,
        name=name,
        meta={
            "seed": seed,
            "generator": "sbm",
            "target_average_degree": average_degree,
            "num_communities": num_communities,
            "community_mixing": community_mixing,
            "sensitive_mixing": sensitive_mixing,
            "group_homophily": group_homophily,
            "signal_columns": nodes.signal_columns,
            "extra_sensitive": extra_sensitive,
        },
    )
