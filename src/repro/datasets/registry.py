"""One registry surface for every way the repo can produce a graph.

Three sources share the single :func:`load_dataset` entry point:

* **Named benchmarks** — each :class:`DatasetSpec` records a real dataset's
  published statistics (nodes, attributes, average degree, sensitive
  attribute, task) alongside the scaled-down size we actually generate,
  plus the bias parameters chosen so the *phenomenology* matches what the
  paper reports for that dataset — e.g. NBA shows very large vanilla ΔSP
  (≈28%), Pokec-n a small one (≈1–3%).
* **Graph families** — the parametric O(E) generators (:data:`GRAPH_FAMILIES`:
  scale-free, Erdős–Rényi, SBM), addressed by family name with keyword
  parameters passed through; :func:`load_family` adds the scenario-level
  ``homophily`` / ``mixing`` aliases the CLI exposes.
* **Saved graphs** — a path to a :func:`repro.io.save_graph` archive or a
  :func:`repro.io.save_graph_mmap` directory (directories are opened with
  ``mmap=True`` so a 1M-node artifact never fully materialises).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.datasets.causal import BiasSpec, generate_biased_graph
from repro.datasets.erdos_renyi import generate_erdos_renyi_graph
from repro.datasets.sbm import generate_sbm_graph
from repro.datasets.scalefree import generate_scale_free_graph
from repro.graph import Graph

__all__ = [
    "DatasetSpec",
    "DATASET_SPECS",
    "GRAPH_FAMILIES",
    "available_datasets",
    "available_families",
    "load_dataset",
    "load_family",
    "dataset_cli_flags",
    "dataset_statistics_rows",
]


@dataclass(frozen=True)
class DatasetSpec:
    """Metadata + generation recipe for one named benchmark dataset."""

    name: str
    paper_nodes: int
    paper_attributes: int
    paper_edges: int
    paper_average_degree: float
    sensitive_name: str
    label_name: str
    description: str
    generated_nodes: int
    bias: BiasSpec = field(default_factory=BiasSpec)

    def generate(self, seed: int = 0) -> Graph:
        """Instantiate the synthetic equivalent of this dataset."""
        graph = generate_biased_graph(
            num_nodes=self.generated_nodes,
            num_features=self.paper_attributes,
            average_degree=self.paper_average_degree,
            spec=self.bias,
            seed=seed,
            name=self.name,
        )
        graph.meta.update(
            {
                "paper_nodes": self.paper_nodes,
                "paper_edges": self.paper_edges,
                "sensitive_name": self.sensitive_name,
                "label_name": self.label_name,
                "description": self.description,
            }
        )
        return graph


# Bias parameters per dataset, tuned so the *vanilla* unfairness ordering of
# Table II is preserved: NBA and Occupation show severe bias, Bail and Credit
# moderate bias, Pokec-z mild and Pokec-n the mildest.
DATASET_SPECS: dict[str, DatasetSpec] = {
    "bail": DatasetSpec(
        name="bail",
        paper_nodes=18_876,
        paper_attributes=18,
        paper_edges=311_870,
        paper_average_degree=34.04,
        sensitive_name="race",
        label_name="bail / no bail",
        description=(
            "Defendants released on bail 1990-2009, connected by similarity "
            "of criminal records and demographics; semi-synthetic."
        ),
        generated_nodes=1_600,
        bias=BiasSpec(
            group_balance=0.45,
            label_bias=0.05,
            proxy_fraction=0.3,
            proxy_strength=0.6,
            label_signal_strength=0.3,
            feature_noise=1.4,
            group_homophily=1.5,
            label_homophily=1.5,
        ),
    ),
    "credit": DatasetSpec(
        name="credit",
        paper_nodes=30_000,
        paper_attributes=13,
        paper_edges=1_421_858,
        paper_average_degree=95.79,
        sensitive_name="age",
        label_name="default / no default",
        description=(
            "Credit-card clients connected by similar spending and payment "
            "patterns; semi-synthetic."
        ),
        generated_nodes=1_500,
        bias=BiasSpec(
            group_balance=0.5,
            label_bias=0.15,
            proxy_fraction=0.3,
            proxy_strength=1.0,
            label_signal_strength=0.1,
            feature_noise=1.5,
            group_homophily=2.0,
            label_homophily=1.0,
        ),
    ),
    "pokec_z": DatasetSpec(
        name="pokec_z",
        paper_nodes=67_797,
        paper_attributes=277,
        paper_edges=617_958,
        paper_average_degree=19.23,
        sensitive_name="region",
        label_name="working field",
        description="Slovak social network sample (province z), 2012.",
        generated_nodes=1_400,
        bias=BiasSpec(
            group_balance=0.5,
            label_bias=0.05,
            proxy_fraction=0.15,
            proxy_strength=1.2,
            label_signal_strength=0.07,
            feature_noise=2.3,
            group_homophily=1.0,
            label_homophily=0.8,
        ),
    ),
    "pokec_n": DatasetSpec(
        name="pokec_n",
        paper_nodes=66_569,
        paper_attributes=266,
        paper_edges=517_047,
        paper_average_degree=16.53,
        sensitive_name="region",
        label_name="working field",
        description="Slovak social network sample (province n), 2012.",
        generated_nodes=1_400,
        bias=BiasSpec(
            group_balance=0.5,
            label_bias=0.01,
            proxy_fraction=0.1,
            proxy_strength=0.3,
            label_signal_strength=0.07,
            feature_noise=2.4,
            group_homophily=2.0,
            label_homophily=0.8,
        ),
    ),
    "nba": DatasetSpec(
        name="nba",
        paper_nodes=403,
        paper_attributes=39,
        paper_edges=10_621,
        paper_average_degree=53.71,
        sensitive_name="nationality",
        label_name="salary above median",
        description=(
            "NBA players of the 2016-17 season with Twitter links; kept at "
            "its true size (the smallest paper dataset)."
        ),
        generated_nodes=403,
        bias=BiasSpec(
            group_balance=0.25,
            label_bias=0.15,
            proxy_fraction=0.35,
            proxy_strength=1.2,
            label_signal_strength=0.08,
            feature_noise=4.5,
            group_homophily=4.0,
            label_homophily=1.0,
        ),
    ),
    "occupation": DatasetSpec(
        name="occupation",
        paper_nodes=6_951,
        paper_attributes=768,
        paper_edges=44_166,
        paper_average_degree=13.71,
        sensitive_name="gender",
        label_name="psychology / computer science",
        description="Twitter users classified psychology vs computer science.",
        generated_nodes=800,
        bias=BiasSpec(
            group_balance=0.5,
            label_bias=0.45,
            proxy_fraction=0.2,
            proxy_strength=2.6,
            label_signal_strength=0.15,
            feature_noise=2.2,
            group_homophily=4.0,
            label_homophily=1.2,
            latent_dim=12,
        ),
    ),
}


# Parametric generators addressable by family name.  All three share the
# planted-bias mechanism of ``datasets._planted`` and O(nodes + edges)
# sampling; they differ only in edge structure (degree-heavy-tailed vs
# uniform vs community-blocked), which is exactly the axis the scenario
# matrix varies.
GRAPH_FAMILIES: dict[str, Callable[..., Graph]] = {
    "scalefree": generate_scale_free_graph,
    "erdos_renyi": generate_erdos_renyi_graph,
    "sbm": generate_sbm_graph,
}


# ``repro run`` dataset flag table, mirroring ``_EXECUTION_CLI_FLAGS``: one
# declarative (load_family kwarg, argparse spec) row per scenario knob.  All
# default to ``None`` = "use the generator's own default"; adding a scenario
# knob means adding a row here, not another add_argument call in the CLI.
_DATASET_CLI_FLAGS: tuple = (
    (
        "family",
        {
            "flag": "--dataset-family",
            "choices": sorted(GRAPH_FAMILIES),
            "help": "generate from a parametric graph family instead of --dataset",
        },
    ),
    (
        "homophily",
        {
            "flag": "--homophily",
            "type": float,
            "help": "same-group edge acceptance boost (family generators)",
        },
    ),
    (
        "mixing",
        {
            "flag": "--mixing",
            "type": float,
            "help": "sensitive-attribute mixing across communities (sbm only)",
        },
    ),
)


def available_datasets() -> list[str]:
    """Named-benchmark keys accepted by :func:`load_dataset`."""
    return sorted(DATASET_SPECS)


def available_families() -> list[str]:
    """Graph-family keys accepted by :func:`load_dataset` / :func:`load_family`."""
    return sorted(GRAPH_FAMILIES)


def dataset_cli_flags() -> tuple:
    """The ``(load_family kwarg, argparse spec)`` table behind ``repro run``."""
    return _DATASET_CLI_FLAGS


def load_family(
    family: str,
    num_nodes: int = 2000,
    seed: int = 0,
    standardize: bool = True,
    homophily: float | None = None,
    mixing: float | None = None,
    **params,
) -> Graph:
    """Generate a graph from one of :data:`GRAPH_FAMILIES`.

    Parameters
    ----------
    family:
        One of :func:`available_families`.
    num_nodes, seed:
        Size and generation seed (same re-draw semantics as
        :func:`load_dataset`).
    standardize:
        Z-score feature columns (recommended for the numpy training stack).
    homophily:
        Scenario-level alias for every family's ``group_homophily``.
    mixing:
        Scenario-level alias for the SBM's ``sensitive_mixing``; rejected
        for families without community structure.
    params:
        Passed through to the family generator verbatim (e.g.
        ``extra_sensitive_attrs``, ``average_degree``).
    """
    key = family.lower().replace("-", "_")
    if key not in GRAPH_FAMILIES:
        raise KeyError(
            f"unknown graph family {family!r}; available: {available_families()}"
        )
    if homophily is not None:
        params["group_homophily"] = homophily
    if mixing is not None:
        if key != "sbm":
            raise ValueError(
                f"mixing only applies to the sbm family, not {family!r}"
            )
        params["sensitive_mixing"] = mixing
    graph = GRAPH_FAMILIES[key](num_nodes, seed=seed, **params)
    return graph.standardized() if standardize else graph


def _looks_like_path(name: str) -> bool:
    """Heuristic split between registry keys and filesystem references."""
    return (
        "/" in name
        or name.endswith(".npz")
        or name in (".", "..")
        or Path(name).exists()
    )


def _load_saved_graph(name: str) -> Graph:
    from repro.io import load_graph

    path = Path(name)
    if not path.exists():
        raise KeyError(
            f"unknown dataset {name!r}: not a registry key and no such path; "
            f"available: {available_datasets() + available_families()}"
        )
    # Directories are the save_graph_mmap layout: open the big arrays
    # memory-mapped so loading a 1M-node artifact stays cheap.
    return load_graph(path, mmap=path.is_dir())


def load_dataset(
    name: str, seed: int = 0, standardize: bool = True, **family_params
) -> Graph:
    """Resolve any dataset reference: benchmark name, family, or saved path.

    Parameters
    ----------
    name:
        One of :func:`available_datasets` (case-insensitive; "pokec-z" and
        "pokec_z" both work), a graph-family key from
        :func:`available_families` (extra keyword arguments reach the
        generator, see :func:`load_family`), or a filesystem path to a graph
        saved with :func:`repro.io.save_graph` /
        :func:`repro.io.save_graph_mmap` (directories load memory-mapped).
    seed:
        Generation seed; different seeds give i.i.d. re-draws from the same
        causal model (the paper instead re-splits a fixed graph — re-drawing
        is the honest analogue for a generator).  Ignored for saved paths,
        which are immutable artifacts.
    standardize:
        Z-score feature columns (recommended for the numpy training stack).
        Ignored for saved paths: they are returned exactly as stored, so a
        graph standardized before saving is not standardized twice.
    """
    key = name.lower().replace("-", "_")
    if key in GRAPH_FAMILIES:
        return load_family(key, seed=seed, standardize=standardize, **family_params)
    if key not in DATASET_SPECS:
        # Registry keys always win; only non-keys fall through to the
        # filesystem, so a stray local file can never shadow "bail".
        if _looks_like_path(name):
            return _load_saved_graph(name)
        raise KeyError(
            f"unknown dataset {name!r}; available: "
            f"{available_datasets() + available_families()}"
        )
    if family_params:
        raise TypeError(
            f"named dataset {name!r} takes no generator parameters "
            f"(got {sorted(family_params)}); use a graph family instead"
        )
    graph = DATASET_SPECS[key].generate(seed=seed)
    return graph.standardized() if standardize else graph


def dataset_statistics_rows() -> list[dict[str, object]]:
    """Rows mirroring the paper's Table I (plus our generated sizes)."""
    rows = []
    for spec in DATASET_SPECS.values():
        rows.append(
            {
                "dataset": spec.name,
                "paper_nodes": spec.paper_nodes,
                "paper_attributes": spec.paper_attributes,
                "paper_edges": spec.paper_edges,
                "paper_avg_degree": spec.paper_average_degree,
                "sensitive": spec.sensitive_name,
                "label": spec.label_name,
                "generated_nodes": spec.generated_nodes,
                "description": spec.description,
            }
        )
    return rows
