"""Named datasets matched to the paper's Table I.

Each :class:`DatasetSpec` records the real dataset's published statistics
(nodes, attributes, average degree, sensitive attribute, task) alongside the
scaled-down size we actually generate, plus the bias parameters chosen so
the *phenomenology* matches what the paper reports for that dataset — e.g.
NBA shows very large vanilla ΔSP (≈28%), Pokec-n a small one (≈1–3%).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datasets.causal import BiasSpec, generate_biased_graph
from repro.graph import Graph

__all__ = [
    "DatasetSpec",
    "DATASET_SPECS",
    "available_datasets",
    "load_dataset",
    "dataset_statistics_rows",
]


@dataclass(frozen=True)
class DatasetSpec:
    """Metadata + generation recipe for one named benchmark dataset."""

    name: str
    paper_nodes: int
    paper_attributes: int
    paper_edges: int
    paper_average_degree: float
    sensitive_name: str
    label_name: str
    description: str
    generated_nodes: int
    bias: BiasSpec = field(default_factory=BiasSpec)

    def generate(self, seed: int = 0) -> Graph:
        """Instantiate the synthetic equivalent of this dataset."""
        graph = generate_biased_graph(
            num_nodes=self.generated_nodes,
            num_features=self.paper_attributes,
            average_degree=self.paper_average_degree,
            spec=self.bias,
            seed=seed,
            name=self.name,
        )
        graph.meta.update(
            {
                "paper_nodes": self.paper_nodes,
                "paper_edges": self.paper_edges,
                "sensitive_name": self.sensitive_name,
                "label_name": self.label_name,
                "description": self.description,
            }
        )
        return graph


# Bias parameters per dataset, tuned so the *vanilla* unfairness ordering of
# Table II is preserved: NBA and Occupation show severe bias, Bail and Credit
# moderate bias, Pokec-z mild and Pokec-n the mildest.
DATASET_SPECS: dict[str, DatasetSpec] = {
    "bail": DatasetSpec(
        name="bail",
        paper_nodes=18_876,
        paper_attributes=18,
        paper_edges=311_870,
        paper_average_degree=34.04,
        sensitive_name="race",
        label_name="bail / no bail",
        description=(
            "Defendants released on bail 1990-2009, connected by similarity "
            "of criminal records and demographics; semi-synthetic."
        ),
        generated_nodes=1_600,
        bias=BiasSpec(
            group_balance=0.45,
            label_bias=0.05,
            proxy_fraction=0.3,
            proxy_strength=0.6,
            label_signal_strength=0.3,
            feature_noise=1.4,
            group_homophily=1.5,
            label_homophily=1.5,
        ),
    ),
    "credit": DatasetSpec(
        name="credit",
        paper_nodes=30_000,
        paper_attributes=13,
        paper_edges=1_421_858,
        paper_average_degree=95.79,
        sensitive_name="age",
        label_name="default / no default",
        description=(
            "Credit-card clients connected by similar spending and payment "
            "patterns; semi-synthetic."
        ),
        generated_nodes=1_500,
        bias=BiasSpec(
            group_balance=0.5,
            label_bias=0.15,
            proxy_fraction=0.3,
            proxy_strength=1.0,
            label_signal_strength=0.1,
            feature_noise=1.5,
            group_homophily=2.0,
            label_homophily=1.0,
        ),
    ),
    "pokec_z": DatasetSpec(
        name="pokec_z",
        paper_nodes=67_797,
        paper_attributes=277,
        paper_edges=617_958,
        paper_average_degree=19.23,
        sensitive_name="region",
        label_name="working field",
        description="Slovak social network sample (province z), 2012.",
        generated_nodes=1_400,
        bias=BiasSpec(
            group_balance=0.5,
            label_bias=0.05,
            proxy_fraction=0.15,
            proxy_strength=1.2,
            label_signal_strength=0.07,
            feature_noise=2.3,
            group_homophily=1.0,
            label_homophily=0.8,
        ),
    ),
    "pokec_n": DatasetSpec(
        name="pokec_n",
        paper_nodes=66_569,
        paper_attributes=266,
        paper_edges=517_047,
        paper_average_degree=16.53,
        sensitive_name="region",
        label_name="working field",
        description="Slovak social network sample (province n), 2012.",
        generated_nodes=1_400,
        bias=BiasSpec(
            group_balance=0.5,
            label_bias=0.01,
            proxy_fraction=0.1,
            proxy_strength=0.3,
            label_signal_strength=0.07,
            feature_noise=2.4,
            group_homophily=2.0,
            label_homophily=0.8,
        ),
    ),
    "nba": DatasetSpec(
        name="nba",
        paper_nodes=403,
        paper_attributes=39,
        paper_edges=10_621,
        paper_average_degree=53.71,
        sensitive_name="nationality",
        label_name="salary above median",
        description=(
            "NBA players of the 2016-17 season with Twitter links; kept at "
            "its true size (the smallest paper dataset)."
        ),
        generated_nodes=403,
        bias=BiasSpec(
            group_balance=0.25,
            label_bias=0.15,
            proxy_fraction=0.35,
            proxy_strength=1.2,
            label_signal_strength=0.08,
            feature_noise=4.5,
            group_homophily=4.0,
            label_homophily=1.0,
        ),
    ),
    "occupation": DatasetSpec(
        name="occupation",
        paper_nodes=6_951,
        paper_attributes=768,
        paper_edges=44_166,
        paper_average_degree=13.71,
        sensitive_name="gender",
        label_name="psychology / computer science",
        description="Twitter users classified psychology vs computer science.",
        generated_nodes=800,
        bias=BiasSpec(
            group_balance=0.5,
            label_bias=0.45,
            proxy_fraction=0.2,
            proxy_strength=2.6,
            label_signal_strength=0.15,
            feature_noise=2.2,
            group_homophily=4.0,
            label_homophily=1.2,
            latent_dim=12,
        ),
    ),
}


def available_datasets() -> list[str]:
    """Names accepted by :func:`load_dataset`."""
    return sorted(DATASET_SPECS)


def load_dataset(name: str, seed: int = 0, standardize: bool = True) -> Graph:
    """Generate the named dataset's synthetic equivalent.

    Parameters
    ----------
    name:
        One of :func:`available_datasets` (case-insensitive; "pokec-z" and
        "pokec_z" both work).
    seed:
        Generation seed; different seeds give i.i.d. re-draws from the same
        causal model (the paper instead re-splits a fixed graph — re-drawing
        is the honest analogue for a generator).
    standardize:
        Z-score feature columns (recommended for the numpy training stack).
    """
    key = name.lower().replace("-", "_")
    if key not in DATASET_SPECS:
        raise KeyError(f"unknown dataset {name!r}; available: {available_datasets()}")
    graph = DATASET_SPECS[key].generate(seed=seed)
    return graph.standardized() if standardize else graph


def dataset_statistics_rows() -> list[dict[str, object]]:
    """Rows mirroring the paper's Table I (plus our generated sizes)."""
    rows = []
    for spec in DATASET_SPECS.values():
        rows.append(
            {
                "dataset": spec.name,
                "paper_nodes": spec.paper_nodes,
                "paper_attributes": spec.paper_attributes,
                "paper_edges": spec.paper_edges,
                "paper_avg_degree": spec.paper_average_degree,
                "sensitive": spec.sensitive_name,
                "label": spec.label_name,
                "generated_nodes": spec.generated_nodes,
                "description": spec.description,
            }
        )
    return rows
