"""Benchmark datasets.

The paper evaluates on six public graphs (Bail, Credit, Pokec-z, Pokec-n,
NBA, Occupation).  Those are distributed as data files we cannot download in
this offline environment, so this package provides **synthetic equivalents**
generated from an explicit causal bias model (:mod:`repro.datasets.causal`)
whose statistics are matched to the paper's Table I.  See DESIGN.md for the
substitution argument: the generator plants exactly the mechanism the paper's
introduction describes — the sensitive attribute shapes proxy features,
label base rates and edge formation, so a vanilla GNN trained *without* the
sensitive attribute is still measurably unfair.

Use :func:`load_dataset` with one of :func:`available_datasets`.
"""

from repro.datasets.causal import BiasSpec, generate_biased_graph
from repro.datasets.registry import (
    DATASET_SPECS,
    DatasetSpec,
    available_datasets,
    dataset_statistics_rows,
    load_dataset,
)
from repro.datasets.scalefree import generate_scale_free_graph
from repro.datasets.splits import random_split_masks
from repro.datasets.tabular import graph_from_table, knn_adjacency

__all__ = [
    "BiasSpec",
    "generate_biased_graph",
    "generate_scale_free_graph",
    "DatasetSpec",
    "DATASET_SPECS",
    "available_datasets",
    "dataset_statistics_rows",
    "load_dataset",
    "random_split_masks",
    "graph_from_table",
    "knn_adjacency",
]
