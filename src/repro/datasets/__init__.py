"""Benchmark datasets.

The paper evaluates on six public graphs (Bail, Credit, Pokec-z, Pokec-n,
NBA, Occupation).  Those are distributed as data files we cannot download in
this offline environment, so this package provides **synthetic equivalents**
generated from an explicit causal bias model (:mod:`repro.datasets.causal`)
whose statistics are matched to the paper's Table I.  See DESIGN.md for the
substitution argument: the generator plants exactly the mechanism the paper's
introduction describes — the sensitive attribute shapes proxy features,
label base rates and edge formation, so a vanilla GNN trained *without* the
sensitive attribute is still measurably unfair.

Beyond the named benchmarks, the package hosts the parametric **graph
families** of the scenario matrix — scale-free (Chung–Lu), Erdős–Rényi and
SBM/community generators sharing one planted-bias mechanism — plus a
temporal edge-stream wrapper replaying any graph as arrival batches.

Use :func:`load_dataset` with one of :func:`available_datasets`, a family
key from :func:`available_families`, or a saved-graph path.
"""

from repro.datasets.causal import BiasSpec, generate_biased_graph
from repro.datasets.erdos_renyi import generate_erdos_renyi_graph
from repro.datasets.registry import (
    DATASET_SPECS,
    GRAPH_FAMILIES,
    DatasetSpec,
    available_datasets,
    available_families,
    dataset_cli_flags,
    dataset_statistics_rows,
    load_dataset,
    load_family,
)
from repro.datasets.sbm import generate_sbm_graph
from repro.datasets.scalefree import generate_scale_free_graph
from repro.datasets.splits import random_split_masks
from repro.datasets.tabular import graph_from_table, knn_adjacency
from repro.datasets.temporal import EdgeBatch, TemporalEdgeStream

__all__ = [
    "BiasSpec",
    "generate_biased_graph",
    "generate_scale_free_graph",
    "generate_erdos_renyi_graph",
    "generate_sbm_graph",
    "EdgeBatch",
    "TemporalEdgeStream",
    "DatasetSpec",
    "DATASET_SPECS",
    "GRAPH_FAMILIES",
    "available_datasets",
    "available_families",
    "dataset_cli_flags",
    "dataset_statistics_rows",
    "load_dataset",
    "load_family",
    "random_split_masks",
    "graph_from_table",
    "knn_adjacency",
]
