"""Erdős–Rényi graphs with the shared planted bias story.

The structural counterpoint to :mod:`repro.datasets.scalefree`: identical
node-level bias mechanism (:mod:`repro.datasets._planted`), but edges drawn
uniformly at random instead of from a heavy-tailed degree distribution — the
sf-vs-er structural-prior split used to probe how much of a method's
(un)fairness rides on degree concentration rather than homophily.  Every
step is O(nodes + edges) vectorized numpy.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.datasets._planted import plant_node_bias, sample_rejection_edges
from repro.datasets.splits import random_split_masks
from repro.graph import Graph

__all__ = ["generate_erdos_renyi_graph"]


def generate_erdos_renyi_graph(
    num_nodes: int,
    num_features: int = 16,
    average_degree: float = 10.0,
    group_balance: float = 0.5,
    label_bias: float = 0.8,
    proxy_fraction: float = 0.25,
    proxy_strength: float = 1.0,
    label_signal_strength: float = 0.8,
    group_homophily: float = 2.0,
    latent_dim: int = 8,
    feature_noise: float = 0.5,
    seed: int = 0,
    name: str = "erdos_renyi",
    train_fraction: float = 0.5,
    val_fraction: float = 0.25,
    extra_sensitive_attrs: int = 0,
) -> Graph:
    """Generate a G(n, m)-style :class:`~repro.graph.Graph` with planted bias.

    Parameters
    ----------
    num_nodes, num_features, average_degree:
        Graph dimensions; memory and time are O(nodes + edges).
    group_balance, label_bias, proxy_fraction, proxy_strength,
    label_signal_strength, latent_dim, feature_noise:
        Bias mechanism, as in :class:`repro.datasets.causal.BiasSpec`.
    group_homophily:
        Same-group candidate edges are ``1 + group_homophily`` times more
        likely to be accepted than cross-group ones (0 = the textbook
        homophily-free ER graph).
    seed, name, train_fraction, val_fraction:
        Reproducibility / bookkeeping, as in the other generators.
    extra_sensitive_attrs:
        Additional planted binary attributes for intersectional audits (see
        :func:`~repro.datasets.scalefree.generate_scale_free_graph`).
    """
    if num_nodes < 10:
        raise ValueError(f"need at least 10 nodes, got {num_nodes}")
    if num_features < 2:
        raise ValueError(f"need at least 2 features, got {num_features}")
    if average_degree <= 0:
        raise ValueError(f"average_degree must be positive, got {average_degree}")
    if group_homophily < 0:
        raise ValueError("group_homophily must be non-negative")
    if extra_sensitive_attrs < 0:
        raise ValueError("extra_sensitive_attrs must be non-negative")
    rng = np.random.default_rng(seed)

    nodes = plant_node_bias(
        rng,
        num_nodes,
        num_features,
        group_balance=group_balance,
        label_bias=label_bias,
        proxy_fraction=proxy_fraction,
        proxy_strength=proxy_strength,
        label_signal_strength=label_signal_strength,
        latent_dim=latent_dim,
        feature_noise=feature_noise,
    )
    sensitive, labels, features = nodes.sensitive, nodes.labels, nodes.features

    # -- uniform candidate edges with homophilous rejection --------------- #
    target_edges = int(round(average_degree * num_nodes / 2.0))
    acceptance_floor = 1.0 / (1.0 + group_homophily)
    num_candidates = int(target_edges / max(acceptance_floor, 0.25) * 1.5) + 16
    src = rng.integers(num_nodes, size=num_candidates)
    dst = rng.integers(num_nodes, size=num_candidates)
    lo, hi = sample_rejection_edges(
        src, dst, sensitive, group_homophily, num_nodes, target_edges, rng
    )
    rows = np.concatenate([lo, hi])
    cols = np.concatenate([hi, lo])
    adjacency = sp.csr_matrix(
        (np.ones(rows.size), (rows, cols)), shape=(num_nodes, num_nodes)
    )

    train_mask, val_mask, test_mask = random_split_masks(
        num_nodes, rng, train_fraction=train_fraction, val_fraction=val_fraction
    )
    extra_sensitive: dict[str, np.ndarray] = {}
    for i in range(extra_sensitive_attrs):
        direction = rng.normal(size=latent_dim) / np.sqrt(latent_dim)
        noise = rng.normal(scale=0.5, size=num_nodes)
        extra_sensitive[f"attr{i + 1}"] = (
            nodes.merit @ direction + noise > 0.0
        ).astype(np.int64)
    return Graph(
        adjacency=adjacency,
        features=features,
        labels=labels,
        sensitive=sensitive,
        train_mask=train_mask,
        val_mask=val_mask,
        test_mask=test_mask,
        related_feature_indices=nodes.proxy_columns,
        name=name,
        meta={
            "seed": seed,
            "generator": "erdos_renyi",
            "target_average_degree": average_degree,
            "group_homophily": group_homophily,
            "signal_columns": nodes.signal_columns,
            **({"extra_sensitive": extra_sensitive} if extra_sensitive else {}),
        },
    )
