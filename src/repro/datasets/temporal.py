"""Temporal edge-stream wrapper: replay a static graph as arrival batches.

Any generated :class:`~repro.graph.Graph` can be replayed as a stream of
timestamped edge-arrival batches — the dynamic-graph view of the scenario
matrix.  Each unique undirected edge is assigned one arrival timestamp
(uniform over ``num_batches`` ticks, seeded independently of the generator
so the same graph can be replayed under different arrival orders), and
:meth:`TemporalEdgeStream.snapshot` materialises the prefix graph containing
every edge that has arrived by a given tick.  Snapshots share the node-level
arrays (features, labels, masks) with the source graph, so streaming audits
like :func:`repro.fairness.audit.audit_prediction_windows` can track how
bias metrics evolve as the structure densifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.graph import Graph

__all__ = ["EdgeBatch", "TemporalEdgeStream"]


@dataclass(frozen=True)
class EdgeBatch:
    """One tick of edge arrivals: undirected endpoint arrays ``(src, dst)``."""

    timestamp: int
    src: np.ndarray
    dst: np.ndarray

    @property
    def num_edges(self) -> int:
        return int(self.src.size)


@dataclass
class TemporalEdgeStream:
    """Replay ``graph``'s edges as ``num_batches`` timestamped arrival batches.

    Arrival timestamps are drawn from an independent ``default_rng(seed)``
    stream, so replays are deterministic per seed and never perturb the
    source graph's own RNG discipline.
    """

    graph: Graph
    num_batches: int = 10
    seed: int = 0
    _lo: np.ndarray = field(init=False, repr=False)
    _hi: np.ndarray = field(init=False, repr=False)
    _arrival: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.num_batches < 1:
            raise ValueError(f"need at least 1 batch, got {self.num_batches}")
        coo = self.graph.adjacency.tocoo()
        upper = coo.row < coo.col
        self._lo = coo.row[upper].astype(np.int64)
        self._hi = coo.col[upper].astype(np.int64)
        rng = np.random.default_rng(self.seed)
        self._arrival = rng.integers(self.num_batches, size=self._lo.size)

    @property
    def num_edges(self) -> int:
        return int(self._lo.size)

    def batch(self, timestamp: int) -> EdgeBatch:
        """Edges arriving exactly at ``timestamp`` (0-based tick)."""
        if not 0 <= timestamp < self.num_batches:
            raise ValueError(
                f"timestamp must be in [0, {self.num_batches}), got {timestamp}"
            )
        mask = self._arrival == timestamp
        return EdgeBatch(
            timestamp=timestamp, src=self._lo[mask], dst=self._hi[mask]
        )

    def batches(self) -> list[EdgeBatch]:
        """All arrival batches in timestamp order."""
        return [self.batch(t) for t in range(self.num_batches)]

    def snapshot(self, timestamp: int) -> Graph:
        """Prefix graph with every edge arrived by ``timestamp`` (inclusive).

        Node-level arrays are shared with the source graph (no copies); only
        the adjacency is rebuilt from the arrived edge set.
        """
        if not 0 <= timestamp < self.num_batches:
            raise ValueError(
                f"timestamp must be in [0, {self.num_batches}), got {timestamp}"
            )
        mask = self._arrival <= timestamp
        lo, hi = self._lo[mask], self._hi[mask]
        rows = np.concatenate([lo, hi])
        cols = np.concatenate([hi, lo])
        n = self.graph.num_nodes
        adjacency = sp.csr_matrix((np.ones(rows.size), (rows, cols)), shape=(n, n))
        g = self.graph
        return Graph(
            adjacency=adjacency,
            features=g.features,
            labels=g.labels,
            sensitive=g.sensitive,
            train_mask=g.train_mask,
            val_mask=g.val_mask,
            test_mask=g.test_mask,
            related_feature_indices=g.related_feature_indices,
            name=f"{g.name}@t{timestamp}",
            meta={**g.meta, "snapshot_timestamp": timestamp},
        )
