"""Train/validation/test split utilities (paper: random 50% / 25% / 25%)."""

from __future__ import annotations

import numpy as np

__all__ = ["random_split_masks"]


def random_split_masks(
    num_nodes: int,
    rng: np.random.Generator,
    train_fraction: float = 0.5,
    val_fraction: float = 0.25,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Random node partition into boolean (train, val, test) masks.

    The test fraction is the remainder ``1 - train - val``.  Fractions must
    be positive and sum to at most 1.
    """
    if train_fraction <= 0 or val_fraction <= 0:
        raise ValueError("split fractions must be positive")
    if train_fraction + val_fraction >= 1.0:
        raise ValueError(
            "train_fraction + val_fraction must leave room for a test split, "
            f"got {train_fraction} + {val_fraction}"
        )
    order = rng.permutation(num_nodes)
    n_train = int(round(train_fraction * num_nodes))
    n_val = int(round(val_fraction * num_nodes))
    train_mask = np.zeros(num_nodes, dtype=bool)
    val_mask = np.zeros(num_nodes, dtype=bool)
    test_mask = np.zeros(num_nodes, dtype=bool)
    train_mask[order[:n_train]] = True
    val_mask[order[n_train : n_train + n_val]] = True
    test_mask[order[n_train + n_val :]] = True
    return train_mask, val_mask, test_mask
