"""Causal synthetic graph generator with a planted sensitive-attribute bias.

The generative story follows Fig. 3 of the paper (``s`` influences the
non-sensitive attributes and the graph structure, which influence the
prediction) and the loan-approval running example of Fig. 1:

1. each node draws a sensitive group ``s ~ Bernoulli(group_balance)``
   (race / age / region / nationality / gender in the real datasets);
2. a latent "merit" vector ``z ~ N(0, I)`` captures legitimate signal
   (income-like quantities);
3. the label mixes merit with **historical bias**:
   ``y ~ Bernoulli(σ(w·z + label_bias·(2s−1) + intercept))``;
4. features are linear read-outs of ``z`` plus a label read-out, and a
   designated subset of **proxy columns** additionally shifts with ``s``
   (postal-code-like proxies) — the sensitive attribute itself is *not* a
   column;
5. edges form with probability proportional to merit similarity, boosted
   when endpoints share ``s`` (group homophily) and when they share ``y``
   (label homophily), calibrated to hit a target average degree.

Because ``s`` is recoverable from the proxies and the neighbourhood
structure but absent from the features, a vanilla GNN ends up statistically
unfair (ΔSP, ΔEO > 0) exactly as the paper's "fairness without
demographics" setting requires.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.datasets.splits import random_split_masks
from repro.graph import Graph

__all__ = ["BiasSpec", "generate_biased_graph"]


@dataclass
class BiasSpec:
    """Parameters of the planted bias mechanism.

    Attributes
    ----------
    group_balance:
        P(s = 1).
    label_bias:
        Coefficient of ``(2s − 1)`` in the label logit — historical
        discrimination strength.
    proxy_fraction:
        Fraction of feature columns that act as proxies of ``s``.
    proxy_strength:
        Mean shift of proxy columns between the two groups.
    label_signal_strength:
        Mean shift of (non-proxy) signal columns between the two classes —
        controls task learnability.
    group_homophily:
        Multiplicative edge boost for same-``s`` pairs (0 = none).
    label_homophily:
        Multiplicative edge boost for same-``y`` pairs.
    latent_dim:
        Dimensionality of the merit vector ``z``.
    feature_noise:
        Std of additive feature noise.
    label_intercept:
        Intercept of the label logit (controls the positive rate).
    """

    group_balance: float = 0.5
    label_bias: float = 1.0
    proxy_fraction: float = 0.25
    proxy_strength: float = 1.0
    label_signal_strength: float = 0.8
    group_homophily: float = 2.0
    label_homophily: float = 1.0
    latent_dim: int = 8
    feature_noise: float = 0.5
    label_intercept: float = 0.0

    def validate(self) -> None:
        """Raise ``ValueError`` for out-of-range parameters."""
        if not 0.0 < self.group_balance < 1.0:
            raise ValueError(f"group_balance must be in (0, 1), got {self.group_balance}")
        if not 0.0 <= self.proxy_fraction <= 1.0:
            raise ValueError(f"proxy_fraction must be in [0, 1], got {self.proxy_fraction}")
        if self.latent_dim < 1:
            raise ValueError(f"latent_dim must be >= 1, got {self.latent_dim}")
        for name in ("proxy_strength", "label_signal_strength", "feature_noise"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.group_homophily < 0 or self.label_homophily < 0:
            raise ValueError("homophily boosts must be non-negative")


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30, 30)))


def _sample_edges(
    merit: np.ndarray,
    sensitive: np.ndarray,
    labels: np.ndarray,
    target_average_degree: float,
    spec: BiasSpec,
    rng: np.random.Generator,
) -> sp.csr_matrix:
    """Sample a symmetric adjacency with calibrated expected degree."""
    n = merit.shape[0]
    # Merit-similarity kernel on a random low-dim projection keeps this O(N²)
    # with small constants; N is at most a few thousand here.
    proj = merit[:, : min(4, merit.shape[1])]
    sq_norms = (proj**2).sum(axis=1)
    distances = sq_norms[:, None] + sq_norms[None, :] - 2.0 * proj @ proj.T
    np.maximum(distances, 0.0, out=distances)
    bandwidth = max(float(np.median(distances)), 1e-9)
    affinity = np.exp(-distances / bandwidth)

    same_s = sensitive[:, None] == sensitive[None, :]
    same_y = labels[:, None] == labels[None, :]
    affinity *= 1.0 + spec.group_homophily * same_s
    affinity *= 1.0 + spec.label_homophily * same_y
    np.fill_diagonal(affinity, 0.0)

    target_edges = target_average_degree * n / 2.0
    upper = np.triu_indices(n, k=1)
    weights = affinity[upper]
    total = weights.sum()
    if total <= 0:
        raise RuntimeError("degenerate affinity matrix: no positive weights")
    probs = np.minimum(1.0, weights * (target_edges / total))
    # One calibration refinement: clipping at 1 loses mass, redistribute it.
    deficit = target_edges - probs.sum()
    if deficit > 1e-9:
        headroom = 1.0 - probs
        room_total = headroom.sum()
        if room_total > 0:
            probs = np.minimum(1.0, probs + headroom * (deficit / room_total))
    draws = rng.random(probs.shape) < probs
    rows = upper[0][draws]
    cols = upper[1][draws]
    data = np.ones(rows.size * 2, dtype=np.float64)
    adjacency = sp.csr_matrix(
        (data, (np.concatenate([rows, cols]), np.concatenate([cols, rows]))),
        shape=(n, n),
    )
    return adjacency


def generate_biased_graph(
    num_nodes: int,
    num_features: int,
    average_degree: float,
    spec: BiasSpec | None = None,
    seed: int = 0,
    name: str = "synthetic",
    train_fraction: float = 0.5,
    val_fraction: float = 0.25,
) -> Graph:
    """Generate a :class:`~repro.graph.Graph` with planted sensitive bias.

    Parameters
    ----------
    num_nodes, num_features, average_degree:
        Basic graph dimensions (matched to the paper's Table I statistics by
        the dataset registry).
    spec:
        Bias mechanism parameters (defaults to :class:`BiasSpec`'s defaults).
    seed:
        Seed for all sampling (node attributes, edges, splits).
    name:
        Dataset identifier stored on the graph.
    train_fraction, val_fraction:
        Split sizes; the paper uses 50% / 25% / 25%.
    """
    if num_nodes < 10:
        raise ValueError(f"need at least 10 nodes, got {num_nodes}")
    if num_features < 2:
        raise ValueError(f"need at least 2 features, got {num_features}")
    spec = spec or BiasSpec()
    spec.validate()
    rng = np.random.default_rng(seed)

    sensitive = (rng.random(num_nodes) < spec.group_balance).astype(np.int64)
    merit = rng.normal(size=(num_nodes, spec.latent_dim))

    label_weights = rng.normal(size=spec.latent_dim) / np.sqrt(spec.latent_dim)
    logits = (
        merit @ label_weights
        + spec.label_bias * (2.0 * sensitive - 1.0)
        + spec.label_intercept
    )
    labels = (rng.random(num_nodes) < _sigmoid(logits)).astype(np.int64)

    # Feature construction: every column reads the merit vector; a random
    # subset of proxy columns additionally shifts with s, and a disjoint
    # subset of signal columns shifts with y.
    readout = rng.normal(size=(spec.latent_dim, num_features)) / np.sqrt(spec.latent_dim)
    features = merit @ readout
    columns = rng.permutation(num_features)
    n_proxy = max(1, int(round(spec.proxy_fraction * num_features)))
    n_proxy = min(n_proxy, num_features - 1)
    proxy_columns = np.sort(columns[:n_proxy])
    n_signal = max(1, (num_features - n_proxy) // 2)
    signal_columns = np.sort(columns[n_proxy : n_proxy + n_signal])
    features[:, proxy_columns] += (
        spec.proxy_strength * (2.0 * sensitive - 1.0)[:, None]
    )
    features[:, signal_columns] += (
        spec.label_signal_strength * (2.0 * labels - 1.0)[:, None]
    )
    features += rng.normal(scale=spec.feature_noise, size=features.shape)

    adjacency = _sample_edges(merit, sensitive, labels, average_degree, spec, rng)
    train_mask, val_mask, test_mask = random_split_masks(
        num_nodes, rng, train_fraction=train_fraction, val_fraction=val_fraction
    )
    return Graph(
        adjacency=adjacency,
        features=features,
        labels=labels,
        sensitive=sensitive,
        train_mask=train_mask,
        val_mask=val_mask,
        test_mask=test_mask,
        related_feature_indices=proxy_columns,
        name=name,
        meta={
            "seed": seed,
            "spec": spec,
            "signal_columns": signal_columns,
            "target_average_degree": average_degree,
        },
    )
