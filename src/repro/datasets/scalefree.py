"""Large synthetic scale-free graphs with the same planted bias story.

:mod:`repro.datasets.causal` builds a dense ``(N, N)`` affinity matrix, which
caps it at a few thousand nodes.  This module generates graphs with
**power-law degrees at million-node scale** using a Chung–Lu style sparse
sampler: every step is O(nodes + edges) vectorized numpy, so a 100k-node
graph takes well under a second and never touches an ``(N, N)`` array.

The bias mechanism mirrors the causal generator so the fairness scenario
carries over: a sensitive group ``s`` shifts proxy feature columns, biases
the label logit, and boosts same-group edge formation (homophily via
rejection sampling on candidate edges).  The result is a
:class:`~repro.graph.Graph` ready for the minibatch training engine.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.datasets.splits import random_split_masks
from repro.graph import Graph

__all__ = ["generate_scale_free_graph"]


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30, 30)))


def _power_law_weights(
    num_nodes: int, exponent: float, rng: np.random.Generator
) -> np.ndarray:
    """Expected-degree weights ``w_i ~ Pareto(exponent - 1)`` (heavy tail)."""
    # Inverse-CDF sampling of a Pareto with shape (exponent - 1): degree
    # distribution of the resulting Chung–Lu graph follows ~ k^{-exponent}.
    u = rng.random(num_nodes)
    return (1.0 - u) ** (-1.0 / (exponent - 1.0))


def generate_scale_free_graph(
    num_nodes: int,
    num_features: int = 16,
    average_degree: float = 10.0,
    power_law_exponent: float = 2.5,
    group_balance: float = 0.5,
    label_bias: float = 0.8,
    proxy_fraction: float = 0.25,
    proxy_strength: float = 1.0,
    label_signal_strength: float = 0.8,
    group_homophily: float = 2.0,
    latent_dim: int = 8,
    feature_noise: float = 0.5,
    seed: int = 0,
    name: str = "scalefree",
    train_fraction: float = 0.5,
    val_fraction: float = 0.25,
) -> Graph:
    """Generate a scale-free :class:`~repro.graph.Graph` with planted bias.

    Parameters
    ----------
    num_nodes, num_features, average_degree:
        Graph dimensions; memory and time are O(nodes + edges).
    power_law_exponent:
        Target degree-distribution exponent (> 2; 2.5 is the classic
        social-network value).
    group_balance, label_bias, proxy_fraction, proxy_strength,
    label_signal_strength, latent_dim, feature_noise:
        Bias mechanism, as in :class:`repro.datasets.causal.BiasSpec`.
    group_homophily:
        Same-group candidate edges are ``1 + group_homophily`` times more
        likely to be accepted than cross-group ones.
    seed, name, train_fraction, val_fraction:
        Reproducibility / bookkeeping, as in the causal generator.
    """
    if num_nodes < 10:
        raise ValueError(f"need at least 10 nodes, got {num_nodes}")
    if num_features < 2:
        raise ValueError(f"need at least 2 features, got {num_features}")
    if power_law_exponent <= 2.0:
        raise ValueError(
            f"power_law_exponent must be > 2, got {power_law_exponent}"
        )
    if average_degree <= 0:
        raise ValueError(f"average_degree must be positive, got {average_degree}")
    if group_homophily < 0:
        raise ValueError("group_homophily must be non-negative")
    rng = np.random.default_rng(seed)

    # -- node-level quantities (identical story to the causal generator) -- #
    sensitive = (rng.random(num_nodes) < group_balance).astype(np.int64)
    merit = rng.normal(size=(num_nodes, latent_dim))
    label_weights = rng.normal(size=latent_dim) / np.sqrt(latent_dim)
    logits = merit @ label_weights + label_bias * (2.0 * sensitive - 1.0)
    labels = (rng.random(num_nodes) < _sigmoid(logits)).astype(np.int64)

    readout = rng.normal(size=(latent_dim, num_features)) / np.sqrt(latent_dim)
    features = merit @ readout
    columns = rng.permutation(num_features)
    n_proxy = min(max(1, int(round(proxy_fraction * num_features))), num_features - 1)
    proxy_columns = np.sort(columns[:n_proxy])
    n_signal = max(1, (num_features - n_proxy) // 2)
    signal_columns = np.sort(columns[n_proxy : n_proxy + n_signal])
    features[:, proxy_columns] += proxy_strength * (2.0 * sensitive - 1.0)[:, None]
    features[:, signal_columns] += (
        label_signal_strength * (2.0 * labels - 1.0)[:, None]
    )
    features += rng.normal(scale=feature_noise, size=features.shape)

    # -- Chung–Lu edge sampling with homophilous rejection --------------- #
    weights = _power_law_weights(num_nodes, power_law_exponent, rng)
    probabilities = weights / weights.sum()
    target_edges = int(round(average_degree * num_nodes / 2.0))
    # Oversample candidates: rejection (homophily) plus dedup/self-loop
    # removal discard a predictable fraction.
    acceptance_floor = 1.0 / (1.0 + group_homophily)
    num_candidates = int(target_edges / max(acceptance_floor, 0.25) * 1.5) + 16
    src = rng.choice(num_nodes, size=num_candidates, p=probabilities)
    dst = rng.choice(num_nodes, size=num_candidates, p=probabilities)
    keep = src != dst
    same_group = sensitive[src] == sensitive[dst]
    accept_prob = np.where(same_group, 1.0, acceptance_floor)
    keep &= rng.random(num_candidates) < accept_prob
    src, dst = src[keep], dst[keep]
    # Canonicalise + dedup, then truncate to the edge budget.
    lo, hi = np.minimum(src, dst), np.maximum(src, dst)
    pairs = np.unique(lo.astype(np.int64) * num_nodes + hi)
    pairs = pairs[rng.permutation(pairs.size)][:target_edges]
    lo, hi = pairs // num_nodes, pairs % num_nodes
    rows = np.concatenate([lo, hi])
    cols = np.concatenate([hi, lo])
    adjacency = sp.csr_matrix(
        (np.ones(rows.size), (rows, cols)), shape=(num_nodes, num_nodes)
    )

    train_mask, val_mask, test_mask = random_split_masks(
        num_nodes, rng, train_fraction=train_fraction, val_fraction=val_fraction
    )
    return Graph(
        adjacency=adjacency,
        features=features,
        labels=labels,
        sensitive=sensitive,
        train_mask=train_mask,
        val_mask=val_mask,
        test_mask=test_mask,
        related_feature_indices=proxy_columns,
        name=name,
        meta={
            "seed": seed,
            "generator": "scale_free",
            "power_law_exponent": power_law_exponent,
            "target_average_degree": average_degree,
            "group_homophily": group_homophily,
            "signal_columns": signal_columns,
        },
    )
