"""Large synthetic scale-free graphs with the same planted bias story.

:mod:`repro.datasets.causal` builds a dense ``(N, N)`` affinity matrix, which
caps it at a few thousand nodes.  This module generates graphs with
**power-law degrees at million-node scale** using a Chung–Lu style sparse
sampler: every step is O(nodes + edges) vectorized numpy, so a 100k-node
graph takes well under a second and never touches an ``(N, N)`` array.

The bias mechanism mirrors the causal generator so the fairness scenario
carries over: a sensitive group ``s`` shifts proxy feature columns, biases
the label logit, and boosts same-group edge formation (homophily via
rejection sampling on candidate edges).  The result is a
:class:`~repro.graph.Graph` ready for the minibatch training engine.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.datasets._planted import plant_node_bias
from repro.datasets.splits import random_split_masks
from repro.graph import Graph

__all__ = ["generate_scale_free_graph"]


def _power_law_weights(
    num_nodes: int, exponent: float, rng: np.random.Generator
) -> np.ndarray:
    """Expected-degree weights ``w_i ~ Pareto(exponent - 1)`` (heavy tail)."""
    # Inverse-CDF sampling of a Pareto with shape (exponent - 1): degree
    # distribution of the resulting Chung–Lu graph follows ~ k^{-exponent}.
    u = rng.random(num_nodes)
    return (1.0 - u) ** (-1.0 / (exponent - 1.0))


def generate_scale_free_graph(
    num_nodes: int,
    num_features: int = 16,
    average_degree: float = 10.0,
    power_law_exponent: float = 2.5,
    group_balance: float = 0.5,
    label_bias: float = 0.8,
    proxy_fraction: float = 0.25,
    proxy_strength: float = 1.0,
    label_signal_strength: float = 0.8,
    group_homophily: float = 2.0,
    latent_dim: int = 8,
    feature_noise: float = 0.5,
    seed: int = 0,
    name: str = "scalefree",
    train_fraction: float = 0.5,
    val_fraction: float = 0.25,
    extra_sensitive_attrs: int = 0,
) -> Graph:
    """Generate a scale-free :class:`~repro.graph.Graph` with planted bias.

    Parameters
    ----------
    num_nodes, num_features, average_degree:
        Graph dimensions; memory and time are O(nodes + edges).
    power_law_exponent:
        Target degree-distribution exponent (> 2; 2.5 is the classic
        social-network value).
    group_balance, label_bias, proxy_fraction, proxy_strength,
    label_signal_strength, latent_dim, feature_noise:
        Bias mechanism, as in :class:`repro.datasets.causal.BiasSpec`.
    group_homophily:
        Same-group candidate edges are ``1 + group_homophily`` times more
        likely to be accepted than cross-group ones.
    seed, name, train_fraction, val_fraction:
        Reproducibility / bookkeeping, as in the causal generator.
    extra_sensitive_attrs:
        Additional planted binary attributes for intersectional audits,
        stored under ``meta["extra_sensitive"]`` as ``{"attr1": ..., ...}``.
        Each is thresholded from a fresh random direction of the latent
        merit (so it correlates with features and predictions without being
        a copy of ``s``).  Drawn *after* every other random draw, so the
        default ``0`` generates bit-identical graphs to older versions.
    """
    if num_nodes < 10:
        raise ValueError(f"need at least 10 nodes, got {num_nodes}")
    if num_features < 2:
        raise ValueError(f"need at least 2 features, got {num_features}")
    if power_law_exponent <= 2.0:
        raise ValueError(
            f"power_law_exponent must be > 2, got {power_law_exponent}"
        )
    if average_degree <= 0:
        raise ValueError(f"average_degree must be positive, got {average_degree}")
    if group_homophily < 0:
        raise ValueError("group_homophily must be non-negative")
    if extra_sensitive_attrs < 0:
        raise ValueError("extra_sensitive_attrs must be non-negative")
    rng = np.random.default_rng(seed)

    # -- node-level quantities (identical story to the causal generator) -- #
    nodes = plant_node_bias(
        rng,
        num_nodes,
        num_features,
        group_balance=group_balance,
        label_bias=label_bias,
        proxy_fraction=proxy_fraction,
        proxy_strength=proxy_strength,
        label_signal_strength=label_signal_strength,
        latent_dim=latent_dim,
        feature_noise=feature_noise,
    )
    sensitive, labels, features = nodes.sensitive, nodes.labels, nodes.features
    proxy_columns, signal_columns = nodes.proxy_columns, nodes.signal_columns

    # -- Chung–Lu edge sampling with homophilous rejection --------------- #
    weights = _power_law_weights(num_nodes, power_law_exponent, rng)
    probabilities = weights / weights.sum()
    target_edges = int(round(average_degree * num_nodes / 2.0))
    # Oversample candidates: rejection (homophily) plus dedup/self-loop
    # removal discard a predictable fraction.
    acceptance_floor = 1.0 / (1.0 + group_homophily)
    num_candidates = int(target_edges / max(acceptance_floor, 0.25) * 1.5) + 16
    src = rng.choice(num_nodes, size=num_candidates, p=probabilities)
    dst = rng.choice(num_nodes, size=num_candidates, p=probabilities)
    keep = src != dst
    same_group = sensitive[src] == sensitive[dst]
    accept_prob = np.where(same_group, 1.0, acceptance_floor)
    keep &= rng.random(num_candidates) < accept_prob
    src, dst = src[keep], dst[keep]
    # Canonicalise + dedup, then truncate to the edge budget.
    lo, hi = np.minimum(src, dst), np.maximum(src, dst)
    pairs = np.unique(lo.astype(np.int64) * num_nodes + hi)
    pairs = pairs[rng.permutation(pairs.size)][:target_edges]
    lo, hi = pairs // num_nodes, pairs % num_nodes
    rows = np.concatenate([lo, hi])
    cols = np.concatenate([hi, lo])
    adjacency = sp.csr_matrix(
        (np.ones(rows.size), (rows, cols)), shape=(num_nodes, num_nodes)
    )

    train_mask, val_mask, test_mask = random_split_masks(
        num_nodes, rng, train_fraction=train_fraction, val_fraction=val_fraction
    )
    # Extra planted attributes draw last so extra_sensitive_attrs=0 keeps
    # every array above bit-identical to historical output.
    extra_sensitive: dict[str, np.ndarray] = {}
    for i in range(extra_sensitive_attrs):
        direction = rng.normal(size=latent_dim) / np.sqrt(latent_dim)
        noise = rng.normal(scale=0.5, size=num_nodes)
        extra_sensitive[f"attr{i + 1}"] = (
            nodes.merit @ direction + noise > 0.0
        ).astype(np.int64)
    return Graph(
        adjacency=adjacency,
        features=features,
        labels=labels,
        sensitive=sensitive,
        train_mask=train_mask,
        val_mask=val_mask,
        test_mask=test_mask,
        related_feature_indices=proxy_columns,
        name=name,
        meta={
            "seed": seed,
            "generator": "scale_free",
            "power_law_exponent": power_law_exponent,
            "target_average_degree": average_degree,
            "group_homophily": group_homophily,
            "signal_columns": signal_columns,
            **({"extra_sensitive": extra_sensitive} if extra_sensitive else {}),
        },
    )
