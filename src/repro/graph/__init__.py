"""Graph data structures and sparse utilities for message passing."""

from repro.graph.graph import Graph
from repro.graph.normalize import (
    add_self_loops,
    gcn_normalize,
    row_normalize,
    to_symmetric,
)
from repro.graph.sampling import (
    Block,
    EpochBlockCache,
    NeighborSampler,
    block_gcn_matrix,
    block_mean_matrix,
    block_sum_matrix,
    is_block_sequence,
    random_walks,
    sample_neighbors,
    subsample_edges,
)
from repro.graph.utils import (
    edge_homophily,
    k_hop_neighbors,
    edges_from_adjacency,
    adjacency_from_edges,
    degree_vector,
)

__all__ = [
    "Graph",
    "Block",
    "EpochBlockCache",
    "NeighborSampler",
    "block_gcn_matrix",
    "block_mean_matrix",
    "block_sum_matrix",
    "is_block_sequence",
    "add_self_loops",
    "gcn_normalize",
    "row_normalize",
    "to_symmetric",
    "edge_homophily",
    "k_hop_neighbors",
    "random_walks",
    "sample_neighbors",
    "subsample_edges",
    "edges_from_adjacency",
    "adjacency_from_edges",
    "degree_vector",
]
