"""Stochastic graph sampling utilities.

Substrate extensions used by the scalability-oriented parts of the library:
GraphSAGE-style neighbour sampling, layered bipartite **blocks** for
minibatch training (:class:`NeighborSampler`), random walks
(DeepWalk/node2vec-p=q=1), and edge subsampling (the augmentation NIFTY's
stability view relies on).  All stochastic functions take an explicit
``numpy.random.Generator``.

Minibatch blocks
----------------
A :class:`Block` is one hop of a sampled computation graph: a bipartite
sub-adjacency from ``num_src`` input nodes to ``num_dst`` output nodes,
with the invariant ``src_nodes[:num_dst] == dst_nodes`` so every output
node can read its own input-layer representation at the same local index
(the DGL "block" convention).  :meth:`NeighborSampler.sample_blocks` builds
one block per GNN layer, outermost seeds first in *reverse*, and returns
them input-layer-first so a model can fold them left to right.

All sampling is vectorized over CSR ``indptr``/``indices`` — there are no
Python-per-node loops, so sampling a batch is O(edges touched) numpy work.

Draw/select split
-----------------
Edge selection is factored into two halves so the multiprocess sampler
(:mod:`repro.training.parallel`) can keep the generator stream bit-identical
to serial training while farming out the heavy work:

* :meth:`NeighborSampler.draw_edge_keys` consumes the generator *exactly*
  as serial sampling does (same calls, same sizes, same order) and returns
  a cheap random payload;
* :meth:`NeighborSampler.sample_block_with_keys` turns that payload into a
  :class:`Block` deterministically — it can run in any process, in any
  order, and still reproduce the serial block byte for byte.

``_sample_block`` composes the two, so the serial path is the split path by
construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
import scipy.sparse as sp

from repro.graph.utils import adjacency_from_edges, edges_from_adjacency

__all__ = [
    "Block",
    "EpochBlockCache",
    "NeighborSampler",
    "is_block_sequence",
    "block_gcn_matrix",
    "block_mean_matrix",
    "block_sum_matrix",
    "sample_neighbors",
    "random_walks",
    "subsample_edges",
]


@dataclass
class Block:
    """One sampled bipartite message-passing layer.

    Attributes
    ----------
    adjacency:
        ``(num_dst, num_src)`` CSR matrix of sampled edges.  Entry ``(i, j)``
        means local source ``j`` is a sampled neighbour of local destination
        ``i`` (its value is the multiplicity, > 1 only when sampling with
        replacement).  Self-loops are *not* included; consumers add them.
    src_nodes:
        Global ids of the input nodes, ``(num_src,)``.  The first ``num_dst``
        entries are exactly ``dst_nodes`` (in order).
    dst_nodes:
        Global ids of the output nodes, ``(num_dst,)``.
    src_degrees / dst_degrees:
        Full-graph degrees of the source/destination nodes — sampled
        aggregators use these to keep normalisation consistent with the
        full-batch operators (and therefore exact under exhaustive fanout).
    """

    adjacency: sp.csr_matrix
    src_nodes: np.ndarray
    dst_nodes: np.ndarray
    src_degrees: np.ndarray
    dst_degrees: np.ndarray

    def __post_init__(self) -> None:
        # Float data keeps the block operators' reciprocal/ratio scaling
        # exact even when callers hand in an integer 0/1 adjacency;
        # copy=False leaves sampler-built float blocks untouched.
        self.adjacency = sp.csr_matrix(self.adjacency).astype(
            np.float64, copy=False
        )
        self.src_nodes = np.asarray(self.src_nodes, dtype=np.int64)
        self.dst_nodes = np.asarray(self.dst_nodes, dtype=np.int64)
        self.src_degrees = np.asarray(self.src_degrees, dtype=np.float64)
        self.dst_degrees = np.asarray(self.dst_degrees, dtype=np.float64)
        if self.adjacency.shape != (self.num_dst, self.num_src):
            raise ValueError(
                f"block adjacency shape {self.adjacency.shape} does not match "
                f"({self.num_dst}, {self.num_src})"
            )
        if not np.array_equal(self.src_nodes[: self.num_dst], self.dst_nodes):
            raise ValueError("src_nodes must start with dst_nodes")
        # Lazily filled by the block operators below.  A block used once (the
        # fresh-sample path) pays one dict lookup; a block replayed across
        # epochs by :class:`EpochBlockCache` folds its normalised operator
        # matrix exactly once instead of once per gradient step.
        self._operator_cache: dict[str, sp.csr_matrix] = {}

    @property
    def num_src(self) -> int:
        """Number of input nodes."""
        return int(self.src_nodes.shape[0])

    @property
    def num_dst(self) -> int:
        """Number of output nodes."""
        return int(self.dst_nodes.shape[0])

    def sampled_in_degrees(self) -> np.ndarray:
        """Per-destination count (with multiplicity) of sampled neighbours."""
        return np.asarray(self.adjacency.sum(axis=1)).reshape(-1)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Block(num_dst={self.num_dst}, num_src={self.num_src}, "
            f"edges={self.adjacency.nnz})"
        )


def is_block_sequence(value) -> bool:
    """True when ``value`` is a non-empty list/tuple of :class:`Block`."""
    return (
        isinstance(value, (list, tuple))
        and len(value) > 0
        and all(isinstance(item, Block) for item in value)
    )


class NeighborSampler:
    """Layered GraphSAGE-style neighbour sampler producing :class:`Block`\\ s.

    Parameters
    ----------
    adjacency:
        ``(N, N)`` sparse adjacency (converted to CSR once).  Assumed
        unweighted — every stored edge is sampled with equal probability.
    fanouts:
        One entry per GNN layer, **input layer first** (matching the layer
        order models fold blocks in).  Each entry is either a positive int
        (sample up to that many neighbours per node) or ``None`` (keep the
        full neighbourhood — used for exact minibatched inference).
    replace:
        Sample with replacement (GraphSAGE's original behaviour).  Repeated
        draws accumulate multiplicity in the block adjacency, which the mean
        aggregator weights correctly.

    Examples
    --------
    >>> sampler = NeighborSampler(graph.adjacency, fanouts=(10, 5))
    >>> blocks = sampler.sample_blocks(seed_nodes, rng)
    >>> logits = model(Tensor(graph.features[blocks[0].src_nodes]), blocks)
    """

    def __init__(
        self,
        adjacency: sp.spmatrix,
        fanouts: Sequence[int | None],
        replace: bool = False,
    ) -> None:
        matrix = sp.csr_matrix(adjacency)
        if matrix.shape[0] != matrix.shape[1]:
            raise ValueError(f"adjacency must be square, got {matrix.shape}")
        if matrix.diagonal().any():
            # Stored self-loops would be sampled as ordinary edges while the
            # block operators (and the full-batch GCN/GAT normalisations)
            # manage self-loops themselves — the double-count would silently
            # break the exactness contract.  The Graph container guarantees a
            # zero diagonal; enforce the same here.
            raise ValueError(
                "adjacency must have a zero diagonal (no stored self-loops); "
                "block operators add self-loops themselves"
            )
        fanouts = tuple(fanouts)
        if not fanouts:
            raise ValueError("fanouts must have at least one entry")
        for fanout in fanouts:
            if fanout is not None and fanout < 1:
                raise ValueError(f"fanouts must be >= 1 or None, got {fanout}")
        self._indptr = matrix.indptr
        self._indices = matrix.indices.astype(np.int64, copy=False)
        self._degrees = np.diff(matrix.indptr).astype(np.int64)
        self.num_nodes = matrix.shape[0]
        self.fanouts = fanouts
        self.replace = replace

    @classmethod
    def full_neighborhood(
        cls, adjacency: sp.spmatrix, num_layers: int
    ) -> "NeighborSampler":
        """Sampler that keeps every neighbour (exact minibatched inference)."""
        if num_layers < 1:
            raise ValueError(f"num_layers must be >= 1, got {num_layers}")
        return cls(adjacency, fanouts=(None,) * num_layers)

    @classmethod
    def from_csr_arrays(
        cls,
        indptr: np.ndarray,
        indices: np.ndarray,
        degrees: np.ndarray,
        num_nodes: int,
        fanouts: Sequence[int | None],
        replace: bool = False,
    ) -> "NeighborSampler":
        """Rebuild a sampler around pre-validated CSR arrays.

        Used by worker processes attaching to shared-memory segments: the
        arrays are exactly a parent sampler's ``_indptr``/``_indices``/
        ``_degrees`` (same dtypes), so no conversion, validation or copying
        happens — the worker samples straight out of shared memory.
        """
        self = cls.__new__(cls)
        self._indptr = indptr
        self._indices = indices
        self._degrees = degrees
        self.num_nodes = int(num_nodes)
        self.fanouts = tuple(fanouts)
        self.replace = replace
        return self

    def csr_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The internal ``(indptr, indices, degrees)`` triple (not copied)."""
        return self._indptr, self._indices, self._degrees

    @property
    def num_layers(self) -> int:
        """Number of blocks produced per call (== ``len(fanouts)``)."""
        return len(self.fanouts)

    # ------------------------------------------------------------------ #
    def sample_blocks(
        self, seeds: np.ndarray, rng: np.random.Generator | None = None
    ) -> list[Block]:
        """Sample one block per fanout for the given seed (output) nodes.

        ``seeds`` must be unique, in-range node ids.  Returns the blocks
        input-layer first: ``blocks[-1].dst_nodes == seeds`` and
        ``blocks[i].dst_nodes == blocks[i + 1].src_nodes``.
        """
        seeds = self._validated_seeds(seeds)
        if rng is None:
            rng = np.random.default_rng()
        blocks: list[Block] = []
        dst = seeds
        for fanout in reversed(self.fanouts):
            block = self._sample_block(dst, fanout, rng)
            blocks.append(block)
            dst = block.src_nodes
        return blocks[::-1]

    def sample_blocks_with_keys(
        self, seeds: np.ndarray, keys_list: Sequence[np.ndarray | None]
    ) -> list[Block]:
        """Rebuild :meth:`sample_blocks`'s output from pre-drawn keys.

        ``keys_list`` holds one :meth:`draw_edge_keys` payload per layer in
        *sampling* order (outermost seeds first, i.e. ``reversed(fanouts)``).
        Deterministic — safe to run in a worker process.
        """
        seeds = self._validated_seeds(seeds)
        fanouts = tuple(reversed(self.fanouts))
        if len(keys_list) != len(fanouts):
            raise ValueError(
                f"got {len(keys_list)} key payloads for {len(fanouts)} layers"
            )
        blocks: list[Block] = []
        dst = seeds
        for fanout, keys in zip(fanouts, keys_list):
            block = self.sample_block_with_keys(dst, fanout, keys)
            blocks.append(block)
            dst = block.src_nodes
        return blocks[::-1]

    def _validated_seeds(self, seeds: np.ndarray) -> np.ndarray:
        seeds = np.asarray(seeds, dtype=np.int64).reshape(-1)
        if seeds.size == 0:
            raise ValueError("seeds must be non-empty")
        if seeds.min() < 0 or seeds.max() >= self.num_nodes:
            raise ValueError("seed ids out of range")
        if np.unique(seeds).size != seeds.size:
            raise ValueError("seeds must be unique")
        return seeds

    # ------------------------------------------------------------------ #
    def draw_edge_keys(
        self, dst: np.ndarray, fanout: int | None, rng: np.random.Generator
    ) -> np.ndarray | None:
        """Consume the generator for one layer's edge selection.

        This is the *only* random step of edge selection — it makes exactly
        the draws (same calls, same sizes, same order) the fused
        ``_select_edges`` path makes, and returns them as a payload that
        :meth:`sample_block_with_keys` turns into a block deterministically.
        Cheap relative to selection: O(candidate edges) random floats, no
        sorting/setdiff/CSR assembly.
        """
        counts = self._degrees[dst]
        if self.replace and fanout is not None:
            nonzero = np.flatnonzero(counts > 0)
            counts_rep = np.repeat(counts[nonzero], fanout)
            return rng.integers(0, counts_rep)
        total = int(counts.sum())
        if fanout is None or total == 0:
            return None
        return rng.random(total)

    def _select_edges(
        self, dst: np.ndarray, fanout: int | None, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized per-row edge selection (draw + deterministic select)."""
        return self._select_edges_from_keys(
            dst, fanout, self.draw_edge_keys(dst, fanout, rng)
        )

    def _select_edges_from_keys(
        self, dst: np.ndarray, fanout: int | None, keys: np.ndarray | None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Deterministic half of edge selection.

        Returns ``(rows, neighbors)`` where ``rows`` are local indices into
        ``dst`` and ``neighbors`` are global neighbour ids.  ``keys`` is the
        matching :meth:`draw_edge_keys` payload.
        """
        starts = self._indptr[dst]
        counts = self._degrees[dst]

        if self.replace and fanout is not None:
            # Each non-isolated row draws exactly ``fanout`` times uniformly.
            nonzero = np.flatnonzero(counts > 0)
            rows = np.repeat(nonzero, fanout)
            starts_rep = np.repeat(starts[nonzero], fanout)
            picks = keys
            return rows, self._indices[starts_rep + picks]

        # Expand all incident edges of the batch: rows[k] is the local dst of
        # the k-th candidate edge, offsets give its position within its row.
        total = int(counts.sum())
        rows = np.repeat(np.arange(dst.size), counts)
        row_starts = np.concatenate(([0], np.cumsum(counts)))[:-1]
        within = np.arange(total) - np.repeat(row_starts, counts)
        neighbors = self._indices[np.repeat(starts, counts) + within]
        if fanout is None or total == 0:
            return rows, neighbors

        # Uniform sampling without replacement, all rows at once: every
        # candidate edge carries a random key (drawn in draw_edge_keys) and
        # each row keeps its ``fanout`` smallest keys.  Selection runs as a
        # bucketed two-pass counting sort
        # instead of a full O(E log E) lexsort over the batch's incident
        # edges: histogram each row's keys into ~average-degree key-prefix
        # buckets, keep whole buckets below the row's threshold bucket, and
        # sort only the threshold bucket's edges (expected O(rows) of them)
        # to fill the remaining quota.  The kept edge *set* is identical to
        # the full sort's — buckets partition the key range monotonically,
        # and the stable within-bucket sort breaks duplicate keys by edge
        # position exactly like the stable full lexsort did.
        need = counts > fanout
        if not need.any():
            return rows, neighbors
        num_rows = dst.size
        buckets = int(min(256, max(2, total // num_rows + 1)))
        edge_bucket = np.minimum((keys * buckets).astype(np.int64), buckets - 1)
        hist = np.bincount(
            rows * buckets + edge_bucket, minlength=num_rows * buckets
        ).reshape(num_rows, buckets)
        cum = np.cumsum(hist, axis=1)
        threshold = np.argmax(cum >= fanout, axis=1)
        below = np.where(
            threshold > 0, cum[np.arange(num_rows), threshold - 1], 0
        )
        quota = fanout - below
        in_need = need[rows]
        edge_threshold = threshold[rows]
        keep_mask = np.ones(total, dtype=bool)
        keep_mask[in_need & (edge_bucket > edge_threshold)] = False
        border = np.flatnonzero(in_need & (edge_bucket == edge_threshold))
        border = border[np.lexsort((keys[border], rows[border]))]
        border_rows = rows[border]
        border_starts = np.concatenate(
            ([0], np.cumsum(np.bincount(border_rows, minlength=num_rows)))
        )[:-1]
        rank = np.arange(border.size) - border_starts[border_rows]
        keep_mask[border[rank >= quota[border_rows]]] = False
        keep = np.flatnonzero(keep_mask)
        return rows[keep], neighbors[keep]

    def _sample_block(
        self, dst: np.ndarray, fanout: int | None, rng: np.random.Generator
    ) -> Block:
        return self.sample_block_with_keys(
            dst, fanout, self.draw_edge_keys(dst, fanout, rng)
        )

    def sample_block_with_keys(
        self, dst: np.ndarray, fanout: int | None, keys: np.ndarray | None
    ) -> Block:
        """Build one block from a pre-drawn :meth:`draw_edge_keys` payload.

        Deterministic given ``(dst, fanout, keys)`` — the multiprocess
        sampler draws keys in the main process (preserving the serial
        generator stream) and ships this call to workers.
        """
        rows, neighbors = self._select_edges_from_keys(dst, fanout, keys)
        # Source set: destinations first (local id i == dst i), then the
        # newly reached neighbours in sorted order (deterministic).
        extra = np.setdiff1d(neighbors, dst)
        src_nodes = np.concatenate([dst, extra])
        # Map global neighbour ids to local column ids via a sorted view.
        src_order = np.argsort(src_nodes, kind="stable")
        cols = src_order[np.searchsorted(src_nodes[src_order], neighbors)]
        adjacency = sp.csr_matrix(
            (np.ones(neighbors.size), (rows, cols)),
            shape=(dst.size, src_nodes.size),
        )
        return Block(
            adjacency=adjacency,
            src_nodes=src_nodes,
            dst_nodes=dst,
            src_degrees=self._degrees[src_nodes],
            dst_degrees=self._degrees[dst],
        )


class EpochBlockCache:
    """Epoch-level replay cache for sampled minibatch structure.

    Per-batch neighbour sampling is pure numpy bookkeeping (lexsort,
    setdiff, searchsorted per layer) and dominates sampled-epoch wall-time
    once the model is small; the structure it produces, however, is equally
    valid for several consecutive epochs of SGD.  This cache records every
    step of a *refresh* epoch — the iterated batch, its (possibly extended)
    seed set, an arbitrary caller payload, and the sampled block chain — and
    replays the recorded sequence verbatim for the following
    ``cache_epochs - 1`` epochs, so sampling cost is paid once per window
    (and the replayed :class:`Block`\\ s keep their memoised operator
    matrices warm).

    The trade-off is memory: while a window is live, one whole epoch's
    batch/block structure stays resident — peak memory grows with the
    epoch's total sampled receptive field rather than a single batch's.
    ``cache_epochs == 1`` (the default) keeps the engine's original
    batch-bounded memory profile.

    RNG-stream contract
    -------------------
    * ``cache_epochs == 1`` (the default) never replays: every epoch
      shuffles and samples freshly, consuming the generator exactly as the
      pre-cache loops did — behaviour is bit-identical.
    * ``cache_epochs == R > 1``: epochs ``0, R, 2R, ...`` (counted from the
      last :meth:`invalidate`) are refresh epochs and consume the stream
      exactly like a fresh epoch; the epochs in between consume **no**
      generator state for shuffling, seed extension or block sampling — the
      recorded structure repeats exactly.  Draws made by loss closures
      outside the recorded structure still advance the stream normally.
    * Covering configurations (``batch_size >= |nodes|`` with exhaustive
      ``None`` fanouts) stay bit-identical to full-batch training for every
      ``cache_epochs`` setting: the covering batch is the whole node set and
      exhaustive blocks are deterministic, so a replayed epoch is exactly
      the epoch a fresh sample would have produced.

    :meth:`invalidate` forces the next epoch to refresh regardless of the
    window position — the engine calls it when the structure a consumer
    bakes into its seeds goes stale (e.g. Fairwos refreshing its
    counterfactual index mid-window).
    """

    def __init__(self, cache_epochs: int = 1) -> None:
        if cache_epochs < 1:
            raise ValueError(f"cache_epochs must be >= 1, got {cache_epochs}")
        self.cache_epochs = int(cache_epochs)
        self._steps: list[tuple] = []
        self._since_refresh = -1

    @property
    def enabled(self) -> bool:
        """Whether this cache ever replays (``cache_epochs > 1``)."""
        return self.cache_epochs > 1

    def invalidate(self) -> None:
        """Drop the recorded epoch; the next :meth:`start_epoch` refreshes."""
        self._steps = []
        self._since_refresh = -1

    def start_epoch(self) -> bool:
        """Advance one epoch; return True when this epoch replays the cache."""
        self._since_refresh += 1
        if (
            self.enabled
            and self._steps
            and self._since_refresh % self.cache_epochs != 0
        ):
            return True
        self._steps = []
        self._since_refresh = 0
        return False

    def record(
        self,
        batch: np.ndarray,
        seeds: np.ndarray,
        payload,
        blocks: list[Block],
    ) -> None:
        """Store one fresh step for replay (no-op when caching is off)."""
        if self.enabled:
            self._steps.append((batch, seeds, payload, blocks))

    def steps(self) -> list[tuple]:
        """The recorded ``(batch, seeds, payload, blocks)`` sequence."""
        return self._steps


# --------------------------------------------------------------------- #
# block-level aggregation operators (mirror repro.graph.normalize)
# --------------------------------------------------------------------- #
def _self_loops(block: Block) -> sp.csr_matrix:
    """Identity-like ``(num_dst, num_src)`` matrix on the shared prefix."""
    eye = np.arange(block.num_dst)
    return sp.csr_matrix(
        (np.ones(block.num_dst), (eye, eye)),
        shape=(block.num_dst, block.num_src),
    )


def _memoized_operator(block: Block, key: str, build) -> sp.csr_matrix:
    """Build a block's normalised operator once; replayed blocks reuse it."""
    cached = block._operator_cache.get(key)
    if cached is None:
        cached = build(block)
        block._operator_cache[key] = cached
    return cached


def block_gcn_matrix(block: Block) -> sp.csr_matrix:
    """Bipartite GCN operator ``D̃^{-1/2} (A + I) D̃^{-1/2}`` for one block.

    Degrees are the *full-graph* degrees carried by the block, so under
    exhaustive fanout this is exactly the corresponding row/column slice of
    :func:`repro.graph.normalize.gcn_normalize`'s output.  Memoised on the
    block: epoch-cached replays pay the normalisation once per window.
    """

    def build(block: Block) -> sp.csr_matrix:
        matrix = block.adjacency + _self_loops(block)
        row_scale = 1.0 / np.sqrt(block.dst_degrees + 1.0)
        col_scale = 1.0 / np.sqrt(block.src_degrees + 1.0)
        return (sp.diags(row_scale) @ matrix @ sp.diags(col_scale)).tocsr()

    return _memoized_operator(block, "gcn", build)


def block_mean_matrix(block: Block) -> sp.csr_matrix:
    """Mean aggregator over the *sampled* neighbours (SAGE's ``D^{-1} A``).

    Rows are normalised by the sampled (multiplicity-weighted) neighbour
    count, which equals the true degree under exhaustive fanout and is the
    standard unbiased mean estimator under sampling.  Memoised on the block.
    """

    def build(block: Block) -> sp.csr_matrix:
        sampled = block.sampled_in_degrees()
        inv = np.zeros_like(sampled)
        nonzero = sampled > 0
        inv[nonzero] = 1.0 / sampled[nonzero]
        return (sp.diags(inv) @ block.adjacency).tocsr()

    return _memoized_operator(block, "mean", build)


def block_sum_matrix(block: Block) -> sp.csr_matrix:
    """Sum aggregator (GIN) with Horvitz–Thompson degree rescaling.

    Each row is scaled by ``true_degree / sampled_count`` so the sampled sum
    is an unbiased estimate of the full neighbourhood sum, and reduces to
    the plain sum (scale 1) under exhaustive fanout.  Memoised on the block.
    """

    def build(block: Block) -> sp.csr_matrix:
        sampled = block.sampled_in_degrees()
        scale = np.zeros_like(sampled)
        nonzero = sampled > 0
        scale[nonzero] = block.dst_degrees[nonzero] / sampled[nonzero]
        return (sp.diags(scale) @ block.adjacency).tocsr()

    return _memoized_operator(block, "sum", build)


def sample_neighbors(
    adjacency: sp.spmatrix,
    nodes: np.ndarray,
    fanout: int,
    rng: np.random.Generator,
    replace: bool = False,
) -> list[np.ndarray]:
    """Sample up to ``fanout`` neighbours for each node.

    Parameters
    ----------
    adjacency:
        CSR adjacency.
    nodes:
        Query node ids.
    fanout:
        Neighbours to draw per node.  Nodes with fewer neighbours return all
        of them (without ``replace``) or a bootstrap sample (with).
    rng:
        Random generator.
    replace:
        Sample with replacement (GraphSAGE's original behaviour).

    Returns
    -------
    One int64 array of neighbour ids per query node (possibly empty for
    isolated nodes).
    """
    if fanout < 1:
        raise ValueError(f"fanout must be >= 1, got {fanout}")
    matrix = sp.csr_matrix(adjacency)
    result = []
    for node in np.asarray(nodes, dtype=np.int64):
        start, stop = matrix.indptr[node], matrix.indptr[node + 1]
        neighbors = matrix.indices[start:stop]
        if neighbors.size == 0:
            result.append(np.empty(0, dtype=np.int64))
        elif replace:
            result.append(rng.choice(neighbors, size=fanout, replace=True).astype(np.int64))
        elif neighbors.size <= fanout:
            result.append(neighbors.astype(np.int64))
        else:
            result.append(
                rng.choice(neighbors, size=fanout, replace=False).astype(np.int64)
            )
    return result


def random_walks(
    adjacency: sp.spmatrix,
    start_nodes: np.ndarray,
    length: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Uniform random walks of ``length`` steps from each start node.

    Returns an ``(len(start_nodes), length + 1)`` int64 array whose first
    column is the start node.  Walks that hit an isolated node stay there
    (self-absorbing), which keeps the output rectangular.
    """
    if length < 1:
        raise ValueError(f"length must be >= 1, got {length}")
    matrix = sp.csr_matrix(adjacency)
    starts = np.asarray(start_nodes, dtype=np.int64)
    walks = np.empty((starts.size, length + 1), dtype=np.int64)
    walks[:, 0] = starts
    current = starts.copy()
    for step in range(1, length + 1):
        next_nodes = current.copy()
        for i, node in enumerate(current):
            begin, end = matrix.indptr[node], matrix.indptr[node + 1]
            if end > begin:
                next_nodes[i] = matrix.indices[begin + rng.integers(end - begin)]
        walks[:, step] = next_nodes
        current = next_nodes
    return walks


def subsample_edges(
    adjacency: sp.spmatrix, keep_fraction: float, rng: np.random.Generator
) -> sp.csr_matrix:
    """Keep a random fraction of undirected edges (symmetric result)."""
    if not 0.0 < keep_fraction <= 1.0:
        raise ValueError(f"keep_fraction must be in (0, 1], got {keep_fraction}")
    if keep_fraction == 1.0:
        return sp.csr_matrix(adjacency)
    edges = edges_from_adjacency(adjacency)
    keep = rng.random(len(edges)) < keep_fraction
    return adjacency_from_edges(edges[keep], adjacency.shape[0])
