"""Stochastic graph sampling utilities.

Substrate extensions used by the scalability-oriented parts of the library:
GraphSAGE-style neighbour sampling, random walks (DeepWalk/node2vec-p=q=1),
and edge subsampling (the augmentation NIFTY's stability view relies on).
All functions take an explicit ``numpy.random.Generator``.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.graph.utils import adjacency_from_edges, edges_from_adjacency

__all__ = ["sample_neighbors", "random_walks", "subsample_edges"]


def sample_neighbors(
    adjacency: sp.spmatrix,
    nodes: np.ndarray,
    fanout: int,
    rng: np.random.Generator,
    replace: bool = False,
) -> list[np.ndarray]:
    """Sample up to ``fanout`` neighbours for each node.

    Parameters
    ----------
    adjacency:
        CSR adjacency.
    nodes:
        Query node ids.
    fanout:
        Neighbours to draw per node.  Nodes with fewer neighbours return all
        of them (without ``replace``) or a bootstrap sample (with).
    rng:
        Random generator.
    replace:
        Sample with replacement (GraphSAGE's original behaviour).

    Returns
    -------
    One int64 array of neighbour ids per query node (possibly empty for
    isolated nodes).
    """
    if fanout < 1:
        raise ValueError(f"fanout must be >= 1, got {fanout}")
    matrix = sp.csr_matrix(adjacency)
    result = []
    for node in np.asarray(nodes, dtype=np.int64):
        start, stop = matrix.indptr[node], matrix.indptr[node + 1]
        neighbors = matrix.indices[start:stop]
        if neighbors.size == 0:
            result.append(np.empty(0, dtype=np.int64))
        elif replace:
            result.append(rng.choice(neighbors, size=fanout, replace=True).astype(np.int64))
        elif neighbors.size <= fanout:
            result.append(neighbors.astype(np.int64))
        else:
            result.append(
                rng.choice(neighbors, size=fanout, replace=False).astype(np.int64)
            )
    return result


def random_walks(
    adjacency: sp.spmatrix,
    start_nodes: np.ndarray,
    length: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Uniform random walks of ``length`` steps from each start node.

    Returns an ``(len(start_nodes), length + 1)`` int64 array whose first
    column is the start node.  Walks that hit an isolated node stay there
    (self-absorbing), which keeps the output rectangular.
    """
    if length < 1:
        raise ValueError(f"length must be >= 1, got {length}")
    matrix = sp.csr_matrix(adjacency)
    starts = np.asarray(start_nodes, dtype=np.int64)
    walks = np.empty((starts.size, length + 1), dtype=np.int64)
    walks[:, 0] = starts
    current = starts.copy()
    for step in range(1, length + 1):
        next_nodes = current.copy()
        for i, node in enumerate(current):
            begin, end = matrix.indptr[node], matrix.indptr[node + 1]
            if end > begin:
                next_nodes[i] = matrix.indices[begin + rng.integers(end - begin)]
        walks[:, step] = next_nodes
        current = next_nodes
    return walks


def subsample_edges(
    adjacency: sp.spmatrix, keep_fraction: float, rng: np.random.Generator
) -> sp.csr_matrix:
    """Keep a random fraction of undirected edges (symmetric result)."""
    if not 0.0 < keep_fraction <= 1.0:
        raise ValueError(f"keep_fraction must be in (0, 1], got {keep_fraction}")
    if keep_fraction == 1.0:
        return sp.csr_matrix(adjacency)
    edges = edges_from_adjacency(adjacency)
    keep = rng.random(len(edges)) < keep_fraction
    return adjacency_from_edges(edges[keep], adjacency.shape[0])
