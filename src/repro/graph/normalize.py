"""Adjacency normalisation used by the GNN backbones.

``gcn_normalize`` implements the symmetric renormalisation trick of Kipf &
Welling: ``Â = D̃^{-1/2} (A + I) D̃^{-1/2}``.  ``row_normalize`` gives the
mean aggregator ``D^{-1} A`` used by GraphSAGE, and GIN uses the raw ``A``
(sum aggregation) — all consumers receive CSR matrices ready for
:func:`repro.tensor.spmm`.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

__all__ = ["add_self_loops", "gcn_normalize", "row_normalize", "to_symmetric"]


def add_self_loops(adjacency: sp.spmatrix) -> sp.csr_matrix:
    """Return ``A + I`` (existing diagonal entries are overwritten to 1)."""
    adjacency = adjacency.tolil(copy=True)
    adjacency.setdiag(1.0)
    return adjacency.tocsr()


def gcn_normalize(adjacency: sp.spmatrix, add_loops: bool = True) -> sp.csr_matrix:
    """Symmetric GCN normalisation ``D̃^{-1/2} (A + I) D̃^{-1/2}``."""
    matrix = add_self_loops(adjacency) if add_loops else sp.csr_matrix(adjacency)
    degrees = np.asarray(matrix.sum(axis=1)).reshape(-1)
    inv_sqrt = np.zeros_like(degrees)
    nonzero = degrees > 0
    inv_sqrt[nonzero] = 1.0 / np.sqrt(degrees[nonzero])
    scale = sp.diags(inv_sqrt)
    return (scale @ matrix @ scale).tocsr()


def row_normalize(adjacency: sp.spmatrix, add_loops: bool = False) -> sp.csr_matrix:
    """Row-stochastic normalisation ``D^{-1} A`` (mean aggregation)."""
    matrix = add_self_loops(adjacency) if add_loops else sp.csr_matrix(adjacency)
    degrees = np.asarray(matrix.sum(axis=1)).reshape(-1)
    inv = np.zeros_like(degrees)
    nonzero = degrees > 0
    inv[nonzero] = 1.0 / degrees[nonzero]
    return (sp.diags(inv) @ matrix).tocsr()


def to_symmetric(adjacency: sp.spmatrix) -> sp.csr_matrix:
    """Symmetrise: keep an edge if it exists in either direction, binary."""
    matrix = sp.csr_matrix(adjacency)
    symmetric = matrix.maximum(matrix.T)
    symmetric.data = np.ones_like(symmetric.data)
    return symmetric.tocsr()
