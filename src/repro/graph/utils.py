"""Graph helper functions: edge lists, degrees, k-hop sets, homophily."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

__all__ = [
    "edges_from_adjacency",
    "adjacency_from_edges",
    "degree_vector",
    "k_hop_neighbors",
    "edge_homophily",
]


def edges_from_adjacency(adjacency: sp.spmatrix, directed: bool = False) -> np.ndarray:
    """Return an ``(E, 2)`` edge array.

    With ``directed=False`` (default) each undirected edge appears once with
    ``src < dst``; with ``directed=True`` every stored entry is returned.
    """
    coo = sp.coo_matrix(adjacency)
    if directed:
        return np.stack([coo.row, coo.col], axis=1).astype(np.int64)
    mask = coo.row < coo.col
    return np.stack([coo.row[mask], coo.col[mask]], axis=1).astype(np.int64)


def adjacency_from_edges(edges: np.ndarray, num_nodes: int) -> sp.csr_matrix:
    """Build a binary symmetric CSR adjacency from an ``(E, 2)`` edge array."""
    edges = np.asarray(edges, dtype=np.int64)
    if edges.size == 0:
        return sp.csr_matrix((num_nodes, num_nodes))
    no_loops = edges[edges[:, 0] != edges[:, 1]]
    rows = np.concatenate([no_loops[:, 0], no_loops[:, 1]])
    cols = np.concatenate([no_loops[:, 1], no_loops[:, 0]])
    data = np.ones(rows.size, dtype=np.float64)
    matrix = sp.csr_matrix((data, (rows, cols)), shape=(num_nodes, num_nodes))
    matrix.data = np.minimum(matrix.data, 1.0)
    matrix.sum_duplicates()
    matrix.data = np.ones_like(matrix.data)
    return matrix


def degree_vector(adjacency: sp.spmatrix) -> np.ndarray:
    """Node degrees of a binary adjacency."""
    return np.asarray(sp.csr_matrix(adjacency).sum(axis=1)).reshape(-1)


def k_hop_neighbors(adjacency: sp.spmatrix, node: int, k: int) -> np.ndarray:
    """Sorted indices of all nodes within ``k`` hops of ``node`` (inclusive).

    This is the node set of the paper's "subgraph G_i" for node i.
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    matrix = sp.csr_matrix(adjacency)
    frontier = {int(node)}
    visited = {int(node)}
    for _ in range(k):
        next_frontier: set[int] = set()
        for u in frontier:
            start, stop = matrix.indptr[u], matrix.indptr[u + 1]
            next_frontier.update(int(v) for v in matrix.indices[start:stop])
        next_frontier -= visited
        if not next_frontier:
            break
        visited |= next_frontier
        frontier = next_frontier
    return np.array(sorted(visited), dtype=np.int64)


def edge_homophily(adjacency: sp.spmatrix, values: np.ndarray) -> float:
    """Fraction of edges whose endpoints share the same ``values`` entry.

    Applied to labels this is the usual homophily ratio; applied to the
    sensitive attribute it quantifies the group-mixing bias the synthetic
    generators plant (and that message passing amplifies, per the paper's
    introduction).
    """
    edges = edges_from_adjacency(adjacency)
    if edges.shape[0] == 0:
        return 0.0
    values = np.asarray(values)
    same = values[edges[:, 0]] == values[edges[:, 1]]
    return float(same.mean())
