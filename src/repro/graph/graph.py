"""The :class:`Graph` container used throughout the reproduction.

A graph bundles a sparse CSR adjacency, dense node features, labels, boolean
train/val/test masks and — crucially for the fairness setting of the paper —
an **evaluation-only** sensitive attribute vector: models never read
``graph.sensitive`` during training (the paper's Problem 1 states ``S ∉ F``),
but the fairness metrics require it at test time.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np
import scipy.sparse as sp

__all__ = ["Graph"]


def _as_float_features(features) -> np.ndarray:
    """Coerce a feature matrix to float without destroying its memory layout.

    Non-float inputs (integer one-hots, booleans) are promoted to float64 as
    before.  Floating inputs pass through *unchanged*: float32 matrices keep
    their half-size footprint, and memory-mapped arrays stay memory-mapped —
    an unconditional ``asarray(..., float64)`` here would silently pull a
    whole on-disk 1M-node feature matrix into resident memory.
    """
    features = np.asarray(features) if not isinstance(features, np.ndarray) else features
    if not np.issubdtype(features.dtype, np.floating):
        features = features.astype(np.float64)
    return features


@dataclass
class Graph:
    """An attributed graph for semi-supervised node classification.

    Attributes
    ----------
    adjacency:
        ``(N, N)`` scipy CSR matrix, unweighted and symmetric, zero diagonal.
    features:
        ``(N, F)`` float feature matrix.  The sensitive attribute is *not* a
        column of this matrix.
    labels:
        ``(N,)`` integer node labels (binary tasks use {0, 1}).
    sensitive:
        ``(N,)`` integer sensitive-group memberships; used only by the
        fairness metrics at evaluation time.
    train_mask / val_mask / test_mask:
        ``(N,)`` boolean partition of the nodes.
    related_feature_indices:
        Columns of ``features`` known (or assumed, for the RemoveR / FairRF
        baselines) to be proxies of the sensitive attribute.
    name:
        Dataset identifier.
    meta:
        Free-form provenance (generator parameters, paper statistics, ...).
    """

    adjacency: sp.csr_matrix
    features: np.ndarray
    labels: np.ndarray
    sensitive: np.ndarray
    train_mask: np.ndarray
    val_mask: np.ndarray
    test_mask: np.ndarray
    related_feature_indices: np.ndarray = field(
        default_factory=lambda: np.array([], dtype=np.int64)
    )
    name: str = "graph"
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.adjacency = sp.csr_matrix(self.adjacency)
        self.features = _as_float_features(self.features)
        self.labels = np.asarray(self.labels, dtype=np.int64)
        self.sensitive = np.asarray(self.sensitive, dtype=np.int64)
        self.train_mask = np.asarray(self.train_mask, dtype=bool)
        self.val_mask = np.asarray(self.val_mask, dtype=bool)
        self.test_mask = np.asarray(self.test_mask, dtype=bool)
        self.related_feature_indices = np.asarray(
            self.related_feature_indices, dtype=np.int64
        )
        self.validate()

    # ------------------------------------------------------------------ #
    # shape / sanity checks
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Raise ``ValueError`` on any internal inconsistency."""
        n = self.num_nodes
        if self.adjacency.shape != (n, n):
            raise ValueError(
                f"adjacency shape {self.adjacency.shape} does not match "
                f"{n} feature rows"
            )
        for attr in ("labels", "sensitive", "train_mask", "val_mask", "test_mask"):
            value = getattr(self, attr)
            if value.shape != (n,):
                raise ValueError(f"{attr} must have shape ({n},), got {value.shape}")
        overlap = (
            (self.train_mask & self.val_mask)
            | (self.train_mask & self.test_mask)
            | (self.val_mask & self.test_mask)
        )
        if overlap.any():
            raise ValueError("train/val/test masks overlap")
        if self.related_feature_indices.size and (
            self.related_feature_indices.min() < 0
            or self.related_feature_indices.max() >= self.num_features
        ):
            raise ValueError("related_feature_indices out of range")

    # ------------------------------------------------------------------ #
    # basic statistics
    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        """Number of nodes N."""
        return self.features.shape[0]

    @property
    def num_features(self) -> int:
        """Feature dimensionality F."""
        return self.features.shape[1]

    @property
    def num_edges(self) -> int:
        """Number of undirected edges (each counted once)."""
        return int(self.adjacency.nnz // 2)

    @property
    def average_degree(self) -> float:
        """Mean node degree (counting each undirected edge at both ends)."""
        if self.num_nodes == 0:
            return 0.0
        return float(self.adjacency.nnz / self.num_nodes)

    @property
    def num_classes(self) -> int:
        """Number of distinct label values."""
        return int(self.labels.max()) + 1 if self.labels.size else 0

    def split_sizes(self) -> dict[str, int]:
        """Node counts of the three splits."""
        return {
            "train": int(self.train_mask.sum()),
            "val": int(self.val_mask.sum()),
            "test": int(self.test_mask.sum()),
        }

    # ------------------------------------------------------------------ #
    # transformations
    # ------------------------------------------------------------------ #
    def with_features(self, features: np.ndarray, related: np.ndarray | None = None) -> "Graph":
        """Return a copy with replaced features (e.g. encoder output X(0))."""
        return replace(
            self,
            features=_as_float_features(features),
            related_feature_indices=(
                np.asarray(related, dtype=np.int64)
                if related is not None
                else np.array([], dtype=np.int64)
            ),
        )

    def without_columns(self, columns: np.ndarray) -> "Graph":
        """Return a copy with the given feature columns dropped (RemoveR)."""
        columns = np.asarray(columns, dtype=np.int64)
        keep = np.setdiff1d(np.arange(self.num_features), columns)
        remap = -np.ones(self.num_features, dtype=np.int64)
        remap[keep] = np.arange(keep.size)
        surviving = remap[
            np.intersect1d(self.related_feature_indices, keep, assume_unique=False)
        ]
        return replace(
            self,
            features=self.features[:, keep],
            related_feature_indices=surviving[surviving >= 0],
        )

    def standardized(self) -> "Graph":
        """Return a copy with z-scored feature columns (constant cols → 0)."""
        mean = self.features.mean(axis=0, keepdims=True)
        std = self.features.std(axis=0, keepdims=True)
        std[std == 0] = 1.0
        return replace(self, features=(self.features - mean) / std)

    def subgraph(self, node_indices: np.ndarray) -> "Graph":
        """Induced subgraph on the given nodes (indices are re-numbered)."""
        node_indices = np.asarray(node_indices, dtype=np.int64)
        sub_adj = self.adjacency[node_indices][:, node_indices].tocsr()
        return Graph(
            adjacency=sub_adj,
            features=self.features[node_indices],
            labels=self.labels[node_indices],
            sensitive=self.sensitive[node_indices],
            train_mask=self.train_mask[node_indices],
            val_mask=self.val_mask[node_indices],
            test_mask=self.test_mask[node_indices],
            related_feature_indices=self.related_feature_indices,
            name=f"{self.name}-sub",
            meta=dict(self.meta),
        )

    def summary(self) -> str:
        """One-line human-readable description (used by Table I bench)."""
        return (
            f"{self.name}: {self.num_nodes} nodes, {self.num_features} attrs, "
            f"{self.num_edges} edges, avg degree {self.average_degree:.2f}"
        )
