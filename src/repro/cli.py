"""Command-line interface: ``python -m repro <command>``.

Commands
--------
datasets
    List the available benchmark datasets with their statistics.
run
    Train one method on one dataset and print its evaluation.
    ``--save DIR`` additionally persists the fitted model as a versioned
    artifact (weights, config, preprocessing state, counterfactual index).
score
    Batch-score nodes from a saved artifact — no retraining.  Optional
    fairness audit, per-window drift report and counterfactual retrieval
    from the persisted index.
serve
    Thin interactive loop over a saved artifact: ``score``, ``cf``,
    ``audit`` and ``windows`` requests from stdin.
audit
    Print the data-side + vanilla-model bias audit of a dataset.
table1 / table2 / fig4 / fig5 / fig6 / fig7 / fig8
    Regenerate a paper table/figure at a chosen scale.

Examples
--------
::

    python -m repro datasets
    python -m repro run --method fairwos --dataset nba --seed 0
    python -m repro run --method fairwos --dataset nba --save artifacts/nba
    python -m repro score --artifact artifacts/nba --audit --audit-windows 4
    python -m repro score --artifact artifacts/nba --node-ids 3,7,12 \\
        --counterfactuals 3
    python -m repro run --method vanilla --dataset scalefree --nodes 100000 \\
        --backbone sage --minibatch --fanout 10,5 --batch-size 512
    repro --method fairwos --dataset scalefree --nodes 50000 \\
        --minibatch --cf-backend ann
    repro --method ksmote --dataset scalefree --nodes 50000 --minibatch
    python -m repro run --method vanilla --dataset-family sbm --nodes 2000 \\
        --homophily 2.0 --mixing 0.3
    python -m repro run --method vanilla --dataset saved/graph_dir
    python -m repro audit --dataset occupation
    python -m repro table2 --datasets nba bail --backbones gcn --scale smoke

An invocation whose first argument is an option (as in the third example)
defaults to the ``run`` subcommand.  See ``docs/CLI.md`` for the complete
flag reference.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.core import ExecutionConfig
from repro.datasets import (
    GRAPH_FAMILIES,
    available_datasets,
    available_families,
    dataset_cli_flags,
    load_dataset,
    load_family,
)
from repro.experiments import (
    Scale,
    available_methods,
    format_fig4,
    format_fig5,
    format_fig6,
    format_fig7,
    format_fig8,
    format_table1,
    format_table2,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig8,
    run_method,
    run_table1,
    run_table2,
)

__all__ = ["main", "build_parser"]

_SCALES = {"smoke": Scale.smoke, "quick": Scale.quick, "paper": Scale.paper}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fairwos reproduction command line",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list benchmark datasets")

    run_parser = sub.add_parser("run", help="train one method on one dataset")
    run_parser.add_argument("--method", choices=available_methods(), default="fairwos")
    _add_dataset_arguments(run_parser)
    run_parser.add_argument("--backbone", default="gcn")
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument("--epochs", type=int, default=150)
    # Execution flags come from ExecutionConfig's declarative table: one
    # row per knob, dest = the config field, default = the config default.
    # Adding an execution knob means adding a table row, not another
    # hand-kept add_argument call here.
    exec_defaults = ExecutionConfig()
    for field_name, spec in ExecutionConfig.cli_flags():
        spec = dict(spec)
        flag = spec.pop("flag")
        if spec.get("type") == "fanouts":
            spec["type"] = _parse_fanouts
        run_parser.add_argument(
            flag,
            dest=field_name,
            default=getattr(exec_defaults, field_name),
            **spec,
        )
    run_parser.add_argument(
        "--save",
        default=None,
        metavar="DIR",
        help="persist the fitted model as a versioned artifact directory "
        "(weights + config + preprocessing state + counterfactual index); "
        "score it later with `repro score --artifact DIR`",
    )
    run_parser.add_argument(
        "--no-save-graph",
        action="store_true",
        help="with --save: skip bundling the training graph into the "
        "artifact (scoring then requires an explicit --dataset)",
    )

    score_parser = sub.add_parser(
        "score", help="batch-score nodes from a saved artifact"
    )
    _add_artifact_arguments(score_parser)
    score_parser.add_argument(
        "--node-ids",
        type=_parse_node_ids,
        default=None,
        metavar="N1,N2,...",
        help="score only these node ids (default: every node)",
    )
    score_parser.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the logits to PATH as a .npy array",
    )
    score_parser.add_argument(
        "--audit",
        action="store_true",
        help="print the model-side fairness audit (test split)",
    )
    score_parser.add_argument(
        "--audit-windows",
        type=int,
        default=None,
        metavar="W",
        help="per-window fairness drift report over the scored stream",
    )
    score_parser.add_argument(
        "--counterfactuals",
        type=int,
        default=None,
        metavar="K",
        help="retrieve K counterfactual twins per scored node from the "
        "persisted index (Fairwos artifacts)",
    )
    score_parser.add_argument(
        "--probes",
        default=None,
        metavar="P",
        help="ANN probes override for counterfactual retrieval "
        "(an integer, or 'exhaustive' for brute-force ranking)",
    )

    serve_parser = sub.add_parser(
        "serve", help="interactive scoring loop over a saved artifact"
    )
    _add_artifact_arguments(serve_parser)

    audit_parser = sub.add_parser("audit", help="bias audit of a dataset")
    audit_parser.add_argument("--dataset", choices=available_datasets(), default="nba")
    audit_parser.add_argument("--seed", type=int, default=0)

    for name in ("table1", "table2", "fig4", "fig5", "fig6", "fig7", "fig8"):
        exp_parser = sub.add_parser(name, help=f"regenerate {name}")
        exp_parser.add_argument("--scale", choices=sorted(_SCALES), default="quick")
        if name == "table2":
            exp_parser.add_argument("--datasets", nargs="+", default=None)
            exp_parser.add_argument("--backbones", nargs="+", default=None)
            exp_parser.add_argument("--methods", nargs="+", default=None)
        if name in ("fig5", "fig6", "fig7", "fig8"):
            exp_parser.add_argument("--dataset", default=None)
    return parser


def _cmd_datasets() -> str:
    lines = ["available datasets:"]
    for name in available_datasets():
        graph = load_dataset(name, seed=0)
        lines.append(f"  {graph.summary()}  [sensitive: {graph.meta['sensitive_name']}]")
    return "\n".join(lines)


def _add_dataset_arguments(
    parser: argparse.ArgumentParser, default: str | None = "nba"
) -> None:
    """The dataset reference flags shared by run/score/serve.

    ``--dataset`` takes any :func:`repro.datasets.load_dataset` reference —
    a benchmark name, a graph-family key, or a saved-graph path (directories
    written by :func:`repro.io.save_graph_mmap` load memory-mapped).  The
    scenario knobs (``--dataset-family``/``--homophily``/``--mixing``) come
    from the registry's declarative flag table, mirroring how the execution
    knobs come from ``ExecutionConfig.cli_flags()``.
    """
    parser.add_argument(
        "--dataset",
        default=default,
        help="benchmark name "
        f"({', '.join(available_datasets())}), graph family "
        f"({', '.join(available_families())}), or path to a saved graph "
        "(.npz archive or save_graph_mmap directory, loaded memory-mapped)",
    )
    for field_name, spec in dataset_cli_flags():
        spec = dict(spec)
        flag = spec.pop("flag")
        dest = "dataset_family" if field_name == "family" else field_name
        parser.add_argument(flag, dest=dest, default=None, **spec)
    parser.add_argument(
        "--nodes",
        type=int,
        default=20_000,
        help="node count for generated graph families",
    )


def _add_artifact_arguments(parser: argparse.ArgumentParser) -> None:
    """Flags shared by the artifact-consuming commands (score, serve)."""
    parser.add_argument(
        "--artifact",
        required=True,
        metavar="DIR",
        help="artifact directory written by `repro run --save`",
    )
    _add_dataset_arguments(parser, default=None)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--batch-size",
        type=int,
        default=None,
        help="batched-inference batch size override",
    )


def _parse_node_ids(text: str) -> np.ndarray:
    """Parse a comma-separated node-id list like ``3,7,12``."""
    try:
        ids = np.array(
            [int(part) for part in text.split(",") if part.strip()],
            dtype=np.int64,
        )
    except ValueError as err:
        raise argparse.ArgumentTypeError(
            f"node ids must be comma-separated integers, got {text!r}"
        ) from err
    if ids.size == 0 or (ids < 0).any():
        raise argparse.ArgumentTypeError(
            f"node ids must be non-negative integers, got {text!r}"
        )
    return ids


def _parse_fanouts(text: str) -> tuple[int, ...]:
    """Parse a comma-separated fanout list like ``10,5``."""
    try:
        fanouts = tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError as err:
        raise argparse.ArgumentTypeError(
            f"fanouts must be comma-separated integers, got {text!r}"
        ) from err
    if not fanouts or any(fanout < 1 for fanout in fanouts):
        raise argparse.ArgumentTypeError(
            f"fanouts must be positive integers, got {text!r}"
        )
    return fanouts


def _load_cli_graph(args):
    """Dataset loading shared by run/score/serve.

    Resolution: ``--dataset-family`` wins; otherwise ``--dataset`` names a
    family (``--nodes``/``--homophily``/``--mixing`` apply), a benchmark, or
    a saved-graph path (both loaded as stored — the scenario knobs are
    meaningless there and rejected rather than silently dropped).
    """
    family = args.dataset_family
    if family is None and args.dataset.lower().replace("-", "_") in GRAPH_FAMILIES:
        family = args.dataset
    if family is not None:
        return load_family(
            family,
            num_nodes=args.nodes,
            seed=args.seed,
            homophily=args.homophily,
            mixing=args.mixing,
        )
    if args.homophily is not None or args.mixing is not None:
        raise SystemExit(
            f"--homophily/--mixing only apply to graph families "
            f"({', '.join(available_families())}), not {args.dataset!r}"
        )
    return load_dataset(args.dataset, seed=args.seed)


def _cmd_run(args) -> str:
    graph = _load_cli_graph(args)
    execution = ExecutionConfig(
        **{
            field_name: getattr(args, field_name)
            for field_name, _ in ExecutionConfig.cli_flags()
        }
    )
    result = run_method(
        args.method,
        graph,
        backbone=args.backbone,
        seed=args.seed,
        epochs=args.epochs,
        execution=execution,
        keep_model=args.save is not None,
    )
    mode = ""
    if execution.minibatch:
        from repro.training import DEFAULT_FANOUT

        fanouts = execution.fanouts or (DEFAULT_FANOUT,)
        mode = (
            f", minibatch fanout={','.join(map(str, fanouts))} "
            f"batch={execution.batch_size}"
        )
        if execution.cache_epochs != 1:
            mode += f" cache-epochs={execution.cache_epochs}"
        if execution.num_workers:
            mode += (
                f" workers={execution.num_workers}"
                f" prefetch={execution.prefetch_epochs}"
            )
    if args.method == "fairwos" and execution.cf_backend != "exact":
        mode += f", cf-backend={execution.cf_backend}"
        if execution.cf_update != "rebuild":
            mode += f" cf-update={execution.cf_update}"
    if execution.dtype != "float64":
        mode += f", dtype={execution.dtype}"
    if execution.backend != "numpy":
        mode += f", backend={execution.backend}"
    output = (
        f"{result.method} on {graph.name} ({args.backbone}, seed {args.seed}"
        f"{mode}):\n  {result.test}\n  trained in {result.seconds:.1f}s"
    )
    if args.save is not None:
        from repro.io import save_artifact

        path = save_artifact(
            result.extra["model"],
            graph,
            args.save,
            include_graph=not args.no_save_graph,
            execution=execution,
        )
        output += f"\n  artifact saved to {path}"
    return output


def _cmd_score(args) -> str:
    from repro.io import load_artifact

    artifact = load_artifact(args.artifact)
    lines = [
        f"{artifact.method_name} artifact at {artifact.path} "
        f"(trained on {artifact.manifest['dataset']['name']}, "
        f"{artifact.manifest['dataset']['num_nodes']} nodes)"
    ]
    if artifact.execution is not None:
        defaults = ExecutionConfig()
        shown = {
            key: value
            for key, value in artifact.execution.items()
            if getattr(defaults, key, None)
            != (tuple(value) if isinstance(value, list) else value)
        }
        if shown:
            lines.append(
                "  execution: "
                + " ".join(f"{k}={v}" for k, v in sorted(shown.items()))
            )
    graph = None
    if args.dataset is not None or args.dataset_family is not None:
        graph = _load_cli_graph(args)
        if not artifact.matches(graph):
            lines.append(
                "  note: scored graph differs from the training dataset "
                "(fingerprint mismatch)"
            )
    logits = artifact.score(
        graph, nodes=args.node_ids, batch_size=args.batch_size
    )
    lines.append(f"  scored {logits.size} nodes")
    if args.node_ids is not None:
        shown = ", ".join(
            f"{int(node)}:{logit:+.4f}"
            for node, logit in zip(args.node_ids[:10], logits[:10])
        )
        lines.append(f"  logits: {shown}" + (" ..." if logits.size > 10 else ""))
    if args.out is not None:
        np.save(args.out, logits)
        lines.append(f"  logits written to {args.out}")
    if args.counterfactuals is not None:
        lines.append(
            _render_counterfactuals(
                artifact, args.node_ids, args.counterfactuals, args.probes
            )
        )
    if args.audit:
        lines.append(artifact.audit(graph).render())
    if args.audit_windows is not None:
        lines.append(
            artifact.audit_windows(
                args.audit_windows, graph, nodes=args.node_ids
            ).render()
        )
    return "\n".join(lines)


def _parse_probes(text):
    """Probes override: int, 'exhaustive', or None."""
    if text is None or text == "":
        return None
    if str(text).lower() == "exhaustive":
        return "exhaustive"
    return int(text)


def _render_counterfactuals(artifact, node_ids, top_k, probes) -> str:
    """Per-node counterfactual twins from the persisted index."""
    cf = artifact.counterfactuals(
        nodes=node_ids, top_k=top_k, probes=_parse_probes(probes)
    )
    show = (
        node_ids
        if node_ids is not None
        else np.arange(min(5, cf.indices.shape[1]), dtype=np.int64)
    )
    lines = [
        f"  counterfactual twins (K={cf.top_k}, {cf.num_attributes} "
        f"pseudo-attributes, persisted index):"
    ]
    for node in show[:10]:
        per_attr = []
        for attr in range(min(cf.num_attributes, 3)):
            if cf.valid[attr, node]:
                twins = ",".join(map(str, cf.indices[attr, node].tolist()))
            else:
                twins = "-"
            per_attr.append(f"a{attr}:[{twins}]")
        more = " ..." if cf.num_attributes > 3 else ""
        lines.append(f"    node {int(node)}: {' '.join(per_attr)}{more}")
    return "\n".join(lines)


def _cmd_serve(args, stdin=None) -> str:
    """Thin request loop: score/cf/audit/windows lines from stdin.

    Protocol (one request per line, responses echoed to stdout):

    * ``score N1,N2,...`` — logits for the listed nodes;
    * ``cf NODE [K]`` — counterfactual twins of one node;
    * ``audit`` — model-side fairness audit of the bundled graph;
    * ``windows W`` — per-window fairness drift report;
    * ``quit`` — exit (EOF also exits).
    """
    from repro.io import load_artifact

    artifact = load_artifact(args.artifact)
    graph = None
    if args.dataset is not None or args.dataset_family is not None:
        graph = _load_cli_graph(args)
    stream = stdin if stdin is not None else sys.stdin
    print(
        f"serving {artifact.method_name} artifact at {artifact.path} — "
        f"commands: score IDS | cf NODE [K] | audit | windows W | quit",
        flush=True,
    )
    served = 0
    for line in stream:
        request = line.strip()
        if not request:
            continue
        try:
            response = _serve_request(artifact, graph, request, args.batch_size)
        except Exception as exc:  # noqa: BLE001 - a serve loop must not die
            response = f"error: {exc}"
        if response is None:
            break
        served += 1
        print(response, flush=True)
    return f"served {served} requests from {artifact.path}"


def _serve_request(artifact, graph, request: str, batch_size) -> str | None:
    """Dispatch one serve-loop request; None means quit."""
    parts = request.split()
    command = parts[0].lower()
    if command in ("quit", "exit"):
        return None
    if command == "score":
        if len(parts) != 2:
            return "usage: score N1,N2,..."
        nodes = _parse_node_ids(parts[1])
        logits = artifact.score(graph, nodes=nodes, batch_size=batch_size)
        return " ".join(
            f"{int(node)}:{logit:+.4f}" for node, logit in zip(nodes, logits)
        )
    if command == "cf":
        if len(parts) not in (2, 3):
            return "usage: cf NODE [K]"
        node = np.array([int(parts[1])], dtype=np.int64)
        top_k = int(parts[2]) if len(parts) == 3 else None
        return _render_counterfactuals(artifact, node, top_k, None)
    if command == "audit":
        return artifact.audit(graph).render()
    if command == "windows":
        if len(parts) != 2:
            return "usage: windows W"
        return artifact.audit_windows(int(parts[1]), graph).render()
    return f"unknown command {request!r}; try score/cf/audit/windows/quit"


def _cmd_audit(args) -> str:
    from repro.baselines import Vanilla
    from repro.fairness.audit import audit_graph, audit_predictions
    from repro.gnnzoo import make_backbone
    from repro.tensor import Tensor
    from repro.training import fit_binary_classifier, predict_logits

    graph = load_dataset(args.dataset, seed=args.seed)
    report = audit_graph(graph).render()
    model = make_backbone("gcn", graph.num_features, 16, np.random.default_rng(args.seed))
    features = Tensor(graph.features)
    fit_binary_classifier(
        model, features, graph.adjacency, graph.labels,
        graph.train_mask, graph.val_mask, epochs=150, patience=30,
    )
    logits = predict_logits(model, features, graph.adjacency)
    model_report = audit_predictions(logits, graph).render()
    return f"{graph.summary()}\n\n{report}\n\n{model_report}"


def main(argv: list[str] | None = None) -> str:
    """Entry point; returns the rendered output (also printed)."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0].startswith("-") and argv[0] not in ("-h", "--help"):
        # `repro --method fairwos ...` is shorthand for `repro run ...`.
        argv = ["run", *argv]
    args = build_parser().parse_args(argv)
    scale = _SCALES[getattr(args, "scale", "quick")]() if hasattr(args, "scale") else None

    if args.command == "datasets":
        output = _cmd_datasets()
    elif args.command == "run":
        output = _cmd_run(args)
    elif args.command == "score":
        output = _cmd_score(args)
    elif args.command == "serve":
        output = _cmd_serve(args)
    elif args.command == "audit":
        output = _cmd_audit(args)
    elif args.command == "table1":
        output = format_table1(run_table1())
    elif args.command == "table2":
        output = format_table2(
            run_table2(
                datasets=args.datasets,
                backbones=args.backbones,
                methods=args.methods,
                scale=scale,
            )
        )
    elif args.command == "fig4":
        output = format_fig4(run_fig4(scale=scale))
    elif args.command == "fig5":
        output = format_fig5(run_fig5(dataset=args.dataset or "nba", scale=scale))
    elif args.command == "fig6":
        output = format_fig6(run_fig6(dataset=args.dataset or "bail", scale=scale))
    elif args.command == "fig7":
        output = format_fig7(run_fig7(dataset=args.dataset or "nba", scale=scale))
    elif args.command == "fig8":
        output = format_fig8(run_fig8(dataset=args.dataset or "nba", scale=scale))
    else:  # pragma: no cover - argparse enforces choices
        raise ValueError(f"unhandled command {args.command!r}")

    print(output)
    return output


if __name__ == "__main__":
    main(sys.argv[1:])
