"""Command-line interface: ``python -m repro <command>``.

Commands
--------
datasets
    List the available benchmark datasets with their statistics.
run
    Train one method on one dataset and print its evaluation.
audit
    Print the data-side + vanilla-model bias audit of a dataset.
table1 / table2 / fig4 / fig5 / fig6 / fig7 / fig8
    Regenerate a paper table/figure at a chosen scale.

Examples
--------
::

    python -m repro datasets
    python -m repro run --method fairwos --dataset nba --seed 0
    python -m repro run --method vanilla --dataset scalefree --nodes 100000 \\
        --backbone sage --minibatch --fanout 10,5 --batch-size 512
    repro --method fairwos --dataset scalefree --nodes 50000 \\
        --minibatch --cf-backend ann
    repro --method ksmote --dataset scalefree --nodes 50000 --minibatch
    python -m repro audit --dataset occupation
    python -m repro table2 --datasets nba bail --backbones gcn --scale smoke

An invocation whose first argument is an option (as in the third example)
defaults to the ``run`` subcommand.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.datasets import available_datasets, load_dataset
from repro.experiments import (
    Scale,
    available_methods,
    format_fig4,
    format_fig5,
    format_fig6,
    format_fig7,
    format_fig8,
    format_table1,
    format_table2,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig8,
    run_method,
    run_table1,
    run_table2,
)

__all__ = ["main", "build_parser"]

_SCALES = {"smoke": Scale.smoke, "quick": Scale.quick, "paper": Scale.paper}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fairwos reproduction command line",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list benchmark datasets")

    run_parser = sub.add_parser("run", help="train one method on one dataset")
    run_parser.add_argument("--method", choices=available_methods(), default="fairwos")
    run_parser.add_argument(
        "--dataset",
        choices=available_datasets() + ["scalefree"],
        default="nba",
        help="benchmark dataset, or 'scalefree' for a generated large graph",
    )
    run_parser.add_argument("--backbone", default="gcn")
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument("--epochs", type=int, default=150)
    run_parser.add_argument(
        "--minibatch",
        action="store_true",
        help="train with neighbour-sampled minibatches (large graphs)",
    )
    run_parser.add_argument(
        "--fanout",
        type=_parse_fanouts,
        default=None,
        metavar="F1,F2,...",
        help="per-layer neighbour fanouts, e.g. '10,5' (sets backbone depth)",
    )
    run_parser.add_argument("--batch-size", type=int, default=512)
    run_parser.add_argument(
        "--cache-epochs",
        type=int,
        default=1,
        metavar="R",
        help="reuse sampled minibatch structure for R epochs before "
        "resampling (1 = fresh sampling every epoch)",
    )
    run_parser.add_argument(
        "--nodes",
        type=int,
        default=20_000,
        help="node count for --dataset scalefree",
    )
    run_parser.add_argument(
        "--cf-backend",
        choices=("exact", "ann"),
        default="exact",
        help="fairwos counterfactual search backend "
        "(ann = random-projection forest for large graphs)",
    )
    run_parser.add_argument(
        "--cf-refresh",
        type=int,
        default=None,
        metavar="R",
        help="refresh the counterfactual index every R fine-tune epochs",
    )
    run_parser.add_argument(
        "--cf-update",
        choices=("rebuild", "incremental"),
        default="rebuild",
        help="how an ANN refresh maintains the forest: rebuild from scratch "
        "or incrementally re-route only drifted points",
    )

    audit_parser = sub.add_parser("audit", help="bias audit of a dataset")
    audit_parser.add_argument("--dataset", choices=available_datasets(), default="nba")
    audit_parser.add_argument("--seed", type=int, default=0)

    for name in ("table1", "table2", "fig4", "fig5", "fig6", "fig7", "fig8"):
        exp_parser = sub.add_parser(name, help=f"regenerate {name}")
        exp_parser.add_argument("--scale", choices=sorted(_SCALES), default="quick")
        if name == "table2":
            exp_parser.add_argument("--datasets", nargs="+", default=None)
            exp_parser.add_argument("--backbones", nargs="+", default=None)
            exp_parser.add_argument("--methods", nargs="+", default=None)
        if name in ("fig5", "fig6", "fig7", "fig8"):
            exp_parser.add_argument("--dataset", default=None)
    return parser


def _cmd_datasets() -> str:
    lines = ["available datasets:"]
    for name in available_datasets():
        graph = load_dataset(name, seed=0)
        lines.append(f"  {graph.summary()}  [sensitive: {graph.meta['sensitive_name']}]")
    return "\n".join(lines)


def _parse_fanouts(text: str) -> tuple[int, ...]:
    """Parse a comma-separated fanout list like ``10,5``."""
    try:
        fanouts = tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError as err:
        raise argparse.ArgumentTypeError(
            f"fanouts must be comma-separated integers, got {text!r}"
        ) from err
    if not fanouts or any(fanout < 1 for fanout in fanouts):
        raise argparse.ArgumentTypeError(
            f"fanouts must be positive integers, got {text!r}"
        )
    return fanouts


def _cmd_run(args) -> str:
    if args.dataset == "scalefree":
        from repro.datasets import generate_scale_free_graph

        graph = generate_scale_free_graph(args.nodes, seed=args.seed).standardized()
    else:
        graph = load_dataset(args.dataset, seed=args.seed)
    result = run_method(
        args.method,
        graph,
        backbone=args.backbone,
        seed=args.seed,
        epochs=args.epochs,
        minibatch=args.minibatch,
        fanouts=args.fanout,
        batch_size=args.batch_size,
        cache_epochs=args.cache_epochs,
        cf_backend=args.cf_backend,
        cf_refresh_epochs=args.cf_refresh,
        cf_update=args.cf_update,
    )
    mode = ""
    if args.minibatch:
        from repro.training import DEFAULT_FANOUT

        fanouts = args.fanout or (DEFAULT_FANOUT,)
        mode = (
            f", minibatch fanout={','.join(map(str, fanouts))} "
            f"batch={args.batch_size}"
        )
        if args.cache_epochs != 1:
            mode += f" cache-epochs={args.cache_epochs}"
    if args.method == "fairwos" and args.cf_backend != "exact":
        mode += f", cf-backend={args.cf_backend}"
        if args.cf_update != "rebuild":
            mode += f" cf-update={args.cf_update}"
    return (
        f"{result.method} on {args.dataset} ({args.backbone}, seed {args.seed}"
        f"{mode}):\n  {result.test}\n  trained in {result.seconds:.1f}s"
    )


def _cmd_audit(args) -> str:
    from repro.baselines import Vanilla
    from repro.fairness.audit import audit_graph, audit_predictions
    from repro.gnnzoo import make_backbone
    from repro.tensor import Tensor
    from repro.training import fit_binary_classifier, predict_logits

    graph = load_dataset(args.dataset, seed=args.seed)
    report = audit_graph(graph).render()
    model = make_backbone("gcn", graph.num_features, 16, np.random.default_rng(args.seed))
    features = Tensor(graph.features)
    fit_binary_classifier(
        model, features, graph.adjacency, graph.labels,
        graph.train_mask, graph.val_mask, epochs=150, patience=30,
    )
    logits = predict_logits(model, features, graph.adjacency)
    model_report = audit_predictions(logits, graph).render()
    return f"{graph.summary()}\n\n{report}\n\n{model_report}"


def main(argv: list[str] | None = None) -> str:
    """Entry point; returns the rendered output (also printed)."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0].startswith("-") and argv[0] not in ("-h", "--help"):
        # `repro --method fairwos ...` is shorthand for `repro run ...`.
        argv = ["run", *argv]
    args = build_parser().parse_args(argv)
    scale = _SCALES[getattr(args, "scale", "quick")]() if hasattr(args, "scale") else None

    if args.command == "datasets":
        output = _cmd_datasets()
    elif args.command == "run":
        output = _cmd_run(args)
    elif args.command == "audit":
        output = _cmd_audit(args)
    elif args.command == "table1":
        output = format_table1(run_table1())
    elif args.command == "table2":
        output = format_table2(
            run_table2(
                datasets=args.datasets,
                backbones=args.backbones,
                methods=args.methods,
                scale=scale,
            )
        )
    elif args.command == "fig4":
        output = format_fig4(run_fig4(scale=scale))
    elif args.command == "fig5":
        output = format_fig5(run_fig5(dataset=args.dataset or "nba", scale=scale))
    elif args.command == "fig6":
        output = format_fig6(run_fig6(dataset=args.dataset or "bail", scale=scale))
    elif args.command == "fig7":
        output = format_fig7(run_fig7(dataset=args.dataset or "nba", scale=scale))
    elif args.command == "fig8":
        output = format_fig8(run_fig8(dataset=args.dataset or "nba", scale=scale))
    else:  # pragma: no cover - argparse enforces choices
        raise ValueError(f"unhandled command {args.command!r}")

    print(output)
    return output


if __name__ == "__main__":
    main(sys.argv[1:])
