"""Graph Attention Network (Velickovic et al., 2018), single-head layers.

Attention is computed on the edge list (including self-loops) with a
numerically stabilised segment softmax built from the differentiable
``gather`` / ``scatter_add`` primitives.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.graph.normalize import add_self_loops
from repro.graph.sampling import Block
from repro.gnnzoo.base import GNNBackbone
from repro.nn import Dropout, Linear, ModuleList, Parameter, init
from repro.tensor import Tensor
from repro.tensor import ops

__all__ = ["GAT"]


class _GATLayer:
    """One single-head attention layer's parameters (managed by GAT)."""

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator) -> None:
        self.linear = Linear(in_dim, out_dim, rng, bias=False)
        self.attn_src = Parameter(init.xavier_uniform((out_dim, 1), rng), name="attn_src")
        self.attn_dst = Parameter(init.xavier_uniform((out_dim, 1), rng), name="attn_dst")


class GAT(GNNBackbone):
    """Stack of single-head GAT layers with ELU-free ReLU output activations."""

    def __init__(
        self,
        in_dim: int,
        hidden_dim: int,
        rng: np.random.Generator,
        num_layers: int = 1,
        dropout: float = 0.0,
        negative_slope: float = 0.2,
    ) -> None:
        super().__init__(hidden_dim, rng)
        if num_layers < 1:
            raise ValueError(f"num_layers must be >= 1, got {num_layers}")
        dims = [in_dim] + [hidden_dim] * num_layers
        self.num_layers = num_layers
        self.linears = ModuleList([])
        self._attn_params: list[_GATLayer] = []
        self.attn_src_params: list[Parameter] = []
        self.attn_dst_params: list[Parameter] = []
        for i in range(num_layers):
            layer = _GATLayer(dims[i], dims[i + 1], rng)
            self.linears.append(layer.linear)
            self.attn_src_params.append(layer.attn_src)
            self.attn_dst_params.append(layer.attn_dst)
        self.negative_slope = negative_slope
        self.dropout = Dropout(dropout, rng) if dropout > 0 else None
        self._edge_cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    def _propagation_matrix(self, adjacency: sp.spmatrix) -> sp.csr_matrix:
        return add_self_loops(adjacency)

    def _edges(self, adjacency: sp.spmatrix) -> tuple[np.ndarray, np.ndarray]:
        key = id(adjacency)
        cached = self._edge_cache.get(key)
        if cached is None:
            coo = sp.coo_matrix(self._cached_propagation(adjacency))
            cached = (coo.row.astype(np.int64), coo.col.astype(np.int64))
            if len(self._edge_cache) > 8:
                self._edge_cache.clear()
            self._edge_cache[key] = cached
        return cached

    def _attention_layer(
        self,
        wh: Tensor,
        attn_src,
        attn_dst,
        src: np.ndarray,
        dst: np.ndarray,
        num_dst: int,
    ) -> Tensor:
        """One attention pass over edges ``src → dst`` (scatter over num_dst).

        ``wh`` holds the projected representations of every node either
        endpoint index refers to; destination indices must also be valid rows
        of ``wh`` (in block mode the destinations are the ``wh`` prefix).
        """
        score_src = ops.matmul(wh, attn_src).reshape(-1)
        score_dst = ops.matmul(wh, attn_dst).reshape(-1)
        edge_score = ops.leaky_relu(
            ops.add(ops.gather(score_src, src), ops.gather(score_dst, dst)),
            self.negative_slope,
        )
        # Segment softmax over incoming edges of each destination node.
        # Subtracting the per-destination max (a constant w.r.t. autodiff,
        # like the max-shift in ordinary softmax) keeps exp() bounded.
        shift = np.full(num_dst, -np.inf)
        np.maximum.at(shift, dst, edge_score.data)
        shift[~np.isfinite(shift)] = 0.0
        exp_score = ops.exp(ops.sub(edge_score, Tensor(shift[dst])))
        denom = ops.scatter_add(exp_score.reshape(-1, 1), dst, num_dst)
        alpha = ops.div(
            exp_score, ops.add(ops.gather(denom.reshape(-1), dst), 1e-16)
        )
        messages = ops.mul(ops.gather(wh, src), alpha.reshape(-1, 1))
        return ops.relu(ops.scatter_add(messages, dst, num_dst))

    def embed(self, features: Tensor, adjacency: sp.spmatrix) -> Tensor:
        src, dst = self._edges(adjacency)
        num_nodes = features.shape[0]
        h = features
        for linear, attn_src, attn_dst in zip(
            self.linears, self.attn_src_params, self.attn_dst_params
        ):
            if self.dropout is not None:
                h = self.dropout(h)
            wh = linear(h)
            h = self._attention_layer(wh, attn_src, attn_dst, src, dst, num_nodes)
        return h

    def embed_blocks(self, features: Tensor, blocks: list[Block]) -> Tensor:
        self._check_blocks(features, blocks)
        h = features
        for linear, attn_src, attn_dst, block in zip(
            self.linears, self.attn_src_params, self.attn_dst_params, blocks
        ):
            if self.dropout is not None:
                h = self.dropout(h)
            wh = linear(h)
            # Block edges flow column (source) → row (destination); append
            # one self-loop per destination (its source index is the shared
            # dst/src prefix).  Multiplicities from with-replacement sampling
            # are intentionally ignored — attention re-weights edges anyway.
            coo = block.adjacency.tocoo()
            eye = np.arange(block.num_dst)
            src = np.concatenate([coo.col.astype(np.int64), eye])
            dst = np.concatenate([coo.row.astype(np.int64), eye])
            h = self._attention_layer(
                wh, attn_src, attn_dst, src, dst, block.num_dst
            )
        return h
