"""Graph Isomorphism Network (Xu et al., 2019)."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.gnnzoo.base import GNNBackbone
from repro.graph.normalize import to_symmetric
from repro.graph.sampling import Block, block_sum_matrix
from repro.nn import MLP, Dropout, ModuleList, Parameter
from repro.tensor import Tensor
from repro.tensor import ops

__all__ = ["GIN"]


class GIN(GNNBackbone):
    """GIN layers: ``H^{l+1} = MLP((1 + ε) H^l + A H^l)`` with learnable ε.

    Sum aggregation over the raw adjacency (no normalisation), as in the
    original paper; each layer's MLP has one hidden layer of ``hidden_dim``.
    """

    def __init__(
        self,
        in_dim: int,
        hidden_dim: int,
        rng: np.random.Generator,
        num_layers: int = 1,
        dropout: float = 0.0,
    ) -> None:
        super().__init__(hidden_dim, rng)
        if num_layers < 1:
            raise ValueError(f"num_layers must be >= 1, got {num_layers}")
        dims = [in_dim] + [hidden_dim] * num_layers
        self.num_layers = num_layers
        self.mlps = ModuleList(
            [
                MLP([dims[i], hidden_dim, dims[i + 1]], rng)
                for i in range(num_layers)
            ]
        )
        self.epsilons = [Parameter(np.zeros(1), name=f"eps{i}") for i in range(num_layers)]
        self.dropout = Dropout(dropout, rng) if dropout > 0 else None

    def _propagation_matrix(self, adjacency: sp.spmatrix) -> sp.csr_matrix:
        return to_symmetric(adjacency)

    def embed(self, features: Tensor, adjacency: sp.spmatrix) -> Tensor:
        matrix = self._cached_propagation(adjacency)
        h = features
        for mlp, eps in zip(self.mlps, self.epsilons):
            if self.dropout is not None:
                h = self.dropout(h)
            self_term = ops.mul(h, ops.add(1.0, eps))
            neighbor_term = ops.spmm(matrix, h)
            h = ops.relu(mlp(ops.add(self_term, neighbor_term)))
        return h

    def embed_blocks(self, features: Tensor, blocks: list[Block]) -> Tensor:
        self._check_blocks(features, blocks)
        h = features
        for mlp, eps, block in zip(self.mlps, self.epsilons, blocks):
            if self.dropout is not None:
                h = self.dropout(h)
            h_dst = ops.index(h, slice(0, block.num_dst))
            self_term = ops.mul(h_dst, ops.add(1.0, eps))
            neighbor_term = ops.spmm(block_sum_matrix(block), h)
            h = ops.relu(mlp(ops.add(self_term, neighbor_term)))
        return h
