"""GraphSAGE with mean aggregation (Hamilton et al., 2017)."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.graph.normalize import row_normalize
from repro.graph.sampling import Block, block_mean_matrix
from repro.gnnzoo.base import GNNBackbone
from repro.nn import Dropout, Linear, ModuleList
from repro.tensor import Tensor
from repro.tensor import ops

__all__ = ["GraphSAGE"]


class GraphSAGE(GNNBackbone):
    """SAGE-mean layers: ``H^{l+1} = ReLU(H^l W_self + (D^{-1} A) H^l W_nb)``."""

    def __init__(
        self,
        in_dim: int,
        hidden_dim: int,
        rng: np.random.Generator,
        num_layers: int = 1,
        dropout: float = 0.0,
    ) -> None:
        super().__init__(hidden_dim, rng)
        if num_layers < 1:
            raise ValueError(f"num_layers must be >= 1, got {num_layers}")
        dims = [in_dim] + [hidden_dim] * num_layers
        self.num_layers = num_layers
        self.self_layers = ModuleList(
            [Linear(dims[i], dims[i + 1], rng) for i in range(num_layers)]
        )
        self.neighbor_layers = ModuleList(
            [Linear(dims[i], dims[i + 1], rng, bias=False) for i in range(num_layers)]
        )
        self.dropout = Dropout(dropout, rng) if dropout > 0 else None

    def _propagation_matrix(self, adjacency: sp.spmatrix) -> sp.csr_matrix:
        return row_normalize(adjacency)

    def embed(self, features: Tensor, adjacency: sp.spmatrix) -> Tensor:
        mean_op = self._cached_propagation(adjacency)
        h = features
        for self_layer, neighbor_layer in zip(self.self_layers, self.neighbor_layers):
            if self.dropout is not None:
                h = self.dropout(h)
            h = ops.relu(
                ops.add(self_layer(h), neighbor_layer(ops.spmm(mean_op, h)))
            )
        return h

    def embed_blocks(self, features: Tensor, blocks: list[Block]) -> Tensor:
        self._check_blocks(features, blocks)
        h = features
        for self_layer, neighbor_layer, block in zip(
            self.self_layers, self.neighbor_layers, blocks
        ):
            if self.dropout is not None:
                h = self.dropout(h)
            h_dst = ops.index(h, slice(0, block.num_dst))
            h = ops.relu(
                ops.add(
                    self_layer(h_dst),
                    neighbor_layer(ops.spmm(block_mean_matrix(block), h)),
                )
            )
        return h
