"""GNN backbones.

All backbones share the interface of :class:`GNNBackbone`:

* ``embed(features, adjacency)`` returns the node representations ``h`` that
  Fairwos's counterfactual search and fair-representation loss operate on,
* ``forward(features, adjacency)`` returns binary logits from the linear
  classification head (Eq. 9 of the paper).

The paper's experiments use **GCN** and **GIN** with one layer and 16 hidden
units; **GAT** and **GraphSAGE** are provided as extensions (the related-work
section names both) and are exercised by extra tests and an ablation bench.
"""

from repro.gnnzoo.base import GNNBackbone, make_backbone
from repro.gnnzoo.gcn import GCN
from repro.gnnzoo.gin import GIN
from repro.gnnzoo.gat import GAT
from repro.gnnzoo.sage import GraphSAGE

__all__ = ["GNNBackbone", "make_backbone", "GCN", "GIN", "GAT", "GraphSAGE"]
