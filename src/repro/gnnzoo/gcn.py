"""Graph Convolutional Network (Kipf & Welling, 2017)."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.graph.normalize import gcn_normalize
from repro.graph.sampling import Block, block_gcn_matrix
from repro.gnnzoo.base import GNNBackbone
from repro.nn import Dropout, Linear, ModuleList
from repro.tensor import Tensor
from repro.tensor import ops

__all__ = ["GCN"]


class GCN(GNNBackbone):
    """Stack of GCN layers: ``H^{l+1} = ReLU(Â H^l W^l)``.

    ``Â`` is the symmetrically normalised adjacency with self-loops; the
    paper's configuration is one layer with 16 hidden units.
    """

    def __init__(
        self,
        in_dim: int,
        hidden_dim: int,
        rng: np.random.Generator,
        num_layers: int = 1,
        dropout: float = 0.0,
    ) -> None:
        super().__init__(hidden_dim, rng)
        if num_layers < 1:
            raise ValueError(f"num_layers must be >= 1, got {num_layers}")
        dims = [in_dim] + [hidden_dim] * num_layers
        self.num_layers = num_layers
        self.layers = ModuleList(
            [Linear(dims[i], dims[i + 1], rng) for i in range(num_layers)]
        )
        self.dropout = Dropout(dropout, rng) if dropout > 0 else None

    def _propagation_matrix(self, adjacency: sp.spmatrix) -> sp.csr_matrix:
        return gcn_normalize(adjacency)

    def embed(self, features: Tensor, adjacency: sp.spmatrix) -> Tensor:
        a_hat = self._cached_propagation(adjacency)
        h = features
        for layer in self.layers:
            if self.dropout is not None:
                h = self.dropout(h)
            h = ops.relu(layer(ops.spmm(a_hat, h)))
        return h

    def embed_blocks(self, features: Tensor, blocks: list[Block]) -> Tensor:
        self._check_blocks(features, blocks)
        h = features
        for layer, block in zip(self.layers, blocks):
            if self.dropout is not None:
                h = self.dropout(h)
            h = ops.relu(layer(ops.spmm(block_gcn_matrix(block), h)))
        return h
