"""Shared backbone interface and factory."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.graph.sampling import Block, is_block_sequence
from repro.nn import Linear, Module
from repro.tensor import Tensor

__all__ = ["GNNBackbone", "make_backbone"]


class GNNBackbone(Module):
    """Base class: conv stack → representation ``h`` → linear head → logit.

    Subclasses implement :meth:`embed` (full-batch, square adjacency) and
    :meth:`embed_blocks` (minibatch, one sampled bipartite
    :class:`~repro.graph.sampling.Block` per layer); the classification head
    (Eq. 9, ``ŷ_v = σ(h_v · w)``) lives here so every backbone exposes
    identical logits semantics.  Normalised adjacencies are cached per input
    matrix (graphs are static within an experiment) keyed by object identity;
    blocks are ephemeral and never cached.
    """

    def __init__(self, hidden_dim: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.hidden_dim = hidden_dim
        self.num_layers = 1  # overwritten by subclasses
        self.head = Linear(hidden_dim, 1, rng)
        self._prop_cache: dict[int, sp.csr_matrix] = {}

    # -- subclass API ---------------------------------------------------- #
    def embed(self, features: Tensor, adjacency: sp.spmatrix) -> Tensor:
        """Return node representations ``h`` of shape ``(N, hidden_dim)``."""
        raise NotImplementedError

    def embed_blocks(self, features: Tensor, blocks: list[Block]) -> Tensor:
        """Minibatch :meth:`embed` over sampled blocks, input layer first.

        ``features`` holds the gathered input rows of ``blocks[0].src_nodes``;
        the result has one row per ``blocks[-1].dst_nodes`` seed.
        """
        raise NotImplementedError

    def _propagation_matrix(self, adjacency: sp.spmatrix) -> sp.csr_matrix:
        """Backbone-specific message-passing operator for a raw adjacency."""
        raise NotImplementedError

    # -- shared ----------------------------------------------------------- #
    def forward(self, features: Tensor, adjacency) -> Tensor:
        """Binary classification logits, ``(N,)`` full-batch or ``(B,)``
        when ``adjacency`` is a list of sampled blocks."""
        if is_block_sequence(adjacency):
            h = self.embed_blocks(features, list(adjacency))
        else:
            h = self.embed(features, adjacency)
        return self.head(h).reshape(-1)

    def _check_blocks(self, features: Tensor, blocks: list[Block]) -> None:
        """Validate the block chain against this model's layer stack."""
        if len(blocks) != self.num_layers:
            raise ValueError(
                f"{type(self).__name__} has {self.num_layers} layers but got "
                f"{len(blocks)} blocks"
            )
        if features.shape[0] != blocks[0].num_src:
            raise ValueError(
                f"features have {features.shape[0]} rows but the input block "
                f"expects {blocks[0].num_src}"
            )
        for earlier, later in zip(blocks[:-1], blocks[1:]):
            if not np.array_equal(earlier.dst_nodes, later.src_nodes):
                raise ValueError("block chain broken: dst/src node mismatch")

    def _cached_propagation(self, adjacency: sp.spmatrix) -> sp.csr_matrix:
        key = id(adjacency)
        cached = self._prop_cache.get(key)
        if cached is None:
            cached = self._propagation_matrix(adjacency)
            # Keep the cache bounded: experiments touch at most a few graphs.
            if len(self._prop_cache) > 8:
                self._prop_cache.clear()
            self._prop_cache[key] = cached
        return cached


def make_backbone(
    name: str,
    in_dim: int,
    hidden_dim: int,
    rng: np.random.Generator,
    num_layers: int = 1,
    dropout: float = 0.0,
) -> GNNBackbone:
    """Instantiate a backbone by name ("gcn", "gin", "gat", "sage")."""
    from repro.gnnzoo.gat import GAT
    from repro.gnnzoo.gcn import GCN
    from repro.gnnzoo.gin import GIN
    from repro.gnnzoo.sage import GraphSAGE

    registry = {"gcn": GCN, "gin": GIN, "gat": GAT, "sage": GraphSAGE}
    key = name.lower()
    if key not in registry:
        raise ValueError(f"unknown backbone {name!r}; choose from {sorted(registry)}")
    return registry[key](
        in_dim=in_dim,
        hidden_dim=hidden_dim,
        rng=rng,
        num_layers=num_layers,
        dropout=dropout,
    )
