"""Shared evaluation harness producing the paper's reported triple.

Every trainer in this repository returns test logits; this module turns them
into the (ACC, ΔSP, ΔEO) triple of Table II, plus auxiliary scores (F1, AUC)
used by extra analyses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fairness import metrics

__all__ = ["EvalResult", "evaluate_predictions"]


@dataclass(frozen=True)
class EvalResult:
    """Utility + fairness scores of one trained model on one node set.

    All values are fractions in [0, 1]; the paper's tables multiply by 100.
    """

    accuracy: float
    delta_sp: float
    delta_eo: float
    f1: float
    auc: float
    positive_rate_s0: float
    positive_rate_s1: float
    num_nodes: int

    def as_percentages(self) -> dict[str, float]:
        """Scores ×100 in the units used by the paper's tables."""
        return {
            "ACC": 100.0 * self.accuracy,
            "dSP": 100.0 * self.delta_sp,
            "dEO": 100.0 * self.delta_eo,
            "F1": 100.0 * self.f1,
            "AUC": 100.0 * self.auc,
        }

    def __str__(self) -> str:
        p = self.as_percentages()
        return (
            f"ACC {p['ACC']:.2f}  ΔSP {p['dSP']:.2f}  ΔEO {p['dEO']:.2f} "
            f"(F1 {p['F1']:.2f}, AUC {p['AUC']:.2f}, n={self.num_nodes})"
        )


def evaluate_predictions(
    logits: np.ndarray,
    labels: np.ndarray,
    sensitive: np.ndarray,
    mask: np.ndarray | None = None,
    threshold: float = 0.0,
) -> EvalResult:
    """Score logits against labels and the sensitive attribute.

    Parameters
    ----------
    logits:
        Raw binary scores, shape ``(N,)``; prediction is ``logit > threshold``.
    labels, sensitive:
        Ground truth and the *evaluation-only* sensitive attribute.
    mask:
        Optional boolean node subset (typically ``graph.test_mask``).
    threshold:
        Decision threshold on the logit scale (0 ⇔ probability 0.5).
    """
    logits = np.asarray(logits, dtype=np.float64)
    labels = np.asarray(labels)
    sensitive = np.asarray(sensitive)
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
        logits, labels, sensitive = logits[mask], labels[mask], sensitive[mask]
    if logits.size == 0:
        raise ValueError("empty evaluation set")
    predictions = (logits > threshold).astype(np.int64)
    rate0, rate1 = metrics.group_positive_rates(predictions, sensitive)
    return EvalResult(
        accuracy=metrics.accuracy(predictions, labels),
        delta_sp=metrics.demographic_parity_difference(predictions, sensitive),
        delta_eo=metrics.equal_opportunity_difference(predictions, labels, sensitive),
        f1=metrics.f1_score(predictions, labels),
        auc=metrics.auc_score(logits, labels),
        positive_rate_s0=rate0,
        positive_rate_s1=rate1,
        num_nodes=int(logits.size),
    )
