"""Utility and group-fairness metrics.

Implements the paper's evaluation metrics: accuracy (utility), statistical /
demographic parity difference ΔSP (Eq. 43) and equal opportunity difference
ΔEO (Eq. 44), both computed between the two groups of a binary sensitive
attribute on the test set.  All metric values are returned as fractions in
``[0, 1]`` — the paper reports them as percentages (multiply by 100).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "accuracy",
    "consistency_score",
    "f1_score",
    "auc_score",
    "demographic_parity_difference",
    "equal_opportunity_difference",
    "group_positive_rates",
    "group_confusion",
    "counterfactual_flip_rate",
]


def _validate_binary(name: str, values: np.ndarray) -> np.ndarray:
    values = np.asarray(values)
    unique = np.unique(values)
    if not np.isin(unique, (0, 1)).all():
        raise ValueError(f"{name} must be binary 0/1, got values {unique[:10]}")
    return values.astype(np.int64)


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of correct predictions."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ValueError(
            f"shape mismatch: predictions {predictions.shape} vs labels {labels.shape}"
        )
    if predictions.size == 0:
        raise ValueError("cannot compute accuracy of an empty array")
    return float((predictions == labels).mean())


def f1_score(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Binary F1 of the positive class (0 when degenerate)."""
    predictions = _validate_binary("predictions", predictions)
    labels = _validate_binary("labels", labels)
    tp = int(((predictions == 1) & (labels == 1)).sum())
    fp = int(((predictions == 1) & (labels == 0)).sum())
    fn = int(((predictions == 0) & (labels == 1)).sum())
    denom = 2 * tp + fp + fn
    return 2.0 * tp / denom if denom else 0.0


def auc_score(scores: np.ndarray, labels: np.ndarray) -> float:
    """ROC AUC via the rank statistic (Mann-Whitney U), ties averaged."""
    scores = np.asarray(scores, dtype=np.float64)
    labels = _validate_binary("labels", labels)
    n_pos = int(labels.sum())
    n_neg = labels.size - n_pos
    if n_pos == 0 or n_neg == 0:
        raise ValueError("AUC undefined: need both classes present")
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty_like(scores)
    ranks[order] = np.arange(1, scores.size + 1, dtype=np.float64)
    # Average ranks over ties.
    sorted_scores = scores[order]
    i = 0
    while i < scores.size:
        j = i
        while j + 1 < scores.size and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        if j > i:
            ranks[order[i : j + 1]] = (i + 1 + j + 1) / 2.0
        i = j + 1
    rank_sum = float(ranks[labels == 1].sum())
    return (rank_sum - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg)


def group_positive_rates(
    predictions: np.ndarray, sensitive: np.ndarray
) -> tuple[float, float]:
    """``(P(ŷ=1 | s=0), P(ŷ=1 | s=1))``; raises if a group is empty."""
    predictions = _validate_binary("predictions", predictions)
    sensitive = _validate_binary("sensitive", sensitive)
    rates = []
    for group in (0, 1):
        mask = sensitive == group
        if not mask.any():
            raise ValueError(f"sensitive group {group} is empty")
        rates.append(float(predictions[mask].mean()))
    return rates[0], rates[1]


def demographic_parity_difference(
    predictions: np.ndarray, sensitive: np.ndarray
) -> float:
    """ΔSP = |P(ŷ=1|s=0) − P(ŷ=1|s=1)| (Eq. 43)."""
    rate0, rate1 = group_positive_rates(predictions, sensitive)
    return abs(rate0 - rate1)


def equal_opportunity_difference(
    predictions: np.ndarray, labels: np.ndarray, sensitive: np.ndarray
) -> float:
    """ΔEO = |P(ŷ=1|y=1,s=0) − P(ŷ=1|y=1,s=1)| (Eq. 44).

    Restricted to ground-truth positives; raises if either group has no
    positive examples (the quantity is undefined there).
    """
    predictions = _validate_binary("predictions", predictions)
    labels = _validate_binary("labels", labels)
    positives = labels == 1
    if not positives.any():
        raise ValueError("no positive examples: ΔEO undefined")
    return demographic_parity_difference(
        predictions[positives], np.asarray(sensitive)[positives]
    )


def group_confusion(
    predictions: np.ndarray, labels: np.ndarray, sensitive: np.ndarray
) -> dict[int, dict[str, int]]:
    """Per-group confusion counts ``{group: {tp, fp, tn, fn}}``."""
    predictions = _validate_binary("predictions", predictions)
    labels = _validate_binary("labels", labels)
    sensitive = _validate_binary("sensitive", sensitive)
    out: dict[int, dict[str, int]] = {}
    for group in (0, 1):
        mask = sensitive == group
        p, y = predictions[mask], labels[mask]
        out[group] = {
            "tp": int(((p == 1) & (y == 1)).sum()),
            "fp": int(((p == 1) & (y == 0)).sum()),
            "tn": int(((p == 0) & (y == 0)).sum()),
            "fn": int(((p == 0) & (y == 1)).sum()),
        }
    return out


def counterfactual_flip_rate(
    predictions: np.ndarray, counterfactual_predictions: np.ndarray
) -> float:
    """Fraction of nodes whose prediction flips under their counterfactual.

    A direct counterfactual-fairness score: 0 means every node receives the
    same decision as its counterfactual twin.
    """
    predictions = _validate_binary("predictions", predictions)
    counterfactual_predictions = _validate_binary(
        "counterfactual_predictions", counterfactual_predictions
    )
    if predictions.shape != counterfactual_predictions.shape:
        raise ValueError("prediction arrays must have matching shapes")
    return float((predictions != counterfactual_predictions).mean())


def consistency_score(
    logits: np.ndarray, features: np.ndarray, num_neighbors: int = 5
) -> float:
    """Individual-fairness consistency (NIFTY's stability metric).

    For each node, compare its hard prediction with those of its
    ``num_neighbors`` nearest neighbours in *feature* space; the score is
    the mean agreement in [0, 1].  1 means similar individuals always
    receive the same decision.
    """
    logits = np.asarray(logits, dtype=np.float64)
    # The feature matrix keeps its native float dtype — the O(N²) distance
    # matrix only ranks neighbours, so float32 inputs need no upcast copy.
    features = np.asarray(features)
    if features.dtype not in (np.float32, np.float64):
        features = features.astype(np.float64)
    n = logits.shape[0]
    if features.shape[0] != n:
        raise ValueError(
            f"row mismatch: {n} logits vs {features.shape[0]} feature rows"
        )
    if not 1 <= num_neighbors < n:
        raise ValueError(f"num_neighbors must be in [1, {n - 1}], got {num_neighbors}")
    predictions = (logits > 0).astype(np.int64)
    norms = (features**2).sum(axis=1)
    distances = norms[:, None] + norms[None, :] - 2.0 * features @ features.T
    np.fill_diagonal(distances, np.inf)
    neighbor_ids = np.argpartition(distances, num_neighbors - 1, axis=1)[
        :, :num_neighbors
    ]
    agreement = predictions[neighbor_ids] == predictions[:, None]
    return float(agreement.mean())
