"""Intersectional (multi-attribute) group fairness auditing.

Single-attribute ΔSP/ΔEO can certify a model fair for each attribute
marginally while a *joint* subgroup (e.g. s=1 ∧ community=3) is treated much
worse — the classic intersectionality failure.  This module audits the full
product of sensitive attributes: one cell per combination of observed
attribute values, each with its own positive rate and true-positive rate,
and joint gaps defined as max − min over the *finite* cell rates.

Degenerate cells follow the :func:`~repro.fairness.audit.audit_prediction_windows`
convention: an empty joint cell (or one with no ground-truth positives, for
ΔEO) reports NaN rates instead of raising, and NaN cells are excluded from
the gap maximum.  With a single binary attribute and both groups populated,
``delta_sp``/``delta_eo`` reduce bit-for-bit to the pairwise
:func:`~repro.fairness.metrics.demographic_parity_difference` /
:func:`~repro.fairness.metrics.equal_opportunity_difference`
(``max − min`` of two floats is IEEE-identical to ``|a − b|``), so the
intersectional audit is a strict generalisation, not a parallel metric.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

__all__ = [
    "JointCell",
    "IntersectionalAudit",
    "audit_intersectional",
]


@dataclass(frozen=True)
class JointCell:
    """One cell of the attribute product.

    Attributes
    ----------
    values:
        The attribute-value combination, aligned with the audit's
        ``attribute_names``.
    size:
        Number of audited nodes in the cell (0 for empty cells).
    num_positives:
        Ground-truth positives in the cell.
    positive_rate:
        ``P(ŷ=1 | cell)``; NaN when the cell is empty.
    true_positive_rate:
        ``P(ŷ=1 | y=1, cell)``; NaN when the cell has no positives.
    """

    values: tuple[int, ...]
    size: int
    num_positives: int
    positive_rate: float
    true_positive_rate: float


@dataclass
class IntersectionalAudit:
    """Joint-group fairness report over the product of sensitive attributes.

    ``delta_sp`` / ``delta_eo`` are max − min over the finite cell rates —
    the worst pairwise subgroup gap — and NaN when fewer than two cells have
    a finite rate (the gap is undefined, mirroring the NaN-gap convention of
    windowed audits).  Both are invariant to the order the attributes were
    supplied in: reordering permutes the cells but not the rate multiset.
    """

    attribute_names: tuple[str, ...]
    cells: list[JointCell]
    delta_sp: float
    delta_eo: float

    @property
    def num_cells(self) -> int:
        return len(self.cells)

    @property
    def num_empty_cells(self) -> int:
        return sum(1 for cell in self.cells if cell.size == 0)

    def render(self) -> str:
        """Human-readable per-cell table with the joint-gap headline."""
        header = " × ".join(self.attribute_names)
        keys = [",".join(str(v) for v in cell.values) for cell in self.cells]
        width = max(4, max(len(key) for key in keys))
        lines = [f"Intersectional audit over {header} ({self.num_cells} cells)"]
        lines.append(f"  {'cell':<{width + 2}}  nodes   P(ŷ=1)   TPR")
        for cell, key in zip(self.cells, keys):
            rate = f"{cell.positive_rate:.3f}" if np.isfinite(cell.positive_rate) else "  nan"
            tpr = (
                f"{cell.true_positive_rate:.3f}"
                if np.isfinite(cell.true_positive_rate)
                else "  nan"
            )
            lines.append(f"  ({key:<{width}}) {cell.size:>6d}   {rate}   {tpr}")
        sp = f"{self.delta_sp:.3f}" if np.isfinite(self.delta_sp) else "nan"
        eo = f"{self.delta_eo:.3f}" if np.isfinite(self.delta_eo) else "nan"
        lines.append(f"  joint ΔSP (max−min over cells): {sp}; joint ΔEO: {eo}")
        return "\n".join(lines)


def _finite_gap(rates: np.ndarray) -> float:
    """max − min over finite entries; NaN when fewer than two are finite."""
    finite = rates[np.isfinite(rates)]
    if finite.size < 2:
        return float("nan")
    return float(finite.max() - finite.min())


def audit_intersectional(
    logits: np.ndarray,
    labels: np.ndarray,
    attributes: dict[str, np.ndarray],
) -> IntersectionalAudit:
    """Audit joint-subgroup fairness over the product of ``attributes``.

    Parameters
    ----------
    logits:
        ``(N,)`` real-valued scores; predictions are ``logits > 0``.  Any
        float dtype is accepted — only the elementwise comparison touches
        the array, so float32 inputs are never upcast.
    labels:
        ``(N,)`` binary ground truth, for the per-cell true-positive rates.
    attributes:
        Mapping of attribute name → ``(N,)`` integer array.  Attributes may
        take any number of discrete values (the SBM community id is a valid
        attribute); cells enumerate the cartesian product of each
        attribute's *observed* values, so combinations absent from the data
        still appear — as empty NaN cells.
    """
    if not attributes:
        raise ValueError("need at least one sensitive attribute")
    logits = np.asarray(logits).reshape(-1)
    labels = np.asarray(labels).reshape(-1)
    names = tuple(attributes)
    columns = [np.asarray(attributes[name]).reshape(-1) for name in names]
    for name, column in zip(names, columns):
        if column.size != logits.size:
            raise ValueError(
                f"attribute {name!r} has {column.size} entries, expected "
                f"{logits.size}"
            )
    if labels.size != logits.size:
        raise ValueError(
            f"labels ({labels.size}) and logits ({logits.size}) must be aligned"
        )
    predictions = (logits > 0).astype(np.int64)
    positives = labels == 1

    value_sets = [np.unique(column) for column in columns]
    cells: list[JointCell] = []
    for combo in itertools.product(*value_sets):
        mask = np.ones(logits.size, dtype=bool)
        for column, value in zip(columns, combo):
            mask &= column == value
        size = int(mask.sum())
        pos = mask & positives
        num_positives = int(pos.sum())
        rate = float(predictions[mask].mean()) if size else float("nan")
        tpr = float(predictions[pos].mean()) if num_positives else float("nan")
        cells.append(
            JointCell(
                values=tuple(int(v) for v in combo),
                size=size,
                num_positives=num_positives,
                positive_rate=rate,
                true_positive_rate=tpr,
            )
        )
    rates = np.array([cell.positive_rate for cell in cells])
    tprs = np.array([cell.true_positive_rate for cell in cells])
    return IntersectionalAudit(
        attribute_names=names,
        cells=cells,
        delta_sp=_finite_gap(rates),
        delta_eo=_finite_gap(tprs),
    )
