"""Fairness and utility metrics plus the shared evaluation harness."""

from repro.fairness.metrics import (
    accuracy,
    consistency_score,
    auc_score,
    counterfactual_flip_rate,
    demographic_parity_difference,
    equal_opportunity_difference,
    f1_score,
    group_confusion,
    group_positive_rates,
)
from repro.fairness.evaluation import EvalResult, evaluate_predictions
from repro.fairness.audit import BiasAudit, audit_graph, audit_predictions
from repro.fairness.intersectional import (
    IntersectionalAudit,
    JointCell,
    audit_intersectional,
)

__all__ = [
    "accuracy",
    "consistency_score",
    "auc_score",
    "f1_score",
    "demographic_parity_difference",
    "equal_opportunity_difference",
    "counterfactual_flip_rate",
    "group_positive_rates",
    "group_confusion",
    "EvalResult",
    "evaluate_predictions",
    "BiasAudit",
    "audit_graph",
    "audit_predictions",
    "IntersectionalAudit",
    "JointCell",
    "audit_intersectional",
]
