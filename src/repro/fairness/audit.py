"""Bias auditing: quantify *where* a graph's sensitive bias lives.

The paper's introduction argues that sensitive bias survives removal of the
sensitive attribute through two channels — proxy features and homophilous
graph structure — and that message passing amplifies it.  This module turns
that argument into a measurable report:

* :func:`audit_graph` — data-side audit (leakage per feature, structural
  homophily, label base rates);
* :func:`audit_predictions` — model-side audit (ΔSP/ΔEO, amplification
  factor = prediction gap / label base-rate gap);
* :func:`audit_prediction_windows` — the same model-side metrics sliced
  into contiguous windows of a scored node stream, so a serving process
  (``repro score`` / ``repro serve`` on a saved artifact) can watch for
  fairness drift between scoring batches;
* :class:`BiasAudit` — the combined report with a text rendering.

Auditing requires the sensitive attribute, so it belongs to the *evaluation*
phase, exactly like the fairness metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis import correlation_with_vector
from repro.fairness.evaluation import EvalResult, evaluate_predictions
from repro.graph import Graph
from repro.graph.utils import edge_homophily

__all__ = [
    "BiasAudit",
    "WindowAudit",
    "audit_graph",
    "audit_predictions",
    "audit_prediction_windows",
]


@dataclass
class BiasAudit:
    """Data-side bias report for one graph.

    Attributes
    ----------
    feature_leakage:
        ``(F,)`` absolute Pearson correlation of each feature column with
        the sensitive attribute.
    top_proxy_features:
        Feature indices sorted by leakage, strongest first.
    sensitive_homophily:
        Fraction of edges joining same-group endpoints.
    label_homophily:
        Fraction of edges joining same-label endpoints.
    base_rate_gap:
        |P(y=1 | s=1) − P(y=1 | s=0)| — the *real* outcome gap.
    group_balance:
        P(s = 1).
    structural_leakage:
        1-hop majority-vote accuracy of predicting ``s`` from neighbours —
        how much the graph structure alone reveals the sensitive attribute.
    """

    feature_leakage: np.ndarray
    top_proxy_features: np.ndarray
    sensitive_homophily: float
    label_homophily: float
    base_rate_gap: float
    group_balance: float
    structural_leakage: float

    def render(self, top_k: int = 5) -> str:
        """Human-readable report."""
        lines = ["Bias audit (data side)"]
        lines.append(
            f"  group balance P(s=1) = {self.group_balance:.2f}; "
            f"label base-rate gap = {self.base_rate_gap:.3f}"
        )
        lines.append(
            f"  homophily: sensitive {self.sensitive_homophily:.2f}, "
            f"label {self.label_homophily:.2f}"
        )
        lines.append(
            f"  structural leakage (1-hop majority vote on s): "
            f"{self.structural_leakage:.2f}"
        )
        lines.append(f"  top-{top_k} proxy features by |corr(x_j, s)|:")
        for j in self.top_proxy_features[:top_k]:
            bar = "#" * int(round(30 * self.feature_leakage[j]))
            lines.append(f"    f{int(j):<4d} {self.feature_leakage[j]:.3f} {bar}")
        return "\n".join(lines)


def audit_graph(graph: Graph) -> BiasAudit:
    """Measure the data-side bias channels of ``graph``."""
    leakage = np.abs(correlation_with_vector(graph.features, graph.sensitive))
    rate1 = float(graph.labels[graph.sensitive == 1].mean())
    rate0 = float(graph.labels[graph.sensitive == 0].mean())
    # 1-hop structural leakage: predict s by neighbourhood majority.
    adjacency = graph.adjacency
    votes = adjacency @ graph.sensitive.astype(np.float64)
    degrees = np.asarray(adjacency.sum(axis=1)).reshape(-1)
    has_neighbors = degrees > 0
    predicted = np.zeros_like(graph.sensitive)
    predicted[has_neighbors] = (
        votes[has_neighbors] / degrees[has_neighbors] > 0.5
    ).astype(np.int64)
    structural = float(
        (predicted[has_neighbors] == graph.sensitive[has_neighbors]).mean()
        if has_neighbors.any()
        else 0.0
    )
    return BiasAudit(
        feature_leakage=leakage,
        top_proxy_features=np.argsort(leakage)[::-1],
        sensitive_homophily=edge_homophily(adjacency, graph.sensitive),
        label_homophily=edge_homophily(adjacency, graph.labels),
        base_rate_gap=abs(rate1 - rate0),
        group_balance=float(graph.sensitive.mean()),
        structural_leakage=structural,
    )


@dataclass
class PredictionAudit:
    """Model-side bias report on the test split."""

    evaluation: EvalResult
    base_rate_gap: float
    amplification: float
    audit: BiasAudit = field(repr=False, default=None)

    def render(self) -> str:
        """Human-readable report."""
        lines = ["Bias audit (model side, test split)"]
        lines.append(f"  {self.evaluation}")
        lines.append(
            f"  label base-rate gap {self.base_rate_gap:.3f} → prediction gap "
            f"{self.evaluation.delta_sp:.3f} "
            f"(amplification ×{self.amplification:.2f})"
        )
        verdict = (
            "the model AMPLIFIES the underlying outcome gap"
            if self.amplification > 1.1
            else "the model roughly tracks the underlying outcome gap"
            if self.amplification > 0.9
            else "the model ATTENUATES the underlying outcome gap"
        )
        lines.append(f"  verdict: {verdict}")
        return "\n".join(lines)


def audit_predictions(logits: np.ndarray, graph: Graph) -> PredictionAudit:
    """Model-side audit of test-split logits: fairness + amplification."""
    evaluation = evaluate_predictions(
        logits, graph.labels, graph.sensitive, graph.test_mask
    )
    test = graph.test_mask
    labels, sens = graph.labels[test], graph.sensitive[test]
    if (sens == 1).any() and (sens == 0).any():
        gap = abs(float(labels[sens == 1].mean()) - float(labels[sens == 0].mean()))
    else:
        gap = 0.0
    amplification = evaluation.delta_sp / gap if gap > 1e-9 else np.inf
    return PredictionAudit(
        evaluation=evaluation,
        base_rate_gap=gap,
        amplification=float(amplification),
    )


@dataclass
class WindowAudit:
    """Per-window fairness report over a scored node stream.

    Attributes
    ----------
    starts, ends:
        ``(W,)`` window boundaries as positions into the scored stream
        (half-open: window ``w`` covers ``starts[w]:ends[w]``).
    evaluations:
        One :class:`~repro.fairness.evaluation.EvalResult` per window.
    delta_sp_drift:
        ``max_w |ΔSP_w − ΔSP_0|`` — how far any window's statistical-parity
        gap strays from the first window's.  The headline drift signal: a
        model whose fairness holds up across scoring windows keeps this
        near zero.
    """

    starts: np.ndarray
    ends: np.ndarray
    evaluations: list[EvalResult]
    delta_sp_drift: float

    @property
    def num_windows(self) -> int:
        return len(self.evaluations)

    def render(self) -> str:
        """Human-readable per-window table with the drift headline."""
        lines = [f"Fairness drift audit ({self.num_windows} windows)"]
        lines.append("  window      nodes    ACC     ΔSP     ΔEO")
        for w, ev in enumerate(self.evaluations):
            size = int(self.ends[w] - self.starts[w])
            lines.append(
                f"  [{int(self.starts[w]):>5d},{int(self.ends[w]):>5d})"
                f" {size:>6d}  {ev.accuracy:.3f}  {ev.delta_sp:.3f}  "
                f"{ev.delta_eo:.3f}"
            )
        lines.append(f"  max ΔSP drift vs first window: {self.delta_sp_drift:.3f}")
        return "\n".join(lines)


def _window_eval(
    logits: np.ndarray, labels: np.ndarray, sensitive: np.ndarray
) -> EvalResult:
    """Evaluate one window, degrading gracefully when a group is absent.

    Short windows of a node stream can contain a single sensitive group,
    where the fairness gaps are undefined; report accuracy and NaN gaps
    instead of refusing the whole audit.
    """
    try:
        return evaluate_predictions(logits, labels, sensitive)
    except ValueError:
        predictions = (logits > 0.0).astype(np.int64)
        nan = float("nan")
        return EvalResult(
            accuracy=float((predictions == labels).mean()),
            delta_sp=nan,
            delta_eo=nan,
            f1=nan,
            auc=nan,
            positive_rate_s0=nan,
            positive_rate_s1=nan,
            num_nodes=int(logits.size),
        )


def audit_prediction_windows(
    logits: np.ndarray,
    labels: np.ndarray,
    sensitive: np.ndarray,
    num_windows: int = 4,
) -> WindowAudit:
    """Slice a scored stream into contiguous windows and audit each.

    ``logits``, ``labels`` and ``sensitive`` are aligned arrays over the
    scored nodes *in arrival order* (the caller chooses the order — node id
    for a batch score, wall-clock for a serving log).  The stream is cut
    into ``num_windows`` near-equal contiguous windows and each is
    evaluated independently; see :class:`WindowAudit` for the drift
    headline.  Windows containing a single sensitive group report NaN
    fairness gaps (their accuracy is still computed) and are excluded from
    the drift maximum.
    """
    logits = np.asarray(logits).reshape(-1)
    labels = np.asarray(labels).reshape(-1)
    sensitive = np.asarray(sensitive).reshape(-1)
    if not (logits.size == labels.size == sensitive.size):
        raise ValueError(
            f"logits ({logits.size}), labels ({labels.size}) and sensitive "
            f"({sensitive.size}) must be aligned"
        )
    if num_windows < 1:
        raise ValueError(f"num_windows must be >= 1, got {num_windows}")
    if logits.size < num_windows:
        raise ValueError(
            f"cannot split {logits.size} scored nodes into {num_windows} "
            f"windows"
        )
    bounds = np.linspace(0, logits.size, num_windows + 1).astype(np.int64)
    starts, ends = bounds[:-1], bounds[1:]
    evaluations = [
        _window_eval(logits[a:b], labels[a:b], sensitive[a:b])
        for a, b in zip(starts, ends)
    ]
    gaps = np.array([ev.delta_sp for ev in evaluations])
    finite = np.isfinite(gaps)
    if finite.sum() >= 2:
        reference = gaps[finite][0]
        drift = float(np.abs(gaps[finite] - reference).max())
    else:
        drift = 0.0
    return WindowAudit(
        starts=starts,
        ends=ends,
        evaluations=evaluations,
        delta_sp_drift=drift,
    )
