"""Bias auditing: quantify *where* a graph's sensitive bias lives.

The paper's introduction argues that sensitive bias survives removal of the
sensitive attribute through two channels — proxy features and homophilous
graph structure — and that message passing amplifies it.  This module turns
that argument into a measurable report:

* :func:`audit_graph` — data-side audit (leakage per feature, structural
  homophily, label base rates);
* :func:`audit_predictions` — model-side audit (ΔSP/ΔEO, amplification
  factor = prediction gap / label base-rate gap);
* :class:`BiasAudit` — the combined report with a text rendering.

Auditing requires the sensitive attribute, so it belongs to the *evaluation*
phase, exactly like the fairness metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis import correlation_with_vector
from repro.fairness.evaluation import EvalResult, evaluate_predictions
from repro.graph import Graph
from repro.graph.utils import edge_homophily

__all__ = ["BiasAudit", "audit_graph", "audit_predictions"]


@dataclass
class BiasAudit:
    """Data-side bias report for one graph.

    Attributes
    ----------
    feature_leakage:
        ``(F,)`` absolute Pearson correlation of each feature column with
        the sensitive attribute.
    top_proxy_features:
        Feature indices sorted by leakage, strongest first.
    sensitive_homophily:
        Fraction of edges joining same-group endpoints.
    label_homophily:
        Fraction of edges joining same-label endpoints.
    base_rate_gap:
        |P(y=1 | s=1) − P(y=1 | s=0)| — the *real* outcome gap.
    group_balance:
        P(s = 1).
    structural_leakage:
        1-hop majority-vote accuracy of predicting ``s`` from neighbours —
        how much the graph structure alone reveals the sensitive attribute.
    """

    feature_leakage: np.ndarray
    top_proxy_features: np.ndarray
    sensitive_homophily: float
    label_homophily: float
    base_rate_gap: float
    group_balance: float
    structural_leakage: float

    def render(self, top_k: int = 5) -> str:
        """Human-readable report."""
        lines = ["Bias audit (data side)"]
        lines.append(
            f"  group balance P(s=1) = {self.group_balance:.2f}; "
            f"label base-rate gap = {self.base_rate_gap:.3f}"
        )
        lines.append(
            f"  homophily: sensitive {self.sensitive_homophily:.2f}, "
            f"label {self.label_homophily:.2f}"
        )
        lines.append(
            f"  structural leakage (1-hop majority vote on s): "
            f"{self.structural_leakage:.2f}"
        )
        lines.append(f"  top-{top_k} proxy features by |corr(x_j, s)|:")
        for j in self.top_proxy_features[:top_k]:
            bar = "#" * int(round(30 * self.feature_leakage[j]))
            lines.append(f"    f{int(j):<4d} {self.feature_leakage[j]:.3f} {bar}")
        return "\n".join(lines)


def audit_graph(graph: Graph) -> BiasAudit:
    """Measure the data-side bias channels of ``graph``."""
    leakage = np.abs(correlation_with_vector(graph.features, graph.sensitive))
    rate1 = float(graph.labels[graph.sensitive == 1].mean())
    rate0 = float(graph.labels[graph.sensitive == 0].mean())
    # 1-hop structural leakage: predict s by neighbourhood majority.
    adjacency = graph.adjacency
    votes = adjacency @ graph.sensitive.astype(np.float64)
    degrees = np.asarray(adjacency.sum(axis=1)).reshape(-1)
    has_neighbors = degrees > 0
    predicted = np.zeros_like(graph.sensitive)
    predicted[has_neighbors] = (
        votes[has_neighbors] / degrees[has_neighbors] > 0.5
    ).astype(np.int64)
    structural = float(
        (predicted[has_neighbors] == graph.sensitive[has_neighbors]).mean()
        if has_neighbors.any()
        else 0.0
    )
    return BiasAudit(
        feature_leakage=leakage,
        top_proxy_features=np.argsort(leakage)[::-1],
        sensitive_homophily=edge_homophily(adjacency, graph.sensitive),
        label_homophily=edge_homophily(adjacency, graph.labels),
        base_rate_gap=abs(rate1 - rate0),
        group_balance=float(graph.sensitive.mean()),
        structural_leakage=structural,
    )


@dataclass
class PredictionAudit:
    """Model-side bias report on the test split."""

    evaluation: EvalResult
    base_rate_gap: float
    amplification: float
    audit: BiasAudit = field(repr=False, default=None)

    def render(self) -> str:
        """Human-readable report."""
        lines = ["Bias audit (model side, test split)"]
        lines.append(f"  {self.evaluation}")
        lines.append(
            f"  label base-rate gap {self.base_rate_gap:.3f} → prediction gap "
            f"{self.evaluation.delta_sp:.3f} "
            f"(amplification ×{self.amplification:.2f})"
        )
        verdict = (
            "the model AMPLIFIES the underlying outcome gap"
            if self.amplification > 1.1
            else "the model roughly tracks the underlying outcome gap"
            if self.amplification > 0.9
            else "the model ATTENUATES the underlying outcome gap"
        )
        lines.append(f"  verdict: {verdict}")
        return "\n".join(lines)


def audit_predictions(logits: np.ndarray, graph: Graph) -> PredictionAudit:
    """Model-side audit of test-split logits: fairness + amplification."""
    evaluation = evaluate_predictions(
        logits, graph.labels, graph.sensitive, graph.test_mask
    )
    test = graph.test_mask
    labels, sens = graph.labels[test], graph.sensitive[test]
    if (sens == 1).any() and (sens == 0).any():
        gap = abs(float(labels[sens == 1].mean()) - float(labels[sens == 0].mean()))
    else:
        gap = 0.0
    amplification = evaluation.delta_sp / gap if gap > 1e-9 else np.inf
    return PredictionAudit(
        evaluation=evaluation,
        base_rate_gap=gap,
        amplification=float(amplification),
    )
